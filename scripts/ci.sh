#!/usr/bin/env bash
# Offline CI gate: tier-1 build+test, full workspace tests, and clippy with
# warnings denied. No network access required — proptest/criterion resolve
# to the in-tree shim crates (crates/proptest, crates/criterion).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: root-package tests =="
cargo test -q

echo "== full workspace tests =="
cargo test --workspace -q

echo "== forced-SWAR kernel tests =="
# The portable SWAR tier is what non-x86 targets run. Pinning the
# dispatcher to it re-runs the whole core suite — including the
# tier-differential proptests — without any platform SIMD.
MS_SCAN_TIER=swar cargo test -q -p minesweeper > /dev/null \
    || { echo "core tests fail under the SWAR scan tier"; exit 1; }

echo "== telemetry trace smoke-test =="
# A small traced run must produce JSONL that parses and whose aggregated
# totals reconcile exactly with the exported metrics counters.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run -q --release -p ms-cli --bin minesweeper-sim -- run demo \
    --system ms --trace-out "$smoke_dir/run.jsonl" \
    --metrics-out "$smoke_dir/metrics.json" > /dev/null
test -s "$smoke_dir/run.jsonl" || { echo "empty trace"; exit 1; }
test -s "$smoke_dir/metrics.json" || { echo "empty metrics"; exit 1; }
cargo run -q --release -p ms-cli --bin ms-report -- "$smoke_dir/run.jsonl" \
    --metrics "$smoke_dir/metrics.json" --check \
    | grep -q "reconcile: trace totals match metrics counters" \
    || { echo "trace/metrics reconciliation failed"; exit 1; }

echo "== multi-arena sim smoke-test =="
# N tenants over one sharded pool: the metrics-only ms-report mode must
# render the per-arena table, and --check must reconcile the per-shard
# counters (copied from each layer) exactly against the independently
# accumulated arena/total_* globals — a lost update on either path fails.
cargo run -q --release -p ms-cli --bin minesweeper-sim -- run demo \
    --system ms --arenas 4 \
    --metrics-out "$smoke_dir/arena_metrics.json" > /dev/null
cargo run -q --release -p ms-cli --bin ms-report -- \
    --metrics "$smoke_dir/arena_metrics.json" --check \
    | grep -q "reconcile: arena shard counters match global totals" \
    || { echo "arena shard/global reconciliation failed"; exit 1; }
# The qratio objective judges each shard separately on sharded snapshots;
# a generous ceiling must still pass through the per-arena path.
cargo run -q --release -p ms-cli --bin ms-report -- \
    --slo qratio=1000 --metrics "$smoke_dir/arena_metrics.json" > /dev/null \
    || { echo "per-arena qratio SLO must pass a generous ceiling"; exit 1; }

echo "== forensics trace smoke-test =="
# The same run with forensics on: the trace must carry the forensic event
# schema (pin edges, ledger snapshots), the pinner view must render, and
# the extended --check must reconcile the ledger against the counters.
cargo run -q --release -p ms-cli --bin minesweeper-sim -- run demo \
    --system ms --forensics full --trace-out "$smoke_dir/forensic.jsonl" \
    --metrics-out "$smoke_dir/forensic_metrics.json" > /dev/null
grep -q '"ledger_entries"' "$smoke_dir/forensic.jsonl" \
    || { echo "forensic trace missing ledger snapshots"; exit 1; }
cargo run -q --release -p ms-cli --bin ms-report -- "$smoke_dir/forensic.jsonl" \
    --metrics "$smoke_dir/forensic_metrics.json" --pinners --failed-frees --check \
    > "$smoke_dir/forensic_report.txt" \
    || { echo "forensic report failed"; exit 1; }
grep -q "pinned sites" "$smoke_dir/forensic_report.txt" \
    || { echo "forensic report missing pinner table"; exit 1; }
grep -q "reconcile: trace totals match metrics counters" \
    "$smoke_dir/forensic_report.txt" \
    || { echo "forensic reconciliation failed"; exit 1; }

echo "== golden trace fixtures =="
# The JSONL wire format (plain and forensic) must stay byte-identical to
# the committed fixtures; regenerate intentionally with UPDATE_GOLDEN=1.
cargo test -q -p minesweeper --test golden_trace > /dev/null \
    || { echo "golden trace fixtures drifted"; exit 1; }

echo "== sweep bench smoke-run =="
# One rep on the small fixture: asserts the bench runs end to end and the
# JSON carries the expected schema (including the incremental-sweep and
# helper-clamp fields). Explicitly NOT a performance gate.
cargo run -q --release -p ms-bench --bin sweep_bandwidth -- \
    --quick --reps 1 --out "$smoke_dir/bench.json" \
    --metrics-out "$smoke_dir/bench_metrics.json" > /dev/null
for key in requested_helpers effective_helpers degraded dirty_pct \
    incremental_d5 incremental_filtered_d5 words_per_sec forensics_off \
    forensics_sampled_s8 forensics_full simd_serial swar_serial \
    steal_parallel share_parallel simd_vs_scalar \
    arenas_n4_serial arenas_n16_barrier_h6 arenas_n64_sched_h6 \
    n16_sched_vs_serial; do
    grep -q "$key" "$smoke_dir/bench.json" \
        || { echo "bench JSON missing $key"; exit 1; }
done
# Honesty gate: a parallel row the hardware clamped to zero helpers ran
# serially and must say so — its JSON line carries "degraded": true.
if grep '"requested_helpers": [1-9]' "$smoke_dir/bench.json" \
    | grep '"effective_helpers": 0' \
    | grep -qv '"degraded": true'; then
    echo "bench rows with zero effective helpers must be flagged degraded"
    exit 1
fi
test -s "$smoke_dir/bench_metrics.json" || { echo "empty bench metrics"; exit 1; }

echo "== sweep profiler overhead pair =="
# Off-vs-on bench pair over the same fixture: enabling the profiler must
# not slow any non-degraded row beyond threshold + the pair's measured
# noise (the disabled path is a single branch). The off run also appends
# this CI run to the append-only bench trajectory.
cargo run -q --release -p ms-bench --bin sweep_bandwidth -- \
    --pages 256 --reps 8 --out "$smoke_dir/off.json" \
    --metrics-out "$smoke_dir/off_metrics.json" \
    --trajectory BENCH_trajectory.jsonl > /dev/null
grep -q '"git_rev"' BENCH_trajectory.jsonl \
    || { echo "trajectory line missing host metadata"; exit 1; }
cargo run -q --release -p ms-bench --bin sweep_bandwidth -- \
    --pages 256 --reps 8 --profiler --out "$smoke_dir/on.json" \
    --metrics-out "$smoke_dir/on_metrics.json" > /dev/null
grep -q '"profiler": true' "$smoke_dir/on.json" \
    || { echo "bench JSON missing profiler host field"; exit 1; }
# The off and on runs are minutes apart on a shared 1-CPU host, so a
# multi-second contention window can swallow a whole block of configs in
# one run only. One retry with a fresh pair tells drift from real
# overhead: genuine profiler cost regresses both pairs.
if ! cargo run -q --release -p ms-cli --bin ms-report -- \
    --compare "$smoke_dir/off_metrics.json" "$smoke_dir/on_metrics.json" \
    --threshold 10 > /dev/null; then
    echo "profiler pair regressed once — retrying with a fresh pair"
    cargo run -q --release -p ms-bench --bin sweep_bandwidth -- \
        --pages 256 --reps 8 --out "$smoke_dir/off.json" \
        --metrics-out "$smoke_dir/off_metrics.json" > /dev/null
    cargo run -q --release -p ms-bench --bin sweep_bandwidth -- \
        --pages 256 --reps 8 --profiler --out "$smoke_dir/on.json" \
        --metrics-out "$smoke_dir/on_metrics.json" > /dev/null
    cargo run -q --release -p ms-cli --bin ms-report -- \
        --compare "$smoke_dir/off_metrics.json" "$smoke_dir/on_metrics.json" \
        --threshold 10 > /dev/null \
        || { echo "profiler-on bench regressed beyond noise vs profiler-off"; exit 1; }
fi

echo "== bench regression-gate self-test =="
# Inject a synthetic 2x slowdown on a non-degraded row and prove the
# compare gate actually rejects it (exit 2).
cargo run -q --release -p ms-bench --bin sweep_bandwidth -- \
    --pages 256 --reps 8 --handicap simd_serial:2.0 \
    --out "$smoke_dir/slow.json" \
    --metrics-out "$smoke_dir/slow_metrics.json" > /dev/null
if cargo run -q --release -p ms-cli --bin ms-report -- \
    --compare "$smoke_dir/off_metrics.json" "$smoke_dir/slow_metrics.json" \
    > "$smoke_dir/gate.txt"; then
    echo "compare gate failed to reject an injected 2x regression"
    exit 1
fi
grep -q "REGRESSED" "$smoke_dir/gate.txt" \
    || { echo "gate output missing the REGRESSED verdict"; exit 1; }

echo "== bench baseline compare =="
# Noise-aware deltas against the committed quick-fixture baseline.
# Same-host regressions beyond 25% + noise gate the build; cross-host
# pairs (different CPU count or scan tier) downgrade to warnings.
cargo run -q --release -p ms-cli --bin ms-report -- \
    --compare BENCH_baseline_metrics.json "$smoke_dir/off_metrics.json" \
    --threshold 25 \
    || { echo "bench regressed against the committed baseline"; exit 1; }

echo "== SLO watchdog smoke =="
# A generous policy over the telemetry smoke run passes; an impossible
# sweep deadline must breach and exit nonzero.
cargo run -q --release -p ms-cli --bin ms-report -- \
    --slo stw=999999999999,sweep=999999999999,qratio=1000 \
    --metrics "$smoke_dir/metrics.json" > /dev/null \
    || { echo "generous SLO policy must pass"; exit 1; }
if cargo run -q --release -p ms-cli --bin ms-report -- \
    --slo sweep=1 --metrics "$smoke_dir/metrics.json" > /dev/null; then
    echo "impossible SLO policy must breach"
    exit 1
fi

echo "== clippy (deny warnings) =="
cargo clippy -p ms-telemetry --all-targets -- -D warnings
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
