#!/usr/bin/env bash
# Offline CI gate, structured as named stages.
#
#   scripts/ci.sh                 run every stage, print a summary table
#   scripts/ci.sh --list          list stages with one-line descriptions
#   scripts/ci.sh --stage NAME    run one stage (repeatable, in order)
#
# Every stage runs in its own subshell under `set -euo pipefail`; the
# driver keeps going after a failure so one run reports every broken
# stage, then exits 1 if any failed. No network access required —
# proptest/criterion resolve to the in-tree shim crates (crates/proptest,
# crates/criterion).
#
# Baseline refresh knobs (intentional, reviewed updates only):
#   UPDATE_GOLDEN=1            scripts/ci.sh --stage golden-traces
#   UPDATE_SECURITY_BASELINE=1 scripts/ci.sh --stage security
set -euo pipefail
SELF="$(cd "$(dirname "$0")" && pwd)/$(basename "$0")"
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT

# ---------------------------------------------------------------------------
# Shared artifact helpers: stages that consume another stage's output call
# these so any stage also works standalone via --stage.
# ---------------------------------------------------------------------------

ensure_demo_metrics() {
    [ -s "$smoke_dir/metrics.json" ] && return 0
    cargo run -q --release -p ms-cli --bin minesweeper-sim -- run demo \
        --system ms --trace-out "$smoke_dir/run.jsonl" \
        --metrics-out "$smoke_dir/metrics.json" > /dev/null
}

ensure_off_metrics() {
    [ -s "$smoke_dir/off_metrics.json" ] && return 0
    cargo run -q --release -p ms-bench --bin sweep_bandwidth -- \
        --pages 256 --reps 8 --out "$smoke_dir/off.json" \
        --metrics-out "$smoke_dir/off_metrics.json" > /dev/null
}

ensure_security_matrix() {
    [ -s "$smoke_dir/SECURITY_matrix.json" ] && return 0
    cargo run -q --release -p ms-cli --bin minesweeper-sim -- \
        exploit --corpus --seed 42 --fuzz 3 \
        --out "$smoke_dir/SECURITY_matrix.json" > /dev/null
}

# ---------------------------------------------------------------------------
# Stages. Each is a function stage_<name> (hyphens become underscores) with
# a `# desc:` line the --list output and the summary table pick up.
# ---------------------------------------------------------------------------

# desc: tier-1 release build
stage_build() {
    cargo build --release
}

# desc: tier-1 root-package tests
stage_root_tests() {
    cargo test -q
}

# desc: full workspace tests
stage_workspace_tests() {
    cargo test --workspace -q
}

# desc: core suite pinned to the portable SWAR scan tier
stage_swar_tests() {
    # The portable SWAR tier is what non-x86 targets run. Pinning the
    # dispatcher to it re-runs the whole core suite — including the
    # tier-differential proptests — without any platform SIMD.
    MS_SCAN_TIER=swar cargo test -q -p minesweeper > /dev/null \
        || { echo "core tests fail under the SWAR scan tier"; exit 1; }
}

# desc: traced run JSONL parses and reconciles with metrics
stage_telemetry_smoke() {
    ensure_demo_metrics
    test -s "$smoke_dir/run.jsonl" || { echo "empty trace"; exit 1; }
    test -s "$smoke_dir/metrics.json" || { echo "empty metrics"; exit 1; }
    cargo run -q --release -p ms-cli --bin ms-report -- "$smoke_dir/run.jsonl" \
        --metrics "$smoke_dir/metrics.json" --check \
        | grep -q "reconcile: trace totals match metrics counters" \
        || { echo "trace/metrics reconciliation failed"; exit 1; }
}

# desc: sharded-arena metrics render and reconcile
stage_arena_smoke() {
    # N tenants over one sharded pool: the metrics-only ms-report mode must
    # render the per-arena table, and --check must reconcile the per-shard
    # counters (copied from each layer) exactly against the independently
    # accumulated arena/total_* globals — a lost update on either path fails.
    cargo run -q --release -p ms-cli --bin minesweeper-sim -- run demo \
        --system ms --arenas 4 \
        --metrics-out "$smoke_dir/arena_metrics.json" > /dev/null
    cargo run -q --release -p ms-cli --bin ms-report -- \
        --metrics "$smoke_dir/arena_metrics.json" --check \
        | grep -q "reconcile: arena shard counters match global totals" \
        || { echo "arena shard/global reconciliation failed"; exit 1; }
    # The qratio objective judges each shard separately on sharded
    # snapshots; a generous ceiling must still pass through that path.
    cargo run -q --release -p ms-cli --bin ms-report -- \
        --slo qratio=1000 --metrics "$smoke_dir/arena_metrics.json" > /dev/null \
        || { echo "per-arena qratio SLO must pass a generous ceiling"; exit 1; }
}

# desc: forensic trace schema, pinner table and ledger reconcile
stage_forensics_smoke() {
    cargo run -q --release -p ms-cli --bin minesweeper-sim -- run demo \
        --system ms --forensics full --trace-out "$smoke_dir/forensic.jsonl" \
        --metrics-out "$smoke_dir/forensic_metrics.json" > /dev/null
    grep -q '"ledger_entries"' "$smoke_dir/forensic.jsonl" \
        || { echo "forensic trace missing ledger snapshots"; exit 1; }
    cargo run -q --release -p ms-cli --bin ms-report -- "$smoke_dir/forensic.jsonl" \
        --metrics "$smoke_dir/forensic_metrics.json" --pinners --failed-frees --check \
        > "$smoke_dir/forensic_report.txt" \
        || { echo "forensic report failed"; exit 1; }
    grep -q "pinned sites" "$smoke_dir/forensic_report.txt" \
        || { echo "forensic report missing pinner table"; exit 1; }
    grep -q "reconcile: trace totals match metrics counters" \
        "$smoke_dir/forensic_report.txt" \
        || { echo "forensic reconciliation failed"; exit 1; }
}

# desc: JSONL wire format matches committed fixtures (UPDATE_GOLDEN=1)
stage_golden_traces() {
    cargo test -q -p minesweeper --test golden_trace > /dev/null \
        || { echo "golden trace fixtures drifted"; exit 1; }
}

# desc: bench schema keys present and degraded rows honest
stage_bench_smoke() {
    # One rep on the small fixture: asserts the bench runs end to end and
    # the JSON carries the expected schema. Explicitly NOT a perf gate.
    cargo run -q --release -p ms-bench --bin sweep_bandwidth -- \
        --quick --reps 1 --out "$smoke_dir/bench.json" \
        --metrics-out "$smoke_dir/bench_metrics.json" > /dev/null
    for key in requested_helpers effective_helpers degraded dirty_pct \
        incremental_d5 incremental_filtered_d5 words_per_sec forensics_off \
        forensics_sampled_s8 forensics_full simd_serial swar_serial \
        steal_parallel share_parallel simd_vs_scalar \
        arenas_n4_serial arenas_n16_barrier_h6 arenas_n64_sched_h6 \
        n16_sched_vs_serial; do
        grep -q "$key" "$smoke_dir/bench.json" \
            || { echo "bench JSON missing $key"; exit 1; }
    done
    # Honesty gate: a parallel row the hardware clamped to zero helpers
    # ran serially and must say so via "degraded": true.
    if grep '"requested_helpers": [1-9]' "$smoke_dir/bench.json" \
        | grep '"effective_helpers": 0' \
        | grep -qv '"degraded": true'; then
        echo "bench rows with zero effective helpers must be flagged degraded"
        exit 1
    fi
    test -s "$smoke_dir/bench_metrics.json" || { echo "empty bench metrics"; exit 1; }
}

# desc: profiler on/off bench pair within noise; appends trajectory
stage_profiler_pair() {
    # Off-vs-on bench pair over the same fixture: enabling the profiler
    # must not slow any non-degraded row beyond threshold + the pair's
    # measured noise (the disabled path is a single branch). The off run
    # also appends this CI run to the append-only bench trajectory.
    # Only the serial configs enter the gating history: parallel rows on
    # this shared host can run degraded (zero helpers), and degraded
    # samples would poison every later drift comparison.
    cargo run -q --release -p ms-bench --bin sweep_bandwidth -- \
        --pages 256 --reps 8 --out "$smoke_dir/off.json" \
        --metrics-out "$smoke_dir/off_metrics.json" \
        --trajectory BENCH_trajectory.jsonl \
        --trajectory-configs simd_serial,swar_serial > /dev/null
    grep -q '"git_rev"' BENCH_trajectory.jsonl \
        || { echo "trajectory line missing host metadata"; exit 1; }
    tail -n 1 BENCH_trajectory.jsonl | grep -q '"name": "simd_serial"' \
        || { echo "trajectory gating row simd_serial missing"; exit 1; }
    if tail -n 1 BENCH_trajectory.jsonl | grep -q '"degraded": true'; then
        echo "filtered trajectory line must not carry degraded rows"; exit 1
    fi
    # The whole history (old unfiltered lines included) must still render.
    cargo run -q --release -p ms-cli --bin ms-report -- \
        --trajectory BENCH_trajectory.jsonl > /dev/null \
        || { echo "trajectory history failed to render"; exit 1; }
    cargo run -q --release -p ms-bench --bin sweep_bandwidth -- \
        --pages 256 --reps 8 --profiler --out "$smoke_dir/on.json" \
        --metrics-out "$smoke_dir/on_metrics.json" > /dev/null
    grep -q '"profiler": true' "$smoke_dir/on.json" \
        || { echo "bench JSON missing profiler host field"; exit 1; }
    # The off and on runs are minutes apart on a shared 1-CPU host, so a
    # multi-second contention window can swallow a whole block of configs
    # in one run only. One retry with a fresh pair tells drift from real
    # overhead: genuine profiler cost regresses both pairs.
    if ! cargo run -q --release -p ms-cli --bin ms-report -- \
        --compare "$smoke_dir/off_metrics.json" "$smoke_dir/on_metrics.json" \
        --threshold 10 > /dev/null; then
        echo "profiler pair regressed once — retrying with a fresh pair"
        cargo run -q --release -p ms-bench --bin sweep_bandwidth -- \
            --pages 256 --reps 8 --out "$smoke_dir/off.json" \
            --metrics-out "$smoke_dir/off_metrics.json" > /dev/null
        cargo run -q --release -p ms-bench --bin sweep_bandwidth -- \
            --pages 256 --reps 8 --profiler --out "$smoke_dir/on.json" \
            --metrics-out "$smoke_dir/on_metrics.json" > /dev/null
        cargo run -q --release -p ms-cli --bin ms-report -- \
            --compare "$smoke_dir/off_metrics.json" "$smoke_dir/on_metrics.json" \
            --threshold 10 > /dev/null \
            || { echo "profiler-on bench regressed beyond noise vs profiler-off"; exit 1; }
    fi
}

# desc: compare gate rejects an injected 2x slowdown (exit 2)
stage_bench_selftest() {
    ensure_off_metrics
    cargo run -q --release -p ms-bench --bin sweep_bandwidth -- \
        --pages 256 --reps 8 --handicap simd_serial:2.0 \
        --out "$smoke_dir/slow.json" \
        --metrics-out "$smoke_dir/slow_metrics.json" > /dev/null
    local rc=0
    cargo run -q --release -p ms-cli --bin ms-report -- \
        --compare "$smoke_dir/off_metrics.json" "$smoke_dir/slow_metrics.json" \
        > "$smoke_dir/gate.txt" || rc=$?
    [ "$rc" -eq 2 ] \
        || { echo "compare gate must exit 2 on an injected 2x regression (got $rc)"; exit 1; }
    grep -q "REGRESSED" "$smoke_dir/gate.txt" \
        || { echo "gate output missing the REGRESSED verdict"; exit 1; }
}

# desc: noise-aware compare against the committed bench baseline
stage_bench_baseline() {
    # Same-host regressions beyond 25% + noise gate the build; cross-host
    # pairs (different CPU count or scan tier) downgrade to warnings. The
    # baseline was recorded minutes-to-months before this run on a shared
    # 1-CPU host, so one contention window can fake a regression in a
    # single rep block — a retry with a fresh measurement tells drift
    # from real cost, exactly like the profiler pair above.
    ensure_off_metrics
    if ! cargo run -q --release -p ms-cli --bin ms-report -- \
        --compare BENCH_baseline_metrics.json "$smoke_dir/off_metrics.json" \
        --threshold 25; then
        echo "baseline compare regressed once — retrying with a fresh run"
        cargo run -q --release -p ms-bench --bin sweep_bandwidth -- \
            --pages 256 --reps 8 --out "$smoke_dir/off.json" \
            --metrics-out "$smoke_dir/off_metrics.json" > /dev/null
        cargo run -q --release -p ms-cli --bin ms-report -- \
            --compare BENCH_baseline_metrics.json "$smoke_dir/off_metrics.json" \
            --threshold 25 \
            || { echo "bench regressed against the committed baseline"; exit 1; }
    fi
}

# desc: generous SLO passes, impossible SLO breaches (exit 2)
stage_slo_smoke() {
    ensure_demo_metrics
    cargo run -q --release -p ms-cli --bin ms-report -- \
        --slo stw=999999999999,sweep=999999999999,qratio=1000 \
        --metrics "$smoke_dir/metrics.json" > /dev/null \
        || { echo "generous SLO policy must pass"; exit 1; }
    local rc=0
    cargo run -q --release -p ms-cli --bin ms-report -- \
        --slo sweep=1 --metrics "$smoke_dir/metrics.json" > /dev/null || rc=$?
    [ "$rc" -eq 2 ] \
        || { echo "impossible SLO policy must breach with exit 2 (got $rc)"; exit 1; }
}

# desc: security matrix regenerates byte-identically and passes the gate
stage_security() {
    # The adversarial corpus is deterministic: the same seed must
    # reproduce the committed SECURITY_matrix.json byte for byte, and the
    # fresh matrix must show no verdict regression against the committed
    # SECURITY_baseline.json (minesweeper cells must stay non-Compromised
    # — the gate's hard floor). Refresh both intentionally with
    # UPDATE_SECURITY_BASELINE=1 after reviewing the verdict diff.
    ensure_security_matrix
    if [ "${UPDATE_SECURITY_BASELINE:-0}" = "1" ]; then
        cp "$smoke_dir/SECURITY_matrix.json" SECURITY_matrix.json
        cp "$smoke_dir/SECURITY_matrix.json" SECURITY_baseline.json
        echo "security baseline regenerated — review and commit the diff"
    fi
    cmp -s SECURITY_matrix.json "$smoke_dir/SECURITY_matrix.json" \
        || { echo "SECURITY_matrix.json drifted from the committed copy" \
             "(regenerate with UPDATE_SECURITY_BASELINE=1)"; exit 1; }
    cargo run -q --release -p ms-cli --bin ms-report -- \
        --security "$smoke_dir/SECURITY_matrix.json" \
        --baseline SECURITY_baseline.json --check \
        || { echo "security verdict regression against the baseline"; exit 1; }
}

# desc: gate self-test — weakened run exits 2, bad input exits 1
stage_security_selftest() {
    # Prove the gate can actually fail: a corpus run with the quarantine
    # weakened must flip minesweeper cells to Compromised and the
    # ms-report gate must reject it with exactly exit code 2 (the
    # documented gate-failure code; 1 would mean bad input).
    ensure_security_matrix
    cargo run -q --release -p ms-cli --bin minesweeper-sim -- \
        exploit --corpus --seed 42 --fuzz 3 --weaken quarantine-off \
        --out "$smoke_dir/SECURITY_weak.json" > /dev/null
    local rc=0
    cargo run -q --release -p ms-cli --bin ms-report -- \
        --security "$smoke_dir/SECURITY_weak.json" \
        --baseline SECURITY_baseline.json > "$smoke_dir/sec_gate.txt" || rc=$?
    [ "$rc" -eq 2 ] \
        || { echo "weakened matrix must fail the gate with exit 2 (got $rc)"; exit 1; }
    grep -q "COMPROMISED (hard floor)" "$smoke_dir/sec_gate.txt" \
        || { echo "gate output must name the hard-floor violation"; exit 1; }
    grep -q "verdict regressed" "$smoke_dir/sec_gate.txt" \
        || { echo "gate output must name the regressed scenarios"; exit 1; }
    # Exit-code contract: unreadable input is 1, a clean pass is 0.
    rc=0
    cargo run -q --release -p ms-cli --bin ms-report -- \
        --security "$smoke_dir/does_not_exist.json" > /dev/null 2>&1 || rc=$?
    [ "$rc" -eq 1 ] || { echo "bad input must exit 1 (got $rc)"; exit 1; }
    cargo run -q --release -p ms-cli --bin ms-report -- \
        --security "$smoke_dir/SECURITY_matrix.json" \
        --baseline SECURITY_baseline.json > /dev/null \
        || { echo "clean matrix must pass with exit 0"; exit 1; }
}

# desc: cost ledger reconciles; injected leak fails the gate (exit 2)
stage_costs() {
    # The defence-cost observatory's acceptance gate: a clean run's
    # ledger must reconcile across every attribution dimension, the
    # regenerated security matrix must carry per-cell defence costs
    # (schema 2), and deliberately dropping one kind's counter must make
    # `--costs --check` fail with exactly exit 2, naming the kind.
    ensure_demo_metrics
    cargo run -q --release -p ms-cli --bin ms-report -- \
        --costs "$smoke_dir/metrics.json" --check > "$smoke_dir/costs.txt" \
        || { echo "clean cost ledger failed to reconcile"; exit 1; }
    grep -q "defence cost ledger:" "$smoke_dir/costs.txt" \
        || { echo "cost report missing the ledger header"; exit 1; }
    grep -q "reconcile: kind/site/arena" "$smoke_dir/costs.txt" \
        || { echo "cost report missing the reconcile line"; exit 1; }
    ensure_security_matrix
    grep -q '"schema": 2' "$smoke_dir/SECURITY_matrix.json" \
        || { echo "security matrix must be schema 2"; exit 1; }
    grep -q '"defence_cycles"' "$smoke_dir/SECURITY_matrix.json" \
        || { echo "security matrix cells missing defence_cycles"; exit 1; }
    # Leak self-test: drop the zeroing counter, the gate must fire.
    cargo run -q --release -p ms-cli --bin minesweeper-sim -- run demo \
        --system ms --cost-drop zeroing \
        --metrics-out "$smoke_dir/leaky_metrics.json" > /dev/null
    local rc=0
    cargo run -q --release -p ms-cli --bin ms-report -- \
        --costs "$smoke_dir/leaky_metrics.json" --check \
        > "$smoke_dir/cost_leak.txt" || rc=$?
    [ "$rc" -eq 2 ] \
        || { echo "dropped-kind ledger must fail with exit 2 (got $rc)"; exit 1; }
    grep -q "zeroing" "$smoke_dir/cost_leak.txt" \
        || { echo "leak report must name the dropped kind"; exit 1; }
    # Exit-code contract: unreadable input is 1, not a gate failure.
    rc=0
    cargo run -q --release -p ms-cli --bin ms-report -- \
        --costs "$smoke_dir/does_not_exist.json" > /dev/null 2>&1 || rc=$?
    [ "$rc" -eq 1 ] || { echo "bad costs input must exit 1 (got $rc)"; exit 1; }
}

# desc: clippy with warnings denied
stage_clippy() {
    cargo clippy -p ms-telemetry --all-targets -- -D warnings
    cargo clippy --workspace --all-targets -- -D warnings
}

# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

STAGES=(
    build
    root-tests
    workspace-tests
    swar-tests
    telemetry-smoke
    arena-smoke
    forensics-smoke
    golden-traces
    bench-smoke
    profiler-pair
    bench-selftest
    bench-baseline
    slo-smoke
    security
    security-selftest
    costs
    clippy
)

desc_of() {
    grep -B1 "^stage_${1//-/_}()" "$SELF" | head -1 | sed 's/^# desc: //'
}

list_stages() {
    for s in "${STAGES[@]}"; do
        printf '%-20s %s\n' "$s" "$(desc_of "$s")"
    done
}

run_stages() {
    local names=("$@") failed=0
    local results=()
    for s in "${names[@]}"; do
        echo "== $s: $(desc_of "$s") =="
        local t0 t1 rc=0
        t0=$(date +%s)
        ( set -euo pipefail; "stage_${s//-/_}" ) || rc=$?
        t1=$(date +%s)
        if [ "$rc" -eq 0 ]; then
            results+=("$(printf '%-20s %-6s %4ss' "$s" PASS "$((t1 - t0))")")
        else
            results+=("$(printf '%-20s %-6s %4ss' "$s" FAIL "$((t1 - t0))")")
            failed=1
        fi
    done
    echo
    echo "stage                status  wall"
    echo "-----------------------------------"
    printf '%s\n' "${results[@]}"
    if [ "$failed" -ne 0 ]; then
        echo "CI FAILED"
        exit 1
    fi
    echo "CI OK"
}

selected=()
while [ $# -gt 0 ]; do
    case "$1" in
        --list)
            list_stages
            exit 0
            ;;
        --stage)
            shift
            [ $# -gt 0 ] || { echo "--stage needs a name"; exit 1; }
            found=0
            for s in "${STAGES[@]}"; do
                [ "$s" = "$1" ] && found=1
            done
            [ "$found" -eq 1 ] \
                || { echo "unknown stage: $1 (see --list)"; exit 1; }
            selected+=("$1")
            ;;
        *)
            echo "unknown argument: $1 (usage: ci.sh [--list] [--stage NAME]...)"
            exit 1
            ;;
    esac
    shift
done

if [ ${#selected[@]} -gt 0 ]; then
    run_stages "${selected[@]}"
else
    run_stages "${STAGES[@]}"
fi
