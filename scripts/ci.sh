#!/usr/bin/env bash
# Offline CI gate: tier-1 build+test, full workspace tests, and clippy with
# warnings denied. No network access required — proptest/criterion resolve
# to the in-tree shim crates (crates/proptest, crates/criterion).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: root-package tests =="
cargo test -q

echo "== full workspace tests =="
cargo test --workspace -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
