//! Workspace umbrella crate for the MineSweeper reproduction.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency. See the individual crates for the real APIs:
//! [`vmem`], [`jalloc`], [`minesweeper`], [`baselines`], [`workloads`],
//! [`sim`].

pub use baselines;
pub use jalloc;
pub use minesweeper;
pub use scudo;
pub use sim;
pub use vmem;
pub use workloads;
