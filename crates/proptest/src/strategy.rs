//! Value-generation strategies: ranges, tuples, `Just`, `prop_map`,
//! weighted unions.

use std::fmt::Debug;
use std::ops::Range;

use crate::test_runner::TestRng;

/// Generates values of one type from random bits.
///
/// Mirrors `proptest::strategy::Strategy` minus shrinking: `generate`
/// replaces the value-tree machinery.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies a function to every generated value.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Object-safe strategy, for [`Union`] arms of heterogeneous types.
pub trait DynStrategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Weighted choice between strategies producing one value type; the
/// expansion of [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn DynStrategy<Value = T>>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// A union over `(weight, strategy)` arms. Weights must not all be 0.
    pub fn new(arms: Vec<(u32, Box<dyn DynStrategy<Value = T>>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs at least one non-zero weight");
        Union { arms, total_weight }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate_dyn(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("pick < total_weight")
    }
}

impl<T> Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union").field("arms", &self.arms.len()).finish()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy {self:?}");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $ty)
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty as $uty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy {self:?}");
                    let span = (self.end as $uty).wrapping_sub(self.start as $uty);
                    self.start.wrapping_add(rng.below(span as u64) as $ty)
                }
            }
        )+
    };
}

signed_range_strategy!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy {self:?}");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
