//! Collection strategies (`proptest::collection::vec`).

use std::fmt::Debug;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates `Vec`s of `element` values with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range {size:?}");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
