//! The case runner: deterministic RNG, configuration and failure type.

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property does not hold for these inputs.
    Fail(String),
    /// The inputs were rejected (not counted as a failure).
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected case with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Harness configuration (the subset the workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64: tiny, fast, full-period, and good enough to scatter test
/// inputs. Each case gets an independent stream derived from
/// `(seed, test name, case index)`.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one `(seed, case)` pair.
    pub fn for_case(seed: u64, case: u64) -> Self {
        // Mix so consecutive cases land far apart in the stream.
        let mut rng = TestRng { state: seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) };
        rng.next_u64(); // discard the correlated first output
        rng
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping (Lemire); bias is < 2^-64
        // per draw — irrelevant for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a over the test name, for a stable per-test default seed.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `cases` generated cases of one property test. `f` returns the
/// case verdict plus a human-readable description of the generated
/// inputs (printed on failure, since there is no shrinking).
///
/// Environment knobs: `PROPTEST_SEED` (u64) perturbs generation;
/// `PROPTEST_CASES` (u32) overrides the case count.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
{
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map_or_else(|| name_seed(name), |s| s ^ name_seed(name));
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(config.cases);

    for case in 0..cases as u64 {
        let mut rng = TestRng::for_case(seed, case);
        // Let panics from plain asserts/unwraps inside the body escape with
        // the inputs attached, so failures are reproducible without shrink.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        match result {
            Ok((Ok(()), _)) => {}
            Ok((Err(TestCaseError::Reject(_)), _)) => {}
            Ok((Err(TestCaseError::Fail(msg)), inputs)) => {
                panic!(
                    "proptest {name}: case {case}/{cases} failed (seed {seed}):\n\
                     {msg}\n  inputs: {inputs}"
                );
            }
            Err(payload) => {
                eprintln!(
                    "proptest {name}: case {case}/{cases} panicked (seed {seed})\n  inputs were printed above by the panic; rerun with PROPTEST_SEED={seed}"
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}
