//! `any::<T>()` — full-domain strategies for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),+) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for f64 {
    /// Finite values spanning many magnitudes (no NaN/infinities, which
    /// every numeric property in this workspace would have to filter out).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exponent = rng.below(61) as i32 - 30;
        mantissa * (2.0f64).powi(exponent)
    }
}
