#![warn(missing_docs)]

//! A small, dependency-free property-testing harness exposing the subset
//! of the [proptest](https://crates.io/crates/proptest) API this workspace
//! uses, so the workspace builds and tests fully **offline**.
//!
//! Drop-in compatible surface:
//!
//! * [`proptest!`] with an optional `#![proptest_config(...)]` header,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`prop_oneof!`] (weighted and unweighted),
//! * [`Strategy`](strategy::Strategy) with `prop_map`, implemented for
//!   numeric ranges, tuples and [`Just`](strategy::Just),
//! * [`any`](arbitrary::any) for the primitive types the tests draw,
//! * [`collection::vec`] for variable-length vectors.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (override with `PROPTEST_SEED`), and there
//! is **no shrinking** — on failure the harness prints the generated
//! inputs and the case number so the exact case can be replayed by seed.

pub mod strategy;

pub mod arbitrary;

pub mod collection;

pub mod test_runner;

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test, returning a
/// [`TestCaseError`](test_runner::TestCaseError) instead of panicking so
/// the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}\n {}",
            stringify!($left), stringify!($right), l, format!($($fmt)*)
        );
    }};
}

/// Picks one of several strategies, optionally weighted
/// (`weight => strategy`). All arms must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, ::std::boxed::Box::new($strat) as _)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, ::std::boxed::Box::new($strat) as _)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
///
/// The body may use `?` on `Result<_, TestCaseError>` and the
/// `prop_assert*` macros. An optional
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header sets the
/// case count.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_proptest(&config, stringify!($name), |rng_| {
                    let mut inputs_ = ::std::string::String::new();
                    $(
                        let generated_ = $crate::strategy::Strategy::generate(&{ $strat }, rng_);
                        {
                            use ::std::fmt::Write as _;
                            let _ = write!(inputs_, "{} = {:?}, ", stringify!($arg), &generated_);
                        }
                        let $arg = generated_;
                    )+
                    let run_ = move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    };
                    match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run_)) {
                        ::core::result::Result::Ok(verdict_) => (verdict_, inputs_),
                        ::core::result::Result::Err(payload_) => {
                            eprintln!("proptest inputs: {}", inputs_);
                            ::std::panic::resume_unwind(payload_);
                        }
                    }
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Push(u64),
        Pop,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (1u64..100).prop_map(Op::Push),
            1 => Just(Op::Pop),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Doc comments on test fns must parse.
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0u8..4, f in 0.5f64..1.5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((0.5..1.5).contains(&f), "f = {}", f);
        }

        #[test]
        fn vec_lengths_respect_range(ops in crate::collection::vec(op_strategy(), 1..40)) {
            prop_assert!(!ops.is_empty() && ops.len() < 40);
        }

        #[test]
        fn tuples_and_maps_compose(
            (a, b) in (0u64..5, 0u64..5).prop_map(|(a, b)| (a * 2, b)),
            n in any::<usize>(),
        ) {
            prop_assert_eq!(a % 2, 0);
            prop_assert!(b < 5);
            let _ = n; // any::<usize>() may produce anything
        }
    }

    #[test]
    fn determinism_same_seed_same_values() {
        let mut a = TestRng::for_case(42, 7);
        let mut b = TestRng::for_case(42, 7);
        let s = op_strategy();
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn helper_results_propagate() {
        fn helper(ok: bool) -> Result<(), TestCaseError> {
            prop_assert!(ok, "helper failed");
            Ok(())
        }
        assert!(helper(true).is_ok());
        assert!(matches!(helper(false), Err(TestCaseError::Fail(_))));
    }
}
