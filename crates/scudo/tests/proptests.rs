//! Property tests for the Scudo-style substrate.

use proptest::prelude::*;
use std::collections::BTreeMap;

use scudo::Scudo;
use vmem::{Addr, AddrSpace};

#[derive(Clone, Debug)]
enum Op {
    Malloc { size: u64 },
    FreeNth { n: usize },
    Release,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (1u64..200_000).prop_map(|size| Op::Malloc { size }),
        4 => any::<usize>().prop_map(|n| Op::FreeNth { n }),
        1 => Just(Op::Release),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scudo_never_overlaps_live_allocations(
        ops in proptest::collection::vec(op_strategy(), 1..80)
    ) {
        let mut space = AddrSpace::new();
        let mut heap = Scudo::new();
        let mut live: BTreeMap<u64, u64> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Malloc { size } => {
                    let a = heap.allocate(&mut space, size);
                    let usable = heap.usable(a).expect("fresh allocation");
                    prop_assert!(usable > size, "usable covers the +1 end byte");
                    if let Some((&b, &l)) = live.range(..=a.raw()).next_back() {
                        prop_assert!(b + l <= a.raw(), "overlaps predecessor");
                    }
                    if let Some((&b, _)) = live.range(a.raw() + 1..).next() {
                        prop_assert!(a.raw() + usable <= b, "overlaps successor");
                    }
                    // Writable end to end.
                    space.write_word(a, 1).unwrap();
                    space.write_word(a.add_bytes(usable / 8 * 8 - 8), 2).unwrap();
                    live.insert(a.raw(), usable);
                }
                Op::FreeNth { n } => {
                    if live.is_empty() { continue; }
                    let &base = live.keys().nth(n % live.len()).unwrap();
                    heap.deallocate(&mut space, Addr::new(base)).unwrap();
                    live.remove(&base);
                    // Immediate double free must be rejected.
                    prop_assert!(heap.deallocate(&mut space, Addr::new(base)).is_err());
                }
                Op::Release => {
                    heap.release_to_os(&mut space);
                }
            }
            // Every live allocation stays inside a swept range.
            let ranges = heap.ranges();
            for (&b, &l) in &live {
                prop_assert!(
                    ranges.iter().any(|&(rb, rl)| b >= rb.raw()
                        && b + l <= rb.raw() + rl),
                    "live allocation escapes sweep ranges"
                );
            }
            prop_assert_eq!(
                heap.stats().allocated_bytes,
                live.values().sum::<u64>(),
                "allocated-bytes ledger balances"
            );
        }
    }

    #[test]
    fn release_to_os_never_corrupts_live_data(
        sizes in proptest::collection::vec(1u64..4000, 1..40)
    ) {
        let mut space = AddrSpace::new();
        let mut heap = Scudo::new();
        let addrs: Vec<Addr> = sizes.iter().map(|&s| {
            let a = heap.allocate(&mut space, s);
            space.write_word(a, a.raw() ^ 0x77).unwrap();
            a
        }).collect();
        for (i, &a) in addrs.iter().enumerate() {
            if i % 2 == 0 {
                heap.deallocate(&mut space, a).unwrap();
            }
        }
        heap.release_to_os(&mut space);
        for (i, &a) in addrs.iter().enumerate() {
            if i % 2 == 1 {
                prop_assert_eq!(space.read_word(a).unwrap(), a.raw() ^ 0x77);
            }
        }
    }
}
