#![warn(missing_docs)]

//! A Scudo-style hardened allocator over simulated virtual memory.
//!
//! §7 of the MineSweeper paper: "MineSweeper can be easily integrated with
//! any allocator: we have also built a Scudo implementation at 4.4 %
//! overhead." This crate provides that second substrate, implementing
//! [`minesweeper::HeapBackend`] so the same quarantine layer drops in
//! unchanged.
//!
//! The model captures the Scudo properties that matter to the layering:
//!
//! * **Region-per-class isolation** (Scudo's primary allocator): each size
//!   class owns a dedicated virtual region; blocks of different classes
//!   can never alias. Regions grow by committing batches of pages.
//! * **Randomized free lists**: freed blocks re-enter circulation in a
//!   shuffled order, so heap feng-shui is unreliable even *without*
//!   MineSweeper (a probabilistic defence, §6.2 — MineSweeper upgrades it
//!   to a deterministic one).
//! * **Checksummed headers**: Scudo validates a per-chunk header on free;
//!   the model keeps the ledger out of line (this simulation never stores
//!   metadata in-band) and rejects invalid/double frees the same way.
//! * **`releaseToOS`**: fully-free pages of a region are decommitted on
//!   demand — the hook MineSweeper's post-sweep purge drives.
//! * A page-granular **secondary** for large allocations, unmapped-on-free
//!   style.
//!
//! # Example
//!
//! ```
//! use minesweeper::{MineSweeper, MsConfig, FreeOutcome};
//! use scudo::Scudo;
//! use vmem::AddrSpace;
//!
//! let mut space = AddrSpace::new();
//! // The same drop-in layer, over a different allocator (§7).
//! let mut ms = MineSweeper::with_backend(MsConfig::fully_concurrent(), Scudo::new());
//! let p = ms.malloc(&mut space, 64);
//! assert_eq!(ms.free(&mut space, p), FreeOutcome::Quarantined);
//! assert_eq!(ms.sweep_now(&mut space).released, 1);
//! ```

mod primary;
mod secondary;

use std::collections::HashMap;

use jalloc::FreeError;
use minesweeper::HeapBackend;
use vmem::{Addr, AddrSpace};

use primary::Region;
use secondary::Secondary;

/// Scudo-style size classes: 32-byte-spaced up to 256, then powers of two
/// to 64 KiB (the Android config's shape, simplified).
pub const CLASSES: [u64; 16] = [
    32, 64, 96, 128, 160, 192, 224, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
];

/// Statistics for a [`Scudo`] instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ScudoStats {
    /// `malloc` calls.
    pub mallocs: u64,
    /// Successful `free` calls.
    pub frees: u64,
    /// Bytes in live allocations (class-rounded).
    pub allocated_bytes: u64,
    /// Header validations performed (each free).
    pub header_checks: u64,
    /// Pages released back to the OS.
    pub released_pages: u64,
}

/// The hardened allocator.
#[derive(Debug)]
pub struct Scudo {
    regions: Vec<Region>,
    secondary: Secondary,
    /// Out-of-line chunk ledger: base -> class index (u32::MAX = secondary).
    ledger: HashMap<u64, u32>,
    stats: ScudoStats,
    clock: u64,
}

impl Scudo {
    /// Creates an empty allocator (regions are reserved lazily).
    pub fn new() -> Self {
        Scudo {
            regions: CLASSES.iter().map(|&c| Region::new(c)).collect(),
            secondary: Secondary::new(),
            ledger: HashMap::new(),
            stats: ScudoStats::default(),
            clock: 0,
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &ScudoStats {
        &self.stats
    }

    /// The class index serving `size` bytes, or `None` for the secondary.
    pub fn class_for(size: u64) -> Option<usize> {
        CLASSES.iter().position(|&c| c >= size.max(1))
    }

    /// Allocates and returns the base address.
    pub fn allocate(&mut self, space: &mut AddrSpace, size: u64) -> Addr {
        self.stats.mallocs += 1;
        // +1 byte end() padding, as the layer expects of its allocator.
        let req = size.max(1) + 1;
        let (base, class_idx, rounded) = match Self::class_for(req) {
            Some(idx) => {
                let base = self.regions[idx].allocate(space, self.clock);
                (base, idx as u32, CLASSES[idx])
            }
            None => {
                let (base, rounded) = self.secondary.allocate(space, req);
                (base, u32::MAX, rounded)
            }
        };
        self.ledger.insert(base.raw(), class_idx);
        self.stats.allocated_bytes += rounded;
        base
    }

    /// Frees the allocation based at `addr`, validating its (out-of-line)
    /// header like Scudo's checksum does.
    ///
    /// # Errors
    ///
    /// [`FreeError::InvalidPointer`] for addresses that are not live
    /// allocation bases (which includes double frees — the ledger entry is
    /// gone after the first free).
    pub fn deallocate(&mut self, space: &mut AddrSpace, addr: Addr) -> Result<(), FreeError> {
        self.stats.header_checks += 1;
        let Some(class_idx) = self.ledger.remove(&addr.raw()) else {
            return Err(FreeError::InvalidPointer(addr));
        };
        self.stats.frees += 1;
        if class_idx == u32::MAX {
            let (rounded, pages) = self.secondary.deallocate(space, addr);
            self.stats.allocated_bytes -= rounded;
            self.stats.released_pages += pages;
        } else {
            self.regions[class_idx as usize].deallocate(addr, self.clock);
            self.stats.allocated_bytes -= CLASSES[class_idx as usize];
        }
        Ok(())
    }

    /// Usable size of the live allocation based at `addr`.
    pub fn usable(&self, addr: Addr) -> Option<u64> {
        match *self.ledger.get(&addr.raw())? {
            u32::MAX => self.secondary.usable(addr),
            idx => Some(CLASSES[idx as usize]),
        }
    }

    /// Releases fully-free pages of every region (Scudo's `releaseToOS`).
    pub fn release_to_os(&mut self, space: &mut AddrSpace) {
        for region in &mut self.regions {
            self.stats.released_pages += region.release_to_os(space);
        }
    }

    /// Ranges the sweep must examine: the carved prefix of every region
    /// plus live secondary allocations.
    pub fn ranges(&self) -> Vec<(Addr, u64)> {
        let mut out: Vec<(Addr, u64)> = self
            .regions
            .iter()
            .filter_map(Region::carved_range)
            .chain(self.secondary.ranges())
            .collect();
        out.sort_unstable_by_key(|&(base, _)| base);
        out
    }
}

impl Default for Scudo {
    fn default() -> Self {
        Scudo::new()
    }
}

impl HeapBackend for Scudo {
    fn malloc(&mut self, space: &mut AddrSpace, size: u64) -> Addr {
        self.allocate(space, size)
    }

    fn free(&mut self, space: &mut AddrSpace, addr: Addr) -> Result<(), FreeError> {
        self.deallocate(space, addr)
    }

    fn usable_size(&self, addr: Addr) -> Option<u64> {
        self.usable(addr)
    }

    fn active_ranges(&self) -> Vec<(Addr, u64)> {
        self.ranges()
    }

    fn allocated_bytes(&self) -> u64 {
        self.stats.allocated_bytes
    }

    fn purge_all(&mut self, space: &mut AddrSpace) {
        self.release_to_os(space);
    }

    fn purge_aged(&mut self, space: &mut AddrSpace) {
        // Scudo releases on pressure rather than decay; the post-sweep
        // purge covers it, so the background hook is a light release pass.
        self.release_to_os(space);
    }

    fn advance_clock(&mut self, now: u64) {
        self.clock = self.clock.max(now);
    }

    fn purged_pages(&self) -> u64 {
        self.stats.released_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minesweeper::{FreeOutcome, MineSweeper, MsConfig};

    #[test]
    fn class_selection() {
        assert_eq!(Scudo::class_for(1), Some(0));
        assert_eq!(Scudo::class_for(32), Some(0));
        assert_eq!(Scudo::class_for(33), Some(1));
        assert_eq!(Scudo::class_for(65536), Some(15));
        assert_eq!(Scudo::class_for(65537), None, "secondary");
    }

    #[test]
    fn classes_never_alias() {
        // Region isolation: allocations of different classes live in
        // disjoint regions.
        let mut space = AddrSpace::new();
        let mut heap = Scudo::new();
        let small = heap.allocate(&mut space, 32);
        let big = heap.allocate(&mut space, 1024);
        let r = heap.ranges();
        let region_of = |a: Addr| {
            r.iter().position(|&(b, l)| a >= b && a < b.add_bytes(l)).unwrap()
        };
        assert_ne!(region_of(small), region_of(big));
    }

    #[test]
    fn free_list_order_is_randomized() {
        // Freed blocks must not come back strictly LIFO (heap feng-shui
        // hardening). Free 16 blocks, reallocate 16: the sequence should
        // not exactly reverse or repeat the free order.
        let mut space = AddrSpace::new();
        let mut heap = Scudo::new();
        let addrs: Vec<Addr> = (0..16).map(|_| heap.allocate(&mut space, 64)).collect();
        for &a in &addrs {
            heap.deallocate(&mut space, a).unwrap();
        }
        let re: Vec<Addr> = (0..16).map(|_| heap.allocate(&mut space, 64)).collect();
        let mut lifo = addrs.clone();
        lifo.reverse();
        assert_ne!(re, lifo, "must not be LIFO");
        assert_ne!(re, addrs, "must not be FIFO");
        // Same bases, different order.
        let mut a_sorted = addrs.clone();
        let mut r_sorted = re.clone();
        a_sorted.sort_unstable();
        r_sorted.sort_unstable();
        assert_eq!(a_sorted, r_sorted);
    }

    #[test]
    fn double_free_rejected_by_header_check() {
        let mut space = AddrSpace::new();
        let mut heap = Scudo::new();
        let a = heap.allocate(&mut space, 64);
        heap.deallocate(&mut space, a).unwrap();
        assert_eq!(heap.deallocate(&mut space, a), Err(FreeError::InvalidPointer(a)));
        assert_eq!(heap.stats().header_checks, 2);
    }

    #[test]
    fn secondary_unmaps_on_free() {
        let mut space = AddrSpace::new();
        let mut heap = Scudo::new();
        let a = heap.allocate(&mut space, 1 << 20);
        space.write_word(a, 7).unwrap();
        heap.deallocate(&mut space, a).unwrap();
        assert!(space.read_word(a).is_err(), "secondary frees fault afterwards");
    }

    #[test]
    fn release_to_os_reclaims_free_pages() {
        let mut space = AddrSpace::new();
        let mut heap = Scudo::new();
        let addrs: Vec<Addr> = (0..256).map(|_| heap.allocate(&mut space, 64)).collect();
        for &a in &addrs {
            space.write_word(a, 1).unwrap();
        }
        let rss_full = space.rss_bytes();
        for &a in &addrs {
            heap.deallocate(&mut space, a).unwrap();
        }
        heap.release_to_os(&mut space);
        assert!(space.rss_bytes() < rss_full, "free pages must be released");
    }

    #[test]
    fn minesweeper_layers_on_scudo_unchanged() {
        // §7: the same drop-in layer over a different allocator.
        let mut space = AddrSpace::new();
        let mut ms = MineSweeper::with_backend(MsConfig::fully_concurrent(), Scudo::new());
        let victim = ms.malloc(&mut space, 64);
        let holder = ms.malloc(&mut space, 64);
        space.write_word(holder, victim.raw()).unwrap();
        assert_eq!(ms.free(&mut space, victim), FreeOutcome::Quarantined);
        assert_eq!(ms.sweep_now(&mut space).failed, 1, "dangling pointer found");
        for _ in 0..100 {
            assert_ne!(ms.malloc(&mut space, 64), victim);
        }
        space.write_word(holder, 0).unwrap();
        assert_eq!(ms.sweep_now(&mut space).released, 1);
    }

    #[test]
    fn minesweeper_on_scudo_handles_double_free() {
        let mut space = AddrSpace::new();
        let mut ms = MineSweeper::with_backend(MsConfig::fully_concurrent(), Scudo::new());
        let a = ms.malloc(&mut space, 128);
        assert_eq!(ms.free(&mut space, a), FreeOutcome::Quarantined);
        assert_eq!(ms.free(&mut space, a), FreeOutcome::DoubleFree);
        ms.sweep_now(&mut space);
        assert_eq!(ms.heap().stats().frees, 1);
    }

    #[test]
    fn allocated_bytes_balance() {
        let mut space = AddrSpace::new();
        let mut heap = Scudo::new();
        let a = heap.allocate(&mut space, 60); // +1 -> class 64
        assert_eq!(heap.stats().allocated_bytes, 64);
        assert_eq!(heap.usable(a), Some(64));
        heap.deallocate(&mut space, a).unwrap();
        assert_eq!(heap.stats().allocated_bytes, 0);
    }
}
