//! The primary allocator: one isolated region per size class with
//! randomized free-list recycling and `releaseToOS` page reclamation.

use vmem::{Addr, AddrSpace, PageIdx, PageRange, PAGE_SIZE};

/// Pages reserved per region growth step.
const GROW_PAGES: u64 = 64;

/// One size class's region.
#[derive(Debug)]
pub(crate) struct Region {
    block_size: u64,
    /// Base of the reserved region (set on first use).
    base: Option<Addr>,
    /// Bytes carved from the region so far (bump frontier).
    carved: u64,
    /// Bytes mapped so far.
    mapped: u64,
    /// Freed blocks awaiting reuse.
    free_list: Vec<Addr>,
    /// Cheap xorshift state for free-list shuffling (deterministic).
    rng: u64,
    /// Live blocks per region page (for releaseToOS), indexed by page
    /// offset within the region.
    page_live: Vec<u32>,
}

impl Region {
    pub(crate) fn new(block_size: u64) -> Self {
        Region {
            block_size,
            base: None,
            carved: 0,
            mapped: 0,
            free_list: Vec::new(),
            rng: 0x5c0d_0001 ^ block_size,
            page_live: Vec::new(),
        }
    }

    fn next_rand(&mut self, n: u64) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545_f491_4f6c_dd1d)) % n.max(1)
    }

    /// Allocates one block: randomized pick from the free list, else bump.
    pub(crate) fn allocate(&mut self, space: &mut AddrSpace, _now: u64) -> Addr {
        if !self.free_list.is_empty() {
            // Swap-remove a pseudo-random entry: O(1) and order-breaking.
            let idx = self.next_rand(self.free_list.len() as u64) as usize;
            let addr = self.free_list.swap_remove(idx);
            self.pin(space, addr);
            return addr;
        }
        let base = match self.base {
            Some(b) => b,
            None => {
                let b = space.reserve_heap(1 << 14); // 64 MiB region VA
                self.base = Some(b);
                b
            }
        };
        if self.carved + self.block_size > self.mapped {
            space
                .map(base.add_bytes(self.mapped), GROW_PAGES)
                .expect("region VA is exclusively ours");
            self.mapped += GROW_PAGES * PAGE_SIZE as u64;
            self.page_live.resize((self.mapped / PAGE_SIZE as u64) as usize, 0);
        }
        let addr = base.add_bytes(self.carved);
        self.carved += self.block_size;
        self.pin(space, addr);
        addr
    }

    /// Returns a block to the (randomized) free list.
    pub(crate) fn deallocate(&mut self, addr: Addr, _now: u64) {
        self.unpin(addr);
        self.free_list.push(addr);
    }

    fn pin(&mut self, space: &mut AddrSpace, addr: Addr) {
        let base = self.base.expect("allocating region has a base");
        for page in PageRange::spanning(addr, self.block_size).iter() {
            let idx = (page.base().offset_from(base) / PAGE_SIZE as u64) as usize;
            if self.page_live[idx] == 0 {
                // Page may have been released; make sure it is usable.
                space.commit(PageRange::new(page, 1)).expect("region page is mapped");
            }
            self.page_live[idx] += 1;
        }
    }

    fn unpin(&mut self, addr: Addr) {
        let base = self.base.expect("deallocating region has a base");
        for page in PageRange::spanning(addr, self.block_size).iter() {
            let idx = (page.base().offset_from(base) / PAGE_SIZE as u64) as usize;
            self.page_live[idx] -= 1;
        }
    }

    /// Decommits pages with no live blocks. Returns pages released.
    pub(crate) fn release_to_os(&mut self, space: &mut AddrSpace) -> u64 {
        let Some(base) = self.base else { return 0 };
        let mut released = 0;
        for (idx, &live) in self.page_live.iter().enumerate() {
            if live == 0 {
                let page = PageIdx::new(base.page().raw() + idx as u64);
                if space.is_committed(page.base()) {
                    space.decommit(PageRange::new(page, 1)).expect("mapped");
                    released += 1;
                }
            }
        }
        released
    }

    /// The carved (potentially live) prefix of the region, for sweeps.
    pub(crate) fn carved_range(&self) -> Option<(Addr, u64)> {
        let base = self.base?;
        (self.carved > 0).then_some((base, self.carved))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_then_randomized_reuse() {
        let mut space = AddrSpace::new();
        let mut r = Region::new(64);
        let a = r.allocate(&mut space, 0);
        let b = r.allocate(&mut space, 0);
        assert_eq!(b.offset_from(a), 64, "bump carve is contiguous");
        r.deallocate(a, 0);
        r.deallocate(b, 0);
        let c = r.allocate(&mut space, 0);
        assert!(c == a || c == b, "reuse comes from the free list");
    }

    #[test]
    fn release_and_recommit_cycle() {
        let mut space = AddrSpace::new();
        let mut r = Region::new(4096);
        let a = r.allocate(&mut space, 0);
        space.write_word(a, 9).unwrap();
        r.deallocate(a, 0);
        assert_eq!(r.release_to_os(&mut space), 1);
        let b = r.allocate(&mut space, 0);
        assert_eq!(b, a, "single free block comes back");
        assert_eq!(space.read_word(b).unwrap(), 0, "released page is demand-zero");
    }

    #[test]
    fn carved_range_tracks_frontier() {
        let mut space = AddrSpace::new();
        let mut r = Region::new(32);
        assert!(r.carved_range().is_none());
        let a = r.allocate(&mut space, 0);
        let (base, len) = r.carved_range().unwrap();
        assert_eq!(base, a);
        assert_eq!(len, 32);
    }
}
