//! The secondary allocator: page-granular mappings for large requests,
//! unmapped (decommitted + protected) on free.

use std::collections::HashMap;

use vmem::{Addr, AddrSpace, PageRange, Protection, PAGE_SIZE};

#[derive(Debug, Default)]
pub(crate) struct Secondary {
    /// Live large allocations: base -> rounded size.
    live: HashMap<u64, u64>,
}

impl Secondary {
    pub(crate) fn new() -> Self {
        Secondary::default()
    }

    /// Maps a fresh page-granular allocation. Returns `(base, rounded)`.
    pub(crate) fn allocate(&mut self, space: &mut AddrSpace, req: u64) -> (Addr, u64) {
        let pages = req.div_ceil(PAGE_SIZE as u64);
        let base = space.reserve_heap(pages);
        space.map(base, pages).expect("fresh VA");
        let rounded = pages * PAGE_SIZE as u64;
        self.live.insert(base.raw(), rounded);
        (base, rounded)
    }

    /// Releases an allocation: backing discarded, range protected (Scudo
    /// unmaps; dangling access faults). Returns `(rounded, pages)`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a live secondary base (the ledger validated
    /// it).
    pub(crate) fn deallocate(&mut self, space: &mut AddrSpace, addr: Addr) -> (u64, u64) {
        let rounded = self.live.remove(&addr.raw()).expect("ledger-validated base");
        let range = PageRange::spanning(addr, rounded);
        space.decommit(range).expect("mapped");
        space.protect(range, Protection::None).expect("mapped");
        (rounded, range.page_count())
    }

    pub(crate) fn usable(&self, addr: Addr) -> Option<u64> {
        self.live.get(&addr.raw()).copied()
    }

    /// Live allocations as sweep ranges.
    pub(crate) fn ranges(&self) -> impl Iterator<Item = (Addr, u64)> + '_ {
        self.live.iter().map(|(&b, &l)| (Addr::new(b), l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_fault_after_free() {
        let mut space = AddrSpace::new();
        let mut s = Secondary::new();
        let (a, rounded) = s.allocate(&mut space, 100_000);
        assert_eq!(rounded, 25 * PAGE_SIZE as u64);
        assert_eq!(s.usable(a), Some(rounded));
        space.write_word(a, 1).unwrap();
        let (r2, pages) = s.deallocate(&mut space, a);
        assert_eq!((r2, pages), (rounded, 25));
        assert!(space.write_word(a, 2).is_err(), "freed secondary faults");
        assert_eq!(s.usable(a), None);
    }
}
