//! Property tests for trace generation and the recorded-trace format.

use proptest::prelude::*;
use std::collections::HashSet;

use workloads::{recorded, LifetimeDist, Op, Profile, SizeDist, TraceGen};

fn arb_profile() -> impl Strategy<Value = Profile> {
    (
        50u64..2_000,          // total_allocs
        1u64..5_000,           // cycles_per_alloc
        0u32..6,               // phases selector
        0.0f64..0.6,           // phase_frac
        0.0f64..0.2,           // straggler_rate
        prop_oneof![
            (8u64..512, 1u64..65_536).prop_map(|(lo, hi)| SizeDist::Uniform(lo, lo + hi)),
            (8u64..4_096).prop_map(|m| SizeDist::LogNormal { median: m, sigma: 3.0, cap: 1 << 20 }),
        ],
        prop_oneof![
            (1.0f64..5_000.0).prop_map(LifetimeDist::Exp),
            (1u64..2_000).prop_map(LifetimeDist::Fixed),
            Just(LifetimeDist::Mixture(vec![
                (0.7, LifetimeDist::Exp(50.0)),
                (0.2, LifetimeDist::Exp(2_000.0)),
                (0.1, LifetimeDist::Permanent),
            ])),
        ],
    )
        .prop_map(|(total_allocs, cycles_per_alloc, phases, phase_frac, straggler_rate, size_dist, lifetime)| {
            Profile {
                total_allocs,
                cycles_per_alloc,
                phases: if phases < 2 { 1 } else { phases },
                phase_frac,
                straggler_rate,
                size_dist,
                lifetime,
                ..Profile::demo()
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For ANY profile shape: every allocation appears once, is freed
    /// exactly once, never freed before allocation, and the stream is a
    /// pure function of the seed.
    #[test]
    fn trace_invariants_hold_for_arbitrary_profiles(
        profile in arb_profile(),
        seed in any::<u64>(),
    ) {
        let ops: Vec<Op> = TraceGen::new(&profile, seed).collect();
        let mut live = HashSet::new();
        let mut allocated = HashSet::new();
        let mut freed = 0u64;
        for op in &ops {
            match op {
                Op::Alloc { id, size, .. } => {
                    prop_assert!(*size > 0);
                    prop_assert!(allocated.insert(*id), "duplicate id");
                    prop_assert!(live.insert(*id));
                }
                Op::Free { id } => {
                    prop_assert!(live.remove(id), "free of non-live id");
                    freed += 1;
                }
                Op::Work(_) | Op::Teardown => {}
            }
        }
        prop_assert_eq!(allocated.len() as u64, profile.total_allocs);
        prop_assert_eq!(freed, profile.total_allocs, "teardown drains all");
        prop_assert!(live.is_empty());

        let again: Vec<Op> = TraceGen::new(&profile, seed).collect();
        prop_assert_eq!(ops, again, "stream must be deterministic");
    }

    /// write_trace / read_trace is an exact round trip for any generated
    /// trace, and close_trace is the identity on balanced traces.
    #[test]
    fn recorded_format_roundtrips(
        profile in arb_profile(),
        seed in any::<u64>(),
    ) {
        let ops: Vec<Op> = TraceGen::new(&profile, seed).collect();
        let text = recorded::write_trace(ops.clone());
        let parsed = recorded::read_trace(&text).unwrap();
        prop_assert_eq!(&parsed, &ops);
        prop_assert_eq!(recorded::close_trace(parsed), ops, "balanced => identity");
    }

    /// Truncated traces (as a crashed recorder would leave them) still
    /// parse and are healed by close_trace into balanced streams.
    #[test]
    fn truncated_traces_heal(
        profile in arb_profile(),
        seed in any::<u64>(),
        cut in 0.1f64..0.9,
    ) {
        let ops: Vec<Op> = TraceGen::new(&profile, seed).collect();
        let cut_at = ((ops.len() as f64) * cut) as usize;
        let text = recorded::write_trace(ops[..cut_at].to_vec());
        let healed = recorded::close_trace(recorded::read_trace(&text).unwrap());
        let mut live = HashSet::new();
        for op in &healed {
            match op {
                Op::Alloc { id, .. } => {
                    live.insert(*id);
                }
                Op::Free { id } => {
                    prop_assert!(live.remove(id));
                }
                _ => {}
            }
        }
        prop_assert!(live.is_empty(), "healed trace must balance");
    }
}
