//! Size and lifetime distributions for allocation traces.

use crate::rng::Rng;

/// Allocation-size distribution.
#[derive(Clone, Debug)]
pub enum SizeDist {
    /// Every allocation is exactly this many bytes.
    Fixed(u64),
    /// Uniform in `[lo, hi)`.
    Uniform(u64, u64),
    /// Log-normal-ish around a median with multiplicative spread
    /// (`sigma ≥ 1`), clamped to `[8, cap]`. Matches the heavy right tail
    /// of real malloc size histograms.
    LogNormal {
        /// Median size in bytes.
        median: u64,
        /// Multiplicative spread (≥ 1).
        sigma: f64,
        /// Upper clamp in bytes.
        cap: u64,
    },
    /// Weighted mixture of sub-distributions.
    Mixture(Vec<(f64, SizeDist)>),
}

impl SizeDist {
    /// Draws a size in bytes.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        match self {
            SizeDist::Fixed(n) => *n,
            SizeDist::Uniform(lo, hi) => rng.range(*lo, *hi),
            SizeDist::LogNormal { median, sigma, cap } => {
                (rng.lognormal(*median as f64, *sigma) as u64).clamp(8, *cap)
            }
            SizeDist::Mixture(parts) => {
                let total: f64 = parts.iter().map(|(w, _)| w).sum();
                let mut x = rng.f64() * total;
                for (w, d) in parts {
                    if x < *w {
                        return d.sample(rng);
                    }
                    x -= w;
                }
                parts.last().expect("non-empty mixture").1.sample(rng)
            }
        }
    }

    /// Approximate mean of the distribution (Monte-Carlo with a fixed
    /// seed; used for Little's-law live-set calibration in tests).
    pub fn approx_mean(&self) -> f64 {
        let mut rng = Rng::new(0xd157);
        let n = 4096;
        (0..n).map(|_| self.sample(&mut rng) as f64).sum::<f64>() / n as f64
    }
}

/// Allocation-lifetime distribution, in units of *allocation events* (an
/// object with lifetime `k` is freed after `k` further allocations — the
/// natural clock for heap churn).
#[derive(Clone, Debug)]
pub enum LifetimeDist {
    /// Exponential with the given mean.
    Exp(f64),
    /// Exactly this many events.
    Fixed(u64),
    /// Never freed during the run (freed in the teardown phase).
    Permanent,
    /// Weighted mixture (e.g. mostly short-lived + a long-lived minority —
    /// the blend that defeats one-time allocators).
    Mixture(Vec<(f64, LifetimeDist)>),
}

impl LifetimeDist {
    /// Draws a lifetime; `None` means permanent.
    pub fn sample(&self, rng: &mut Rng) -> Option<u64> {
        match self {
            LifetimeDist::Exp(mean) => Some(rng.exp(*mean) as u64),
            LifetimeDist::Fixed(n) => Some(*n),
            LifetimeDist::Permanent => None,
            LifetimeDist::Mixture(parts) => {
                let total: f64 = parts.iter().map(|(w, _)| w).sum();
                let mut x = rng.f64() * total;
                for (w, d) in parts {
                    if x < *w {
                        return d.sample(rng);
                    }
                    x -= w;
                }
                parts.last().expect("non-empty mixture").1.sample(rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_uniform() {
        let mut rng = Rng::new(1);
        assert_eq!(SizeDist::Fixed(64).sample(&mut rng), 64);
        for _ in 0..100 {
            let v = SizeDist::Uniform(10, 20).sample(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn lognormal_respects_clamps() {
        let mut rng = Rng::new(2);
        let d = SizeDist::LogNormal { median: 64, sigma: 4.0, cap: 1000 };
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((8..=1000).contains(&v));
        }
    }

    #[test]
    fn mixture_hits_all_branches() {
        let mut rng = Rng::new(3);
        let d = SizeDist::Mixture(vec![
            (0.5, SizeDist::Fixed(16)),
            (0.5, SizeDist::Fixed(1024)),
        ]);
        let (mut small, mut big) = (0, 0);
        for _ in 0..1000 {
            match d.sample(&mut rng) {
                16 => small += 1,
                1024 => big += 1,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(small > 300 && big > 300, "small={small} big={big}");
    }

    #[test]
    fn permanent_lifetimes_are_none() {
        let mut rng = Rng::new(4);
        assert_eq!(LifetimeDist::Permanent.sample(&mut rng), None);
        assert_eq!(LifetimeDist::Fixed(7).sample(&mut rng), Some(7));
    }

    #[test]
    fn lifetime_mixture_produces_both_kinds() {
        let mut rng = Rng::new(5);
        let d = LifetimeDist::Mixture(vec![
            (0.9, LifetimeDist::Exp(10.0)),
            (0.1, LifetimeDist::Permanent),
        ]);
        let (mut finite, mut permanent) = (0, 0);
        for _ in 0..1000 {
            match d.sample(&mut rng) {
                Some(_) => finite += 1,
                None => permanent += 1,
            }
        }
        assert!(finite > 800 && permanent > 30, "finite={finite} perm={permanent}");
    }

    #[test]
    fn approx_mean_tracks_fixed() {
        let m = SizeDist::Fixed(100).approx_mean();
        assert!((99.0..101.0).contains(&m));
    }
}
