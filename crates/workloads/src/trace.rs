//! Expansion of a [`Profile`] into a deterministic event stream.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::profile::Profile;
use crate::rng::Rng;

/// One allocator-relevant event of a workload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Pure mutator compute for this many cycles.
    Work(u64),
    /// Allocate object `id` (ids are dense, starting at 0) of `size` bytes.
    Alloc {
        /// Dense object identifier.
        id: u64,
        /// Requested size in bytes.
        size: u64,
        /// Synthetic allocation-site id: lifetime class (0 short-lived,
        /// 1 phase-bound, 2 permanent, 3 straggler) × 16 + log₂ size
        /// bucket. Forensics attributes failed frees back to these.
        site: u32,
    },
    /// Free object `id`.
    Free {
        /// Identifier from the corresponding [`Op::Alloc`].
        id: u64,
    },
    /// The program is exiting: everything after this is teardown (bulk
    /// frees on the way out of `main`). Mitigations stop triggering
    /// sweeps/collections — a real process would simply exit.
    Teardown,
}

/// Streaming trace generator: expands a [`Profile`] into `Work`/`Alloc`/
/// `Free` events, freeing objects per the lifetime distribution (measured
/// in allocation events) and draining everything at teardown — like a
/// process exiting cleanly.
///
/// The stream is a pure function of `(profile, seed)`.
#[derive(Clone, Debug)]
pub struct TraceGen {
    rng: Rng,
    total_allocs: u64,
    cycles_per_alloc: u64,
    size_dist: crate::dist::SizeDist,
    lifetime: crate::dist::LifetimeDist,
    straggler_rate: f64,
    /// Allocation events per phase (`u64::MAX` when phases are disabled).
    phase_len: u64,
    phase_frac: f64,
    /// Objects that die at the current phase boundary.
    phase_objects: Vec<u64>,
    next_id: u64,
    /// Min-heap of (due allocation-event index, id).
    due: BinaryHeap<Reverse<(u64, u64)>>,
    /// Ids that never got a finite lifetime (freed at teardown).
    permanents: Vec<u64>,
    /// Queued ops not yet yielded.
    pending: std::collections::VecDeque<Op>,
    teardown: bool,
}

impl TraceGen {
    /// Creates a generator for `profile` with the given seed.
    pub fn new(profile: &Profile, seed: u64) -> Self {
        TraceGen {
            rng: Rng::new(seed ^ 0x5eed_0000),
            total_allocs: profile.total_allocs,
            cycles_per_alloc: profile.cycles_per_alloc,
            size_dist: profile.size_dist.clone(),
            lifetime: profile.lifetime.clone(),
            straggler_rate: profile.straggler_rate,
            phase_len: if profile.phases > 1 {
                (profile.total_allocs / profile.phases as u64).max(1)
            } else {
                u64::MAX
            },
            phase_frac: profile.phase_frac,
            phase_objects: Vec::new(),
            next_id: 0,
            due: BinaryHeap::new(),
            permanents: Vec::new(),
            pending: std::collections::VecDeque::new(),
            teardown: false,
        }
    }

    fn schedule_step(&mut self) {
        // Phase boundary: the phase's working set collapses in bulk
        // (gcc-style), before anything else happens at this event index.
        if self.phase_len != u64::MAX
            && self.next_id > 0
            && self.next_id.is_multiple_of(self.phase_len)
            && !self.phase_objects.is_empty()
        {
            // Teardown is fast but not instantaneous: destructor work
            // interleaves with the frees, so the quarantine build-up is
            // visible to RSS sampling and overlaps real sweep time.
            for (i, id) in std::mem::take(&mut self.phase_objects).into_iter().enumerate()
            {
                if i % 8 == 0 {
                    self.pending.push_back(Op::Work(self.cycles_per_alloc / 4 + 1));
                }
                self.pending.push_back(Op::Free { id });
            }
        }
        // Frees that are due strictly before the next allocation event.
        while let Some(&Reverse((when, id))) = self.due.peek() {
            if when <= self.next_id {
                self.due.pop();
                self.pending.push_back(Op::Free { id });
            } else {
                break;
            }
        }
        if self.next_id >= self.total_allocs {
            if !self.teardown {
                self.teardown = true;
                self.pending.push_back(Op::Teardown);
                // Drain scheduled frees in due order, then permanents.
                let mut rest: Vec<(u64, u64)> =
                    self.due.drain().map(|Reverse(x)| x).collect();
                rest.sort_unstable();
                for (_, id) in rest {
                    self.pending.push_back(Op::Free { id });
                }
                for id in std::mem::take(&mut self.phase_objects) {
                    self.pending.push_back(Op::Free { id });
                }
                for id in std::mem::take(&mut self.permanents) {
                    self.pending.push_back(Op::Free { id });
                }
            }
            return;
        }
        // Mutator work, then the allocation itself.
        let mean = self.cycles_per_alloc.max(1);
        let work = self.rng.range(mean / 2 + 1, mean * 3 / 2 + 2);
        self.pending.push_back(Op::Work(work));
        let id = self.next_id;
        let size = self.size_dist.sample(&mut self.rng);
        // Classify before queueing the alloc so its site id can carry the
        // lifetime class (rng call order is unchanged: size → straggler
        // chance → phase chance → lifetime sample, with the same
        // short-circuits — streams stay identical to pre-site traces).
        // Small stragglers become permanent regardless of the lifetime
        // distribution (see Profile::straggler_rate).
        let straggler = size <= 512 && self.rng.chance(self.straggler_rate);
        let class = if !straggler && self.rng.chance(self.phase_frac) {
            self.phase_objects.push(id);
            1 // phase-bound
        } else {
            match if straggler { None } else { self.lifetime.sample(&mut self.rng) } {
                Some(life) => {
                    self.due.push(Reverse((self.next_id + 1 + life, id)));
                    0 // short-lived
                }
                None => {
                    self.permanents.push(id);
                    if straggler {
                        3
                    } else {
                        2 // permanent
                    }
                }
            }
        };
        self.pending.push_back(Op::Alloc { id, size, site: site_id(class, size) });
        self.next_id += 1;
    }
}

/// Derives a synthetic allocation-site id from a lifetime class and a
/// size: `class * 16 + log2-size-bucket` (bucket capped at 15). Distinct
/// enough that forensics attribution is meaningful, small enough that
/// per-site tables stay readable.
fn site_id(class: u32, size: u64) -> u32 {
    let bucket = (64 - size.max(1).leading_zeros()).min(15);
    class * 16 + bucket
}

impl Iterator for TraceGen {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if self.pending.is_empty() {
            self.schedule_step();
        }
        self.pending.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{LifetimeDist, SizeDist};
    use std::collections::HashSet;

    fn tiny_profile() -> Profile {
        Profile {
            total_allocs: 500,
            size_dist: SizeDist::Uniform(16, 256),
            lifetime: LifetimeDist::Mixture(vec![
                (0.8, LifetimeDist::Exp(20.0)),
                (0.2, LifetimeDist::Permanent),
            ]),
            ..Profile::demo()
        }
    }

    #[test]
    fn every_alloc_is_freed_exactly_once() {
        let mut allocated = HashSet::new();
        let mut freed = HashSet::new();
        for op in TraceGen::new(&tiny_profile(), 9) {
            match op {
                Op::Alloc { id, .. } => assert!(allocated.insert(id), "dup alloc {id}"),
                Op::Free { id } => {
                    assert!(allocated.contains(&id), "free before alloc");
                    assert!(freed.insert(id), "double free in trace");
                }
                Op::Work(_) | Op::Teardown => {}
            }
        }
        assert_eq!(allocated.len(), 500);
        assert_eq!(freed, allocated, "teardown drains everything");
    }

    #[test]
    fn frees_never_precede_allocations() {
        let mut live = HashSet::new();
        for op in TraceGen::new(&tiny_profile(), 10) {
            match op {
                Op::Alloc { id, .. } => {
                    live.insert(id);
                }
                Op::Free { id } => {
                    assert!(live.remove(&id));
                }
                Op::Work(_) | Op::Teardown => {}
            }
        }
        assert!(live.is_empty());
    }

    #[test]
    fn stream_is_deterministic() {
        let a: Vec<Op> = TraceGen::new(&tiny_profile(), 7).collect();
        let b: Vec<Op> = TraceGen::new(&tiny_profile(), 7).collect();
        assert_eq!(a, b);
        let c: Vec<Op> = TraceGen::new(&tiny_profile(), 8).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn work_precedes_each_alloc() {
        let ops: Vec<Op> = TraceGen::new(&tiny_profile(), 11).collect();
        for w in ops.windows(2) {
            if let Op::Alloc { .. } = w[1] {
                assert!(matches!(w[0], Op::Work(_)), "alloc without preceding work");
            }
        }
    }

    #[test]
    fn site_ids_encode_lifetime_class_and_size_bucket() {
        // tiny_profile has no phases or stragglers: every site is class 0
        // (short-lived) or class 2 (permanent), with a log2 size bucket
        // consistent with the op's own size.
        let mut classes = HashSet::new();
        for op in TraceGen::new(&tiny_profile(), 13) {
            if let Op::Alloc { size, site, .. } = op {
                let class = site / 16;
                let bucket = site % 16;
                assert!(class == 0 || class == 2, "unexpected class {class}");
                assert_eq!(bucket, (64 - size.max(1).leading_zeros()).min(15));
                classes.insert(class);
            }
        }
        assert_eq!(classes.len(), 2, "both lifetime classes appear");
    }

    #[test]
    fn phase_boundaries_free_in_bulk() {
        let p = Profile {
            total_allocs: 1_000,
            phases: 4,
            phase_frac: 0.5,
            lifetime: LifetimeDist::Exp(10.0),
            ..Profile::demo()
        };
        // Count the largest burst of consecutive frees (no intervening
        // alloc): phase collapses must dwarf ordinary churn.
        let mut burst = 0u32;
        let mut max_burst = 0u32;
        let mut frees = 0u32;
        for op in TraceGen::new(&p, 3) {
            match op {
                Op::Free { .. } => {
                    burst += 1;
                    frees += 1;
                    max_burst = max_burst.max(burst);
                }
                Op::Alloc { .. } => burst = 0,
                _ => {}
            }
        }
        assert_eq!(frees, 1_000, "everything still freed exactly once");
        assert!(max_burst >= 80, "phase collapse burst was only {max_burst}");
    }

    #[test]
    fn live_set_tracks_littles_law_roughly() {
        // 500 allocs, mean life 20 events, ~80% short-lived: mid-run live
        // count should hover near 0.8*20 + permanents-so-far.
        let mut live: i64 = 0;
        let mut max_live: i64 = 0;
        let mut allocs = 0;
        for op in TraceGen::new(&tiny_profile(), 12) {
            match op {
                Op::Alloc { .. } => {
                    live += 1;
                    allocs += 1;
                    max_live = max_live.max(live);
                }
                Op::Free { .. } => live -= 1,
                Op::Work(_) | Op::Teardown => {}
            }
            if allocs == 250 {
                // ~20% of 250 permanents + ~16 short-lived in flight.
                assert!((30..150).contains(&live), "mid-run live {live}");
            }
        }
        assert!(max_live >= 50);
    }
}
