//! SPEC CPU2006 (C/C++) benchmark profiles, §5.2.
//!
//! Parameters are calibrated per benchmark archetype from the paper's
//! observations and the literature on SPEC malloc behaviour:
//!
//! * **Allocation-intensive** — xalancbmk, omnetpp, perlbench, gcc (and to
//!   a lesser degree dealII, sphinx3): many small objects, short lifetimes;
//!   these are where every mitigation shows overheads (Figure 9).
//! * **Mixed-lifetime churn** — sphinx3, perlbench, omnetpp, xalancbmk mix
//!   a long-lived minority into the churn, the pattern that makes
//!   FFmalloc's one-time allocation fragment without bound (Figure 8).
//! * **Allocation-light** — bzip2, gobmk, h264ref, hmmer, lbm, libquantum,
//!   mcf, milc, namd, sjeng: a handful of large, long-lived buffers; all
//!   schemes are near-free here.
//!
//! Paper numbers in [`PaperNumbers`] are read off Figures 9–14 (±0.01–0.05
//! figure-reading precision); `EXPERIMENTS.md` compares them against the
//! simulation.

use crate::dist::{LifetimeDist, SizeDist};
use crate::profile::{PaperNumbers, Profile};

fn base(name: &'static str) -> Profile {
    Profile { name, suite: "spec2006", ..Profile::demo() }
}

/// Short-lived bulk + long-lived minority + permanent core.
fn churn_lifetimes(short: f64, long: f64, perm_frac: f64) -> LifetimeDist {
    LifetimeDist::Mixture(vec![
        (0.92 - perm_frac, LifetimeDist::Exp(short)),
        (0.08, LifetimeDist::Exp(long)),
        (perm_frac, LifetimeDist::Permanent),
    ])
}

/// All 19 C/C++ benchmarks, figure order.
pub fn all() -> Vec<Profile> {
    vec![
        Profile {
            total_allocs: 24_000,
            cycles_per_alloc: 9_000,
            size_dist: SizeDist::LogNormal { median: 96, sigma: 4.0, cap: 64 * 1024 },
            lifetime: churn_lifetimes(1_500.0, 9_000.0, 0.002),
            ptr_density: 0.35,
            straggler_rate: 0.003,
            cache_sensitivity: 0.3,
            paper: PaperNumbers {
                ms_slowdown: Some(1.02),
                ms_memory: Some(1.08),
                markus_slowdown: Some(1.07),
                markus_memory: Some(1.10),
                ff_slowdown: Some(1.02),
                ff_memory: Some(1.45),
                sweeps: Some(50),
            },
            ..base("astar")
        },
        Profile {
            total_allocs: 600,
            cycles_per_alloc: 300_000,
            size_dist: SizeDist::Mixture(vec![
                (0.7, SizeDist::LogNormal { median: 2048, sigma: 3.0, cap: 128 * 1024 }),
                (0.3, SizeDist::Uniform(128 * 1024, 384 * 1024)),
            ]),
            lifetime: LifetimeDist::Mixture(vec![
                (0.5, LifetimeDist::Exp(100.0)),
                (0.5, LifetimeDist::Permanent),
            ]),
            ptr_density: 0.02,
            paper: PaperNumbers {
                ms_slowdown: Some(1.00),
                ms_memory: Some(1.01),
                markus_slowdown: Some(1.01),
                markus_memory: Some(1.02),
                ff_slowdown: Some(1.00),
                ff_memory: Some(1.03),
                sweeps: Some(1),
            },
            ..base("bzip2")
        },
        Profile {
            total_allocs: 60_000,
            cycles_per_alloc: 4_500,
            size_dist: SizeDist::LogNormal { median: 120, sigma: 3.5, cap: 256 * 1024 },
            lifetime: churn_lifetimes(1_500.0, 12_000.0, 0.002),
            ptr_density: 0.4,
            straggler_rate: 0.0005,
            cache_sensitivity: 0.25,
            paper: PaperNumbers {
                ms_slowdown: Some(1.03),
                ms_memory: Some(1.10),
                markus_slowdown: Some(1.12),
                markus_memory: Some(1.12),
                ff_slowdown: Some(1.02),
                ff_memory: Some(1.60),
                sweeps: Some(120),
            },
            ..base("dealII")
        },
        Profile {
            total_allocs: 45_000,
            cycles_per_alloc: 5_000,
            // gcc: object churn plus sizeable IR arrays; phases that grow
            // and collapse, giving MineSweeper its worst memory overhead.
            size_dist: SizeDist::Mixture(vec![
                (0.98, SizeDist::LogNormal { median: 160, sigma: 4.0, cap: 64 * 1024 }),
                (0.02, SizeDist::Uniform(16 * 1024, 128 * 1024)),
            ]),
            lifetime: churn_lifetimes(600.0, 8_000.0, 0.002),
            ptr_density: 0.45,
            dangling_rate: 0.02,
            phases: 10,
            phase_frac: 0.12,
            straggler_rate: 0.025,
            cache_sensitivity: 0.5,
            paper: PaperNumbers {
                ms_slowdown: Some(1.17),
                ms_memory: Some(1.627),
                markus_slowdown: Some(1.30),
                markus_memory: Some(1.35),
                ff_slowdown: Some(1.05),
                ff_memory: Some(2.20),
                sweeps: Some(240),
            },
            ..base("gcc")
        },
        Profile {
            total_allocs: 1_500,
            cycles_per_alloc: 150_000,
            size_dist: SizeDist::LogNormal { median: 1024, sigma: 3.0, cap: 128 * 1024 },
            lifetime: churn_lifetimes(300.0, 1_000.0, 0.3),
            ptr_density: 0.1,
            paper: PaperNumbers {
                ms_slowdown: Some(1.00),
                ms_memory: Some(1.02),
                markus_slowdown: Some(1.02),
                markus_memory: Some(1.03),
                ff_slowdown: Some(1.00),
                ff_memory: Some(1.05),
                sweeps: Some(2),
            },
            ..base("gobmk")
        },
        Profile {
            total_allocs: 2_000,
            cycles_per_alloc: 140_000,
            size_dist: SizeDist::Mixture(vec![
                (0.6, SizeDist::LogNormal { median: 4096, sigma: 2.0, cap: 64 * 1024 }),
                (0.4, SizeDist::Uniform(32 * 1024, 192 * 1024)),
            ]),
            lifetime: LifetimeDist::Mixture(vec![
                (0.6, LifetimeDist::Exp(150.0)),
                (0.4, LifetimeDist::Permanent),
            ]),
            ptr_density: 0.05,
            paper: PaperNumbers {
                ms_slowdown: Some(1.01),
                ms_memory: Some(1.02),
                markus_slowdown: Some(1.03),
                markus_memory: Some(1.04),
                ff_slowdown: Some(1.01),
                ff_memory: Some(1.08),
                sweeps: Some(3),
            },
            ..base("h264ref")
        },
        Profile {
            total_allocs: 1_200,
            cycles_per_alloc: 200_000,
            size_dist: SizeDist::LogNormal { median: 8192, sigma: 2.0, cap: 256 * 1024 },
            lifetime: LifetimeDist::Mixture(vec![
                (0.7, LifetimeDist::Exp(80.0)),
                (0.3, LifetimeDist::Permanent),
            ]),
            ptr_density: 0.02,
            paper: PaperNumbers {
                ms_slowdown: Some(1.00),
                ms_memory: Some(1.01),
                markus_slowdown: Some(1.01),
                markus_memory: Some(1.02),
                ff_slowdown: Some(1.00),
                ff_memory: Some(1.04),
                sweeps: Some(1),
            },
            ..base("hmmer")
        },
        Profile {
            total_allocs: 24,
            cycles_per_alloc: 4_000_000,
            // lbm: one huge grid, held for the whole run.
            size_dist: SizeDist::Uniform(1024 * 1024, 2 * 1024 * 1024),
            lifetime: LifetimeDist::Permanent,
            ptr_density: 0.0,
            paper: PaperNumbers {
                ms_slowdown: Some(1.00),
                ms_memory: Some(1.00),
                markus_slowdown: Some(1.00),
                markus_memory: Some(1.01),
                ff_slowdown: Some(1.00),
                ff_memory: Some(1.01),
                sweeps: Some(0),
            },
            ..base("lbm")
        },
        Profile {
            total_allocs: 150,
            cycles_per_alloc: 1_500_000,
            size_dist: SizeDist::Uniform(128 * 1024, 384 * 1024),
            lifetime: LifetimeDist::Mixture(vec![
                (0.3, LifetimeDist::Exp(30.0)),
                (0.7, LifetimeDist::Permanent),
            ]),
            ptr_density: 0.0,
            paper: PaperNumbers {
                ms_slowdown: Some(1.00),
                ms_memory: Some(1.01),
                markus_slowdown: Some(1.01),
                markus_memory: Some(1.01),
                ff_slowdown: Some(1.00),
                ff_memory: Some(1.02),
                sweeps: Some(0),
            },
            ..base("libquantum")
        },
        Profile {
            total_allocs: 40,
            cycles_per_alloc: 5_000_000,
            // mcf: a few giant arrays; memory-bound, allocation-free.
            size_dist: SizeDist::Uniform(512 * 1024, 1024 * 1024),
            lifetime: LifetimeDist::Permanent,
            ptr_density: 0.05,
            paper: PaperNumbers {
                ms_slowdown: Some(1.00),
                ms_memory: Some(1.00),
                markus_slowdown: Some(1.02),
                markus_memory: Some(1.01),
                ff_slowdown: Some(1.00),
                ff_memory: Some(1.01),
                sweeps: Some(0),
            },
            ..base("mcf")
        },
        Profile {
            total_allocs: 800,
            cycles_per_alloc: 350_000,
            size_dist: SizeDist::Mixture(vec![
                (0.5, SizeDist::LogNormal { median: 1024, sigma: 2.5, cap: 64 * 1024 }),
                (0.5, SizeDist::Uniform(64 * 1024, 256 * 1024)),
            ]),
            lifetime: LifetimeDist::Mixture(vec![
                (0.6, LifetimeDist::Exp(60.0)),
                (0.4, LifetimeDist::Permanent),
            ]),
            ptr_density: 0.01,
            paper: PaperNumbers {
                ms_slowdown: Some(1.00),
                ms_memory: Some(1.02),
                markus_slowdown: Some(1.02),
                markus_memory: Some(1.03),
                ff_slowdown: Some(1.00),
                ff_memory: Some(1.06),
                sweeps: Some(2),
            },
            ..base("milc")
        },
        Profile {
            total_allocs: 300,
            cycles_per_alloc: 900_000,
            size_dist: SizeDist::LogNormal { median: 16 * 1024, sigma: 2.0, cap: 512 * 1024 },
            lifetime: LifetimeDist::Mixture(vec![
                (0.3, LifetimeDist::Exp(40.0)),
                (0.7, LifetimeDist::Permanent),
            ]),
            ptr_density: 0.01,
            paper: PaperNumbers {
                ms_slowdown: Some(1.00),
                ms_memory: Some(1.01),
                markus_slowdown: Some(1.01),
                markus_memory: Some(1.01),
                ff_slowdown: Some(1.00),
                ff_memory: Some(1.02),
                sweeps: Some(0),
            },
            ..base("namd")
        },
        Profile {
            total_allocs: 320_000,
            cycles_per_alloc: 650,
            // omnetpp: discrete-event simulator, constant small-object
            // churn — the sweep-count champion (1,075 in the paper).
            size_dist: SizeDist::LogNormal { median: 72, sigma: 2.5, cap: 16 * 1024 },
            lifetime: churn_lifetimes(4_000.0, 30_000.0, 0.002),
            ptr_density: 0.5,
            dangling_rate: 0.0005,
            straggler_rate: 0.005,
            cache_sensitivity: 0.15,
            paper: PaperNumbers {
                ms_slowdown: Some(1.056),
                ms_memory: Some(1.14),
                markus_slowdown: Some(1.42),
                markus_memory: Some(1.18),
                ff_slowdown: Some(1.05),
                ff_memory: Some(5.60),
                sweeps: Some(1_075),
            },
            ..base("omnetpp")
        },
        Profile {
            total_allocs: 220_000,
            cycles_per_alloc: 1_000,
            // perlbench: interpreter churn; strings and SVs of mixed size,
            // plus arena-like long-lived structures.
            size_dist: SizeDist::Mixture(vec![
                (0.95, SizeDist::LogNormal { median: 56, sigma: 3.0, cap: 8 * 1024 }),
                (0.05, SizeDist::Uniform(4 * 1024, 32 * 1024)),
            ]),
            lifetime: churn_lifetimes(1_800.0, 20_000.0, 0.002),
            ptr_density: 0.45,
            straggler_rate: 0.04,
            cache_sensitivity: 0.35,
            paper: PaperNumbers {
                ms_slowdown: Some(1.097),
                ms_memory: Some(1.12),
                markus_slowdown: Some(1.35),
                markus_memory: Some(1.20),
                ff_slowdown: Some(1.04),
                ff_memory: Some(10.70),
                sweeps: Some(400),
            },
            ..base("perlbench")
        },
        Profile {
            total_allocs: 14_000,
            cycles_per_alloc: 16_000,
            size_dist: SizeDist::LogNormal { median: 144, sigma: 3.0, cap: 32 * 1024 },
            lifetime: churn_lifetimes(600.0, 6_000.0, 0.002),
            ptr_density: 0.3,
            straggler_rate: 0.002,
            cache_sensitivity: 0.3,
            paper: PaperNumbers {
                ms_slowdown: Some(1.01),
                ms_memory: Some(1.05),
                markus_slowdown: Some(1.06),
                markus_memory: Some(1.07),
                ff_slowdown: Some(1.01),
                ff_memory: Some(1.25),
                sweeps: Some(25),
            },
            ..base("povray")
        },
        Profile {
            total_allocs: 120,
            cycles_per_alloc: 2_000_000,
            size_dist: SizeDist::Uniform(64 * 1024, 512 * 1024),
            lifetime: LifetimeDist::Permanent,
            ptr_density: 0.0,
            paper: PaperNumbers {
                ms_slowdown: Some(1.00),
                ms_memory: Some(1.00),
                markus_slowdown: Some(1.00),
                markus_memory: Some(1.01),
                ff_slowdown: Some(1.00),
                ff_memory: Some(1.01),
                sweeps: Some(0),
            },
            ..base("sjeng")
        },
        Profile {
            total_allocs: 90_000,
            cycles_per_alloc: 2_800,
            // sphinx3: acoustic-model churn with a long-lived dictionary —
            // the Figure 8 trace where FFmalloc's RSS climbs monotonically.
            size_dist: SizeDist::Mixture(vec![
                (0.95, SizeDist::LogNormal { median: 96, sigma: 2.5, cap: 16 * 1024 }),
                (0.05, SizeDist::Uniform(2 * 1024, 32 * 1024)),
            ]),
            lifetime: churn_lifetimes(1_200.0, 30_000.0, 0.002),
            ptr_density: 0.2,
            straggler_rate: 0.04,
            cache_sensitivity: 0.25,
            paper: PaperNumbers {
                ms_slowdown: Some(1.052),
                ms_memory: Some(1.10),
                markus_slowdown: Some(1.15),
                markus_memory: Some(1.15),
                ff_slowdown: Some(1.03),
                ff_memory: Some(5.00),
                sweeps: Some(180),
            },
            ..base("sphinx3")
        },
        Profile {
            total_allocs: 8_000,
            cycles_per_alloc: 26_000,
            size_dist: SizeDist::Mixture(vec![
                (0.75, SizeDist::LogNormal { median: 512, sigma: 3.0, cap: 64 * 1024 }),
                (0.25, SizeDist::Uniform(32 * 1024, 256 * 1024)),
            ]),
            lifetime: churn_lifetimes(400.0, 4_000.0, 0.002),
            ptr_density: 0.1,
            straggler_rate: 0.003,
            cache_sensitivity: 0.3,
            paper: PaperNumbers {
                ms_slowdown: Some(1.02),
                ms_memory: Some(1.06),
                markus_slowdown: Some(1.05),
                markus_memory: Some(1.08),
                ff_slowdown: Some(1.01),
                ff_memory: Some(1.40),
                sweeps: Some(20),
            },
            ..base("soplex")
        },
        Profile {
            total_allocs: 260_000,
            cycles_per_alloc: 500,
            // xalancbmk: XSLT processor; torrents of tiny DOM nodes, the
            // paper's worst case (73% slowdown, mostly delay-of-reuse cache
            // misses; 654 sweeps bunched at the end of the run).
            size_dist: SizeDist::LogNormal { median: 48, sigma: 2.0, cap: 4 * 1024 },
            lifetime: churn_lifetimes(9_000.0, 30_000.0, 0.001),
            ptr_density: 0.55,
            dangling_rate: 0.0005,
            straggler_rate: 0.001,
            cache_sensitivity: 1.5,
            paper: PaperNumbers {
                ms_slowdown: Some(1.727),
                ms_memory: Some(1.25),
                markus_slowdown: Some(2.97),
                markus_memory: Some(1.30),
                ff_slowdown: Some(1.20),
                ff_memory: Some(2.50),
                sweeps: Some(654),
            },
            ..base("xalancbmk")
        },
    ]
}

/// Looks up a profile by name.
pub fn by_name(name: &str) -> Option<Profile> {
    all().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines_order_check::*;

    /// The figure order from `baselines::literature::SPEC2006` must match;
    /// duplicated here to avoid a cyclic dev-dependency.
    mod baselines_order_check {
        pub const FIGURE_ORDER: [&str; 19] = [
            "astar", "bzip2", "dealII", "gcc", "gobmk", "h264ref", "hmmer",
            "lbm", "libquantum", "mcf", "milc", "namd", "omnetpp",
            "perlbench", "povray", "sjeng", "sphinx3", "soplex", "xalancbmk",
        ];
    }

    #[test]
    fn nineteen_benchmarks_in_figure_order() {
        let names: Vec<&str> = all().iter().map(|p| p.name).collect();
        assert_eq!(names, FIGURE_ORDER);
    }

    #[test]
    fn allocation_intensity_ordering_matches_paper() {
        // Figure 14: omnetpp and xalancbmk trigger the most sweeps; their
        // allocation volumes must dominate.
        let count = |name: &str| by_name(name).unwrap().total_allocs;
        for light in ["lbm", "sjeng", "namd", "hmmer"] {
            assert!(
                count("omnetpp") > 50 * count(light),
                "omnetpp must out-churn {light}"
            );
        }
        let rate = |name: &str| 1.0 / by_name(name).unwrap().cycles_per_alloc as f64;
        assert!(rate("xalancbmk") > rate("gcc"));
        assert!(rate("omnetpp") > rate("dealII"));
    }

    #[test]
    fn mixed_lifetime_benchmarks_have_longlived_minority() {
        // The FFmalloc-pathology benchmarks need a long-lived component.
        for name in ["sphinx3", "perlbench", "omnetpp", "xalancbmk"] {
            let p = by_name(name).unwrap();
            assert!(
                matches!(p.lifetime, LifetimeDist::Mixture(_)),
                "{name} must mix lifetimes"
            );
        }
    }

    #[test]
    fn paper_numbers_present_for_headline_benchmarks() {
        for p in all() {
            assert!(p.paper.ms_slowdown.is_some(), "{} missing ms_slowdown", p.name);
            assert!(p.paper.sweeps.is_some(), "{} missing sweeps", p.name);
        }
        assert_eq!(by_name("xalancbmk").unwrap().paper.ms_slowdown, Some(1.727));
        assert_eq!(by_name("omnetpp").unwrap().paper.sweeps, Some(1_075));
    }

    #[test]
    fn live_sets_are_laptop_scale() {
        for p in all() {
            let live = p.expected_live_bytes();
            assert!(
                live < 64.0 * 1024.0 * 1024.0,
                "{}: live set {live} too big for fast simulation",
                p.name
            );
        }
    }
}
