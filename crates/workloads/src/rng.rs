//! Deterministic pseudo-random numbers (xoshiro256** seeded by SplitMix64).
//!
//! The whole evaluation pipeline must be bit-reproducible: the same seed
//! produces the same trace, the same pointer graph, the same sweep
//! decisions, on every machine. We therefore ship a tiny, well-known PRNG
//! instead of depending on an ecosystem RNG whose stream could change
//! between releases.

/// A xoshiro256** generator.
///
/// # Example
///
/// ```
/// use workloads::Rng;
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed (SplitMix64-expanded).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Rng { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Multiply-shift; bias is negligible for our n << 2^64.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean (clamped to
    /// ≥ 1.0 before truncation so it can be used for positive counts).
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.f64(); // (0, 1]
        (-u.ln() * mean).max(1.0)
    }

    /// Log-normal-ish value: `median * sigma^N(0,1)` approximated with a
    /// sum of uniforms (Irwin–Hall, 3 terms), cheap and deterministic.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        let n01 = (self.f64() + self.f64() + self.f64() - 1.5) * 2.0; // ~N(0,1)
        median * sigma.powf(n01)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = Rng::new(2);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn exp_has_roughly_the_right_mean() {
        let mut r = Rng::new(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exp(50.0)).sum();
        let mean = sum / n as f64;
        assert!((40.0..60.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn lognormal_median_is_roughly_right() {
        let mut r = Rng::new(4);
        let mut vals: Vec<f64> = (0..10_001).map(|_| r.lognormal(100.0, 2.0)).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vals[5000];
        assert!((70.0..140.0).contains(&median), "median {median}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(5);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
