//! SPECspeed2017 benchmark profiles, §5.6 (Figure 18).
//!
//! Starred benchmarks in the figure (xz, bwaves, cactuBSSN, lbm, wrf, pop2,
//! imagick, nab, fotonik3d, roms) are OpenMP-parallel; their profiles carry
//! `threads > 1`, which the engine uses for CPU accounting and
//! sweeper-contention modelling. The C/C++ front four (perlbench, gcc, mcf,
//! xalancbmk) are the 2017 editions of the 2006 allocation-heavy set, with
//! larger footprints; the Fortran/OpenMP codes are allocation-light grid
//! solvers.

use crate::dist::{LifetimeDist, SizeDist};
use crate::profile::{PaperNumbers, Profile};

fn base(name: &'static str) -> Profile {
    Profile { name, suite: "spec2017", ..Profile::demo() }
}

fn churn(short: f64, long: f64, perm: f64) -> LifetimeDist {
    LifetimeDist::Mixture(vec![
        (0.92 - perm, LifetimeDist::Exp(short)),
        (0.08, LifetimeDist::Exp(long)),
        (perm, LifetimeDist::Permanent),
    ])
}

/// Allocation-light parallel grid solver.
fn omp_solver(name: &'static str, threads: u32, pages_mb: u64) -> Profile {
    Profile {
        total_allocs: 120,
        cycles_per_alloc: 2_000_000,
        size_dist: SizeDist::Uniform(pages_mb * 24 * 1024, pages_mb * 48 * 1024),
        lifetime: LifetimeDist::Mixture(vec![
            (0.2, LifetimeDist::Exp(30.0)),
            (0.8, LifetimeDist::Permanent),
        ]),
        ptr_density: 0.0,
        threads,
        paper: PaperNumbers {
            ms_slowdown: Some(1.02),
            ms_memory: Some(1.02),
            markus_slowdown: Some(1.04),
            markus_memory: Some(1.03),
            ff_slowdown: Some(1.01),
            ff_memory: Some(1.05),
            sweeps: Some(0),
        },
        ..base(name)
    }
}

/// All 18 benchmarks, figure order.
pub fn all() -> Vec<Profile> {
    let mut v = vec![
        Profile {
            total_allocs: 240_000,
            cycles_per_alloc: 950,
            size_dist: SizeDist::Mixture(vec![
                (0.9, SizeDist::LogNormal { median: 64, sigma: 3.0, cap: 8 * 1024 }),
                (0.1, SizeDist::Uniform(4 * 1024, 64 * 1024)),
            ]),
            lifetime: churn(1_800.0, 25_000.0, 0.002),
            ptr_density: 0.45,
            straggler_rate: 0.03,
            cache_sensitivity: 0.4,
            paper: PaperNumbers {
                ms_slowdown: Some(1.14),
                ms_memory: Some(1.12),
                markus_slowdown: Some(1.40),
                markus_memory: Some(1.22),
                ff_slowdown: Some(1.05),
                ff_memory: Some(2.10),
                sweeps: Some(420),
            },
            ..base("perlbench")
        },
        Profile {
            total_allocs: 100_000,
            cycles_per_alloc: 3_000,
            size_dist: SizeDist::Mixture(vec![
                (0.85, SizeDist::LogNormal { median: 176, sigma: 4.0, cap: 64 * 1024 }),
                (0.15, SizeDist::Uniform(16 * 1024, 512 * 1024)),
            ]),
            lifetime: churn(800.0, 16_000.0, 0.002),
            ptr_density: 0.45,
            straggler_rate: 0.02,
            cache_sensitivity: 0.5,
            paper: PaperNumbers {
                ms_slowdown: Some(1.15),
                ms_memory: Some(1.35),
                markus_slowdown: Some(1.25),
                markus_memory: Some(1.30),
                ff_slowdown: Some(1.05),
                ff_memory: Some(1.80),
                sweeps: Some(260),
            },
            ..base("gcc")
        },
        Profile {
            total_allocs: 80,
            cycles_per_alloc: 4_000_000,
            size_dist: SizeDist::Uniform(512 * 1024, 1024 * 1024),
            lifetime: LifetimeDist::Permanent,
            ptr_density: 0.05,
            paper: PaperNumbers {
                ms_slowdown: Some(1.01),
                ms_memory: Some(1.00),
                markus_slowdown: Some(1.02),
                markus_memory: Some(1.01),
                ff_slowdown: Some(1.00),
                ff_memory: Some(1.01),
                sweeps: Some(0),
            },
            ..base("mcf")
        },
        Profile {
            total_allocs: 280_000,
            cycles_per_alloc: 520,
            size_dist: SizeDist::LogNormal { median: 48, sigma: 2.0, cap: 4 * 1024 },
            lifetime: churn(6_000.0, 70_000.0, 0.001),
            ptr_density: 0.55,
            straggler_rate: 0.0015,
            cache_sensitivity: 1.6,
            paper: PaperNumbers {
                ms_slowdown: Some(2.00),
                ms_memory: Some(1.28),
                markus_slowdown: Some(2.40),
                markus_memory: Some(1.35),
                ff_slowdown: Some(1.25),
                ff_memory: Some(1.90),
                sweeps: Some(700),
            },
            ..base("xalancbmk")
        },
        Profile {
            total_allocs: 6_000,
            cycles_per_alloc: 40_000,
            size_dist: SizeDist::Mixture(vec![
                (0.5, SizeDist::LogNormal { median: 2048, sigma: 2.5, cap: 64 * 1024 }),
                (0.5, SizeDist::Uniform(128 * 1024, 2 * 1024 * 1024)),
            ]),
            lifetime: churn(250.0, 2_500.0, 0.05),
            ptr_density: 0.05,
            paper: PaperNumbers {
                ms_slowdown: Some(1.02),
                ms_memory: Some(1.04),
                markus_slowdown: Some(1.04),
                markus_memory: Some(1.05),
                ff_slowdown: Some(1.01),
                ff_memory: Some(1.15),
                sweeps: Some(12),
            },
            ..base("x264")
        },
        Profile {
            total_allocs: 900,
            cycles_per_alloc: 250_000,
            size_dist: SizeDist::LogNormal { median: 4096, sigma: 2.0, cap: 128 * 1024 },
            lifetime: churn(100.0, 800.0, 0.2),
            ptr_density: 0.1,
            paper: PaperNumbers {
                ms_slowdown: Some(1.00),
                ms_memory: Some(1.01),
                markus_slowdown: Some(1.01),
                markus_memory: Some(1.02),
                ff_slowdown: Some(1.00),
                ff_memory: Some(1.03),
                sweeps: Some(1),
            },
            ..base("deepsjeng")
        },
        Profile {
            total_allocs: 30_000,
            cycles_per_alloc: 7_000,
            size_dist: SizeDist::LogNormal { median: 96, sigma: 2.5, cap: 16 * 1024 },
            lifetime: churn(800.0, 8_000.0, 0.01),
            ptr_density: 0.4,
            paper: PaperNumbers {
                ms_slowdown: Some(1.03),
                ms_memory: Some(1.07),
                markus_slowdown: Some(1.08),
                markus_memory: Some(1.09),
                ff_slowdown: Some(1.02),
                ff_memory: Some(1.30),
                sweeps: Some(60),
            },
            ..base("leela")
        },
        Profile {
            total_allocs: 80,
            cycles_per_alloc: 3_000_000,
            size_dist: SizeDist::Uniform(16 * 1024, 256 * 1024),
            lifetime: LifetimeDist::Permanent,
            ptr_density: 0.0,
            paper: PaperNumbers {
                ms_slowdown: Some(1.00),
                ms_memory: Some(1.00),
                markus_slowdown: Some(1.00),
                markus_memory: Some(1.01),
                ff_slowdown: Some(1.00),
                ff_memory: Some(1.01),
                sweeps: Some(0),
            },
            ..base("exchange2")
        },
    ];

    // Starred OpenMP benchmarks.
    let mut xz = omp_solver("xz", 4, 8);
    xz.total_allocs = 2_000;
    xz.cycles_per_alloc = 120_000;
    xz.size_dist = SizeDist::Mixture(vec![
        (0.7, SizeDist::LogNormal { median: 8192, sigma: 2.0, cap: 256 * 1024 }),
        (0.3, SizeDist::Uniform(512 * 1024, 4 * 1024 * 1024)),
    ]);
    xz.lifetime = churn(150.0, 1_000.0, 0.1);
    xz.paper.sweeps = Some(4);
    v.push(xz);

    v.push(omp_solver("bwaves", 8, 12));
    v.push(omp_solver("cactuBSSN", 8, 10));
    v.push(omp_solver("lbm", 8, 16));

    let mut wrf = omp_solver("wrf", 8, 6);
    // wrf: the slowest parallel benchmark for MineSweeper (66%): frequent
    // mid-size Fortran workspace allocations contended with sweepers.
    wrf.total_allocs = 40_000;
    wrf.cycles_per_alloc = 5_000;
    wrf.size_dist = SizeDist::LogNormal { median: 2048, sigma: 3.0, cap: 512 * 1024 };
    wrf.lifetime = churn(300.0, 5_000.0, 0.02);
    wrf.ptr_density = 0.05;
    wrf.paper = PaperNumbers {
        ms_slowdown: Some(1.66),
        ms_memory: Some(1.08),
        markus_slowdown: Some(1.30),
        markus_memory: Some(1.10),
        ff_slowdown: Some(1.10),
        ff_memory: Some(1.20),
        sweeps: Some(90),
    };
    v.push(wrf);

    let mut pop2 = omp_solver("pop2", 8, 8);
    pop2.total_allocs = 8_000;
    pop2.cycles_per_alloc = 25_000;
    pop2.size_dist = SizeDist::LogNormal { median: 1024, sigma: 2.5, cap: 256 * 1024 };
    pop2.lifetime = churn(200.0, 3_000.0, 0.05);
    pop2.paper.ms_slowdown = Some(1.08);
    pop2.paper.sweeps = Some(15);
    v.push(pop2);

    v.push(omp_solver("imagick", 8, 6));
    v.push(omp_solver("nab", 8, 4));
    v.push(omp_solver("fotonik3d", 8, 14));
    v.push(omp_solver("roms", 8, 12));
    v
}

/// Looks up a profile by name.
pub fn by_name(name: &str) -> Option<Profile> {
    all().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_benchmarks() {
        assert_eq!(all().len(), 18);
    }

    #[test]
    fn starred_benchmarks_are_threaded() {
        for name in
            ["xz", "bwaves", "cactuBSSN", "lbm", "wrf", "pop2", "imagick", "nab", "fotonik3d", "roms"]
        {
            assert!(by_name(name).unwrap().threads > 1, "{name} must be parallel");
        }
        for name in ["perlbench", "gcc", "mcf", "xalancbmk"] {
            assert_eq!(by_name(name).unwrap().threads, 1);
        }
    }

    #[test]
    fn xalancbmk_remains_the_worst_case() {
        let x = by_name("xalancbmk").unwrap();
        for p in all() {
            assert!(
                x.paper.ms_slowdown.unwrap() >= p.paper.ms_slowdown.unwrap_or(1.0),
                "{} exceeds xalancbmk",
                p.name
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18);
    }
}
