//! Benchmark profiles: the parameter set that characterises one
//! benchmark's allocation behaviour, plus the paper-reported numbers the
//! figure regenerators print alongside measurements.

use crate::dist::{LifetimeDist, SizeDist};

/// Paper-reported overheads for one benchmark (factors; 1.0 = no
/// overhead). `None` where the paper does not report a per-benchmark
/// value. Used by the benches to print "paper vs measured" rows.
#[derive(Clone, Copy, Debug, Default)]
pub struct PaperNumbers {
    /// MineSweeper (fully concurrent) slowdown.
    pub ms_slowdown: Option<f64>,
    /// MineSweeper average memory overhead.
    pub ms_memory: Option<f64>,
    /// MarkUs slowdown.
    pub markus_slowdown: Option<f64>,
    /// MarkUs average memory overhead.
    pub markus_memory: Option<f64>,
    /// FFmalloc slowdown.
    pub ff_slowdown: Option<f64>,
    /// FFmalloc average memory overhead.
    pub ff_memory: Option<f64>,
    /// Sweep count (Figure 14).
    pub sweeps: Option<u64>,
}

/// One benchmark's allocation-behaviour model.
///
/// The trace generator ([`crate::TraceGen`]) expands a profile into a
/// deterministic stream of `Work`/`Alloc`/`Free` events; the engine adds
/// the pointer graph per the `ptr_density` / `false_ptr_rate` /
/// `dangling_rate` knobs.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Benchmark name as it appears in the paper's figures.
    pub name: &'static str,
    /// Which suite it belongs to ("spec2006", "spec2017", "mimalloc").
    pub suite: &'static str,
    /// Allocation events in the (scaled-down) run.
    pub total_allocs: u64,
    /// Mean mutator compute cycles between allocation events. Low values =
    /// allocation-intensive benchmark.
    pub cycles_per_alloc: u64,
    /// Allocation sizes.
    pub size_dist: SizeDist,
    /// Allocation lifetimes, in allocation events.
    pub lifetime: LifetimeDist,
    /// Pointer slots written per 64 bytes of object (object connectivity).
    pub ptr_density: f64,
    /// Probability that a data write stores an integer aliasing a live
    /// allocation (Figure 4's "false pointer").
    pub false_ptr_rate: f64,
    /// Probability that a pointer to an object is left dangling when the
    /// object is freed (instead of being erased by the program first).
    pub dangling_rate: f64,
    /// Root pointer slots the mutator keeps on the stack.
    pub root_slots: u32,
    /// Mutator threads (SPECspeed2017 starred benchmarks).
    pub threads: u32,
    /// Number of program phases. Objects flagged phase-lived (see
    /// `phase_frac`) are freed in bulk at each phase boundary — gcc-style
    /// build-then-collapse behaviour, which floods the quarantine and
    /// drives the paper's worst-case memory overheads (§5.2: gcc 62.7%).
    pub phases: u32,
    /// Fraction of allocations that live exactly to the end of the
    /// current phase.
    pub phase_frac: f64,
    /// Fraction of *small* (≤512 B) allocations that become permanent
    /// "stragglers" — long-lived crumbs sprinkled through the churn
    /// (interned strings, symbol-table nodes). These are what pin a
    /// one-time allocator's pages: each costs FFmalloc a whole page
    /// forever while adding almost nothing to live bytes. Calibrated to
    /// reproduce FFmalloc's fragmentation at scaled-down allocation
    /// counts.
    pub straggler_rate: f64,
    /// How strongly the benchmark's performance depends on hot allocator
    /// reuse (its LIFO cache locality). Multiplies the cost model's cold
    /// first-touch penalty: ~1.5 for tight small-object loops (xalancbmk),
    /// ~0.3 for workloads whose objects go cold anyway.
    pub cache_sensitivity: f64,
    /// Paper-reported numbers for comparison output.
    pub paper: PaperNumbers,
}

impl Profile {
    /// A small, fast default profile for tests and examples.
    pub fn demo() -> Self {
        Profile {
            name: "demo",
            suite: "demo",
            total_allocs: 20_000,
            cycles_per_alloc: 400,
            size_dist: SizeDist::LogNormal { median: 64, sigma: 3.0, cap: 128 * 1024 },
            lifetime: LifetimeDist::Mixture(vec![
                (0.9, LifetimeDist::Exp(200.0)),
                (0.09, LifetimeDist::Exp(4_000.0)),
                (0.01, LifetimeDist::Permanent),
            ]),
            ptr_density: 0.3,
            false_ptr_rate: 0.0005,
            dangling_rate: 0.002,
            root_slots: 64,
            threads: 1,
            phases: 1,
            phase_frac: 0.0,
            straggler_rate: 0.0,
            cache_sensitivity: 0.4,
            paper: PaperNumbers::default(),
        }
    }

    /// Expected live-set size in bytes by Little's law
    /// (`mean_size × mean_lifetime`), ignoring permanents. Used by tests to
    /// sanity-check calibrations.
    pub fn expected_live_bytes(&self) -> f64 {
        let mean_size = self.size_dist.approx_mean();
        let mut rng = crate::rng::Rng::new(0x11f3);
        let n = 4096;
        let mean_life: f64 = (0..n)
            .map(|_| self.lifetime.sample(&mut rng).unwrap_or(self.total_allocs) as f64)
            .sum::<f64>()
            / n as f64;
        mean_size * mean_life.min(self.total_allocs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_profile_is_small_and_connected() {
        let p = Profile::demo();
        assert!(p.total_allocs <= 50_000);
        assert!(p.ptr_density > 0.0);
        assert!(p.expected_live_bytes() > 0.0);
    }
}
