//! mimalloc-bench stress-test profiles, §5.7 (Figure 19).
//!
//! "These tests have extremely high allocation and deallocation rates; most
//! of them do not do any work, other than allocating and freeing memory."
//! Accordingly the profiles here have tiny `cycles_per_alloc` (the
//! allocator *is* the workload), near-zero lifetimes for the alloc/free
//! ping-pong tests, and FIFO-ish lifetimes for the sh*bench style tests
//! ("many tests deallocate things entirely in allocation order", which is
//! why FFmalloc's fragmentation does not manifest here).

use crate::dist::{LifetimeDist, SizeDist};
use crate::profile::{PaperNumbers, Profile};

fn stress(name: &'static str) -> Profile {
    Profile {
        name,
        suite: "mimalloc",
        total_allocs: 150_000,
        cycles_per_alloc: 60,
        size_dist: SizeDist::LogNormal { median: 64, sigma: 2.0, cap: 8 * 1024 },
        lifetime: LifetimeDist::Exp(8.0),
        ptr_density: 0.05,
        false_ptr_rate: 0.0001,
        dangling_rate: 0.0,
        root_slots: 16,
        threads: 1,
        cache_sensitivity: 0.8,
        paper: PaperNumbers {
            ms_slowdown: Some(2.7),
            ms_memory: Some(4.0),
            markus_slowdown: Some(6.7),
            markus_memory: Some(1.7),
            ff_slowdown: Some(2.16),
            ff_memory: Some(7.2),
            sweeps: None,
        },
        ..Profile::demo()
    }
}

/// All 16 stress tests, figure order.
pub fn all() -> Vec<Profile> {
    vec![
        Profile {
            // alloc-test: tight loop of malloc/free of varied small sizes.
            lifetime: LifetimeDist::Exp(4.0),
            ..stress("alloc-test1")
        },
        Profile { threads: 4, lifetime: LifetimeDist::Exp(4.0), ..stress("alloc-testN") },
        Profile {
            // barnes: N-body tree build/teardown; some real work.
            total_allocs: 40_000,
            cycles_per_alloc: 900,
            size_dist: SizeDist::LogNormal { median: 128, sigma: 2.0, cap: 4 * 1024 },
            lifetime: LifetimeDist::Mixture(vec![
                (0.7, LifetimeDist::Exp(5_000.0)),
                (0.3, LifetimeDist::Permanent),
            ]),
            ptr_density: 0.4,
            ..stress("barnes")
        },
        Profile {
            // cache-scratch: false-sharing probe; few allocations.
            total_allocs: 5_000,
            cycles_per_alloc: 500,
            size_dist: SizeDist::Fixed(64),
            lifetime: LifetimeDist::Exp(2.0),
            ..stress("cache-scratch1")
        },
        Profile {
            total_allocs: 5_000,
            cycles_per_alloc: 500,
            size_dist: SizeDist::Fixed(64),
            lifetime: LifetimeDist::Exp(2.0),
            threads: 4,
            ..stress("cache-scratchN")
        },
        Profile {
            // cfrac: continued-fraction factoring; tiny bignum limbs.
            total_allocs: 200_000,
            cycles_per_alloc: 150,
            size_dist: SizeDist::LogNormal { median: 32, sigma: 1.6, cap: 512 },
            lifetime: LifetimeDist::Exp(30.0),
            ..stress("cfrac")
        },
        Profile {
            // espresso: PLA minimiser; moderate sizes, bursty frees.
            total_allocs: 120_000,
            cycles_per_alloc: 300,
            size_dist: SizeDist::LogNormal { median: 96, sigma: 2.5, cap: 16 * 1024 },
            lifetime: LifetimeDist::Mixture(vec![
                (0.9, LifetimeDist::Exp(50.0)),
                (0.1, LifetimeDist::Exp(2_000.0)),
            ]),
            ..stress("espresso")
        },
        Profile {
            // glibc-simple: the glibc micro-loop.
            total_allocs: 250_000,
            cycles_per_alloc: 40,
            size_dist: SizeDist::Uniform(16, 1024),
            lifetime: LifetimeDist::Exp(3.0),
            ..stress("glibc-simple")
        },
        Profile {
            // glibc-thread: per-thread loops over a 4 MiB baseline — the
            // paper's 27x relative-memory outlier (footnote 6).
            total_allocs: 250_000,
            cycles_per_alloc: 40,
            size_dist: SizeDist::Uniform(16, 1024),
            lifetime: LifetimeDist::Exp(3.0),
            threads: 8,
            paper: PaperNumbers { ms_memory: Some(27.0), ..stress("x").paper },
            ..stress("glibc-thread")
        },
        Profile {
            // larson: server-style random replacement across threads.
            total_allocs: 180_000,
            cycles_per_alloc: 80,
            size_dist: SizeDist::Uniform(16, 2048),
            lifetime: LifetimeDist::Exp(1_000.0),
            threads: 4,
            ..stress("larsonN")
        },
        Profile {
            total_allocs: 180_000,
            cycles_per_alloc: 80,
            size_dist: SizeDist::Uniform(16, 2048),
            lifetime: LifetimeDist::Exp(1_000.0),
            threads: 4,
            ..stress("larsonN-sized")
        },
        Profile {
            // mstress: bulk build/teardown in allocation order (FIFO) —
            // FFmalloc's best case.
            total_allocs: 150_000,
            cycles_per_alloc: 70,
            size_dist: SizeDist::LogNormal { median: 128, sigma: 2.0, cap: 32 * 1024 },
            lifetime: LifetimeDist::Fixed(6_000),
            threads: 4,
            ..stress("mstressN")
        },
        Profile {
            // rptest: random pattern test.
            total_allocs: 160_000,
            cycles_per_alloc: 90,
            size_dist: SizeDist::LogNormal { median: 256, sigma: 3.0, cap: 64 * 1024 },
            lifetime: LifetimeDist::Exp(400.0),
            threads: 4,
            ..stress("rptestN")
        },
        Profile {
            // sh6bench: batch alloc, partial free, repeat; FIFO-ish.
            total_allocs: 170_000,
            cycles_per_alloc: 60,
            size_dist: SizeDist::Uniform(8, 400),
            lifetime: LifetimeDist::Mixture(vec![
                (0.5, LifetimeDist::Fixed(64)),
                (0.5, LifetimeDist::Fixed(4_000)),
            ]),
            threads: 4,
            ..stress("sh6benchN")
        },
        Profile {
            total_allocs: 170_000,
            cycles_per_alloc: 60,
            size_dist: SizeDist::Uniform(8, 400),
            lifetime: LifetimeDist::Mixture(vec![
                (0.5, LifetimeDist::Fixed(64)),
                (0.5, LifetimeDist::Fixed(4_000)),
            ]),
            threads: 8,
            ..stress("sh8benchN")
        },
        Profile {
            // xmalloc-test: cross-thread free ping-pong, FIFO order.
            total_allocs: 200_000,
            cycles_per_alloc: 50,
            size_dist: SizeDist::Uniform(16, 512),
            lifetime: LifetimeDist::Fixed(512),
            threads: 4,
            ..stress("xmalloc-testN")
        },
    ]
}

/// Looks up a profile by name.
pub fn by_name(name: &str) -> Option<Profile> {
    all().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_tests() {
        assert_eq!(all().len(), 16);
    }

    #[test]
    fn stress_tests_are_allocation_dominated() {
        // "most of them do not do any work, other than allocating and
        // freeing memory": compute between allocations must be tiny
        // compared to SPEC.
        for p in all() {
            assert!(
                p.cycles_per_alloc <= 1_000,
                "{} has cycles_per_alloc {}",
                p.name,
                p.cycles_per_alloc
            );
        }
    }

    #[test]
    fn fifo_benchmarks_use_fixed_lifetimes() {
        for name in ["mstressN", "xmalloc-testN"] {
            let p = by_name(name).unwrap();
            assert!(
                matches!(p.lifetime, LifetimeDist::Fixed(_)),
                "{name} must free in allocation order"
            );
        }
    }

    #[test]
    fn names_unique_and_glibc_thread_is_memory_outlier() {
        let mut names: Vec<&str> = all().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
        assert_eq!(by_name("glibc-thread").unwrap().paper.ms_memory, Some(27.0));
    }
}
