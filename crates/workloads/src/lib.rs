#![warn(missing_docs)]

//! Benchmark workload models for the MineSweeper reproduction.
//!
//! The paper evaluates on SPEC CPU2006, SPECspeed2017 and the
//! mimalloc-bench stress suite. Those binaries are proprietary or
//! hardware-bound, but everything the evaluation measures is a function of
//! their *allocation behaviour*: allocation rate, size distribution,
//! lifetime distribution, live-set size, pointer density. This crate
//! captures each benchmark as a [`Profile`] of those parameters
//! (calibrated so the paper's qualitative shapes hold — who is
//! allocation-heavy, who holds large objects, who mixes lifetimes) and a
//! deterministic [`TraceGen`] that expands a profile into a stream of
//! allocator events.
//!
//! Scaling: live sets and allocation counts are scaled down ~50–100× from
//! the real benchmarks so a full figure regeneration runs in minutes;
//! sweep *counts* scale down accordingly while preserving the
//! per-benchmark ordering (omnetpp > xalancbmk > gcc > …). See
//! `EXPERIMENTS.md`.
//!
//! # Example
//!
//! ```
//! use workloads::{spec2006, TraceGen, Op};
//!
//! let profile = spec2006::all().into_iter()
//!     .find(|p| p.name == "xalancbmk").unwrap();
//! let mut allocs = 0u64;
//! for op in TraceGen::new(&profile, 42) {
//!     if let Op::Alloc { .. } = op { allocs += 1; }
//! }
//! assert_eq!(allocs, profile.total_allocs);
//! ```

mod dist;
pub mod exploit;
pub mod mimalloc_bench;
mod profile;
pub mod recorded;
mod rng;
pub mod spec2006;
pub mod spec2017;
mod trace;

pub use dist::{LifetimeDist, SizeDist};
pub use profile::{PaperNumbers, Profile};
pub use rng::Rng;
pub use trace::{Op, TraceGen};
