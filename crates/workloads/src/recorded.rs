//! Recorded traces: a plain-text interchange format for allocation
//! traces, so real programs' malloc/free streams (captured with any
//! interposer) can be replayed through the evaluation pipeline.
//!
//! Format (line-oriented, `#` comments):
//!
//! ```text
//! # minesweeper-sim trace v1
//! W 500        # work: 500 cycles of mutator compute
//! A 0 64       # alloc: object id 0, 64 bytes (site 0)
//! A 1 64 17    # alloc with an explicit allocation-site id
//! F 0          # free: object id 0
//! T            # teardown marker (optional; bulk frees follow)
//! ```
//!
//! Ids must be dense-ish unique tokens (any u64); every `F` must follow
//! its `A`, and each id is freed at most once — [`read_trace`] validates.

use std::fmt::Write as _;

use crate::trace::Op;

/// A malformed trace file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Serialises ops to the v1 text format.
pub fn write_trace(ops: impl IntoIterator<Item = Op>) -> String {
    let mut out = String::from("# minesweeper-sim trace v1\n");
    for op in ops {
        match op {
            Op::Work(c) => writeln!(out, "W {c}").expect("string write"),
            Op::Alloc { id, size, site: 0 } => {
                writeln!(out, "A {id} {size}").expect("string write");
            }
            Op::Alloc { id, size, site } => {
                writeln!(out, "A {id} {size} {site}").expect("string write");
            }
            Op::Free { id } => writeln!(out, "F {id}").expect("string write"),
            Op::Teardown => out.push_str("T\n"),
        }
    }
    out
}

/// Parses the v1 text format, validating alloc/free pairing.
///
/// # Errors
///
/// [`TraceParseError`] with the offending line on syntax errors, frees of
/// never-allocated ids, double frees, or duplicate allocations.
pub fn read_trace(text: &str) -> Result<Vec<Op>, TraceParseError> {
    let mut ops = Vec::new();
    let mut allocated = std::collections::HashSet::new();
    let mut freed = std::collections::HashSet::new();
    let err = |line: usize, message: String| TraceParseError { line, message };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("non-empty line");
        let mut next_u64 = |what: &str| -> Result<u64, TraceParseError> {
            let tok = parts
                .next()
                .ok_or_else(|| err(line_no, format!("missing {what}")))?;
            tok.parse().map_err(|_| err(line_no, format!("bad {what}: {tok}")))
        };
        match tag {
            "W" => ops.push(Op::Work(next_u64("cycle count")?)),
            "A" => {
                let id = next_u64("id")?;
                let size = next_u64("size")?;
                if size == 0 {
                    return Err(err(line_no, "zero-size allocation".into()));
                }
                if !allocated.insert(id) {
                    return Err(err(line_no, format!("duplicate allocation id {id}")));
                }
                // Optional third field: allocation-site id (0 = unknown,
                // what two-field pre-forensics traces mean).
                let site = match parts.next() {
                    Some(tok) => tok
                        .parse::<u32>()
                        .map_err(|_| err(line_no, format!("bad site: {tok}")))?,
                    None => 0,
                };
                ops.push(Op::Alloc { id, size, site });
            }
            "F" => {
                let id = next_u64("id")?;
                if !allocated.contains(&id) {
                    return Err(err(line_no, format!("free of unallocated id {id}")));
                }
                if !freed.insert(id) {
                    return Err(err(line_no, format!("double free of id {id}")));
                }
                ops.push(Op::Free { id });
            }
            "T" => ops.push(Op::Teardown),
            other => return Err(err(line_no, format!("unknown record: {other}"))),
        }
        if parts.next().is_some() {
            return Err(err(line_no, "trailing tokens".into()));
        }
    }
    Ok(ops)
}

/// Appends frees for any ids the trace leaked, after a teardown marker —
/// so replays always return the heap to empty (like a process exit).
pub fn close_trace(mut ops: Vec<Op>) -> Vec<Op> {
    let mut live: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let mut has_teardown = false;
    for op in &ops {
        match op {
            Op::Alloc { id, .. } => {
                live.insert(*id);
            }
            Op::Free { id } => {
                live.remove(id);
            }
            Op::Teardown => has_teardown = true,
            Op::Work(_) => {}
        }
    }
    if !live.is_empty() && !has_teardown {
        ops.push(Op::Teardown);
    }
    ops.extend(live.into_iter().map(|id| Op::Free { id }));
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Profile, TraceGen};

    #[test]
    fn roundtrip_preserves_ops() {
        let ops: Vec<Op> = TraceGen::new(&Profile::demo(), 5).take(500).collect();
        let text = write_trace(ops.clone());
        let parsed = read_trace(&text).unwrap();
        assert_eq!(parsed, ops);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let ops = read_trace("# header\n\nW 10 # trailing comment\nA 1 64\nF 1\n").unwrap();
        assert_eq!(
            ops,
            vec![
                Op::Work(10),
                Op::Alloc { id: 1, size: 64, site: 0 },
                Op::Free { id: 1 }
            ]
        );
    }

    #[test]
    fn site_field_roundtrips_and_defaults_to_zero() {
        let ops = read_trace("A 1 64 17\nA 2 32\nF 1\nF 2\n").unwrap();
        assert_eq!(ops[0], Op::Alloc { id: 1, size: 64, site: 17 });
        assert_eq!(ops[1], Op::Alloc { id: 2, size: 32, site: 0 });
        let text = write_trace(ops.clone());
        assert!(text.contains("A 1 64 17\n"), "{text}");
        assert!(text.contains("A 2 32\n"), "site 0 stays two-field: {text}");
        assert_eq!(read_trace(&text).unwrap(), ops);
        let e = read_trace("A 1 64 banana\n").unwrap_err();
        assert!(e.message.contains("bad site"), "{e}");
    }

    #[test]
    fn validation_catches_mistakes() {
        let cases = [
            ("F 1\n", "unallocated"),
            ("A 1 64\nF 1\nF 1\n", "double free"),
            ("A 1 64\nA 1 32\n", "duplicate allocation"),
            ("A 1 0\n", "zero-size"),
            ("X 1\n", "unknown record"),
            ("A 1\n", "missing size"),
            ("W banana\n", "bad cycle count"),
            ("W 5 6\n", "trailing"),
        ];
        for (text, want) in cases {
            let e = read_trace(text).unwrap_err();
            assert!(e.message.contains(want), "{text:?}: {e}");
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = read_trace("W 1\nW 2\nF 9\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn close_trace_frees_leaks_after_teardown() {
        let ops = read_trace("A 1 64\nA 2 64\nF 1\n").unwrap();
        let closed = close_trace(ops);
        assert_eq!(
            &closed[3..],
            &[Op::Teardown, Op::Free { id: 2 }],
            "leaked id freed after teardown"
        );
        // Already-balanced traces are untouched.
        let ops = read_trace("A 1 64\nF 1\n").unwrap();
        assert_eq!(close_trace(ops.clone()), ops);
    }
}
