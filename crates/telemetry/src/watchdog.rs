//! SLO watchdog: evaluates a metrics [`Snapshot`] (typically a
//! start-to-end delta) against configurable service-level objectives and
//! reports pass/fail per objective.
//!
//! Objectives cover the four quantities the paper's evaluation watches:
//! the worst stop-the-world pause, the worst whole-sweep duration, how
//! much of everything ever quarantined is still pinned, and how busy the
//! parallel-mark helpers actually were. An objective whose backing metric
//! is absent from the snapshot is reported as *unmeasured* and passes —
//! a serial run without the profiler must not fail a utilization floor it
//! never measured.

use crate::registry::{Histogram, HistogramSample, Snapshot};
use crate::trace::{EventKind, Tracer};

/// Which objective a check belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloKind {
    /// Worst stop-the-world pause (`engine/stw_cycles`, cycles).
    StwPause,
    /// Worst whole-sweep duration (`engine/sweep_cycles`, cycles).
    SweepDeadline,
    /// Quarantine-residency ceiling: permille of all bytes ever
    /// quarantined that have not been released (`layer` counters).
    QuarantineRatio,
    /// Helper-utilization floor: mean busy-time percentage across
    /// parallel-mark threads (`sweep/helper_busy_pct`, profiler).
    HelperUtil,
}

impl SloKind {
    /// Stable wire/CLI name.
    pub fn as_str(self) -> &'static str {
        match self {
            SloKind::StwPause => "stw",
            SloKind::SweepDeadline => "sweep",
            SloKind::QuarantineRatio => "qratio",
            SloKind::HelperUtil => "util",
        }
    }

    /// Unit the limit and observed value are expressed in.
    pub fn unit(self) -> &'static str {
        match self {
            SloKind::StwPause | SloKind::SweepDeadline => "cycles",
            SloKind::QuarantineRatio => "permille",
            SloKind::HelperUtil => "pct",
        }
    }
}

/// The configured objectives; `None` leaves an objective unchecked.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SloPolicy {
    /// Max acceptable stop-the-world pause, in engine cycles.
    pub max_stw_cycles: Option<u64>,
    /// Max acceptable whole-sweep duration, in engine cycles.
    pub max_sweep_cycles: Option<u64>,
    /// Max permille of ever-quarantined bytes still resident.
    pub max_quarantine_permille: Option<u64>,
    /// Min mean helper busy percentage (needs the sweep profiler).
    pub min_helper_util_pct: Option<u64>,
}

impl SloPolicy {
    /// Parses a `key=value` comma list, e.g.
    /// `stw=4096,sweep=2000000,qratio=500,util=40`. Keys may appear at
    /// most once; unknown keys are an error.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed clause.
    pub fn parse(spec: &str) -> Result<SloPolicy, String> {
        let mut p = SloPolicy::default();
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("SLO clause {clause:?} is not key=value"))?;
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("SLO value in {clause:?} is not a number"))?;
            let slot = match key.trim() {
                "stw" => &mut p.max_stw_cycles,
                "sweep" => &mut p.max_sweep_cycles,
                "qratio" => &mut p.max_quarantine_permille,
                "util" => &mut p.min_helper_util_pct,
                other => return Err(format!("unknown SLO objective {other:?}")),
            };
            if slot.replace(value).is_some() {
                return Err(format!("SLO objective {:?} given twice", key.trim()));
            }
        }
        Ok(p)
    }

    /// Whether any objective is configured.
    pub fn is_empty(&self) -> bool {
        *self == SloPolicy::default()
    }
}

/// One evaluated objective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloCheck {
    /// Which objective.
    pub kind: SloKind,
    /// The configured limit.
    pub limit: u64,
    /// The observed value, or `None` when the backing metric is absent
    /// from the snapshot (unmeasured objectives pass).
    pub observed: Option<u64>,
    /// Whether the objective held.
    pub pass: bool,
    /// For sharded runs: the arena whose shard produced `observed` (the
    /// worst shard). `None` for global (single-arena) evaluations.
    pub shard: Option<u32>,
}

/// Evaluates an [`SloPolicy`] against snapshots and renders the verdict.
#[derive(Clone, Copy, Debug)]
pub struct Watchdog {
    policy: SloPolicy,
}

impl Watchdog {
    /// Creates a watchdog over `policy`.
    pub fn new(policy: SloPolicy) -> Self {
        Watchdog { policy }
    }

    /// The policy being enforced.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Evaluates every configured objective against `snap` (pass a
    /// [`Snapshot::delta`] to scope the check to one run of a long-lived
    /// registry). Checks come back in declaration order.
    pub fn evaluate(&self, snap: &Snapshot) -> Vec<SloCheck> {
        let mut checks = Vec::new();
        if let Some(limit) = self.policy.max_stw_cycles {
            let observed = worst_observed(snap.histogram("engine", "stw_cycles"));
            checks.push(ceiling(SloKind::StwPause, limit, observed));
        }
        if let Some(limit) = self.policy.max_sweep_cycles {
            let observed = worst_observed(snap.histogram("engine", "sweep_cycles"));
            checks.push(ceiling(SloKind::SweepDeadline, limit, observed));
        }
        if let Some(limit) = self.policy.max_quarantine_permille {
            // Sharded runs are judged per arena: the ceiling must hold in
            // every shard, so the check reports the *worst* one by name.
            // A healthy global ratio averaging away one runaway tenant is
            // exactly the failure mode this catches.
            let check = match worst_arena_quarantine(snap) {
                Some((shard, observed)) => SloCheck {
                    shard: Some(shard),
                    ..ceiling(SloKind::QuarantineRatio, limit, Some(observed))
                },
                None => {
                    ceiling(SloKind::QuarantineRatio, limit, quarantine_permille(snap))
                }
            };
            checks.push(check);
        }
        if let Some(limit) = self.policy.min_helper_util_pct {
            let observed = mean_observed(snap.histogram("sweep", "helper_busy_pct"));
            checks.push(SloCheck {
                kind: SloKind::HelperUtil,
                limit,
                observed,
                pass: observed.is_none_or(|o| o >= limit),
                shard: None,
            });
        }
        checks
    }

    /// Emits one [`EventKind::SloViolation`] per failed check.
    pub fn emit_violations(tracer: &mut Tracer, checks: &[SloCheck]) {
        for c in checks.iter().filter(|c| !c.pass) {
            let (kind, limit) = (c.kind, c.limit);
            let observed = c.observed.unwrap_or(0);
            tracer.emit(|| EventKind::SloViolation {
                objective: kind.as_str().to_owned(),
                observed,
                limit,
            });
        }
    }
}

fn ceiling(kind: SloKind, limit: u64, observed: Option<u64>) -> SloCheck {
    SloCheck { kind, limit, observed, pass: observed.is_none_or(|o| o <= limit), shard: None }
}

/// Worst observation a log2 histogram can prove: the inclusive upper
/// bound of its highest occupied bucket (conservative — the true maximum
/// may be up to 2× smaller, so a pass here is a real pass).
fn worst_observed(h: Option<&HistogramSample>) -> Option<u64> {
    let h = h.filter(|h| h.count() > 0)?;
    let top = h.buckets.iter().map(|&(i, _)| i).max()?;
    Some(Histogram::bucket_bound(top))
}

/// Mean observation (`sum / count`; both are exact in the export).
fn mean_observed(h: Option<&HistogramSample>) -> Option<u64> {
    let h = h.filter(|h| h.count() > 0)?;
    Some(h.sum / h.count())
}

/// The worst per-arena quarantine residency in a sharded snapshot:
/// `(arena index, permille)` over the `arena/a{k}_quarantined_bytes` /
/// `arena/a{k}_released_bytes` shard counters. `None` when the snapshot
/// carries no shard counters (single-arena runs fall back to the global
/// `layer` counters). Ties keep the lowest arena index, so the named
/// shard is deterministic.
fn worst_arena_quarantine(snap: &Snapshot) -> Option<(u32, u64)> {
    let mut worst: Option<(u32, u64)> = None;
    for c in &snap.counters {
        if c.subsystem != "arena" || c.value == 0 {
            continue;
        }
        let Some(idx) = c
            .name
            .strip_prefix('a')
            .and_then(|r| r.strip_suffix("_quarantined_bytes"))
            .and_then(|r| r.parse::<u32>().ok())
        else {
            continue;
        };
        let released =
            snap.counter("arena", &format!("a{idx}_released_bytes")).unwrap_or(0);
        let permille = c.value.saturating_sub(released).saturating_mul(1000) / c.value;
        if worst.is_none_or(|(_, w)| permille > w) {
            worst = Some((idx, permille));
        }
    }
    worst
}

/// Permille of all ever-quarantined bytes that have not been released
/// back to the allocator. `None` when the run quarantined nothing.
fn quarantine_permille(snap: &Snapshot) -> Option<u64> {
    let quarantined = snap.counter("layer", "quarantined_bytes")?;
    if quarantined == 0 {
        return None;
    }
    let released = snap.counter("layer", "released_bytes").unwrap_or(0);
    let resident = quarantined.saturating_sub(released);
    Some(resident.saturating_mul(1000) / quarantined)
}

/// Renders the `ms-report --slo` pass/fail table.
pub fn slo_table(checks: &[SloCheck]) -> String {
    let mut out = String::from("objective  limit         observed      unit      verdict\n");
    for c in checks {
        let observed = c
            .observed
            .map_or_else(|| String::from("-"), |o| o.to_string());
        let verdict = match (c.pass, c.observed) {
            (true, None) => "PASS (unmeasured)",
            (true, Some(_)) => "PASS",
            (false, _) => "FAIL",
        };
        let objective = match c.shard {
            Some(s) => format!("{}[a{s}]", c.kind.as_str()),
            None => c.kind.as_str().to_string(),
        };
        out.push_str(&format!(
            "{objective:<9}  {:<12}  {:<12}  {:<8}  {verdict}\n",
            c.limit,
            observed,
            c.kind.unit(),
        ));
    }
    let failed = checks.iter().filter(|c| !c.pass).count();
    out.push_str(&format!(
        "{} objectives checked, {failed} violated\n",
        checks.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::trace::{Event, RingSink};

    #[test]
    fn policy_parse_accepts_full_spec_and_rejects_junk() {
        let p = SloPolicy::parse("stw=4096,sweep=2000000,qratio=500,util=40").unwrap();
        assert_eq!(p.max_stw_cycles, Some(4096));
        assert_eq!(p.max_sweep_cycles, Some(2_000_000));
        assert_eq!(p.max_quarantine_permille, Some(500));
        assert_eq!(p.min_helper_util_pct, Some(40));

        assert!(SloPolicy::parse("").unwrap().is_empty());
        assert_eq!(SloPolicy::parse(" stw = 7 ").unwrap().max_stw_cycles, Some(7));
        assert!(SloPolicy::parse("bogus=1").is_err());
        assert!(SloPolicy::parse("stw").is_err());
        assert!(SloPolicy::parse("stw=abc").is_err());
        assert!(SloPolicy::parse("stw=1,stw=2").is_err());
    }

    #[test]
    fn ceilings_use_the_bucket_upper_bound() {
        let reg = Registry::new();
        let h = reg.histogram("engine", "stw_cycles");
        h.record(5); // bucket 3, bound 7
        let snap = reg.snapshot();

        let ok = Watchdog::new(SloPolicy { max_stw_cycles: Some(7), ..Default::default() });
        let checks = ok.evaluate(&snap);
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].observed, Some(7), "conservative bucket bound");
        assert!(checks[0].pass);

        let tight = Watchdog::new(SloPolicy { max_stw_cycles: Some(6), ..Default::default() });
        assert!(!tight.evaluate(&snap)[0].pass, "bound 7 breaches limit 6");
    }

    #[test]
    fn unmeasured_objectives_pass() {
        let snap = Registry::new().snapshot();
        let wd = Watchdog::new(SloPolicy {
            max_stw_cycles: Some(1),
            max_sweep_cycles: Some(1),
            max_quarantine_permille: Some(1),
            min_helper_util_pct: Some(99),
        });
        let checks = wd.evaluate(&snap);
        assert_eq!(checks.len(), 4);
        assert!(checks.iter().all(|c| c.pass && c.observed.is_none()));
        let table = slo_table(&checks);
        assert!(table.contains("PASS (unmeasured)"), "{table}");
        assert!(table.contains("4 objectives checked, 0 violated"), "{table}");
    }

    #[test]
    fn quarantine_ratio_and_util_floor() {
        let reg = Registry::new();
        reg.counter("layer", "quarantined_bytes").add(1000);
        reg.counter("layer", "released_bytes").add(400);
        let busy = reg.histogram("sweep", "helper_busy_pct");
        busy.record(80);
        busy.record(20); // mean 50
        let snap = reg.snapshot();

        let wd = Watchdog::new(SloPolicy {
            max_quarantine_permille: Some(500),
            min_helper_util_pct: Some(60),
            ..Default::default()
        });
        let checks = wd.evaluate(&snap);
        let q = checks.iter().find(|c| c.kind == SloKind::QuarantineRatio).unwrap();
        assert_eq!(q.observed, Some(600), "600‰ still resident");
        assert!(!q.pass);
        let u = checks.iter().find(|c| c.kind == SloKind::HelperUtil).unwrap();
        assert_eq!(u.observed, Some(50));
        assert!(!u.pass, "mean 50% under the 60% floor");
    }

    #[test]
    fn sharded_snapshots_judge_qratio_per_arena_and_name_the_worst_shard() {
        let reg = Registry::new();
        // Global view: 2000 quarantined, 1400 released = 300‰ — healthy.
        // But shard a2 alone sits at 800‰: the ceiling must fail on it.
        reg.counter("arena", "a0_quarantined_bytes").add(1000);
        reg.counter("arena", "a0_released_bytes").add(950);
        reg.counter("arena", "a2_quarantined_bytes").add(1000);
        reg.counter("arena", "a2_released_bytes").add(200);
        reg.counter("layer", "quarantined_bytes").add(2000);
        reg.counter("layer", "released_bytes").add(1400);
        let snap = reg.snapshot();

        let wd = Watchdog::new(SloPolicy {
            max_quarantine_permille: Some(500),
            ..Default::default()
        });
        let checks = wd.evaluate(&snap);
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].observed, Some(800), "worst shard, not the average");
        assert_eq!(checks[0].shard, Some(2));
        assert!(!checks[0].pass, "a healthy average must not mask a runaway tenant");
        let table = slo_table(&checks);
        assert!(table.contains("qratio[a2]"), "{table}");

        // Without shard counters the same policy falls back to the
        // global layer view (which passes here).
        let reg = Registry::new();
        reg.counter("layer", "quarantined_bytes").add(2000);
        reg.counter("layer", "released_bytes").add(1400);
        let checks = wd.evaluate(&reg.snapshot());
        assert_eq!(checks[0].observed, Some(300));
        assert_eq!(checks[0].shard, None);
        assert!(checks[0].pass);
    }

    #[test]
    fn violations_emit_typed_events() {
        let reg = Registry::new();
        let h = reg.histogram("engine", "stw_cycles");
        h.record(5000);
        let wd = Watchdog::new(SloPolicy { max_stw_cycles: Some(100), ..Default::default() });
        let checks = wd.evaluate(&reg.snapshot());

        let ring = RingSink::new(8);
        let mut tracer = Tracer::disabled();
        tracer.set_sink(Box::new(ring.clone()));
        Watchdog::emit_violations(&mut tracer, &checks);
        let events = ring.events();
        assert_eq!(events.len(), 1);
        match &events[0].kind {
            EventKind::SloViolation { objective, observed, limit } => {
                assert_eq!(objective, "stw");
                assert_eq!(*limit, 100);
                assert!(*observed > 100);
            }
            other => panic!("expected SloViolation, got {other:?}"),
        }
        // And the emitted event survives the wire format.
        let line = events[0].to_json();
        assert_eq!(Event::from_json(&line).unwrap(), events[0]);
    }
}
