//! The lock-free metrics registry: atomic counters and fixed-bucket log2
//! histograms, labelled by subsystem, with point-in-time snapshots.
//!
//! Registration takes a lock (it happens a handful of times at startup);
//! every increment afterwards is a single atomic RMW on a shared cell, so
//! instrumented hot paths never contend on the registry itself. Handles
//! ([`Counter`], [`Histogram`]) are cheap `Arc` clones and stay valid for
//! the registry's lifetime.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::{escape, Json, JsonError};

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i - 1]`, and bucket 64 tops out at
/// `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Snapshot schema version written into JSON exports; bump on any
/// incompatible change so downstream tooling can compare runs safely.
/// Version 2 added the forensics instruments (`pin_edges`,
/// `ledger_bytes_in`/`ledger_bytes_out` counters and the
/// `residency_sweeps` histogram); the container shape is unchanged, so
/// version-1 snapshots still parse.
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 2;

/// Oldest snapshot schema version [`Snapshot::from_json`] accepts.
pub const SNAPSHOT_MIN_SCHEMA_VERSION: u64 = 1;

/// A monotonically increasing atomic counter handle.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a counter not attached to any registry (snapshots will not
    /// see it). Useful for tests and placeholders.
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared storage of a histogram.
#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

/// A fixed-bucket log2 histogram handle.
///
/// Bucket boundaries are powers of two, so recording costs one
/// `leading_zeros` plus two relaxed atomic adds — cheap enough for
/// per-sweep (and even per-free) paths.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Creates a histogram not attached to any registry.
    pub fn detached() -> Self {
        Histogram::default()
    }

    /// The bucket index `value` falls into.
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i` (`0`, `1`, `3`, `7`, …,
    /// `u64::MAX`).
    pub fn bucket_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            64.. => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.0.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        // Saturate instead of wrapping: a sum that pegs at u64::MAX is an
        // obviously-overflowed export; a wrapped one silently lies.
        let _ = self.0.sum.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
            Some(s.saturating_add(value))
        });
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }
}

/// One registered instrument.
#[derive(Debug)]
enum Instrument {
    Counter(Counter),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Entry {
    subsystem: String,
    name: String,
    instrument: Instrument,
}

#[derive(Debug, Default)]
struct Inner {
    entries: Mutex<Vec<Entry>>,
}

/// The metrics registry. Cloning shares the underlying storage, so
/// subsystems in different layers (the allocator layer, the sim engine, a
/// benchmark harness) can register into one registry and export one
/// coherent snapshot.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or retrieves) the counter `subsystem/name`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a histogram.
    pub fn counter(&self, subsystem: &str, name: &str) -> Counter {
        let mut entries = self.inner.entries.lock().expect("registry poisoned");
        if let Some(e) =
            entries.iter().find(|e| e.subsystem == subsystem && e.name == name)
        {
            match &e.instrument {
                Instrument::Counter(c) => return c.clone(),
                Instrument::Histogram(_) => {
                    panic!("{subsystem}/{name} is registered as a histogram")
                }
            }
        }
        let c = Counter::default();
        entries.push(Entry {
            subsystem: subsystem.to_string(),
            name: name.to_string(),
            instrument: Instrument::Counter(c.clone()),
        });
        c
    }

    /// Registers (or retrieves) the histogram `subsystem/name`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a counter.
    pub fn histogram(&self, subsystem: &str, name: &str) -> Histogram {
        let mut entries = self.inner.entries.lock().expect("registry poisoned");
        if let Some(e) =
            entries.iter().find(|e| e.subsystem == subsystem && e.name == name)
        {
            match &e.instrument {
                Instrument::Histogram(h) => return h.clone(),
                Instrument::Counter(_) => {
                    panic!("{subsystem}/{name} is registered as a counter")
                }
            }
        }
        let h = Histogram::default();
        entries.push(Entry {
            subsystem: subsystem.to_string(),
            name: name.to_string(),
            instrument: Instrument::Histogram(h.clone()),
        });
        h
    }

    /// Takes a point-in-time snapshot of every registered instrument.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.inner.entries.lock().expect("registry poisoned");
        let mut snap = Snapshot::default();
        for e in entries.iter() {
            match &e.instrument {
                Instrument::Counter(c) => snap.counters.push(CounterSample {
                    subsystem: e.subsystem.clone(),
                    name: e.name.clone(),
                    value: c.get(),
                }),
                Instrument::Histogram(h) => {
                    let counts = h.bucket_counts();
                    snap.histograms.push(HistogramSample {
                        subsystem: e.subsystem.clone(),
                        name: e.name.clone(),
                        buckets: counts
                            .iter()
                            .enumerate()
                            .filter(|&(_, &c)| c > 0)
                            .map(|(i, &c)| (i, c))
                            .collect(),
                        sum: h.sum(),
                    });
                }
            }
        }
        snap
    }
}

/// A counter's value at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSample {
    /// Subsystem label (`layer`, `engine`, `bench`, …).
    pub subsystem: String,
    /// Metric name within the subsystem.
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// A histogram's state at snapshot time. Buckets are sparse
/// `(bucket_index, count)` pairs; see [`Histogram::bucket_bound`] for the
/// bound of each index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSample {
    /// Subsystem label.
    pub subsystem: String,
    /// Metric name within the subsystem.
    pub name: String,
    /// Non-empty buckets as `(bucket_index, count)`.
    pub buckets: Vec<(usize, u64)>,
    /// Saturating sum of recorded values.
    pub sum: u64,
}

impl HistogramSample {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|&(_, c)| c).sum()
    }

    /// Count in bucket `i` (0 if empty).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.iter().find(|&&(b, _)| b == i).map_or(0, |&(_, c)| c)
    }
}

/// A point-in-time view of a [`Registry`], suitable for diffing,
/// serialising and exposing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// All counters.
    pub counters: Vec<CounterSample>,
    /// All histograms.
    pub histograms: Vec<HistogramSample>,
}

impl Snapshot {
    /// Looks up a counter value.
    pub fn counter(&self, subsystem: &str, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.subsystem == subsystem && c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a histogram sample.
    pub fn histogram(&self, subsystem: &str, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.subsystem == subsystem && h.name == name)
    }

    /// The difference `self - before`, metric by metric (saturating, so a
    /// restarted counter reads 0 rather than wrapping). Metrics absent
    /// from `before` are passed through unchanged; metrics only in
    /// `before` are dropped.
    pub fn delta(&self, before: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|c| CounterSample {
                subsystem: c.subsystem.clone(),
                name: c.name.clone(),
                value: c
                    .value
                    .saturating_sub(before.counter(&c.subsystem, &c.name).unwrap_or(0)),
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                let prev = before.histogram(&h.subsystem, &h.name);
                HistogramSample {
                    subsystem: h.subsystem.clone(),
                    name: h.name.clone(),
                    buckets: h
                        .buckets
                        .iter()
                        .map(|&(i, c)| {
                            (i, c.saturating_sub(prev.map_or(0, |p| p.bucket(i))))
                        })
                        .filter(|&(_, c)| c > 0)
                        .collect(),
                    sum: h.sum.saturating_sub(prev.map_or(0, |p| p.sum)),
                }
            })
            .collect();
        Snapshot { counters, histograms }
    }

    /// Serialises the snapshot as JSON (schema-versioned; round-trips via
    /// [`Snapshot::from_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"schema_version\": {SNAPSHOT_SCHEMA_VERSION},\n  \"counters\": ["
        ));
        for (i, c) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"subsystem\": \"{}\", \"name\": \"{}\", \"value\": {}}}",
                escape(&c.subsystem),
                escape(&c.name),
                c.value
            ));
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let buckets: Vec<String> =
                h.buckets.iter().map(|&(b, c)| format!("[{b}, {c}]")).collect();
            out.push_str(&format!(
                "    {{\"subsystem\": \"{}\", \"name\": \"{}\", \"sum\": {}, \"count\": {}, \"buckets\": [{}]}}",
                escape(&h.subsystem),
                escape(&h.name),
                h.sum,
                h.count(),
                buckets.join(", ")
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a snapshot back from its JSON form.
    ///
    /// # Errors
    ///
    /// [`JsonError`] on malformed JSON or a missing/mistyped field.
    pub fn from_json(text: &str) -> Result<Snapshot, JsonError> {
        let v = Json::parse(text)?;
        let version = v
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| JsonError::new("missing schema_version"))?;
        if !(SNAPSHOT_MIN_SCHEMA_VERSION..=SNAPSHOT_SCHEMA_VERSION).contains(&version) {
            return Err(JsonError::new(format!(
                "unsupported schema_version {version} (expected \
                 {SNAPSHOT_MIN_SCHEMA_VERSION}..={SNAPSHOT_SCHEMA_VERSION})"
            )));
        }
        let mut snap = Snapshot::default();
        for c in v.get("counters").and_then(Json::as_array).unwrap_or(&[]) {
            snap.counters.push(CounterSample {
                subsystem: field_str(c, "subsystem")?,
                name: field_str(c, "name")?,
                value: field_u64(c, "value")?,
            });
        }
        for h in v.get("histograms").and_then(Json::as_array).unwrap_or(&[]) {
            let mut buckets = Vec::new();
            for pair in h.get("buckets").and_then(Json::as_array).unwrap_or(&[]) {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| JsonError::new("bucket must be [index, count]"))?;
                let idx = pair[0]
                    .as_u64()
                    .ok_or_else(|| JsonError::new("bucket index must be a number"))?;
                let count = pair[1]
                    .as_u64()
                    .ok_or_else(|| JsonError::new("bucket count must be a number"))?;
                buckets.push((idx as usize, count));
            }
            snap.histograms.push(HistogramSample {
                subsystem: field_str(h, "subsystem")?,
                name: field_str(h, "name")?,
                buckets,
                sum: field_u64(h, "sum")?,
            });
        }
        Ok(snap)
    }

    /// Renders the snapshot in Prometheus text exposition format
    /// (`ms_<subsystem>_<name>`; histograms as cumulative `_bucket{le=…}`
    /// series).
    pub fn to_prometheus(&self) -> String {
        self.to_prometheus_labeled(&[])
    }

    /// [`Snapshot::to_prometheus`] with constant labels attached to every
    /// series (e.g. `host`, `scan_tier`, `rev`). Label values are escaped
    /// per the exposition format (`\` → `\\`, `"` → `\"`, newline →
    /// `\n`); with no labels the output is byte-identical to
    /// [`Snapshot::to_prometheus`].
    pub fn to_prometheus_labeled(&self, labels: &[(&str, &str)]) -> String {
        let base: String = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
            .collect::<Vec<_>>()
            .join(",");
        // Suffix for plain series ("{k="v"}" or "") and the prefix inside
        // an already-open brace ("k="v"," or "").
        let plain = if base.is_empty() { String::new() } else { format!("{{{base}}}") };
        let inner = if base.is_empty() { String::new() } else { format!("{base},") };
        let mut out = String::new();
        for c in &self.counters {
            let m = metric_name(&c.subsystem, &c.name);
            out.push_str(&format!("# TYPE {m} counter\n{m}{plain} {}\n", c.value));
        }
        for h in &self.histograms {
            let m = metric_name(&h.subsystem, &h.name);
            out.push_str(&format!("# TYPE {m} histogram\n"));
            let mut cumulative = 0;
            for (i, count) in &h.buckets {
                cumulative += count;
                let bound = Histogram::bucket_bound(*i);
                out.push_str(&format!(
                    "{m}_bucket{{{inner}le=\"{bound}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!("{m}_bucket{{{inner}le=\"+Inf\"}} {cumulative}\n"));
            out.push_str(&format!(
                "{m}_sum{plain} {}\n{m}_count{plain} {cumulative}\n",
                h.sum
            ));
        }
        out
    }
}

/// Escapes a Prometheus label value (the exposition format's three escape
/// sequences; everything else passes through, including UTF-8).
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn metric_name(subsystem: &str, name: &str) -> String {
    let sanitize = |s: &str| {
        s.chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect::<String>()
    };
    format!("ms_{}_{}", sanitize(subsystem), sanitize(name))
}

fn field_str(v: &Json, key: &str) -> Result<String, JsonError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| JsonError::new(format!("missing string field {key}")))
}

fn field_u64(v: &Json, key: &str) -> Result<u64, JsonError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| JsonError::new(format!("missing numeric field {key}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_and_share() {
        let reg = Registry::new();
        let a = reg.counter("layer", "sweeps");
        let b = reg.counter("layer", "sweeps");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same cell behind both handles");
        assert_eq!(reg.snapshot().counter("layer", "sweeps"), Some(3));
    }

    #[test]
    fn shared_registry_clone_sees_the_same_metrics() {
        let reg = Registry::new();
        let shared = reg.clone();
        reg.counter("layer", "frees").add(7);
        assert_eq!(shared.snapshot().counter("layer", "frees"), Some(7));
    }

    #[test]
    #[should_panic(expected = "registered as a histogram")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.histogram("x", "y");
        reg.counter("x", "y");
    }

    #[test]
    fn histogram_bucketing_edges() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(1), 1);
        assert_eq!(Histogram::bucket_bound(2), 3);
        assert_eq!(Histogram::bucket_bound(64), u64::MAX);
        // Every value lands in a bucket whose bound covers it.
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX - 1, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_bound(i));
            if i > 0 {
                assert!(v > Histogram::bucket_bound(i - 1));
            }
        }
    }

    #[test]
    fn histogram_records_and_saturates() {
        let h = Histogram::detached();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), u64::MAX, "sum saturates rather than wrapping");
    }

    #[test]
    fn snapshot_delta_algebra() {
        let reg = Registry::new();
        let c = reg.counter("layer", "released");
        let h = reg.histogram("engine", "pause_cycles");
        c.add(5);
        h.record(100);
        let before = reg.snapshot();
        c.add(3);
        h.record(100);
        h.record(0);
        let after = reg.snapshot();

        let d = after.delta(&before);
        assert_eq!(d.counter("layer", "released"), Some(3));
        let dh = d.histogram("engine", "pause_cycles").unwrap();
        assert_eq!(dh.count(), 2);
        assert_eq!(dh.sum, 100);
        assert_eq!(dh.bucket(0), 1);

        // delta(self) is all-zero; delta(empty) is identity.
        let zero = after.delta(&after);
        assert!(zero.counters.iter().all(|c| c.value == 0));
        assert!(zero.histograms.iter().all(|h| h.count() == 0 && h.sum == 0));
        assert_eq!(after.delta(&Snapshot::default()), after);
    }

    #[test]
    fn snapshot_delta_saturates_on_counter_reset() {
        // A restarted process re-registers counters at 0; `after` then
        // reads below `before` and the delta must clamp to 0 instead of
        // wrapping to ~u64::MAX.
        let mk = |sweeps: u64, pause: &[u64]| {
            let reg = Registry::new();
            reg.counter("layer", "sweeps").add(sweeps);
            let h = reg.histogram("engine", "pause_cycles");
            for &v in pause {
                h.record(v);
            }
            reg.snapshot()
        };
        let before = mk(100, &[8, 8, 8]);
        let after = mk(2, &[8]);
        let d = after.delta(&before);
        assert_eq!(d.counter("layer", "sweeps"), Some(0), "underflow saturates");
        let dh = d.histogram("engine", "pause_cycles").unwrap();
        assert_eq!(dh.count(), 0, "bucket underflow saturates");
        assert_eq!(dh.sum, 0, "sum underflow saturates");

        // Metrics absent from `before` pass through; metrics only in
        // `before` are dropped.
        let fresh = Registry::new();
        fresh.counter("bench", "reps").add(7);
        let d2 = fresh.snapshot().delta(&before);
        assert_eq!(d2.counter("bench", "reps"), Some(7));
        assert_eq!(d2.counter("layer", "sweeps"), None);
    }

    #[test]
    fn snapshot_delta_partial_histogram_underflow() {
        // Only some buckets ran backwards (torn/reset source): each bucket
        // saturates independently and empty buckets are dropped.
        let before = Snapshot {
            counters: vec![],
            histograms: vec![HistogramSample {
                subsystem: "engine".into(),
                name: "pause_cycles".into(),
                buckets: vec![(3, 10), (5, 1)],
                sum: 1000,
            }],
        };
        let after = Snapshot {
            counters: vec![],
            histograms: vec![HistogramSample {
                subsystem: "engine".into(),
                name: "pause_cycles".into(),
                buckets: vec![(3, 4), (5, 3)],
                sum: 900,
            }],
        };
        let d = after.delta(&before);
        let dh = d.histogram("engine", "pause_cycles").unwrap();
        assert_eq!(dh.bucket(3), 0);
        assert_eq!(dh.bucket(5), 2);
        assert_eq!(dh.buckets, vec![(5, 2)], "zeroed buckets drop out");
        assert_eq!(dh.sum, 0);
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let reg = Registry::new();
        reg.counter("layer", "sweeps").add(42);
        let h = reg.histogram("engine", "pause_cycles");
        h.record(0);
        h.record(u64::MAX);
        let snap = reg.snapshot();
        let text = snap.to_json();
        let parsed = Snapshot::from_json(&text).unwrap();
        assert_eq!(parsed, snap, "JSON round-trip must be lossless:\n{text}");
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        assert!(Snapshot::from_json("{\"schema_version\": 999}").is_err());
        assert!(Snapshot::from_json("{\"schema_version\": 0}").is_err());
        assert!(Snapshot::from_json("not json").is_err());
    }

    #[test]
    fn version_1_snapshots_still_parse() {
        // Snapshots written before the forensics bump (version 1) carry
        // the same container shape and must keep loading.
        let old = "{\n  \"schema_version\": 1,\n  \"counters\": [\n    \
                   {\"subsystem\": \"layer\", \"name\": \"sweeps\", \"value\": 42}\n  ],\n  \
                   \"histograms\": [\n    {\"subsystem\": \"engine\", \"name\": \"pause_cycles\", \
                   \"sum\": 5, \"count\": 1, \"buckets\": [[3, 1]]}\n  ]\n}\n";
        let snap = Snapshot::from_json(old).unwrap();
        assert_eq!(snap.counter("layer", "sweeps"), Some(42));
        assert_eq!(snap.histogram("engine", "pause_cycles").unwrap().count(), 1);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = Registry::new();
        reg.counter("layer", "sweeps").add(2);
        let h = reg.histogram("engine", "pause-cycles");
        h.record(5);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE ms_layer_sweeps counter"));
        assert!(text.contains("ms_layer_sweeps 2"));
        assert!(text.contains("ms_engine_pause_cycles_bucket{le=\"7\"} 1"));
        assert!(text.contains("ms_engine_pause_cycles_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("ms_engine_pause_cycles_sum 5"));
        assert!(text.contains("ms_engine_pause_cycles_count 1"));
    }

    #[test]
    fn prometheus_labeled_exposition_escapes_values() {
        let reg = Registry::new();
        reg.counter("layer", "sweeps").add(2);
        let h = reg.histogram("engine", "pause_cycles");
        h.record(5);
        let snap = reg.snapshot();

        // No labels: byte-identical to the unlabeled exposition.
        assert_eq!(snap.to_prometheus_labeled(&[]), snap.to_prometheus());

        let hostile = "tier\"a\\b\nend";
        let text = snap.to_prometheus_labeled(&[("host", "box1"), ("tier", hostile)]);
        let escaped = "tier\\\"a\\\\b\\nend";
        assert!(
            text.contains(&format!("ms_layer_sweeps{{host=\"box1\",tier=\"{escaped}\"}} 2")),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "ms_engine_pause_cycles_bucket{{host=\"box1\",tier=\"{escaped}\",le=\"7\"}} 1"
            )),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "ms_engine_pause_cycles_sum{{host=\"box1\",tier=\"{escaped}\"}} 5"
            )),
            "{text}"
        );
        // The raw (unescaped) backslash-quote sequence must not appear.
        assert!(!text.contains(hostile), "label values must be escaped: {text}");
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let reg = Registry::new();
        let c = reg.counter("t", "hits");
        let h = reg.histogram("t", "vals");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
    }
}
