//! Bench-trajectory comparison: noise-aware per-config deltas between two
//! bench metrics snapshots (`ms-report --compare old.json new.json`).
//!
//! The bench exports one `bench/<config>_us` log2 histogram per config
//! (one observation per rep; `sum` and `count` are exact, so the mean is
//! exact) plus `bench/<config>_best_us` (fastest rep) and
//! `bench/<config>_degraded` counters and host facts (`bench/host_cpus`,
//! `bench/scan_tier_<tier>`). A config counts as regressed when its
//! best-rep time got slower by more than both the caller's threshold and
//! the run's own measured noise — and it was not `degraded` (a parallel
//! row the hardware clamped to zero helpers measures nothing real).

use crate::registry::Snapshot;

/// Default regression threshold: 5% on the best-rep time.
pub const DEFAULT_THRESHOLD_PCT: f64 = 5.0;

/// One config's old-vs-new comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfigDelta {
    /// Config name (the `<config>` in `bench/<config>_us`).
    pub name: String,
    /// Fastest rep in the old snapshot, µs (mean when no best counter).
    pub old_best_us: f64,
    /// Fastest rep in the new snapshot, µs (mean when no best counter).
    pub new_best_us: f64,
    /// Mean rep in the old snapshot, µs.
    pub old_mean_us: f64,
    /// Mean rep in the new snapshot, µs.
    pub new_mean_us: f64,
    /// Relative change of the best-rep time, percent (positive = slower).
    pub delta_pct: f64,
    /// Measured rep-to-rep noise: the worse of the two runs'
    /// `(mean/best - 1)`, percent.
    pub noise_pct: f64,
    /// Whether either run flagged the config degraded (zero effective
    /// helpers on a parallel row).
    pub degraded: bool,
    /// Whether this row regressed beyond threshold and noise.
    pub regressed: bool,
}

/// The full comparison: per-config rows plus host like-for-like checks.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CompareReport {
    /// One row per config present in both snapshots, in the new
    /// snapshot's order.
    pub rows: Vec<ConfigDelta>,
    /// Host facts that differ between the snapshots (CPU count, scan
    /// tier) — deltas across different hosts are not like-for-like.
    pub host_mismatches: Vec<String>,
    /// Configs present in only one snapshot (reported, never gated on).
    pub unmatched: Vec<String>,
}

impl CompareReport {
    /// Rows that regressed (non-degraded, beyond threshold and noise).
    pub fn regressions(&self) -> Vec<&ConfigDelta> {
        self.rows.iter().filter(|r| r.regressed).collect()
    }

    /// Whether the comparison crossed hosts (gate decisions should treat
    /// regressions as warnings then).
    pub fn cross_host(&self) -> bool {
        !self.host_mismatches.is_empty()
    }

    /// Renders the `ms-report --compare` table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for m in &self.host_mismatches {
            out.push_str(&format!("warning: host mismatch: {m}\n"));
        }
        out.push_str(
            "config                        old_best_us  new_best_us   delta    noise   verdict\n",
        );
        for r in &self.rows {
            let verdict = if r.degraded {
                "skip (degraded)"
            } else if r.regressed {
                "REGRESSED"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "{:<28}  {:>11.1}  {:>11.1}  {:>+6.1}%  {:>5.1}%  {verdict}\n",
                r.name, r.old_best_us, r.new_best_us, r.delta_pct, r.noise_pct
            ));
        }
        for name in &self.unmatched {
            out.push_str(&format!("{name:<28}  (present in only one snapshot)\n"));
        }
        let n = self.regressions().len();
        out.push_str(&format!(
            "{} configs compared, {n} regressed\n",
            self.rows.len()
        ));
        out
    }
}

fn strip_us(name: &str) -> Option<&str> {
    name.strip_suffix("_us").filter(|s| !s.ends_with("_best"))
}

fn config_stats(snap: &Snapshot, config: &str) -> Option<(f64, f64)> {
    let h = snap.histogram("bench", &format!("{config}_us")).filter(|h| h.count() > 0)?;
    let mean = h.sum as f64 / h.count() as f64;
    // A degraded run's best-rep counter timed a hardware-clamped,
    // helperless configuration — letting it stand in for the config would
    // let a multi-core host trip the gate against a 1-CPU baseline (or a
    // 1-CPU host mask a real regression). Degraded rows fall back to the
    // histogram mean and are additionally excluded from gating below.
    let best = if degraded(snap, config) {
        mean
    } else {
        snap.counter("bench", &format!("{config}_best_us")).map_or(mean, |b| b as f64)
    };
    Some((best, mean))
}

fn degraded(snap: &Snapshot, config: &str) -> bool {
    snap.counter("bench", &format!("{config}_degraded")).unwrap_or(0) > 0
}

/// Compares two bench metrics snapshots. `threshold_pct` is the minimum
/// relative slowdown of the best-rep time to call a regression (use
/// [`DEFAULT_THRESHOLD_PCT`]); the effective bar per config is
/// `max(threshold_pct, noise_pct)`.
pub fn compare(old: &Snapshot, new: &Snapshot, threshold_pct: f64) -> CompareReport {
    let mut report = CompareReport::default();

    // Host like-for-like checks over the bench host facts.
    let cpus = |s: &Snapshot| s.counter("bench", "host_cpus");
    if let (Some(a), Some(b)) = (cpus(old), cpus(new)) {
        if a != b {
            report.host_mismatches.push(format!("old ran on {a} CPUs, new on {b}"));
        }
    }
    let tier = |s: &Snapshot| {
        s.counters
            .iter()
            .find(|c| {
                c.subsystem == "bench" && c.name.starts_with("scan_tier_") && c.value > 0
            })
            .map(|c| c.name["scan_tier_".len()..].to_owned())
    };
    if let (Some(a), Some(b)) = (tier(old), tier(new)) {
        if a != b {
            report
                .host_mismatches
                .push(format!("old ran scan tier {a}, new ran {b}"));
        }
    }

    for h in &new.histograms {
        if h.subsystem != "bench" {
            continue;
        }
        let Some(config) = strip_us(&h.name) else { continue };
        let Some((new_best, new_mean)) = config_stats(new, config) else { continue };
        let Some((old_best, old_mean)) = config_stats(old, config) else {
            report.unmatched.push(config.to_owned());
            continue;
        };
        let delta_pct = if old_best > 0.0 {
            (new_best - old_best) / old_best * 100.0
        } else {
            0.0
        };
        let spread = |mean: f64, best: f64| {
            if best > 0.0 {
                (mean / best - 1.0) * 100.0
            } else {
                0.0
            }
        };
        let noise_pct = spread(old_mean, old_best).max(spread(new_mean, new_best));
        let degraded = degraded(old, config) || degraded(new, config);
        let regressed = !degraded && delta_pct > threshold_pct.max(noise_pct);
        report.rows.push(ConfigDelta {
            name: config.to_owned(),
            old_best_us: old_best,
            new_best_us: new_best,
            old_mean_us: old_mean,
            new_mean_us: new_mean,
            delta_pct,
            noise_pct,
            degraded,
            regressed,
        });
    }
    for h in &old.histograms {
        if h.subsystem != "bench" {
            continue;
        }
        let Some(config) = strip_us(&h.name) else { continue };
        if new.histogram("bench", &h.name).is_none() {
            report.unmatched.push(config.to_owned());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    /// Builds a bench-shaped snapshot: per-config rep times in µs plus
    /// host facts.
    fn bench_snapshot(configs: &[(&str, &[u64], bool)], cpus: u64, tier: &str) -> Snapshot {
        let reg = Registry::new();
        reg.counter("bench", "host_cpus").add(cpus);
        reg.counter("bench", &format!("scan_tier_{tier}")).add(1);
        for (name, reps, degraded) in configs {
            let h = reg.histogram("bench", &format!("{name}_us"));
            for &r in *reps {
                h.record(r);
            }
            reg.counter("bench", &format!("{name}_best_us"))
                .add(reps.iter().copied().min().unwrap_or(0));
            if *degraded {
                reg.counter("bench", &format!("{name}_degraded")).inc();
            }
        }
        reg.snapshot()
    }

    #[test]
    fn synthetic_ten_percent_slowdown_is_flagged() {
        // Tight reps (≈1% noise), then a clean 10% slowdown: the gate must
        // fire with the default 5% threshold.
        let old = bench_snapshot(&[("simd_serial", &[1000, 1005, 1010], false)], 1, "avx2");
        let new = bench_snapshot(&[("simd_serial", &[1100, 1105, 1111], false)], 1, "avx2");
        let report = compare(&old, &new, DEFAULT_THRESHOLD_PCT);
        assert!(report.host_mismatches.is_empty());
        assert_eq!(report.rows.len(), 1);
        let r = &report.rows[0];
        assert!((r.delta_pct - 10.0).abs() < 0.5, "{r:?}");
        assert!(r.noise_pct < 2.0, "{r:?}");
        assert!(r.regressed, "{r:?}");
        assert_eq!(report.regressions().len(), 1);
        let table = report.render();
        assert!(table.contains("REGRESSED"), "{table}");
        assert!(table.contains("1 regressed"), "{table}");
    }

    #[test]
    fn noise_and_improvements_do_not_flag() {
        // A 3% wobble under the 5% threshold: ok.
        let old = bench_snapshot(&[("a", &[1000, 1001], false)], 1, "swar");
        let new = bench_snapshot(&[("a", &[1030, 1032], false)], 1, "swar");
        assert!(compare(&old, &new, DEFAULT_THRESHOLD_PCT).regressions().is_empty());

        // A 20% slowdown inside a ~27% measured noise band: ok.
        let old = bench_snapshot(&[("b", &[1000, 1400, 1400], false)], 1, "swar");
        let new = bench_snapshot(&[("b", &[1200, 1500, 1560], false)], 1, "swar");
        let report = compare(&old, &new, DEFAULT_THRESHOLD_PCT);
        assert!(report.rows[0].noise_pct > 25.0, "{:?}", report.rows[0]);
        assert!(report.regressions().is_empty());

        // A 10% speedup: negative delta never flags.
        let old = bench_snapshot(&[("c", &[1000], false)], 1, "swar");
        let new = bench_snapshot(&[("c", &[900], false)], 1, "swar");
        assert!(compare(&old, &new, DEFAULT_THRESHOLD_PCT).regressions().is_empty());
    }

    #[test]
    fn degraded_rows_are_skipped_and_hosts_are_checked() {
        let old = bench_snapshot(
            &[("steal_parallel_h6", &[1000], true), ("simd_serial", &[1000], false)],
            1,
            "avx2",
        );
        let new = bench_snapshot(
            &[("steal_parallel_h6", &[2000], true), ("simd_serial", &[1500], false)],
            8,
            "swar",
        );
        let report = compare(&old, &new, DEFAULT_THRESHOLD_PCT);
        let steal = report.rows.iter().find(|r| r.name == "steal_parallel_h6").unwrap();
        assert!(steal.degraded && !steal.regressed, "degraded rows never gate");
        let simd = report.rows.iter().find(|r| r.name == "simd_serial").unwrap();
        assert!(simd.regressed);
        assert!(report.cross_host());
        assert_eq!(report.host_mismatches.len(), 2, "{:?}", report.host_mismatches);
        let table = report.render();
        assert!(table.contains("skip (degraded)"), "{table}");
        assert!(table.contains("host mismatch"), "{table}");
    }

    #[test]
    fn unmatched_configs_are_reported_not_gated() {
        let old = bench_snapshot(&[("gone", &[100], false)], 1, "swar");
        let new = bench_snapshot(&[("fresh", &[100], false)], 1, "swar");
        let report = compare(&old, &new, DEFAULT_THRESHOLD_PCT);
        assert!(report.rows.is_empty());
        assert!(report.regressions().is_empty());
        assert_eq!(report.unmatched, vec!["fresh".to_owned(), "gone".to_owned()]);
    }

    #[test]
    fn degraded_best_counters_never_represent_a_config() {
        // A 1-CPU CI container records a parallel row as degraded: its
        // _best_us timed a clamped, helperless run. A multi-core host
        // comparing against that baseline must neither trip the gate on
        // the bogus number nor let it mask a real regression — the row's
        // stats fall back to the histogram mean and gating skips it.
        let old = bench_snapshot(&[("steal_parallel_h6", &[4000, 4100], true)], 1, "swar");
        let new =
            bench_snapshot(&[("steal_parallel_h6", &[1000, 1050], false)], 8, "avx2");
        let report = compare(&old, &new, DEFAULT_THRESHOLD_PCT);
        let r = &report.rows[0];
        assert!(r.degraded && !r.regressed, "{r:?}");
        assert!((r.old_best_us - 4050.0).abs() < 1e-9, "mean, not the counter: {r:?}");
        assert!((r.new_best_us - 1000.0).abs() < 1e-9, "clean side keeps its best: {r:?}");

        // The reverse direction — a regression hiding behind a degraded
        // new run — is likewise skipped, not reported as ok.
        let report = compare(&new, &old, DEFAULT_THRESHOLD_PCT);
        assert!(report.rows[0].degraded && !report.rows[0].regressed);
        assert!(report.regressions().is_empty());
    }

    #[test]
    fn missing_best_counter_falls_back_to_mean() {
        // Old snapshots (pre-trajectory bench) carry only the histogram.
        let reg = Registry::new();
        let h = reg.histogram("bench", "simd_serial_us");
        h.record(1000);
        h.record(1000);
        let old = reg.snapshot();
        let new = bench_snapshot(&[("simd_serial", &[1200, 1210], false)], 1, "swar");
        let report = compare(&old, &new, DEFAULT_THRESHOLD_PCT);
        let r = &report.rows[0];
        assert!((r.old_best_us - 1000.0).abs() < 1e-9, "{r:?}");
        assert!(r.regressed, "20% up from the mean fallback: {r:?}");
    }
}
