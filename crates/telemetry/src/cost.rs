//! Cost-attribution ledger: tags every defence-cycle charge with a
//! [`CostKind`] and an attribution key (allocation site, arena), and
//! accumulates them as ordinary `cost/*` registry metrics so the existing
//! snapshot / delta / JSON machinery carries them for free.
//!
//! The design is *dual accumulation*: every charge lands in
//!
//! * `cost/total_cycles` — the independent grand total,
//! * a per-kind counter `cost/kind_<k>_cycles` **and** a per-kind
//!   histogram `cost/kind_<k>_cycles_hist` (counter for the sum,
//!   histogram for the per-charge distribution),
//! * a per-site counter `cost/site_<id>_cycles` (or `site_none_cycles`),
//! * a per-arena counter `cost/arena_<label>_cycles` (or
//!   `arena_none_cycles`).
//!
//! Each of the three attribution dimensions therefore sums to the total
//! independently, and each kind's counter must equal its histogram's sum.
//! [`CostLedger::reconcile`] checks all of these and **names the kind (or
//! dimension) that leaked**, which is what `ms-report --costs --check`
//! gates on. [`CostRecorder::set_drop`] deliberately skips one kind's
//! counter (histogram and total still charged) so CI can prove the gate
//! fires.

use std::collections::HashMap;

use crate::registry::{Counter, Histogram, Registry, Snapshot};

/// Subsystem label for all ledger metrics.
pub const COST_SUBSYSTEM: &str = "cost";

/// What a defence-cycle charge paid for.
///
/// The taxonomy follows the sim's `CostModel` charge points; every charge
/// the engine (or the exploit interpreter's per-backend recipes) makes is
/// tagged with exactly one kind, so the kinds partition the total.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum CostKind {
    /// Zero-on-free memory scrubbing.
    Zeroing,
    /// Quarantine bookkeeping: insert, thread-local buffer flush, unmap.
    Quarantine,
    /// Linear mark/scan work (chunk scanning + survivor upkeep).
    MarkScan,
    /// Incremental-sweep skip replay (clean pages replayed from digests).
    SkipReplay,
    /// Forensics: pin-edge provenance and pointer-tracking upkeep.
    Forensics,
    /// Stop-the-world passes and blocking pause stalls.
    Stw,
    /// Sweep-scheduler round setup.
    SchedSetup,
    /// Quarantine release and page purge/decommit work.
    Release,
    /// Demand-commit faults taken by the sweeper.
    Commit,
}

impl CostKind {
    /// Every kind, in canonical (serialisation) order.
    pub const ALL: [CostKind; 9] = [
        CostKind::Zeroing,
        CostKind::Quarantine,
        CostKind::MarkScan,
        CostKind::SkipReplay,
        CostKind::Forensics,
        CostKind::Stw,
        CostKind::SchedSetup,
        CostKind::Release,
        CostKind::Commit,
    ];

    /// Stable snake_case label used in metric names and JSON.
    pub fn label(self) -> &'static str {
        match self {
            CostKind::Zeroing => "zeroing",
            CostKind::Quarantine => "quarantine",
            CostKind::MarkScan => "mark_scan",
            CostKind::SkipReplay => "skip_replay",
            CostKind::Forensics => "forensics",
            CostKind::Stw => "stw",
            CostKind::SchedSetup => "sched_setup",
            CostKind::Release => "release",
            CostKind::Commit => "commit",
        }
    }

    /// Parses a [`CostKind::label`] back (`None` for unknown labels).
    pub fn from_label(s: &str) -> Option<CostKind> {
        CostKind::ALL.iter().copied().find(|k| k.label() == s)
    }

    /// Position of this kind in [`CostKind::ALL`] — the canonical index
    /// for fixed-size per-kind arrays (e.g. `DefenceCost` in the sim).
    pub fn index(self) -> usize {
        CostKind::ALL.iter().position(|&k| k == self).expect("kind in ALL")
    }
}

/// Live recorder: one per engine/pool run, registered on that run's
/// [`Registry`]. The hot path is a handful of relaxed atomic adds; site
/// and arena counter handles are memoised so registration's mutex is hit
/// once per distinct key.
#[derive(Debug)]
pub struct CostRecorder {
    total: Counter,
    kinds: Vec<Counter>,
    kind_hists: Vec<Histogram>,
    per_sweep: Histogram,
    sites: HashMap<Option<u32>, Counter>,
    arenas: HashMap<Option<String>, Counter>,
    registry: Registry,
    dropped: Option<CostKind>,
}

impl CostRecorder {
    /// Creates a recorder and eagerly registers the total and per-kind
    /// metrics (so a zero-cost run still snapshots a complete ledger).
    pub fn new(registry: &Registry) -> CostRecorder {
        let total = registry.counter(COST_SUBSYSTEM, "total_cycles");
        let mut kinds = Vec::with_capacity(CostKind::ALL.len());
        let mut kind_hists = Vec::with_capacity(CostKind::ALL.len());
        for k in CostKind::ALL {
            let name = format!("kind_{}_cycles", k.label());
            kinds.push(registry.counter(COST_SUBSYSTEM, &name));
            kind_hists.push(registry.histogram(COST_SUBSYSTEM, &format!("{name}_hist")));
        }
        CostRecorder {
            total,
            kinds,
            kind_hists,
            per_sweep: registry.histogram(COST_SUBSYSTEM, "per_sweep_cycles"),
            sites: HashMap::new(),
            arenas: HashMap::new(),
            registry: registry.clone(),
            dropped: None,
        }
    }

    /// Self-test leak injection: skip `kind`'s *counter* on every future
    /// charge while still feeding its histogram and the total, so
    /// reconciliation fails and names exactly that kind.
    pub fn set_drop(&mut self, kind: Option<CostKind>) {
        self.dropped = kind;
    }

    /// Records one charge. Zero-cycle charges are ignored (they cannot
    /// move any sum and would only pollute the histograms).
    pub fn charge(
        &mut self,
        kind: CostKind,
        cycles: u64,
        site: Option<u32>,
        arena: Option<&str>,
    ) {
        if cycles == 0 {
            return;
        }
        self.total.add(cycles);
        let i = kind.index();
        if self.dropped != Some(kind) {
            self.kinds[i].add(cycles);
        }
        self.kind_hists[i].record(cycles);
        let registry = &self.registry;
        self.sites
            .entry(site)
            .or_insert_with(|| {
                let name = match site {
                    Some(id) => format!("site_{id}_cycles"),
                    None => "site_none_cycles".into(),
                };
                registry.counter(COST_SUBSYSTEM, &name)
            })
            .add(cycles);
        self.arenas
            .entry(arena.map(String::from))
            .or_insert_with(|| {
                let name = match arena {
                    Some(label) => format!("arena_{label}_cycles"),
                    None => "arena_none_cycles".into(),
                };
                registry.counter(COST_SUBSYSTEM, &name)
            })
            .add(cycles);
    }

    /// Total defence cycles recorded so far.
    pub fn total(&self) -> u64 {
        self.total.get()
    }

    /// Attributes `cycles` to one sweep generation — a distribution view
    /// (`cost/per_sweep_cycles`), not part of the conservation sums.
    pub fn record_sweep(&self, cycles: u64) {
        self.per_sweep.record(cycles);
    }
}

/// A typed view of the `cost/*` metrics in a [`Snapshot`] (or a snapshot
/// *delta* — the ledger composes with the existing delta algebra because
/// it is built from plain counters and histograms).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostLedger {
    /// Independently accumulated grand total (`cost/total_cycles`).
    pub total: u64,
    /// Per-kind `(label, counter_cycles, histogram_sum)` in
    /// [`CostKind::ALL`] order.
    pub kinds: Vec<(String, u64, u64)>,
    /// Per-site `(key, cycles)`; key is the numeric site id as text or
    /// `"none"` for unattributed charges. Sorted by cycles descending.
    pub sites: Vec<(String, u64)>,
    /// Per-arena `(label, cycles)`, sorted by cycles descending.
    pub arenas: Vec<(String, u64)>,
}

fn strip<'a>(name: &'a str, prefix: &str, suffix: &str) -> Option<&'a str> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)
}

impl CostLedger {
    /// Extracts the ledger from a snapshot; `None` when the snapshot
    /// carries no `cost/total_cycles` counter (ledger was off).
    pub fn from_snapshot(snap: &Snapshot) -> Option<CostLedger> {
        let total = snap.counter(COST_SUBSYSTEM, "total_cycles")?;
        let mut kinds = Vec::with_capacity(CostKind::ALL.len());
        for k in CostKind::ALL {
            let name = format!("kind_{}_cycles", k.label());
            let counted = snap.counter(COST_SUBSYSTEM, &name).unwrap_or(0);
            let summed = snap
                .histogram(COST_SUBSYSTEM, &format!("{name}_hist"))
                .map_or(0, |h| h.sum);
            kinds.push((k.label().to_string(), counted, summed));
        }
        let mut sites = Vec::new();
        let mut arenas = Vec::new();
        for c in &snap.counters {
            if c.subsystem != COST_SUBSYSTEM {
                continue;
            }
            if let Some(key) = strip(&c.name, "site_", "_cycles") {
                sites.push((key.to_string(), c.value));
            } else if let Some(key) = strip(&c.name, "arena_", "_cycles") {
                arenas.push((key.to_string(), c.value));
            }
        }
        sites.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        arenas.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Some(CostLedger { total, kinds, sites, arenas })
    }

    /// Sum of the per-kind counters.
    pub fn kind_sum(&self) -> u64 {
        self.kinds.iter().map(|(_, c, _)| c).sum()
    }

    /// Checks the conservation invariants and returns every violation,
    /// each naming the kind or dimension that leaked. Empty = clean.
    ///
    /// Invariants: each kind's counter equals its histogram sum; the
    /// kind, site and arena dimensions each sum to `total_cycles`.
    pub fn reconcile(&self) -> Vec<String> {
        let mut leaks = Vec::new();
        for (label, counted, summed) in &self.kinds {
            if counted != summed {
                leaks.push(format!(
                    "kind {label}: counter {counted} != histogram sum {summed} \
                     (charge leaked in {label})"
                ));
            }
        }
        let check_dim = |leaks: &mut Vec<String>, dim: &str, sum: u64| {
            if sum != self.total {
                leaks.push(format!(
                    "{dim} dimension sums to {sum}, total_cycles is {}",
                    self.total
                ));
            }
        };
        check_dim(&mut leaks, "kind", self.kind_sum());
        check_dim(&mut leaks, "site", self.sites.iter().map(|(_, v)| v).sum());
        check_dim(&mut leaks, "arena", self.arenas.iter().map(|(_, v)| v).sum());
        leaks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_roundtrip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in CostKind::ALL {
            assert_eq!(CostKind::from_label(k.label()), Some(k));
            assert!(seen.insert(k.label()), "duplicate label {}", k.label());
        }
        assert_eq!(CostKind::from_label("bogus"), None);
    }

    #[test]
    fn recorder_conserves_across_all_dimensions() {
        let reg = Registry::new();
        let mut rec = CostRecorder::new(&reg);
        rec.charge(CostKind::Zeroing, 100, Some(7), None);
        rec.charge(CostKind::Quarantine, 40, Some(7), Some("a0"));
        rec.charge(CostKind::MarkScan, 900, None, Some("a1"));
        rec.charge(CostKind::Stw, 0, None, None); // ignored
        assert_eq!(rec.total(), 1040);

        let ledger = CostLedger::from_snapshot(&reg.snapshot()).unwrap();
        assert_eq!(ledger.total, 1040);
        assert_eq!(ledger.reconcile(), Vec::<String>::new());
        assert_eq!(ledger.sites[0], ("none".to_string(), 900));
        assert!(ledger.sites.contains(&("7".to_string(), 140)));
        assert!(ledger.arenas.contains(&("a1".to_string(), 900)));
    }

    #[test]
    fn dropped_kind_is_named_by_reconcile() {
        let reg = Registry::new();
        let mut rec = CostRecorder::new(&reg);
        rec.charge(CostKind::Zeroing, 10, None, None);
        rec.set_drop(Some(CostKind::Stw));
        rec.charge(CostKind::Stw, 55, None, None);

        let ledger = CostLedger::from_snapshot(&reg.snapshot()).unwrap();
        let leaks = ledger.reconcile();
        assert!(!leaks.is_empty());
        assert!(leaks.iter().any(|l| l.contains("kind stw")), "{leaks:?}");
        // Sites and arenas still conserve: the drop only loses the kind
        // counter, so exactly the kind checks fire.
        assert!(leaks.iter().all(|l| !l.contains("site dimension")), "{leaks:?}");
    }

    #[test]
    fn ledger_supports_delta_algebra() {
        let reg = Registry::new();
        let mut rec = CostRecorder::new(&reg);
        rec.charge(CostKind::Release, 70, Some(1), Some("a0"));
        let before = reg.snapshot();
        rec.charge(CostKind::Release, 30, Some(1), Some("a0"));
        rec.charge(CostKind::Commit, 2500, None, Some("a0"));
        let after = reg.snapshot();

        let ledger = CostLedger::from_snapshot(&after.delta(&before)).unwrap();
        assert_eq!(ledger.total, 2530);
        assert_eq!(ledger.reconcile(), Vec::<String>::new());
        assert_eq!(ledger.arenas, vec![("a0".to_string(), 2530)]);
    }

    #[test]
    fn absent_cost_counters_yield_no_ledger() {
        let reg = Registry::new();
        reg.counter("engine", "unrelated").inc();
        assert!(CostLedger::from_snapshot(&reg.snapshot()).is_none());
    }
}
