//! Per-sweep timelines: folds a stream of [`Event`]s into one
//! [`SweepRecord`] per sweep, aggregates them into a [`RunReport`], and
//! renders the paper-style summary tables (`Fig. 13`/`Fig. 14`:
//! failed-free rates over sweeps, quarantine high-water marks, pause-time
//! histograms).

use crate::json::JsonError;
use crate::registry::{Histogram, HistogramSample, Snapshot};
use crate::trace::{Event, EventKind, Trigger};

/// Everything one sweep did, folded from its lifecycle events.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepRecord {
    /// 1-based sweep number.
    pub sweep: u64,
    /// What fired the sweep (absent if the trace starts mid-sweep).
    pub trigger: Option<Trigger>,
    /// Virtual time at `SweepStart`.
    pub start_vnow: u64,
    /// Virtual time at `SweepEnd` (equal to `start_vnow` if the sweep
    /// never finished within the trace).
    pub end_vnow: u64,
    /// Swept quarantined bytes when the sweep started.
    pub quarantine_bytes: u64,
    /// Quarantined entries when the sweep started.
    pub quarantine_entries: u64,
    /// Bytes advanced through during marking.
    pub mark_bytes: u64,
    /// Words examined during marking.
    pub mark_words: u64,
    /// Bytes marking advanced through without reading (incremental sweep:
    /// cache-replayed clean pages plus protected/unmapped skips).
    pub mark_skipped_bytes: u64,
    /// Shadow-map granules marked.
    pub marked_granules: u64,
    /// Wall-clock marking time (ns; 0 in deterministic traces).
    pub mark_wall_ns: u64,
    /// Pages re-checked by the stop-the-world pass.
    pub stw_pages: u64,
    /// Words re-checked by the stop-the-world pass.
    pub stw_words: u64,
    /// Entries released back to the allocator.
    pub released: u64,
    /// Bytes released back to the allocator.
    pub released_bytes: u64,
    /// Entries retained by dangling pointers (failed frees, §5.4).
    pub failed_frees: u64,
    /// Pages the allocator purge decommitted after the sweep.
    pub purged_pages: u64,
    /// Wall-clock sweep duration (ns; 0 in deterministic traces).
    pub wall_ns: u64,
}

impl SweepRecord {
    /// Fraction of this sweep's candidate entries that failed to free
    /// (`failed / (released + failed)`), the per-sweep quantity behind
    /// the paper's Fig. 13.
    pub fn failed_free_rate(&self) -> f64 {
        let total = self.released + self.failed_frees;
        if total == 0 {
            0.0
        } else {
            self.failed_frees as f64 / total as f64
        }
    }

    /// Sweep duration in virtual cost units.
    pub fn virtual_duration(&self) -> u64 {
        self.end_vnow.saturating_sub(self.start_vnow)
    }

    /// Fraction of the marking phase's bytes that were skipped rather
    /// than read (`mark_skipped_bytes / mark_bytes`; 0 when nothing was
    /// marked) — the incremental sweep's effectiveness for this sweep.
    pub fn skip_rate(&self) -> f64 {
        if self.mark_bytes == 0 {
            0.0
        } else {
            self.mark_skipped_bytes as f64 / self.mark_bytes as f64
        }
    }
}

/// A whole run's timeline: every sweep plus the quarantine-flush
/// traffic between them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// One record per sweep, in sweep order.
    pub sweeps: Vec<SweepRecord>,
    /// Thread-local quarantine buffer flushes observed.
    pub flushes: u64,
    /// Entries those flushes spilled to the global quarantine.
    pub flushed_entries: u64,
    /// Total events folded in.
    pub events: u64,
}

impl RunReport {
    /// Folds a stream of events (in emission order) into a report.
    /// Events for a sweep number not yet seen open a new record, so a
    /// trace that starts mid-sweep still aggregates.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a Event>) -> RunReport {
        let mut report = RunReport::default();
        for event in events {
            report.events += 1;
            match &event.kind {
                EventKind::SweepStart { sweep, trigger, quarantine_bytes, quarantine_entries } => {
                    let r = report.record_mut(*sweep);
                    r.trigger = Some(*trigger);
                    r.start_vnow = event.vnow;
                    r.end_vnow = event.vnow;
                    r.quarantine_bytes = *quarantine_bytes;
                    r.quarantine_entries = *quarantine_entries;
                }
                EventKind::MarkPhase {
                    sweep,
                    bytes,
                    words,
                    skipped_bytes,
                    marked_granules,
                    wall_ns,
                } => {
                    let r = report.record_mut(*sweep);
                    r.mark_bytes += bytes;
                    r.mark_words += words;
                    r.mark_skipped_bytes += skipped_bytes;
                    r.marked_granules = *marked_granules;
                    r.mark_wall_ns += wall_ns;
                }
                EventKind::StwPass { sweep, pages, words } => {
                    let r = report.record_mut(*sweep);
                    r.stw_pages += pages;
                    r.stw_words += words;
                }
                EventKind::Release { sweep, released, released_bytes, failed_frees } => {
                    let r = report.record_mut(*sweep);
                    r.released += released;
                    r.released_bytes += released_bytes;
                    r.failed_frees += failed_frees;
                }
                EventKind::Purge { sweep, purged_pages } => {
                    report.record_mut(*sweep).purged_pages += purged_pages;
                }
                EventKind::QuarantineFlush { entries } => {
                    report.flushes += 1;
                    report.flushed_entries += entries;
                }
                EventKind::SweepEnd { sweep, wall_ns } => {
                    let r = report.record_mut(*sweep);
                    r.end_vnow = event.vnow;
                    r.wall_ns = *wall_ns;
                }
            }
        }
        report
    }

    /// Parses a JSONL trace (one event per line, blank lines ignored)
    /// and folds it into a report.
    ///
    /// # Errors
    ///
    /// [`JsonError`] if any line fails to parse as an event.
    pub fn from_jsonl(text: &str) -> Result<RunReport, JsonError> {
        let mut events = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            events.push(Event::from_json(line)?);
        }
        Ok(RunReport::from_events(&events))
    }

    fn record_mut(&mut self, sweep: u64) -> &mut SweepRecord {
        if let Some(i) = self.sweeps.iter().position(|r| r.sweep == sweep) {
            &mut self.sweeps[i]
        } else {
            self.sweeps.push(SweepRecord { sweep, ..SweepRecord::default() });
            self.sweeps.last_mut().expect("just pushed")
        }
    }

    /// Total entries released across all sweeps.
    pub fn total_released(&self) -> u64 {
        self.sweeps.iter().map(|r| r.released).sum()
    }

    /// Total bytes released across all sweeps.
    pub fn total_released_bytes(&self) -> u64 {
        self.sweeps.iter().map(|r| r.released_bytes).sum()
    }

    /// Total failed frees across all sweeps.
    pub fn total_failed_frees(&self) -> u64 {
        self.sweeps.iter().map(|r| r.failed_frees).sum()
    }

    /// Total bytes advanced through during marking across all sweeps.
    pub fn total_mark_bytes(&self) -> u64 {
        self.sweeps.iter().map(|r| r.mark_bytes).sum()
    }

    /// Total bytes marking skipped (cache replay + protected/unmapped)
    /// across all sweeps.
    pub fn total_mark_skipped_bytes(&self) -> u64 {
        self.sweeps.iter().map(|r| r.mark_skipped_bytes).sum()
    }

    /// Total stop-the-world pages re-checked across all sweeps.
    pub fn total_stw_pages(&self) -> u64 {
        self.sweeps.iter().map(|r| r.stw_pages).sum()
    }

    /// Cumulative failed-free rate over the whole run.
    pub fn failed_free_rate(&self) -> f64 {
        let total = self.total_released() + self.total_failed_frees();
        if total == 0 {
            0.0
        } else {
            self.total_failed_frees() as f64 / total as f64
        }
    }

    /// The largest quarantine footprint any sweep started with — the
    /// run's quarantine high-water mark in bytes.
    pub fn quarantine_high_water_bytes(&self) -> u64 {
        self.sweeps.iter().map(|r| r.quarantine_bytes).max().unwrap_or(0)
    }

    /// The largest entry count any sweep started with.
    pub fn quarantine_high_water_entries(&self) -> u64 {
        self.sweeps.iter().map(|r| r.quarantine_entries).max().unwrap_or(0)
    }

    /// Checks the timeline against a metrics [`Snapshot`] from the same
    /// run: event-derived totals must exactly equal the layer's counters.
    /// This is the cross-check that keeps the two telemetry planes
    /// honest with each other.
    ///
    /// # Errors
    ///
    /// A human-readable description of every mismatched metric.
    pub fn reconcile(&self, snap: &Snapshot) -> Result<(), String> {
        let mut mismatches = Vec::new();
        let mut check = |name: &str, from_events: u64| {
            let from_counters = snap.counter("layer", name).unwrap_or(0);
            if from_events != from_counters {
                mismatches.push(format!(
                    "{name}: events say {from_events}, counters say {from_counters}"
                ));
            }
        };
        check("sweeps", self.sweeps.len() as u64);
        check("released", self.total_released());
        check("released_bytes", self.total_released_bytes());
        check("failed_frees", self.total_failed_frees());
        check("swept_bytes", self.total_mark_bytes());
        check("skipped_bytes", self.total_mark_skipped_bytes());
        check("stw_pages", self.total_stw_pages());
        check("tl_flushes", self.flushes);
        check("tl_flushed_entries", self.flushed_entries);
        if mismatches.is_empty() {
            Ok(())
        } else {
            Err(mismatches.join("; "))
        }
    }

    /// Renders the Fig. 13-style table: per-sweep failed-free counts and
    /// rates, with a cumulative-total row.
    pub fn failed_free_table(&self) -> String {
        let mut out = String::from(
            "sweep  trigger       released  failed  rate     cumulative\n",
        );
        let mut cum_released = 0u64;
        let mut cum_failed = 0u64;
        for r in &self.sweeps {
            cum_released += r.released;
            cum_failed += r.failed_frees;
            let cum_total = cum_released + cum_failed;
            let cum_rate = if cum_total == 0 {
                0.0
            } else {
                cum_failed as f64 / cum_total as f64
            };
            out.push_str(&format!(
                "{:>5}  {:<12}  {:>8}  {:>6}  {:>6.2}%  {:>9.2}%\n",
                r.sweep,
                r.trigger.map_or("?", Trigger::as_str),
                r.released,
                r.failed_frees,
                r.failed_free_rate() * 100.0,
                cum_rate * 100.0,
            ));
        }
        out.push_str(&format!(
            "total  {:<12}  {:>8}  {:>6}  {:>6.2}%\n",
            "",
            self.total_released(),
            self.total_failed_frees(),
            self.failed_free_rate() * 100.0,
        ));
        out
    }

    /// Renders the quarantine table: per-sweep footprint at sweep start
    /// plus the run high-water marks.
    pub fn quarantine_table(&self) -> String {
        let mut out =
            String::from("sweep  quarantine_bytes  entries   released_bytes  purged_pages\n");
        for r in &self.sweeps {
            out.push_str(&format!(
                "{:>5}  {:>16}  {:>7}  {:>15}  {:>12}\n",
                r.sweep, r.quarantine_bytes, r.quarantine_entries, r.released_bytes, r.purged_pages
            ));
        }
        out.push_str(&format!(
            "high-water: {} bytes / {} entries; flushes: {} ({} entries)\n",
            self.quarantine_high_water_bytes(),
            self.quarantine_high_water_entries(),
            self.flushes,
            self.flushed_entries,
        ));
        out
    }
}

/// Renders a pause-time histogram sample (Fig. 14-style) as an ASCII
/// table: one row per occupied log2 bucket with a proportional bar.
pub fn pause_table(sample: &HistogramSample, unit: &str) -> String {
    let total = sample.count();
    let mut out = format!(
        "{}/{} — {} observations, sum {} {}\n",
        sample.subsystem, sample.name, total, sample.sum, unit
    );
    if total == 0 {
        return out;
    }
    let max = sample.buckets.iter().map(|&(_, c)| c).max().unwrap_or(1);
    for &(i, count) in &sample.buckets {
        let lo = if i == 0 { 0 } else { Histogram::bucket_bound(i - 1).saturating_add(1) };
        let hi = Histogram::bucket_bound(i);
        let bar = "#".repeat(((count * 40).div_ceil(max)) as usize);
        out.push_str(&format!(
            "  [{lo:>10} .. {hi:>20}] {count:>8}  {bar}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(vnow: u64, kind: EventKind) -> Event {
        Event { seq: 0, vnow, kind }
    }

    fn sample_run() -> Vec<Event> {
        vec![
            ev(1, EventKind::QuarantineFlush { entries: 32 }),
            ev(
                10,
                EventKind::SweepStart {
                    sweep: 1,
                    trigger: Trigger::Proportional,
                    quarantine_bytes: 1000,
                    quarantine_entries: 10,
                },
            ),
            ev(
                20,
                EventKind::MarkPhase {
                    sweep: 1,
                    bytes: 4096,
                    words: 512,
                    skipped_bytes: 0,
                    marked_granules: 4,
                    wall_ns: 0,
                },
            ),
            ev(25, EventKind::StwPass { sweep: 1, pages: 2, words: 1024 }),
            ev(
                30,
                EventKind::Release {
                    sweep: 1,
                    released: 8,
                    released_bytes: 800,
                    failed_frees: 2,
                },
            ),
            ev(32, EventKind::Purge { sweep: 1, purged_pages: 3 }),
            ev(35, EventKind::SweepEnd { sweep: 1, wall_ns: 0 }),
            ev(
                50,
                EventKind::SweepStart {
                    sweep: 2,
                    trigger: Trigger::Unmapped,
                    quarantine_bytes: 3000,
                    quarantine_entries: 30,
                },
            ),
            ev(
                60,
                EventKind::MarkPhase {
                    sweep: 2,
                    bytes: 8192,
                    words: 512,
                    skipped_bytes: 4096,
                    marked_granules: 0,
                    wall_ns: 0,
                },
            ),
            ev(
                70,
                EventKind::Release {
                    sweep: 2,
                    released: 30,
                    released_bytes: 3000,
                    failed_frees: 0,
                },
            ),
            ev(75, EventKind::SweepEnd { sweep: 2, wall_ns: 0 }),
        ]
    }

    #[test]
    fn folds_events_into_sweep_records() {
        let report = RunReport::from_events(&sample_run());
        assert_eq!(report.sweeps.len(), 2);
        assert_eq!(report.events, 11);
        let r1 = &report.sweeps[0];
        assert_eq!(r1.trigger, Some(Trigger::Proportional));
        assert_eq!(r1.virtual_duration(), 25);
        assert_eq!(r1.mark_bytes, 4096);
        assert_eq!(r1.mark_skipped_bytes, 0);
        assert!((r1.skip_rate() - 0.0).abs() < 1e-12);
        let r2 = &report.sweeps[1];
        assert_eq!(r2.mark_skipped_bytes, 4096);
        assert!((r2.skip_rate() - 0.5).abs() < 1e-12);
        assert_eq!(report.total_mark_skipped_bytes(), 4096);
        assert_eq!(r1.stw_pages, 2);
        assert_eq!(r1.released, 8);
        assert_eq!(r1.failed_frees, 2);
        assert_eq!(r1.purged_pages, 3);
        assert!((r1.failed_free_rate() - 0.2).abs() < 1e-12);
        assert_eq!(report.flushes, 1);
        assert_eq!(report.flushed_entries, 32);
        assert_eq!(report.total_released(), 38);
        assert_eq!(report.total_released_bytes(), 3800);
        assert_eq!(report.total_failed_frees(), 2);
        assert_eq!(report.quarantine_high_water_bytes(), 3000);
        assert_eq!(report.quarantine_high_water_entries(), 30);
        assert!((report.failed_free_rate() - 2.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn jsonl_round_trip_matches_direct_fold() {
        let events = sample_run();
        let text: String =
            events.iter().map(|e| format!("{}\n", e.to_json())).collect();
        let via_jsonl = RunReport::from_jsonl(&text).unwrap();
        assert_eq!(via_jsonl, RunReport::from_events(&events));
        assert!(RunReport::from_jsonl("{\"seq\":}").is_err());
    }

    #[test]
    fn reconcile_agrees_with_matching_counters() {
        let report = RunReport::from_events(&sample_run());
        let reg = crate::registry::Registry::new();
        reg.counter("layer", "sweeps").add(2);
        reg.counter("layer", "released").add(38);
        reg.counter("layer", "released_bytes").add(3800);
        reg.counter("layer", "failed_frees").add(2);
        reg.counter("layer", "swept_bytes").add(4096 + 8192);
        reg.counter("layer", "skipped_bytes").add(4096);
        reg.counter("layer", "stw_pages").add(2);
        reg.counter("layer", "tl_flushes").add(1);
        reg.counter("layer", "tl_flushed_entries").add(32);
        report.reconcile(&reg.snapshot()).expect("totals must match");

        reg.counter("layer", "failed_frees").add(1);
        let err = report.reconcile(&reg.snapshot()).unwrap_err();
        assert!(err.contains("failed_frees"), "mismatch must be named: {err}");
    }

    #[test]
    fn tables_render_totals() {
        let report = RunReport::from_events(&sample_run());
        let t = report.failed_free_table();
        assert!(t.contains("proportional"), "{t}");
        assert!(t.contains("unmapped"), "{t}");
        assert!(t.lines().count() == 4, "header + 2 sweeps + total:\n{t}");
        let q = report.quarantine_table();
        assert!(q.contains("high-water: 3000 bytes / 30 entries"), "{q}");

        let h = Histogram::detached();
        h.record(5);
        h.record(1000);
        let reg = crate::registry::Registry::new();
        let hh = reg.histogram("engine", "pause_cycles");
        hh.record(5);
        hh.record(1000);
        let snap = reg.snapshot();
        let table = pause_table(snap.histogram("engine", "pause_cycles").unwrap(), "cycles");
        assert!(table.contains("2 observations"), "{table}");
        assert!(table.contains('#'), "{table}");
    }

    #[test]
    fn mid_trace_sweep_still_aggregates() {
        let events = vec![ev(
            5,
            EventKind::Release { sweep: 7, released: 1, released_bytes: 16, failed_frees: 0 },
        )];
        let report = RunReport::from_events(&events);
        assert_eq!(report.sweeps.len(), 1);
        assert_eq!(report.sweeps[0].sweep, 7);
        assert_eq!(report.sweeps[0].trigger, None);
        assert_eq!(report.total_released(), 1);
    }
}
