//! Per-sweep timelines: folds a stream of [`Event`]s into one
//! [`SweepRecord`] per sweep, aggregates them into a [`RunReport`], and
//! renders the paper-style summary tables (`Fig. 13`/`Fig. 14`:
//! failed-free rates over sweeps, quarantine high-water marks, pause-time
//! histograms).

use crate::json::JsonError;
use crate::registry::{Histogram, HistogramSample, Snapshot};
use crate::trace::{Event, EventKind, LedgerTotals, MarkProf, Trigger};

/// One `PinEdge` event: provenance of the pointers that pinned a
/// quarantined entry during one sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PinRecord {
    /// Sweep the edges were recorded in.
    pub sweep: u64,
    /// Allocation-site id of the pinned entry.
    pub site: u32,
    /// Base address of the pinned entry.
    pub base: u64,
    /// Swept bytes the entry pins.
    pub bytes: u64,
    /// Edges recorded into the entry (post-sampling).
    pub hits: u64,
    /// Example source address of a pinning pointer (0 if none captured).
    pub src: u64,
}

/// One `SloViolation` event: a watchdog objective breached during the
/// run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloRecord {
    /// Virtual time when the violation was reported.
    pub vnow: u64,
    /// Stable objective name (`stw`, `sweep`, `qratio`, `util`).
    pub objective: String,
    /// The observed value.
    pub observed: u64,
    /// The configured limit it breached.
    pub limit: u64,
}

/// One `FailedFreeAged` event: a failed-free decision with its ledger
/// history attached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AgedRecord {
    /// Sweep that made the decision.
    pub sweep: u64,
    /// Allocation-site id of the entry.
    pub site: u32,
    /// Base address of the entry.
    pub base: u64,
    /// Swept bytes the entry pins.
    pub bytes: u64,
    /// Consecutive sweeps the entry has failed (1 = first failure).
    pub survivals: u64,
    /// Sweep of the first failure.
    pub first_failed: u64,
}

/// Everything one sweep did, folded from its lifecycle events.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepRecord {
    /// 1-based sweep number.
    pub sweep: u64,
    /// What fired the sweep (absent if the trace starts mid-sweep).
    pub trigger: Option<Trigger>,
    /// Virtual time at `SweepStart`.
    pub start_vnow: u64,
    /// Virtual time at `SweepEnd` (equal to `start_vnow` if the sweep
    /// never finished within the trace).
    pub end_vnow: u64,
    /// Swept quarantined bytes when the sweep started.
    pub quarantine_bytes: u64,
    /// Quarantined entries when the sweep started.
    pub quarantine_entries: u64,
    /// Bytes advanced through during marking.
    pub mark_bytes: u64,
    /// Words examined during marking.
    pub mark_words: u64,
    /// Bytes marking advanced through without reading (incremental sweep:
    /// cache-replayed clean pages plus protected/unmapped skips).
    pub mark_skipped_bytes: u64,
    /// Shadow-map granules marked.
    pub marked_granules: u64,
    /// Heap-pointing words the candidate filter suppressed during
    /// marking (serial steps and parallel helpers combined).
    pub mark_filter_rejects: u64,
    /// Wall-clock marking time (ns; 0 in deterministic traces).
    pub mark_wall_ns: u64,
    /// Profiler attribution for the marking phase, summed over the
    /// sweep's `MarkPhase` events (`None` when the profiler was off).
    pub mark_prof: Option<MarkProf>,
    /// Pages re-checked by the stop-the-world pass.
    pub stw_pages: u64,
    /// Words re-checked by the stop-the-world pass.
    pub stw_words: u64,
    /// Entries released back to the allocator.
    pub released: u64,
    /// Bytes released back to the allocator.
    pub released_bytes: u64,
    /// Entries retained by dangling pointers (failed frees, §5.4).
    pub failed_frees: u64,
    /// Pages the allocator purge decommitted after the sweep.
    pub purged_pages: u64,
    /// Wall-clock sweep duration (ns; 0 in deterministic traces).
    pub wall_ns: u64,
    /// Provenance-edge hits recorded this sweep (Σ `PinEdge.hits`).
    pub pin_hits: u64,
    /// `FailedFreeAged` events this sweep (equals `failed_frees` when
    /// forensics was on).
    pub aged_entries: u64,
    /// Failed-free ledger totals at sweep end (`None` when the trace was
    /// recorded without forensics).
    pub ledger: Option<LedgerTotals>,
}

impl SweepRecord {
    /// Fraction of this sweep's candidate entries that failed to free
    /// (`failed / (released + failed)`), the per-sweep quantity behind
    /// the paper's Fig. 13.
    pub fn failed_free_rate(&self) -> f64 {
        let total = self.released + self.failed_frees;
        if total == 0 {
            0.0
        } else {
            self.failed_frees as f64 / total as f64
        }
    }

    /// Sweep duration in virtual cost units.
    pub fn virtual_duration(&self) -> u64 {
        self.end_vnow.saturating_sub(self.start_vnow)
    }

    /// Fraction of the marking phase's bytes that were skipped rather
    /// than read (`mark_skipped_bytes / mark_bytes`; 0 when nothing was
    /// marked) — the incremental sweep's effectiveness for this sweep.
    pub fn skip_rate(&self) -> f64 {
        if self.mark_bytes == 0 {
            0.0
        } else {
            self.mark_skipped_bytes as f64 / self.mark_bytes as f64
        }
    }
}

/// A whole run's timeline: every sweep plus the quarantine-flush
/// traffic between them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// One record per sweep, in sweep order.
    pub sweeps: Vec<SweepRecord>,
    /// Thread-local quarantine buffer flushes observed.
    pub flushes: u64,
    /// Entries those flushes spilled to the global quarantine.
    pub flushed_entries: u64,
    /// Total events folded in.
    pub events: u64,
    /// Every `PinEdge` event, in emission order (forensics traces only).
    pub pins: Vec<PinRecord>,
    /// Every `FailedFreeAged` event, in emission order (forensics traces
    /// only).
    pub aged: Vec<AgedRecord>,
    /// Every `SloViolation` event, in emission order.
    pub slo_violations: Vec<SloRecord>,
}

impl RunReport {
    /// Folds a stream of events (in emission order) into a report.
    /// Events for a sweep number not yet seen open a new record, so a
    /// trace that starts mid-sweep still aggregates.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a Event>) -> RunReport {
        let mut report = RunReport::default();
        for event in events {
            report.events += 1;
            match &event.kind {
                EventKind::SweepStart { sweep, trigger, quarantine_bytes, quarantine_entries } => {
                    let r = report.record_mut(*sweep);
                    r.trigger = Some(*trigger);
                    r.start_vnow = event.vnow;
                    r.end_vnow = event.vnow;
                    r.quarantine_bytes = *quarantine_bytes;
                    r.quarantine_entries = *quarantine_entries;
                }
                EventKind::MarkPhase {
                    sweep,
                    bytes,
                    words,
                    skipped_bytes,
                    marked_granules,
                    filter_rejects,
                    wall_ns,
                    prof,
                } => {
                    let r = report.record_mut(*sweep);
                    r.mark_bytes += bytes;
                    r.mark_words += words;
                    r.mark_skipped_bytes += skipped_bytes;
                    r.marked_granules = *marked_granules;
                    r.mark_filter_rejects += filter_rejects;
                    r.mark_wall_ns += wall_ns;
                    if let Some(p) = prof {
                        let acc = r.mark_prof.get_or_insert_with(MarkProf::default);
                        acc.scan_ns += p.scan_ns;
                        acc.wc_window_bits += p.wc_window_bits;
                        acc.wc_direct += p.wc_direct;
                        acc.cache_evictions += p.cache_evictions;
                    }
                }
                EventKind::StwPass { sweep, pages, words } => {
                    let r = report.record_mut(*sweep);
                    r.stw_pages += pages;
                    r.stw_words += words;
                }
                EventKind::Release { sweep, released, released_bytes, failed_frees } => {
                    let r = report.record_mut(*sweep);
                    r.released += released;
                    r.released_bytes += released_bytes;
                    r.failed_frees += failed_frees;
                }
                EventKind::Purge { sweep, purged_pages } => {
                    report.record_mut(*sweep).purged_pages += purged_pages;
                }
                EventKind::QuarantineFlush { entries } => {
                    report.flushes += 1;
                    report.flushed_entries += entries;
                }
                EventKind::SloViolation { objective, observed, limit } => {
                    report.slo_violations.push(SloRecord {
                        vnow: event.vnow,
                        objective: objective.clone(),
                        observed: *observed,
                        limit: *limit,
                    });
                }
                EventKind::SweepEnd { sweep, wall_ns, ledger } => {
                    let r = report.record_mut(*sweep);
                    r.end_vnow = event.vnow;
                    r.wall_ns = *wall_ns;
                    r.ledger = *ledger;
                }
                EventKind::PinEdge { sweep, site, base, bytes, hits, src } => {
                    report.record_mut(*sweep).pin_hits += hits;
                    report.pins.push(PinRecord {
                        sweep: *sweep,
                        site: *site,
                        base: *base,
                        bytes: *bytes,
                        hits: *hits,
                        src: *src,
                    });
                }
                EventKind::FailedFreeAged {
                    sweep,
                    site,
                    base,
                    bytes,
                    survivals,
                    first_failed,
                } => {
                    report.record_mut(*sweep).aged_entries += 1;
                    report.aged.push(AgedRecord {
                        sweep: *sweep,
                        site: *site,
                        base: *base,
                        bytes: *bytes,
                        survivals: *survivals,
                        first_failed: *first_failed,
                    });
                }
            }
        }
        report
    }

    /// Parses a JSONL trace (one event per line, blank lines ignored)
    /// and folds it into a report.
    ///
    /// # Errors
    ///
    /// [`JsonError`] naming the 1-based line if any line fails to parse
    /// as an event — a failure on the final line usually means the trace
    /// was truncated mid-write (torn line).
    pub fn from_jsonl(text: &str) -> Result<RunReport, JsonError> {
        let mut events = Vec::new();
        let total = text.lines().count();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            events.push(Event::from_json(line).map_err(|e| {
                let hint = if idx + 1 == total {
                    " (torn final line: trace truncated mid-write?)"
                } else {
                    ""
                };
                JsonError::new(format!("line {}: {e}{hint}", idx + 1))
            })?);
        }
        Ok(RunReport::from_events(&events))
    }

    fn record_mut(&mut self, sweep: u64) -> &mut SweepRecord {
        if let Some(i) = self.sweeps.iter().position(|r| r.sweep == sweep) {
            &mut self.sweeps[i]
        } else {
            self.sweeps.push(SweepRecord { sweep, ..SweepRecord::default() });
            self.sweeps.last_mut().expect("just pushed")
        }
    }

    /// Total entries released across all sweeps.
    pub fn total_released(&self) -> u64 {
        self.sweeps.iter().map(|r| r.released).sum()
    }

    /// Total bytes released across all sweeps.
    pub fn total_released_bytes(&self) -> u64 {
        self.sweeps.iter().map(|r| r.released_bytes).sum()
    }

    /// Total failed frees across all sweeps.
    pub fn total_failed_frees(&self) -> u64 {
        self.sweeps.iter().map(|r| r.failed_frees).sum()
    }

    /// Total bytes advanced through during marking across all sweeps.
    pub fn total_mark_bytes(&self) -> u64 {
        self.sweeps.iter().map(|r| r.mark_bytes).sum()
    }

    /// Total bytes marking skipped (cache replay + protected/unmapped)
    /// across all sweeps.
    pub fn total_mark_skipped_bytes(&self) -> u64 {
        self.sweeps.iter().map(|r| r.mark_skipped_bytes).sum()
    }

    /// Total stop-the-world pages re-checked across all sweeps.
    pub fn total_stw_pages(&self) -> u64 {
        self.sweeps.iter().map(|r| r.stw_pages).sum()
    }

    /// Total filter-rejected heap words across all sweeps' mark phases.
    pub fn total_mark_filter_rejects(&self) -> u64 {
        self.sweeps.iter().map(|r| r.mark_filter_rejects).sum()
    }

    /// Total provenance-edge hits recorded across all sweeps.
    pub fn total_pin_hits(&self) -> u64 {
        self.sweeps.iter().map(|r| r.pin_hits).sum()
    }

    /// Whether the trace carries forensics data (any sweep ended with a
    /// ledger snapshot).
    pub fn has_forensics(&self) -> bool {
        self.sweeps.iter().any(|r| r.ledger.is_some())
    }

    /// The last sweep's ledger totals, if the trace carries them.
    pub fn last_ledger(&self) -> Option<LedgerTotals> {
        self.sweeps.iter().rev().find_map(|r| r.ledger)
    }

    /// The entries pinned at the end of the trace: each currently failed
    /// entry re-fails (and re-ages) every sweep, so the last sweep's
    /// `FailedFreeAged` records ARE the live ledger.
    pub fn pinned_now(&self) -> Vec<AgedRecord> {
        let Some(last) = self.sweeps.iter().map(|r| r.sweep).max() else {
            return Vec::new();
        };
        self.aged.iter().filter(|a| a.sweep == last).copied().collect()
    }

    /// Cumulative failed-free rate over the whole run.
    pub fn failed_free_rate(&self) -> f64 {
        let total = self.total_released() + self.total_failed_frees();
        if total == 0 {
            0.0
        } else {
            self.total_failed_frees() as f64 / total as f64
        }
    }

    /// The largest quarantine footprint any sweep started with — the
    /// run's quarantine high-water mark in bytes.
    pub fn quarantine_high_water_bytes(&self) -> u64 {
        self.sweeps.iter().map(|r| r.quarantine_bytes).max().unwrap_or(0)
    }

    /// The largest entry count any sweep started with.
    pub fn quarantine_high_water_entries(&self) -> u64 {
        self.sweeps.iter().map(|r| r.quarantine_entries).max().unwrap_or(0)
    }

    /// Checks the timeline against a metrics [`Snapshot`] from the same
    /// run: event-derived totals must exactly equal the layer's counters.
    /// This is the cross-check that keeps the two telemetry planes
    /// honest with each other.
    ///
    /// # Errors
    ///
    /// A human-readable description of every mismatched metric.
    pub fn reconcile(&self, snap: &Snapshot) -> Result<(), String> {
        let mut mismatches = Vec::new();
        let mut check = |name: &str, from_events: u64| {
            let from_counters = snap.counter("layer", name).unwrap_or(0);
            if from_events != from_counters {
                mismatches.push(format!(
                    "{name}: events say {from_events}, counters say {from_counters}"
                ));
            }
        };
        check("sweeps", self.sweeps.len() as u64);
        check("released", self.total_released());
        check("released_bytes", self.total_released_bytes());
        check("failed_frees", self.total_failed_frees());
        check("swept_bytes", self.total_mark_bytes());
        check("skipped_bytes", self.total_mark_skipped_bytes());
        check("stw_pages", self.total_stw_pages());
        check("filter_rejects", self.total_mark_filter_rejects());
        check("tl_flushes", self.flushes);
        check("tl_flushed_entries", self.flushed_entries);
        check("pin_edges", self.total_pin_hits());
        // Forensics-specific invariants, only meaningful when the trace
        // carries ledger snapshots.
        if let Some(ledger) = self.last_ledger() {
            let bytes_in = snap.counter("layer", "ledger_bytes_in").unwrap_or(0);
            let bytes_out = snap.counter("layer", "ledger_bytes_out").unwrap_or(0);
            if ledger.bytes != bytes_in.saturating_sub(bytes_out) {
                mismatches.push(format!(
                    "ledger_bytes: last SweepEnd says {}, counters say {} in - {} out",
                    ledger.bytes, bytes_in, bytes_out
                ));
            }
            let failed = snap.counter("layer", "failed_frees").unwrap_or(0);
            if ledger.fail_events != failed {
                mismatches.push(format!(
                    "ledger_fail_events: last SweepEnd says {}, failed_frees counter says {failed}",
                    ledger.fail_events
                ));
            }
            for r in &self.sweeps {
                if r.ledger.is_some() && r.aged_entries != r.failed_frees {
                    mismatches.push(format!(
                        "sweep {}: {} FailedFreeAged events but {} failed frees",
                        r.sweep, r.aged_entries, r.failed_frees
                    ));
                }
            }
            // Byte conservation: the last completed sweep's aged records
            // are exactly the live ledger (skip if the trace ends inside
            // an unfinished sweep — it has no snapshot to compare with).
            if let Some(last) = self.sweeps.iter().max_by_key(|r| r.sweep) {
                if last.ledger.is_some() {
                    let pinned: u64 = self.pinned_now().iter().map(|a| a.bytes).sum();
                    if pinned != ledger.bytes {
                        mismatches.push(format!(
                            "pinned bytes: last sweep's aged records sum to {pinned}, \
                             ledger says {}",
                            ledger.bytes
                        ));
                    }
                }
            }
        }
        if mismatches.is_empty() {
            Ok(())
        } else {
            Err(mismatches.join("; "))
        }
    }

    /// Renders the Fig. 13-style table: per-sweep failed-free counts and
    /// rates, with a cumulative-total row.
    pub fn failed_free_table(&self) -> String {
        let mut out = String::from(
            "sweep  trigger       released  failed  rate     cumulative\n",
        );
        let mut cum_released = 0u64;
        let mut cum_failed = 0u64;
        for r in &self.sweeps {
            cum_released += r.released;
            cum_failed += r.failed_frees;
            let cum_total = cum_released + cum_failed;
            let cum_rate = if cum_total == 0 {
                0.0
            } else {
                cum_failed as f64 / cum_total as f64
            };
            out.push_str(&format!(
                "{:>5}  {:<12}  {:>8}  {:>6}  {:>6.2}%  {:>9.2}%\n",
                r.sweep,
                r.trigger.map_or("?", Trigger::as_str),
                r.released,
                r.failed_frees,
                r.failed_free_rate() * 100.0,
                cum_rate * 100.0,
            ));
        }
        out.push_str(&format!(
            "total  {:<12}  {:>8}  {:>6}  {:>6.2}%\n",
            "",
            self.total_released(),
            self.total_failed_frees(),
            self.failed_free_rate() * 100.0,
        ));
        out
    }

    /// Renders the quarantine table: per-sweep footprint at sweep start
    /// plus the run high-water marks.
    pub fn quarantine_table(&self) -> String {
        let mut out =
            String::from("sweep  quarantine_bytes  entries   released_bytes  purged_pages\n");
        for r in &self.sweeps {
            out.push_str(&format!(
                "{:>5}  {:>16}  {:>7}  {:>15}  {:>12}\n",
                r.sweep, r.quarantine_bytes, r.quarantine_entries, r.released_bytes, r.purged_pages
            ));
        }
        out.push_str(&format!(
            "high-water: {} bytes / {} entries; flushes: {} ({} entries)\n",
            self.quarantine_high_water_bytes(),
            self.quarantine_high_water_entries(),
            self.flushes,
            self.flushed_entries,
        ));
        out
    }

    /// Renders the `--pinners` table: allocation sites ranked by the
    /// bytes their failed frees currently pin in quarantine, with the
    /// provenance-edge hits recorded against them in the final sweep.
    pub fn pinner_table(&self) -> String {
        if !self.has_forensics() {
            return String::from(
                "no forensics data in trace (run with forensics enabled)\n",
            );
        }
        let pinned = self.pinned_now();
        let last_sweep = pinned.first().map_or(0, |a| a.sweep);
        // Per-site aggregation over the live ledger; hits joined from the
        // same sweep's PinEdge records by entry base.
        let mut sites: Vec<(u32, u64, u64, u64)> = Vec::new(); // site, entries, bytes, hits
        for a in &pinned {
            let hits: u64 = self
                .pins
                .iter()
                .filter(|p| p.sweep == a.sweep && p.base == a.base)
                .map(|p| p.hits)
                .sum();
            match sites.iter_mut().find(|s| s.0 == a.site) {
                Some(s) => {
                    s.1 += 1;
                    s.2 += a.bytes;
                    s.3 += hits;
                }
                None => sites.push((a.site, 1, a.bytes, hits)),
            }
        }
        sites.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        let mut out = format!(
            "pinned sites after sweep {last_sweep} (ranked by pinned bytes)\n\
             site   entries  pinned_bytes  pin_hits\n"
        );
        for (site, entries, bytes, hits) in &sites {
            out.push_str(&format!(
                "{site:>5}  {entries:>7}  {bytes:>12}  {hits:>8}\n"
            ));
        }
        let total_bytes: u64 = pinned.iter().map(|a| a.bytes).sum();
        out.push_str(&format!(
            "total  {:>7}  {total_bytes:>12}  (ledger: {} entries, {} fail events)\n",
            pinned.len(),
            self.last_ledger().map_or(0, |l| l.entries),
            self.last_ledger().map_or(0, |l| l.fail_events),
        ));
        out
    }

    /// Renders the `--failed-frees` table: every currently pinned entry
    /// with its ledger history, oldest residents first.
    pub fn failed_free_detail_table(&self) -> String {
        if !self.has_forensics() {
            return String::from(
                "no forensics data in trace (run with forensics enabled)\n",
            );
        }
        let mut pinned = self.pinned_now();
        pinned.sort_by(|a, b| {
            b.survivals.cmp(&a.survivals).then(a.base.cmp(&b.base))
        });
        let mut out = String::from(
            "base                site   bytes  first_failed  survivals  example_pinner\n",
        );
        for a in &pinned {
            let src = self
                .pins
                .iter()
                .filter(|p| p.sweep == a.sweep && p.base == a.base && p.src != 0)
                .map(|p| p.src)
                .next();
            out.push_str(&format!(
                "{:#018x}  {:>5}  {:>6}  {:>12}  {:>9}  {}\n",
                a.base,
                a.site,
                a.bytes,
                a.first_failed,
                a.survivals,
                src.map_or_else(|| String::from("-"), |s| format!("{s:#x}")),
            ));
        }
        out.push_str(&format!("{} entries pinned\n", pinned.len()));
        out
    }
}

/// Renders a pause-time histogram sample (Fig. 14-style) as an ASCII
/// table: one row per occupied log2 bucket with a proportional bar.
pub fn pause_table(sample: &HistogramSample, unit: &str) -> String {
    let total = sample.count();
    let mut out = format!(
        "{}/{} — {} observations, sum {} {}\n",
        sample.subsystem, sample.name, total, sample.sum, unit
    );
    if total == 0 {
        return out;
    }
    let max = sample.buckets.iter().map(|&(_, c)| c).max().unwrap_or(1);
    for &(i, count) in &sample.buckets {
        let lo = if i == 0 { 0 } else { Histogram::bucket_bound(i - 1).saturating_add(1) };
        let hi = Histogram::bucket_bound(i);
        let bar = "#".repeat(((count * 40).div_ceil(max)) as usize);
        out.push_str(&format!(
            "  [{lo:>10} .. {hi:>20}] {count:>8}  {bar}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(vnow: u64, kind: EventKind) -> Event {
        Event { seq: 0, vnow, kind }
    }

    fn sample_run() -> Vec<Event> {
        vec![
            ev(1, EventKind::QuarantineFlush { entries: 32 }),
            ev(
                10,
                EventKind::SweepStart {
                    sweep: 1,
                    trigger: Trigger::Proportional,
                    quarantine_bytes: 1000,
                    quarantine_entries: 10,
                },
            ),
            ev(
                20,
                EventKind::MarkPhase {
                    sweep: 1,
                    bytes: 4096,
                    words: 512,
                    skipped_bytes: 0,
                    marked_granules: 4,
                    filter_rejects: 3,
                    wall_ns: 0,
                    prof: None,
                },
            ),
            ev(25, EventKind::StwPass { sweep: 1, pages: 2, words: 1024 }),
            ev(
                30,
                EventKind::Release {
                    sweep: 1,
                    released: 8,
                    released_bytes: 800,
                    failed_frees: 2,
                },
            ),
            ev(32, EventKind::Purge { sweep: 1, purged_pages: 3 }),
            ev(35, EventKind::SweepEnd { sweep: 1, wall_ns: 0, ledger: None }),
            ev(
                50,
                EventKind::SweepStart {
                    sweep: 2,
                    trigger: Trigger::Unmapped,
                    quarantine_bytes: 3000,
                    quarantine_entries: 30,
                },
            ),
            ev(
                60,
                EventKind::MarkPhase {
                    sweep: 2,
                    bytes: 8192,
                    words: 512,
                    skipped_bytes: 4096,
                    marked_granules: 0,
                    filter_rejects: 1,
                    wall_ns: 0,
                    prof: None,
                },
            ),
            ev(
                70,
                EventKind::Release {
                    sweep: 2,
                    released: 30,
                    released_bytes: 3000,
                    failed_frees: 0,
                },
            ),
            ev(75, EventKind::SweepEnd { sweep: 2, wall_ns: 0, ledger: None }),
        ]
    }

    /// A two-sweep forensics run: entry A (site 3) fails both sweeps,
    /// entry B (site 5) fails sweep 1 and is released in sweep 2.
    fn forensic_run() -> Vec<Event> {
        vec![
            ev(
                10,
                EventKind::SweepStart {
                    sweep: 1,
                    trigger: Trigger::Proportional,
                    quarantine_bytes: 512,
                    quarantine_entries: 2,
                },
            ),
            ev(
                20,
                EventKind::PinEdge {
                    sweep: 1,
                    site: 3,
                    base: 0x1000,
                    bytes: 64,
                    hits: 4,
                    src: 0x9008,
                },
            ),
            ev(
                20,
                EventKind::PinEdge {
                    sweep: 1,
                    site: 5,
                    base: 0x2000,
                    bytes: 128,
                    hits: 1,
                    src: 0x9010,
                },
            ),
            ev(
                20,
                EventKind::FailedFreeAged {
                    sweep: 1,
                    site: 3,
                    base: 0x1000,
                    bytes: 64,
                    survivals: 1,
                    first_failed: 1,
                },
            ),
            ev(
                20,
                EventKind::FailedFreeAged {
                    sweep: 1,
                    site: 5,
                    base: 0x2000,
                    bytes: 128,
                    survivals: 1,
                    first_failed: 1,
                },
            ),
            ev(
                21,
                EventKind::Release {
                    sweep: 1,
                    released: 0,
                    released_bytes: 0,
                    failed_frees: 2,
                },
            ),
            ev(
                22,
                EventKind::SweepEnd {
                    sweep: 1,
                    wall_ns: 0,
                    ledger: Some(LedgerTotals {
                        entries: 2,
                        bytes: 192,
                        fail_events: 2,
                    }),
                },
            ),
            ev(
                30,
                EventKind::SweepStart {
                    sweep: 2,
                    trigger: Trigger::Manual,
                    quarantine_bytes: 192,
                    quarantine_entries: 2,
                },
            ),
            ev(
                40,
                EventKind::PinEdge {
                    sweep: 2,
                    site: 3,
                    base: 0x1000,
                    bytes: 64,
                    hits: 2,
                    src: 0x9008,
                },
            ),
            ev(
                40,
                EventKind::FailedFreeAged {
                    sweep: 2,
                    site: 3,
                    base: 0x1000,
                    bytes: 64,
                    survivals: 2,
                    first_failed: 1,
                },
            ),
            ev(
                41,
                EventKind::Release {
                    sweep: 2,
                    released: 1,
                    released_bytes: 128,
                    failed_frees: 1,
                },
            ),
            ev(
                42,
                EventKind::SweepEnd {
                    sweep: 2,
                    wall_ns: 0,
                    ledger: Some(LedgerTotals {
                        entries: 1,
                        bytes: 64,
                        fail_events: 3,
                    }),
                },
            ),
        ]
    }

    #[test]
    fn forensic_events_fold_into_pins_and_ledger() {
        let report = RunReport::from_events(&forensic_run());
        assert!(report.has_forensics());
        assert_eq!(report.total_pin_hits(), 7);
        assert_eq!(report.sweeps[0].pin_hits, 5);
        assert_eq!(report.sweeps[0].aged_entries, 2);
        assert_eq!(report.sweeps[1].pin_hits, 2);
        assert_eq!(
            report.last_ledger(),
            Some(LedgerTotals { entries: 1, bytes: 64, fail_events: 3 })
        );
        let pinned = report.pinned_now();
        assert_eq!(pinned.len(), 1, "only the site-3 entry survives");
        assert_eq!((pinned[0].base, pinned[0].survivals), (0x1000, 2));
    }

    #[test]
    fn forensic_tables_rank_sites_and_entries() {
        let report = RunReport::from_events(&forensic_run());
        let p = report.pinner_table();
        assert!(p.contains("pinned sites after sweep 2"), "{p}");
        assert!(p.contains("ledger: 1 entries, 3 fail events"), "{p}");
        let site_row = p.lines().nth(2).unwrap();
        assert!(site_row.trim_start().starts_with('3'), "site 3 ranked first: {p}");
        let d = report.failed_free_detail_table();
        assert!(d.contains("0x0000000000001000"), "{d}");
        assert!(d.contains("1 entries pinned"), "{d}");
        assert!(d.contains("0x9008"), "example pinner shown: {d}");

        let bare = RunReport::from_events(&sample_run());
        assert!(bare.pinner_table().contains("no forensics data"));
        assert!(bare.failed_free_detail_table().contains("no forensics data"));
    }

    #[test]
    fn reconcile_checks_forensic_invariants() {
        let report = RunReport::from_events(&forensic_run());
        let reg = crate::registry::Registry::new();
        reg.counter("layer", "sweeps").add(2);
        reg.counter("layer", "released").add(1);
        reg.counter("layer", "released_bytes").add(128);
        reg.counter("layer", "failed_frees").add(3);
        reg.counter("layer", "pin_edges").add(7);
        reg.counter("layer", "ledger_bytes_in").add(192);
        reg.counter("layer", "ledger_bytes_out").add(128);
        report.reconcile(&reg.snapshot()).expect("forensic totals must match");

        reg.counter("layer", "ledger_bytes_out").add(64);
        let err = report.reconcile(&reg.snapshot()).unwrap_err();
        assert!(err.contains("ledger_bytes"), "{err}");

        let reg2 = crate::registry::Registry::new();
        reg2.counter("layer", "sweeps").add(2);
        reg2.counter("layer", "released").add(1);
        reg2.counter("layer", "released_bytes").add(128);
        reg2.counter("layer", "failed_frees").add(3);
        reg2.counter("layer", "pin_edges").add(6); // one hit short
        reg2.counter("layer", "ledger_bytes_in").add(192);
        reg2.counter("layer", "ledger_bytes_out").add(128);
        let err = report.reconcile(&reg2.snapshot()).unwrap_err();
        assert!(err.contains("pin_edges"), "{err}");
    }

    #[test]
    fn folds_events_into_sweep_records() {
        let report = RunReport::from_events(&sample_run());
        assert_eq!(report.sweeps.len(), 2);
        assert_eq!(report.events, 11);
        let r1 = &report.sweeps[0];
        assert_eq!(r1.trigger, Some(Trigger::Proportional));
        assert_eq!(r1.virtual_duration(), 25);
        assert_eq!(r1.mark_bytes, 4096);
        assert_eq!(r1.mark_skipped_bytes, 0);
        assert!((r1.skip_rate() - 0.0).abs() < 1e-12);
        let r2 = &report.sweeps[1];
        assert_eq!(r2.mark_skipped_bytes, 4096);
        assert!((r2.skip_rate() - 0.5).abs() < 1e-12);
        assert_eq!(report.total_mark_skipped_bytes(), 4096);
        assert_eq!(r1.stw_pages, 2);
        assert_eq!(r1.released, 8);
        assert_eq!(r1.failed_frees, 2);
        assert_eq!(r1.purged_pages, 3);
        assert!((r1.failed_free_rate() - 0.2).abs() < 1e-12);
        assert_eq!(report.flushes, 1);
        assert_eq!(report.flushed_entries, 32);
        assert_eq!(report.total_released(), 38);
        assert_eq!(report.total_released_bytes(), 3800);
        assert_eq!(report.total_failed_frees(), 2);
        assert_eq!(report.quarantine_high_water_bytes(), 3000);
        assert_eq!(report.quarantine_high_water_entries(), 30);
        assert!((report.failed_free_rate() - 2.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn jsonl_round_trip_matches_direct_fold() {
        let events = sample_run();
        let text: String =
            events.iter().map(|e| format!("{}\n", e.to_json())).collect();
        let via_jsonl = RunReport::from_jsonl(&text).unwrap();
        assert_eq!(via_jsonl, RunReport::from_events(&events));
        assert!(RunReport::from_jsonl("{\"seq\":}").is_err());
    }

    #[test]
    fn reconcile_agrees_with_matching_counters() {
        let report = RunReport::from_events(&sample_run());
        let reg = crate::registry::Registry::new();
        reg.counter("layer", "sweeps").add(2);
        reg.counter("layer", "released").add(38);
        reg.counter("layer", "released_bytes").add(3800);
        reg.counter("layer", "failed_frees").add(2);
        reg.counter("layer", "swept_bytes").add(4096 + 8192);
        reg.counter("layer", "skipped_bytes").add(4096);
        reg.counter("layer", "stw_pages").add(2);
        reg.counter("layer", "filter_rejects").add(4);
        reg.counter("layer", "tl_flushes").add(1);
        reg.counter("layer", "tl_flushed_entries").add(32);
        report.reconcile(&reg.snapshot()).expect("totals must match");

        reg.counter("layer", "failed_frees").add(1);
        let err = report.reconcile(&reg.snapshot()).unwrap_err();
        assert!(err.contains("failed_frees"), "mismatch must be named: {err}");

        let reg3 = crate::registry::Registry::new();
        let err = RunReport::from_events(&sample_run()).reconcile(&reg3.snapshot()).unwrap_err();
        assert!(err.contains("filter_rejects"), "filter rejects reconcile too: {err}");
    }

    #[test]
    fn tables_render_totals() {
        let report = RunReport::from_events(&sample_run());
        let t = report.failed_free_table();
        assert!(t.contains("proportional"), "{t}");
        assert!(t.contains("unmapped"), "{t}");
        assert!(t.lines().count() == 4, "header + 2 sweeps + total:\n{t}");
        let q = report.quarantine_table();
        assert!(q.contains("high-water: 3000 bytes / 30 entries"), "{q}");

        let h = Histogram::detached();
        h.record(5);
        h.record(1000);
        let reg = crate::registry::Registry::new();
        let hh = reg.histogram("engine", "pause_cycles");
        hh.record(5);
        hh.record(1000);
        let snap = reg.snapshot();
        let table = pause_table(snap.histogram("engine", "pause_cycles").unwrap(), "cycles");
        assert!(table.contains("2 observations"), "{table}");
        assert!(table.contains('#'), "{table}");
    }

    #[test]
    fn profiled_mark_phases_fold_and_slo_events_collect() {
        let events = vec![
            ev(
                10,
                EventKind::MarkPhase {
                    sweep: 1,
                    bytes: 4096,
                    words: 512,
                    skipped_bytes: 0,
                    marked_granules: 4,
                    filter_rejects: 0,
                    wall_ns: 100,
                    prof: Some(MarkProf {
                        scan_ns: 60,
                        wc_window_bits: 30,
                        wc_direct: 2,
                        cache_evictions: 1,
                    }),
                },
            ),
            ev(
                20,
                EventKind::MarkPhase {
                    sweep: 1,
                    bytes: 4096,
                    words: 512,
                    skipped_bytes: 0,
                    marked_granules: 6,
                    filter_rejects: 0,
                    wall_ns: 100,
                    prof: Some(MarkProf {
                        scan_ns: 40,
                        wc_window_bits: 10,
                        wc_direct: 3,
                        cache_evictions: 0,
                    }),
                },
            ),
            ev(
                30,
                EventKind::SloViolation {
                    objective: "stw".to_owned(),
                    observed: 900,
                    limit: 500,
                },
            ),
        ];
        let report = RunReport::from_events(&events);
        assert_eq!(
            report.sweeps[0].mark_prof,
            Some(MarkProf {
                scan_ns: 100,
                wc_window_bits: 40,
                wc_direct: 5,
                cache_evictions: 1,
            })
        );
        assert_eq!(report.slo_violations.len(), 1);
        assert_eq!(report.slo_violations[0].objective, "stw");
        assert_eq!(report.slo_violations[0].vnow, 30);
        // Profiler-off traces keep the record's prof at None.
        let bare = RunReport::from_events(&sample_run());
        assert!(bare.sweeps.iter().all(|r| r.mark_prof.is_none()));
        assert!(bare.slo_violations.is_empty());
    }

    #[test]
    fn mid_trace_sweep_still_aggregates() {
        let events = vec![ev(
            5,
            EventKind::Release { sweep: 7, released: 1, released_bytes: 16, failed_frees: 0 },
        )];
        let report = RunReport::from_events(&events);
        assert_eq!(report.sweeps.len(), 1);
        assert_eq!(report.sweeps[0].sweep, 7);
        assert_eq!(report.sweeps[0].trigger, None);
        assert_eq!(report.total_released(), 1);
    }
}
