//! A minimal, dependency-free JSON reader/writer.
//!
//! The workspace builds offline, so telemetry exports cannot lean on
//! serde. This module parses exactly the JSON the crate itself emits
//! (objects, arrays, strings, numbers, booleans, null) and keeps numbers
//! as their source text so `u64::MAX` survives a round-trip that an `f64`
//! representation would corrupt.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text (lossless for u64).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse or schema error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError(String);

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError(msg.into())
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// [`JsonError`] describing the first malformed construct.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing garbage at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as an f64 number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError::new(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(JsonError::new(format!("bad number at byte {start}")));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(JsonError::new(format!("bad fraction at byte {start}")));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(JsonError::new(format!("bad exponent at byte {start}")));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        Ok(Json::Num(text.to_string()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| JsonError::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(JsonError::new(format!(
                                "bad escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::new("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(JsonError::new(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }
}

/// Escapes a string for embedding in a JSON document (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("true").unwrap().as_bool(), Some(true));
        assert_eq!(Json::parse("false").unwrap().as_bool(), Some(false));
        assert_eq!(Json::parse("1").unwrap().as_bool(), None);
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap().as_str(), Some("a\nb"));
    }

    #[test]
    fn u64_max_survives() {
        let text = format!("{{\"v\": {}}}", u64::MAX);
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("v").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": "x"}, []], "c": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap(), &Json::Obj(vec![]));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "1 2", "\"\\q\"", "tru"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn escape_round_trips() {
        let original = "line\nquote\"slash\\tab\tctrl\u{1}";
        let text = format!("\"{}\"", escape(original));
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }
}
