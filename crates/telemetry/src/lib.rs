//! Telemetry for the MineSweeper reproduction: a lock-free metrics
//! registry, sweep-lifecycle tracing, and exportable run timelines.
//!
//! The crate has three planes, deliberately decoupled:
//!
//! * **Metrics** ([`Registry`], [`Counter`], [`Histogram`]) — always-on
//!   atomic counters and log2 histograms, labelled by subsystem. A
//!   [`Snapshot`] captures them at a point in time, supports `delta`
//!   algebra for before/after measurements, and exports to JSON or
//!   Prometheus text exposition.
//! * **Tracing** ([`Tracer`], [`Sink`], [`Event`]) — typed
//!   sweep-lifecycle events routed through a pluggable sink (null, ring
//!   buffer, JSONL writer). When disabled the hot path costs one branch
//!   and constructs nothing.
//! * **Timelines** ([`RunReport`], [`SweepRecord`]) — folds an event
//!   stream into per-sweep records and paper-style summary tables, and
//!   [`RunReport::reconcile`]s event-derived totals against the metric
//!   counters so the two planes can never silently drift apart.
//!
//! On top of the three planes sit two evaluators: the [`Watchdog`]
//! checks a snapshot (usually a delta) against SLO objectives and emits
//! [`EventKind::SloViolation`] events for breaches, and
//! [`compare::compare`] computes noise-aware per-config deltas between
//! two bench metrics snapshots (the `ms-report --compare` gate).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compare;
pub mod cost;
pub mod json;
pub mod registry;
pub mod timeline;
pub mod trace;
pub mod watchdog;

pub use compare::{compare, CompareReport, ConfigDelta, DEFAULT_THRESHOLD_PCT};
pub use cost::{CostKind, CostLedger, CostRecorder, COST_SUBSYSTEM};
pub use json::{Json, JsonError};
pub use registry::{
    Counter, CounterSample, Histogram, HistogramSample, Registry, Snapshot,
    HISTOGRAM_BUCKETS, SNAPSHOT_MIN_SCHEMA_VERSION, SNAPSHOT_SCHEMA_VERSION,
};
pub use timeline::{
    pause_table, AgedRecord, PinRecord, RunReport, SloRecord, SweepRecord,
};
pub use trace::{
    Event, EventKind, JsonlSink, LedgerTotals, MarkProf, NullSink, RingSink, SharedBuf,
    Sink, Stopwatch, Tracer, Trigger,
};
pub use watchdog::{slo_table, SloCheck, SloKind, SloPolicy, Watchdog};
