//! Telemetry for the MineSweeper reproduction: a lock-free metrics
//! registry, sweep-lifecycle tracing, and exportable run timelines.
//!
//! The crate has three planes, deliberately decoupled:
//!
//! * **Metrics** ([`Registry`], [`Counter`], [`Histogram`]) — always-on
//!   atomic counters and log2 histograms, labelled by subsystem. A
//!   [`Snapshot`] captures them at a point in time, supports `delta`
//!   algebra for before/after measurements, and exports to JSON or
//!   Prometheus text exposition.
//! * **Tracing** ([`Tracer`], [`Sink`], [`Event`]) — typed
//!   sweep-lifecycle events routed through a pluggable sink (null, ring
//!   buffer, JSONL writer). When disabled the hot path costs one branch
//!   and constructs nothing.
//! * **Timelines** ([`RunReport`], [`SweepRecord`]) — folds an event
//!   stream into per-sweep records and paper-style summary tables, and
//!   [`RunReport::reconcile`]s event-derived totals against the metric
//!   counters so the two planes can never silently drift apart.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod registry;
pub mod timeline;
pub mod trace;

pub use json::{Json, JsonError};
pub use registry::{
    Counter, CounterSample, Histogram, HistogramSample, Registry, Snapshot,
    HISTOGRAM_BUCKETS, SNAPSHOT_MIN_SCHEMA_VERSION, SNAPSHOT_SCHEMA_VERSION,
};
pub use timeline::{pause_table, AgedRecord, PinRecord, RunReport, SweepRecord};
pub use trace::{
    Event, EventKind, JsonlSink, LedgerTotals, NullSink, RingSink, SharedBuf, Sink,
    Stopwatch, Tracer, Trigger,
};
