//! Sweep-lifecycle tracing: typed events, pluggable sinks, and the
//! [`Tracer`] front end the allocator layer embeds.
//!
//! The tracer is designed so the hot path pays **one branch** when
//! tracing is disabled: [`Tracer::emit`] takes a closure and returns
//! before constructing the event if no sink is attached.

use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::{Json, JsonError};

/// What caused a sweep to start (§3.2 / §4.2 triggers, or an explicit
/// caller request).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// Quarantined bytes crossed the proportional heap-fraction threshold
    /// (15 % by default).
    Proportional,
    /// Unmapped quarantined bytes reached the 9× RSS trigger.
    Unmapped,
    /// The caller asked for a sweep without either trigger having fired.
    Manual,
}

impl Trigger {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Trigger::Proportional => "proportional",
            Trigger::Unmapped => "unmapped",
            Trigger::Manual => "manual",
        }
    }

    fn parse(s: &str) -> Option<Trigger> {
        match s {
            "proportional" => Some(Trigger::Proportional),
            "unmapped" => Some(Trigger::Unmapped),
            "manual" => Some(Trigger::Manual),
            _ => None,
        }
    }
}

/// Failed-free ledger totals as of a sweep's end, carried in
/// [`EventKind::SweepEnd`] when forensics is enabled. `bytes` must equal
/// the quarantine's failed bytes at the same instant (byte conservation)
/// and `fail_events` the cumulative `failed_frees` counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct LedgerTotals {
    /// Entries currently in the failed-free ledger.
    pub entries: u64,
    /// Swept bytes those entries pin in quarantine.
    pub bytes: u64,
    /// Cumulative failed-free decisions recorded by the ledger.
    pub fail_events: u64,
}

/// Profiler attribution for one sweep's marking phase, carried in
/// [`EventKind::MarkPhase`] when the sweep profiler is enabled. `None`
/// keeps the event in its pre-profiler wire shape, so golden traces and
/// old consumers are untouched.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct MarkProf {
    /// Nanoseconds spent inside the scan kernel (serial steps and
    /// parallel chunks combined; 0 in deterministic mode).
    pub scan_ns: u64,
    /// Shadow-map marks published through the write-combine window.
    pub wc_window_bits: u64,
    /// Shadow-map marks stored directly (window closed: scattered marks).
    pub wc_direct: u64,
    /// Direct-mapped chunk-cache evictions in the shadow writer.
    pub cache_evictions: u64,
}

/// A typed sweep-lifecycle event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A sweep began: the quarantine generation is being locked in.
    SweepStart {
        /// 1-based sweep number.
        sweep: u64,
        /// What fired the sweep.
        trigger: Trigger,
        /// Swept (non-unmapped) quarantined bytes at sweep start.
        quarantine_bytes: u64,
        /// Quarantined allocations at sweep start.
        quarantine_entries: u64,
    },
    /// The concurrent marking phase of a sweep completed.
    MarkPhase {
        /// Sweep number.
        sweep: u64,
        /// Bytes advanced through the sweep plan (including skipped
        /// pages).
        bytes: u64,
        /// Words actually read and tested.
        words: u64,
        /// Bytes advanced without reading: cache-replayed clean pages plus
        /// protected/unmapped skips. Invariant: `bytes == words * 8 +
        /// skipped_bytes`.
        skipped_bytes: u64,
        /// Granules marked in the shadow map when marking finished.
        marked_granules: u64,
        /// Heap-pointing words suppressed by the candidate filter during
        /// marking (serial steps and parallel helpers combined).
        filter_rejects: u64,
        /// Wall-clock marking time in nanoseconds (0 in deterministic
        /// mode).
        wall_ns: u64,
        /// Profiler attribution; `None` when the sweep profiler is off
        /// (the JSON then omits the profiler keys, so pre-profiler traces
        /// parse unchanged).
        prof: Option<MarkProf>,
    },
    /// A stop-the-world soft-dirty re-check ran (mostly-concurrent mode).
    StwPass {
        /// Sweep number.
        sweep: u64,
        /// Pages re-examined.
        pages: u64,
        /// Words re-examined.
        words: u64,
    },
    /// The release phase of a sweep completed.
    Release {
        /// Sweep number.
        sweep: u64,
        /// Entries proven pointer-free and recycled.
        released: u64,
        /// Bytes recycled.
        released_bytes: u64,
        /// Entries retained because a (possible) dangling pointer was
        /// found.
        failed_frees: u64,
    },
    /// The post-sweep allocator purge ran (§4.5).
    Purge {
        /// Sweep number.
        sweep: u64,
        /// Pages the allocator decommitted.
        purged_pages: u64,
    },
    /// A thread-local quarantine buffer spilled to the global list.
    QuarantineFlush {
        /// Entries flushed.
        entries: u64,
    },
    /// Forensics: aggregated provenance edges discovered by one sweep for
    /// one quarantined candidate (who points at quarantine). Emitted only
    /// when the `forensics` knob is on and the sweep recorded at least one
    /// edge into the entry.
    PinEdge {
        /// Sweep number.
        sweep: u64,
        /// Allocation-site id of the pinned quarantine entry.
        site: u32,
        /// Base address of the pinned entry.
        base: u64,
        /// Swept bytes the entry pins.
        bytes: u64,
        /// Edges recorded into the entry this sweep (post-sampling).
        hits: u64,
        /// Example source address of one recorded edge (page-granular for
        /// cache-replayed words; 0 when unknown).
        src: u64,
    },
    /// Forensics: a quarantined entry failed its sweep (again). Emitted on
    /// every failed-free decision while forensics is on, so per-sweep event
    /// counts reconcile exactly with [`EventKind::Release`]'s
    /// `failed_frees`.
    FailedFreeAged {
        /// Sweep number.
        sweep: u64,
        /// Allocation-site id of the failed entry.
        site: u32,
        /// Base address of the failed entry.
        base: u64,
        /// Swept bytes the entry pins.
        bytes: u64,
        /// Consecutive sweeps the entry has failed (1 on first failure).
        survivals: u64,
        /// Sweep number of the first failure.
        first_failed: u64,
    },
    /// An SLO watchdog objective was breached: an observed value crossed
    /// its configured limit. Emitted by [`crate::Watchdog`] evaluation
    /// (e.g. the sim engine's end-of-run check).
    SloViolation {
        /// Stable objective name (`stw`, `sweep`, `qratio`, `util`).
        objective: String,
        /// The observed value (same unit as the limit).
        observed: u64,
        /// The configured limit it breached.
        limit: u64,
    },
    /// A sweep finished end to end.
    SweepEnd {
        /// Sweep number.
        sweep: u64,
        /// Wall-clock sweep duration in nanoseconds (0 in deterministic
        /// mode).
        wall_ns: u64,
        /// Failed-free ledger totals at sweep end; `None` when forensics
        /// is off (the JSON then omits the ledger keys, so pre-forensics
        /// traces parse unchanged).
        ledger: Option<LedgerTotals>,
    },
}

/// An emitted event: an [`EventKind`] stamped with a sequence number and
/// the virtual clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotonic per-tracer sequence number.
    pub seq: u64,
    /// Virtual time (simulated cost units) when the event was emitted; 0
    /// when no virtual clock drives the tracer.
    pub vnow: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl Event {
    /// Serialises the event as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let head = format!("{{\"seq\": {}, \"vnow\": {}", self.seq, self.vnow);
        let body = match &self.kind {
            EventKind::SweepStart { sweep, trigger, quarantine_bytes, quarantine_entries } => {
                format!(
                    "\"type\": \"sweep_start\", \"sweep\": {sweep}, \"trigger\": \"{}\", \
                     \"quarantine_bytes\": {quarantine_bytes}, \"quarantine_entries\": {quarantine_entries}",
                    trigger.as_str()
                )
            }
            EventKind::MarkPhase {
                sweep,
                bytes,
                words,
                skipped_bytes,
                marked_granules,
                filter_rejects,
                wall_ns,
                prof,
            } => {
                // skip_rate is derived (skipped_bytes / bytes), emitted for
                // human consumers; parsing recomputes it from the integers.
                let skip_rate = if *bytes == 0 {
                    0.0
                } else {
                    *skipped_bytes as f64 / *bytes as f64
                };
                let mut s = format!(
                    "\"type\": \"mark_phase\", \"sweep\": {sweep}, \"bytes\": {bytes}, \
                     \"words\": {words}, \"skipped_bytes\": {skipped_bytes}, \
                     \"skip_rate\": {skip_rate:.4}, \
                     \"marked_granules\": {marked_granules}, \
                     \"filter_rejects\": {filter_rejects}, \"wall_ns\": {wall_ns}"
                );
                if let Some(p) = prof {
                    s.push_str(&format!(
                        ", \"prof_scan_ns\": {}, \"wc_window_bits\": {}, \
                         \"wc_direct\": {}, \"cache_evictions\": {}",
                        p.scan_ns, p.wc_window_bits, p.wc_direct, p.cache_evictions
                    ));
                }
                s
            }
            EventKind::StwPass { sweep, pages, words } => {
                format!("\"type\": \"stw_pass\", \"sweep\": {sweep}, \"pages\": {pages}, \"words\": {words}")
            }
            EventKind::Release { sweep, released, released_bytes, failed_frees } => {
                format!(
                    "\"type\": \"release\", \"sweep\": {sweep}, \"released\": {released}, \
                     \"released_bytes\": {released_bytes}, \"failed_frees\": {failed_frees}"
                )
            }
            EventKind::Purge { sweep, purged_pages } => {
                format!("\"type\": \"purge\", \"sweep\": {sweep}, \"purged_pages\": {purged_pages}")
            }
            EventKind::QuarantineFlush { entries } => {
                format!("\"type\": \"quarantine_flush\", \"entries\": {entries}")
            }
            EventKind::PinEdge { sweep, site, base, bytes, hits, src } => {
                format!(
                    "\"type\": \"pin_edge\", \"sweep\": {sweep}, \"site\": {site}, \
                     \"base\": {base}, \"bytes\": {bytes}, \"hits\": {hits}, \"src\": {src}"
                )
            }
            EventKind::FailedFreeAged { sweep, site, base, bytes, survivals, first_failed } => {
                format!(
                    "\"type\": \"failed_free_aged\", \"sweep\": {sweep}, \"site\": {site}, \
                     \"base\": {base}, \"bytes\": {bytes}, \"survivals\": {survivals}, \
                     \"first_failed\": {first_failed}"
                )
            }
            EventKind::SloViolation { objective, observed, limit } => {
                format!(
                    "\"type\": \"slo_violation\", \"objective\": \"{}\", \
                     \"observed\": {observed}, \"limit\": {limit}",
                    crate::json::escape(objective)
                )
            }
            EventKind::SweepEnd { sweep, wall_ns, ledger } => match ledger {
                None => format!(
                    "\"type\": \"sweep_end\", \"sweep\": {sweep}, \"wall_ns\": {wall_ns}"
                ),
                Some(l) => format!(
                    "\"type\": \"sweep_end\", \"sweep\": {sweep}, \"wall_ns\": {wall_ns}, \
                     \"ledger_entries\": {}, \"ledger_bytes\": {}, \"ledger_fail_events\": {}",
                    l.entries, l.bytes, l.fail_events
                ),
            },
        };
        format!("{head}, {body}}}")
    }

    /// Parses an event back from its JSONL line.
    ///
    /// # Errors
    ///
    /// [`JsonError`] on malformed JSON, an unknown `type`, or a missing
    /// field.
    pub fn from_json(line: &str) -> Result<Event, JsonError> {
        let v = Json::parse(line)?;
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| JsonError::new(format!("missing numeric field {key}")))
        };
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError::new("missing type"))?;
        let kind = match ty {
            "sweep_start" => {
                let trigger = v
                    .get("trigger")
                    .and_then(Json::as_str)
                    .and_then(Trigger::parse)
                    .ok_or_else(|| JsonError::new("bad trigger"))?;
                EventKind::SweepStart {
                    sweep: num("sweep")?,
                    trigger,
                    quarantine_bytes: num("quarantine_bytes")?,
                    quarantine_entries: num("quarantine_entries")?,
                }
            }
            "mark_phase" => EventKind::MarkPhase {
                sweep: num("sweep")?,
                bytes: num("bytes")?,
                words: num("words")?,
                skipped_bytes: num("skipped_bytes")?,
                marked_granules: num("marked_granules")?,
                // Optional for wire back-compat: traces written before the
                // filter-reject accounting carry no such key.
                filter_rejects: v.get("filter_rejects").and_then(Json::as_u64).unwrap_or(0),
                wall_ns: num("wall_ns")?,
                // The profiler keys are optional: pre-profiler traces (and
                // profiler-off runs) omit them.
                prof: match v.get("prof_scan_ns") {
                    None => None,
                    Some(_) => Some(MarkProf {
                        scan_ns: num("prof_scan_ns")?,
                        wc_window_bits: num("wc_window_bits")?,
                        wc_direct: num("wc_direct")?,
                        cache_evictions: num("cache_evictions")?,
                    }),
                },
            },
            "stw_pass" => EventKind::StwPass {
                sweep: num("sweep")?,
                pages: num("pages")?,
                words: num("words")?,
            },
            "release" => EventKind::Release {
                sweep: num("sweep")?,
                released: num("released")?,
                released_bytes: num("released_bytes")?,
                failed_frees: num("failed_frees")?,
            },
            "purge" => EventKind::Purge {
                sweep: num("sweep")?,
                purged_pages: num("purged_pages")?,
            },
            "quarantine_flush" => EventKind::QuarantineFlush { entries: num("entries")? },
            "pin_edge" => EventKind::PinEdge {
                sweep: num("sweep")?,
                site: num("site")? as u32,
                base: num("base")?,
                bytes: num("bytes")?,
                hits: num("hits")?,
                src: num("src")?,
            },
            "failed_free_aged" => EventKind::FailedFreeAged {
                sweep: num("sweep")?,
                site: num("site")? as u32,
                base: num("base")?,
                bytes: num("bytes")?,
                survivals: num("survivals")?,
                first_failed: num("first_failed")?,
            },
            "slo_violation" => EventKind::SloViolation {
                objective: v
                    .get("objective")
                    .and_then(Json::as_str)
                    .ok_or_else(|| JsonError::new("missing objective"))?
                    .to_owned(),
                observed: num("observed")?,
                limit: num("limit")?,
            },
            "sweep_end" => {
                // The ledger keys are optional: pre-forensics traces (and
                // forensics-off runs) omit them.
                let ledger = match v.get("ledger_entries") {
                    None => None,
                    Some(_) => Some(LedgerTotals {
                        entries: num("ledger_entries")?,
                        bytes: num("ledger_bytes")?,
                        fail_events: num("ledger_fail_events")?,
                    }),
                };
                EventKind::SweepEnd { sweep: num("sweep")?, wall_ns: num("wall_ns")?, ledger }
            }
            other => return Err(JsonError::new(format!("unknown event type {other:?}"))),
        };
        Ok(Event { seq: num("seq")?, vnow: num("vnow")?, kind })
    }
}

/// Where emitted events go. Implementations must be cheap: the layer
/// calls [`Sink::record`] inline on sweep paths.
pub trait Sink: Send {
    /// Receives one event.
    fn record(&mut self, event: &Event);

    /// Flushes any buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// A sink that discards everything (useful to measure tracing overhead
/// with the emission machinery engaged).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _event: &Event) {}
}

/// A bounded in-memory ring of recent events. Clones share the buffer,
/// so keep one clone to inspect after handing the other to a tracer.
#[derive(Clone, Debug)]
pub struct RingSink {
    buf: Arc<Mutex<VecDeque<Event>>>,
    capacity: usize,
}

impl RingSink {
    /// Creates a ring holding the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            buf: Arc::new(Mutex::new(VecDeque::with_capacity(capacity.max(1)))),
            capacity: capacity.max(1),
        }
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.lock().expect("ring poisoned").iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("ring poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for RingSink {
    fn record(&mut self, event: &Event) {
        let mut buf = self.buf.lock().expect("ring poisoned");
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// A sink that writes one JSON line per event to any [`Write`]r.
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    writer: W,
    lines: u64,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Creates a JSONL sink over `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, lines: 0 }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        // Trace IO failures must not take down the traced program; drop
        // the line (the lines() counter stops advancing, which reconcilers
        // notice).
        if writeln!(self.writer, "{}", event.to_json()).is_ok() {
            self.lines += 1;
        }
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

/// A clonable in-memory byte buffer implementing [`Write`]; pair with
/// [`JsonlSink`] to capture a trace as text (golden tests, CLI tests).
#[derive(Clone, Debug, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        SharedBuf::default()
    }

    /// The buffered bytes as UTF-8 text.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().expect("buffer poisoned")).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buffer poisoned").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A wall-clock stopwatch that is inert when tracing is disabled or
/// deterministic output is requested.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Nanoseconds elapsed since the stopwatch started (0 if inert).
    pub fn elapsed_ns(&self) -> u64 {
        self.0.map_or(0, |t| t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64)
    }
}

/// The tracing front end: an optional sink plus the clocks used to stamp
/// events.
#[derive(Default)]
pub struct Tracer {
    sink: Option<Box<dyn Sink>>,
    vnow: u64,
    seq: u64,
    deterministic: bool,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.sink.is_some())
            .field("vnow", &self.vnow)
            .field("seq", &self.seq)
            .field("deterministic", &self.deterministic)
            .finish()
    }
}

impl Tracer {
    /// A tracer with no sink: every emit is a single branch and returns.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Whether a sink is attached.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Attaches a sink (replacing any previous one).
    pub fn set_sink(&mut self, sink: Box<dyn Sink>) {
        self.sink = Some(sink);
    }

    /// Detaches and returns the current sink, flushed.
    pub fn take_sink(&mut self) -> Option<Box<dyn Sink>> {
        let mut sink = self.sink.take();
        if let Some(s) = sink.as_mut() {
            s.flush();
        }
        sink
    }

    /// In deterministic mode wall-clock durations are reported as 0, so
    /// identical runs produce byte-identical traces (golden tests, CI).
    pub fn set_deterministic(&mut self, on: bool) {
        self.deterministic = on;
    }

    /// Whether deterministic mode is on (event producers use this to zero
    /// wall-clock fields the [`Stopwatch`] gate doesn't cover, e.g. the
    /// profiler's `scan_ns`).
    pub fn deterministic(&self) -> bool {
        self.deterministic
    }

    /// Sets the virtual clock stamped into subsequent events.
    pub fn set_virtual_now(&mut self, vnow: u64) {
        self.vnow = vnow;
    }

    /// The current virtual clock.
    pub fn virtual_now(&self) -> u64 {
        self.vnow
    }

    /// Starts a stopwatch; inert (always reads 0) when tracing is
    /// disabled or deterministic.
    pub fn stopwatch(&self) -> Stopwatch {
        if self.sink.is_some() && !self.deterministic {
            Stopwatch(Some(Instant::now()))
        } else {
            Stopwatch(None)
        }
    }

    /// Emits an event. The closure only runs when a sink is attached, so
    /// the disabled path costs one branch and no construction.
    #[inline]
    pub fn emit(&mut self, make: impl FnOnce() -> EventKind) {
        let Some(sink) = self.sink.as_mut() else { return };
        let event = Event { seq: self.seq, vnow: self.vnow, kind: make() };
        self.seq += 1;
        sink.record(&event);
    }

    /// Flushes the attached sink, if any.
    pub fn flush(&mut self) {
        if let Some(sink) = self.sink.as_mut() {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<EventKind> {
        vec![
            EventKind::SweepStart {
                sweep: 1,
                trigger: Trigger::Proportional,
                quarantine_bytes: 4096,
                quarantine_entries: 3,
            },
            EventKind::MarkPhase {
                sweep: 1,
                bytes: 8192,
                words: 512,
                skipped_bytes: 4096,
                marked_granules: 7,
                filter_rejects: 5,
                wall_ns: 0,
                prof: None,
            },
            EventKind::MarkPhase {
                sweep: 2,
                bytes: 8192,
                words: 512,
                skipped_bytes: 4096,
                marked_granules: 7,
                filter_rejects: 5,
                wall_ns: 120,
                prof: Some(MarkProf {
                    scan_ns: 90,
                    wc_window_bits: 40,
                    wc_direct: 3,
                    cache_evictions: 1,
                }),
            },
            EventKind::SloViolation {
                objective: "stw".to_owned(),
                observed: 9000,
                limit: 4096,
            },
            EventKind::StwPass { sweep: 1, pages: 2, words: 1024 },
            EventKind::Release { sweep: 1, released: 2, released_bytes: 128, failed_frees: 1 },
            EventKind::Purge { sweep: 1, purged_pages: 9 },
            EventKind::QuarantineFlush { entries: 64 },
            EventKind::PinEdge {
                sweep: 1,
                site: 42,
                base: 0x1_0000_2000,
                bytes: 320,
                hits: 3,
                src: 0x7f_0000_0008,
            },
            EventKind::FailedFreeAged {
                sweep: 1,
                site: 42,
                base: 0x1_0000_2000,
                bytes: 320,
                survivals: 2,
                first_failed: 1,
            },
            EventKind::SweepEnd { sweep: 1, wall_ns: u64::MAX, ledger: None },
            EventKind::SweepEnd {
                sweep: 2,
                wall_ns: 0,
                ledger: Some(LedgerTotals { entries: 1, bytes: 320, fail_events: 2 }),
            },
        ]
    }

    #[test]
    fn event_json_roundtrip() {
        for (i, kind) in sample_events().into_iter().enumerate() {
            let e = Event { seq: i as u64, vnow: 17, kind };
            let line = e.to_json();
            let parsed = Event::from_json(&line).unwrap();
            assert_eq!(parsed, e, "round-trip failed for {line}");
        }
    }

    #[test]
    fn pre_forensics_sweep_end_lines_still_parse() {
        // Wire back-compat: traces written before the forensics schema
        // carry no ledger keys and must parse to `ledger: None`.
        let old = "{\"seq\": 6, \"vnow\": 10000, \"type\": \"sweep_end\", \"sweep\": 1, \"wall_ns\": 0}";
        let e = Event::from_json(old).unwrap();
        assert_eq!(e.kind, EventKind::SweepEnd { sweep: 1, wall_ns: 0, ledger: None });
        assert_eq!(e.to_json(), old, "ledger-free events serialise without ledger keys");
    }

    #[test]
    fn pre_filter_reject_mark_phase_lines_still_parse() {
        // Wire back-compat: traces written before filter-reject accounting
        // carry no filter_rejects key and must parse to 0.
        let old = "{\"seq\": 1, \"vnow\": 0, \"type\": \"mark_phase\", \"sweep\": 1, \
                   \"bytes\": 8192, \"words\": 1024, \"skipped_bytes\": 0, \
                   \"skip_rate\": 0.0000, \"marked_granules\": 3, \"wall_ns\": 0}";
        let e = Event::from_json(old).unwrap();
        assert_eq!(
            e.kind,
            EventKind::MarkPhase {
                sweep: 1,
                bytes: 8192,
                words: 1024,
                skipped_bytes: 0,
                marked_granules: 3,
                filter_rejects: 0,
                wall_ns: 0,
                prof: None,
            }
        );
    }

    #[test]
    fn profiler_free_mark_phase_serialises_without_prof_keys() {
        // Profiler off keeps the wire shape byte-identical to pre-profiler
        // traces (golden fixtures must not move).
        let e = Event {
            seq: 1,
            vnow: 0,
            kind: EventKind::MarkPhase {
                sweep: 1,
                bytes: 8192,
                words: 1024,
                skipped_bytes: 0,
                marked_granules: 3,
                filter_rejects: 0,
                wall_ns: 0,
                prof: None,
            },
        };
        assert!(!e.to_json().contains("prof_scan_ns"));
        let p = Event {
            kind: EventKind::MarkPhase {
                sweep: 1,
                bytes: 8192,
                words: 1024,
                skipped_bytes: 0,
                marked_granules: 3,
                filter_rejects: 0,
                wall_ns: 0,
                prof: Some(MarkProf::default()),
            },
            ..e
        };
        assert!(p.to_json().contains("\"prof_scan_ns\": 0"));
    }

    #[test]
    fn slo_violation_objective_is_escaped() {
        let e = Event {
            seq: 0,
            vnow: 0,
            kind: EventKind::SloViolation {
                objective: "q\"ratio\\\n".to_owned(),
                observed: 2,
                limit: 1,
            },
        };
        let line = e.to_json();
        assert_eq!(Event::from_json(&line).unwrap(), e, "hostile objective must round-trip");
    }

    #[test]
    fn from_json_rejects_unknown_type() {
        assert!(Event::from_json("{\"seq\":0,\"vnow\":0,\"type\":\"nope\"}").is_err());
        assert!(Event::from_json("{\"seq\":0,\"vnow\":0,\"type\":\"release\"}").is_err());
    }

    #[test]
    fn disabled_tracer_builds_nothing() {
        let mut t = Tracer::disabled();
        let mut built = false;
        t.emit(|| {
            built = true;
            EventKind::QuarantineFlush { entries: 1 }
        });
        assert!(!built, "closure must not run without a sink");
        assert!(!t.enabled());
        assert_eq!(t.stopwatch().elapsed_ns(), 0);
    }

    #[test]
    fn tracer_stamps_seq_and_vnow() {
        let ring = RingSink::new(8);
        let mut t = Tracer::disabled();
        t.set_sink(Box::new(ring.clone()));
        t.set_virtual_now(5);
        t.emit(|| EventKind::QuarantineFlush { entries: 1 });
        t.set_virtual_now(9);
        t.emit(|| EventKind::QuarantineFlush { entries: 2 });
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!((events[0].seq, events[0].vnow), (0, 5));
        assert_eq!((events[1].seq, events[1].vnow), (1, 9));
    }

    #[test]
    fn ring_sink_drops_oldest() {
        let ring = RingSink::new(2);
        let mut t = Tracer::disabled();
        t.set_sink(Box::new(ring.clone()));
        for n in 0..5 {
            t.emit(|| EventKind::QuarantineFlush { entries: n });
        }
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].kind, EventKind::QuarantineFlush { entries: 4 });
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let buf = SharedBuf::new();
        let mut t = Tracer::disabled();
        t.set_sink(Box::new(JsonlSink::new(buf.clone())));
        for kind in sample_events() {
            t.emit(|| kind.clone());
        }
        t.flush();
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), sample_events().len());
        for line in lines {
            Event::from_json(line).expect("every line must parse");
        }
    }

    #[test]
    fn deterministic_mode_zeroes_stopwatches() {
        let mut t = Tracer::disabled();
        t.set_sink(Box::new(NullSink));
        t.set_deterministic(true);
        let sw = t.stopwatch();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert_eq!(sw.elapsed_ns(), 0);
        t.set_deterministic(false);
        let sw = t.stopwatch();
        assert!(sw.0.is_some());
    }
}
