//! Property-based tests for the virtual-memory substrate.
//!
//! Invariants checked:
//! * RSS never exceeds mapped bytes and both are non-negative multiples of
//!   the page size.
//! * `read_word` always returns the last value written to an address
//!   (until decommit/unmap), regardless of the interleaving of mapping,
//!   commit, decommit and protection operations.
//! * Decommit + re-access always yields zero (demand-zero paging).
//! * Soft-dirty tracking is a superset of the pages actually written since
//!   the last clear.

use proptest::prelude::*;
use std::collections::HashMap;

use vmem::{AddrSpace, PageRange, Protection, PAGE_SIZE, WORD_SIZE};

/// Operations the state machine may apply to a small heap region.
#[derive(Clone, Debug)]
enum Op {
    Write { page: u8, word: u8, value: u64 },
    Read { page: u8, word: u8 },
    Decommit { page: u8 },
    Commit { page: u8 },
    ProtectNone { page: u8 },
    ProtectRw { page: u8 },
    ClearSoftDirty,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8, 0u8..64, any::<u64>())
            .prop_map(|(page, word, value)| Op::Write { page, word, value }),
        (0u8..8, 0u8..64).prop_map(|(page, word)| Op::Read { page, word }),
        (0u8..8).prop_map(|page| Op::Decommit { page }),
        (0u8..8).prop_map(|page| Op::Commit { page }),
        (0u8..8).prop_map(|page| Op::ProtectNone { page }),
        (0u8..8).prop_map(|page| Op::ProtectRw { page }),
        Just(Op::ClearSoftDirty),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn space_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut space = AddrSpace::new();
        let base = space.reserve_heap(8);
        space.map(base, 8).unwrap();

        // Reference model: word address -> value, page -> protected?, page -> dirty?
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut protected = [false; 8];
        let mut dirtied = [false; 8];

        for op in ops {
            match op {
                Op::Write { page, word, value } => {
                    let addr = base + page as u64 * PAGE_SIZE as u64 + word as u64 * WORD_SIZE as u64;
                    let res = space.write_word(addr, value);
                    if protected[page as usize] {
                        prop_assert!(res.is_err(), "write through PROT_NONE must fault");
                    } else {
                        prop_assert!(res.is_ok());
                        model.insert(addr.raw(), value);
                        dirtied[page as usize] = true;
                    }
                }
                Op::Read { page, word } => {
                    let addr = base + page as u64 * PAGE_SIZE as u64 + word as u64 * WORD_SIZE as u64;
                    let res = space.read_word(addr);
                    if protected[page as usize] {
                        prop_assert!(res.is_err(), "read through PROT_NONE must fault");
                    } else {
                        let expected = model.get(&addr.raw()).copied().unwrap_or(0);
                        prop_assert_eq!(res.unwrap(), expected);
                    }
                }
                Op::Decommit { page } => {
                    let addr = base + page as u64 * PAGE_SIZE as u64;
                    space.decommit(PageRange::spanning(addr, PAGE_SIZE as u64)).unwrap();
                    // All words on the page now read as zero.
                    let lo = addr.raw();
                    model.retain(|&a, _| !(lo..lo + PAGE_SIZE as u64).contains(&a));
                }
                Op::Commit { page } => {
                    let addr = base + page as u64 * PAGE_SIZE as u64;
                    space.commit(PageRange::spanning(addr, PAGE_SIZE as u64)).unwrap();
                }
                Op::ProtectNone { page } => {
                    let addr = base + page as u64 * PAGE_SIZE as u64;
                    space.protect(PageRange::spanning(addr, PAGE_SIZE as u64), Protection::None).unwrap();
                    protected[page as usize] = true;
                }
                Op::ProtectRw { page } => {
                    let addr = base + page as u64 * PAGE_SIZE as u64;
                    space.protect(PageRange::spanning(addr, PAGE_SIZE as u64), Protection::ReadWrite).unwrap();
                    protected[page as usize] = false;
                }
                Op::ClearSoftDirty => {
                    space.clear_soft_dirty();
                    dirtied = [false; 8];
                }
            }

            // Global invariants after every step.
            prop_assert!(space.rss_bytes() <= space.mapped_bytes());
            prop_assert_eq!(space.rss_bytes() % PAGE_SIZE as u64, 0);
            prop_assert!(space.stats().peak_rss_bytes() >= space.rss_bytes());

            // Every page we wrote since the last clear is soft-dirty
            // (the space may report more, e.g. zero-fills, never fewer).
            for (i, &was_written) in dirtied.iter().enumerate() {
                if was_written && space.is_committed(base + i as u64 * PAGE_SIZE as u64) {
                    prop_assert!(
                        space.is_soft_dirty(base + i as u64 * PAGE_SIZE as u64),
                        "page {i} written but not soft-dirty"
                    );
                }
            }
        }
    }

    #[test]
    fn peek_never_changes_state(
        words in proptest::collection::vec((0u64..8 * 512, any::<u64>()), 1..50)
    ) {
        let mut space = AddrSpace::new();
        let base = space.reserve_heap(8);
        space.map(base, 8).unwrap();
        for &(w, v) in words.iter().take(words.len() / 2) {
            space.write_word(base + w * WORD_SIZE as u64, v).unwrap();
        }
        let rss = space.rss_bytes();
        let dirty = space.soft_dirty_pages();
        for &(w, _) in &words {
            let _ = space.peek_word(base + w * WORD_SIZE as u64);
        }
        prop_assert_eq!(space.rss_bytes(), rss);
        prop_assert_eq!(space.soft_dirty_pages(), dirty);
    }

    #[test]
    fn fill_zero_matches_word_writes(
        start_word in 0u64..500,
        len_words in 0u64..300,
        seed in any::<u64>(),
    ) {
        let mut a = AddrSpace::new();
        let mut b = AddrSpace::new();
        let base_a = a.reserve_heap(2);
        let base_b = b.reserve_heap(2);
        a.map(base_a, 2).unwrap();
        b.map(base_b, 2).unwrap();
        // Fill both spaces identically.
        let mut x = seed | 1;
        for w in 0..1024u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            a.write_word(base_a + w * 8, x).unwrap();
            b.write_word(base_b + w * 8, x).unwrap();
        }
        let len_words = len_words.min(1024 - start_word);
        a.fill_zero(base_a + start_word * 8, len_words * 8).unwrap();
        for w in start_word..start_word + len_words {
            b.write_word(base_b + w * 8, 0).unwrap();
        }
        for w in 0..1024u64 {
            prop_assert_eq!(
                a.read_word(base_a + w * 8).unwrap(),
                b.read_word(base_b + w * 8).unwrap(),
                "word {} differs", w
            );
        }
    }
}
