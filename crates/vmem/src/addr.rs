//! Address arithmetic newtypes.
//!
//! All of the workspace's "pointer" maths goes through [`Addr`] and
//! [`PageIdx`] so that byte offsets, word indices, granule indices and page
//! indices can never be confused — a large class of off-by-shift bugs in
//! shadow-map code is ruled out statically.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Size of a simulated page in bytes (4 KiB, matching x86-64 Linux).
pub const PAGE_SIZE: usize = 4096;

/// Size of a machine word in bytes. The sweep inspects memory one aligned
/// word at a time, treating each as a potential pointer (§3.2 of the paper).
pub const WORD_SIZE: usize = 8;

/// Size of a shadow-map granule in bytes. The paper uses "one bit per every
/// 128 bits; the smallest allocation granule" (§3.2).
pub const GRANULE_SIZE: usize = 16;

/// A byte address in the simulated virtual address space.
///
/// `Addr` is a plain 64-bit value with helpers for alignment and page/word
/// decomposition. It is deliberately *not* a pointer: dereferencing goes
/// through [`crate::AddrSpace`], which enforces mapping and protection.
///
/// # Example
///
/// ```
/// use vmem::{Addr, PAGE_SIZE};
/// let a = Addr::new(0x1_0000_0123);
/// assert_eq!(a.page().base(), Addr::new(0x1_0000_0000));
/// assert_eq!(a.align_down(8), Addr::new(0x1_0000_0120));
/// assert_eq!(a.align_up(PAGE_SIZE as u64), Addr::new(0x1_0000_1000));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// The null address. Never a valid allocation target: the heap, stack
    /// and globals segments all live far above it, so zeroed memory can
    /// never be mistaken for a pointer by the sweep.
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw 64-bit value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw 64-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the null address.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Index of the page containing this address.
    #[inline]
    pub const fn page(self) -> PageIdx {
        PageIdx(self.0 / PAGE_SIZE as u64)
    }

    /// Byte offset of this address within its page.
    #[inline]
    pub const fn page_offset(self) -> usize {
        (self.0 % PAGE_SIZE as u64) as usize
    }

    /// Index of the word within its page (for word-granular page storage).
    #[inline]
    pub const fn word_in_page(self) -> usize {
        self.page_offset() / WORD_SIZE
    }

    /// Global granule index (address / 16). This is the shadow-map index
    /// `g(p)` from Figure 5 of the paper.
    #[inline]
    pub const fn granule(self) -> u64 {
        self.0 / GRANULE_SIZE as u64
    }

    /// Returns `true` if the address is aligned to `align` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    #[inline]
    pub fn is_aligned(self, align: u64) -> bool {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.0 & (align - 1) == 0
    }

    /// Rounds down to a multiple of `align` (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    #[inline]
    pub fn align_down(self, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        Addr(self.0 & !(align - 1))
    }

    /// Rounds up to a multiple of `align` (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or on address overflow.
    #[inline]
    pub fn align_up(self, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        Addr(self.0.checked_add(align - 1).expect("address overflow") & !(align - 1))
    }

    /// Byte offset from `base` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `self < base`.
    #[inline]
    pub fn offset_from(self, base: Addr) -> u64 {
        self.0.checked_sub(base.0).expect("offset_from: address below base")
    }

    /// The address `self + bytes`, checked against overflow.
    ///
    /// # Panics
    ///
    /// Panics on address overflow.
    #[inline]
    pub fn add_bytes(self, bytes: u64) -> Addr {
        Addr(self.0.checked_add(bytes).expect("address overflow"))
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        self.add_bytes(rhs)
    }
}

impl AddAssign<u64> for Addr {
    fn add_assign(&mut self, rhs: u64) {
        *self = self.add_bytes(rhs);
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;
    fn sub(self, rhs: Addr) -> u64 {
        self.offset_from(rhs)
    }
}

/// Index of a 4 KiB page in the simulated address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PageIdx(u64);

impl PageIdx {
    /// Creates a page index from its raw value (`address / PAGE_SIZE`).
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PageIdx(raw)
    }

    /// The raw index value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Base address of this page.
    #[inline]
    pub const fn base(self) -> Addr {
        Addr::new(self.0 * PAGE_SIZE as u64)
    }

    /// The next page.
    #[inline]
    pub const fn next(self) -> PageIdx {
        PageIdx(self.0 + 1)
    }
}

/// A half-open range of pages `[start, end)`.
///
/// # Example
///
/// ```
/// use vmem::{Addr, PageRange, PAGE_SIZE};
/// let r = PageRange::spanning(Addr::new(100), 5000);
/// assert_eq!(r.page_count(), 2); // bytes 100..5100 touch pages 0 and 1
/// assert_eq!(r.byte_len(), 2 * PAGE_SIZE as u64);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PageRange {
    start: PageIdx,
    end: PageIdx,
}

impl PageRange {
    /// Range of `count` pages starting at `start`.
    pub fn new(start: PageIdx, count: u64) -> Self {
        PageRange { start, end: PageIdx(start.0 + count) }
    }

    /// The smallest page range covering `len` bytes starting at `addr`.
    /// A zero-length range at `addr` covers no pages.
    pub fn spanning(addr: Addr, len: u64) -> Self {
        if len == 0 {
            let p = addr.page();
            return PageRange { start: p, end: p };
        }
        let start = addr.page();
        let end = addr.add_bytes(len - 1).page().next();
        PageRange { start, end }
    }

    /// The largest page range fully contained in `[addr, addr + len)`.
    /// Used for §4.2 unmapping: only *full* pages of a quarantined
    /// allocation can be released.
    pub fn interior(addr: Addr, len: u64) -> Self {
        let start_addr = addr.align_up(PAGE_SIZE as u64);
        let end_addr = addr.add_bytes(len).align_down(PAGE_SIZE as u64);
        if end_addr.raw() <= start_addr.raw() {
            let p = start_addr.page();
            return PageRange { start: p, end: p };
        }
        PageRange { start: start_addr.page(), end: end_addr.page() }
    }

    /// First page in the range.
    pub fn start(self) -> PageIdx {
        self.start
    }

    /// One past the last page in the range.
    pub fn end(self) -> PageIdx {
        self.end
    }

    /// Number of pages in the range.
    pub fn page_count(self) -> u64 {
        self.end.0 - self.start.0
    }

    /// Number of bytes covered by the range.
    pub fn byte_len(self) -> u64 {
        self.page_count() * PAGE_SIZE as u64
    }

    /// Returns `true` if the range contains no pages.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Iterates over the page indices in the range.
    pub fn iter(self) -> impl Iterator<Item = PageIdx> {
        (self.start.0..self.end.0).map(PageIdx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_decomposition() {
        let a = Addr::new(3 * PAGE_SIZE as u64 + 24);
        assert_eq!(a.page(), PageIdx::new(3));
        assert_eq!(a.page_offset(), 24);
        assert_eq!(a.word_in_page(), 3);
        assert_eq!(a.page().base(), Addr::new(3 * PAGE_SIZE as u64));
    }

    #[test]
    fn granule_index_matches_paper_figure5() {
        // Figure 5: for any p pointing into [a, a + size) there is a
        // corresponding mark bit at granule(p).
        let a = Addr::new(0x1000);
        assert_eq!(a.granule(), 0x100);
        assert_eq!(a.add_bytes(15).granule(), 0x100);
        assert_eq!(a.add_bytes(16).granule(), 0x101);
    }

    #[test]
    fn alignment_helpers() {
        let a = Addr::new(100);
        assert_eq!(a.align_down(16), Addr::new(96));
        assert_eq!(a.align_up(16), Addr::new(112));
        assert_eq!(Addr::new(96).align_up(16), Addr::new(96));
        assert!(Addr::new(96).is_aligned(32));
        assert!(!Addr::new(100).is_aligned(8));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn align_rejects_non_power_of_two() {
        Addr::new(8).align_up(12);
    }

    #[test]
    fn addr_arithmetic() {
        let a = Addr::new(0x1000);
        assert_eq!(a + 8, Addr::new(0x1008));
        assert_eq!((a + 24) - a, 24);
        let mut b = a;
        b += 16;
        assert_eq!(b, Addr::new(0x1010));
    }

    #[test]
    #[should_panic(expected = "below base")]
    fn offset_from_rejects_underflow() {
        Addr::new(8).offset_from(Addr::new(16));
    }

    #[test]
    fn spanning_ranges() {
        let r = PageRange::spanning(Addr::new(0), 1);
        assert_eq!(r.page_count(), 1);
        let r = PageRange::spanning(Addr::new(0), PAGE_SIZE as u64);
        assert_eq!(r.page_count(), 1);
        let r = PageRange::spanning(Addr::new(1), PAGE_SIZE as u64);
        assert_eq!(r.page_count(), 2);
        let r = PageRange::spanning(Addr::new(123), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn interior_ranges_for_unmapping() {
        // An allocation spanning [100, 100 + 3 pages) only fully covers the
        // pages strictly inside — the partial head and tail must stay.
        let r = PageRange::interior(Addr::new(100), 3 * PAGE_SIZE as u64);
        assert_eq!(r.start(), PageIdx::new(1));
        assert_eq!(r.page_count(), 2);
        // Page-aligned allocations cover all their pages.
        let r = PageRange::interior(Addr::new(PAGE_SIZE as u64), 2 * PAGE_SIZE as u64);
        assert_eq!(r.page_count(), 2);
        // Small allocations cover no full page.
        let r = PageRange::interior(Addr::new(100), 64);
        assert!(r.is_empty());
    }

    #[test]
    fn page_range_iterates_in_order() {
        let r = PageRange::new(PageIdx::new(5), 3);
        let pages: Vec<u64> = r.iter().map(PageIdx::raw).collect();
        assert_eq!(pages, vec![5, 6, 7]);
    }

    #[test]
    fn null_is_never_in_a_granule_collision_with_heap() {
        assert!(Addr::NULL.is_null());
        assert_eq!(Addr::NULL.granule(), 0);
    }
}
