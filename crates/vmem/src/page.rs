//! Per-page state: protection, commit status, soft-dirty tracking.

use crate::addr::{PAGE_SIZE, WORD_SIZE};

/// Words per page.
pub(crate) const WORDS_PER_PAGE: usize = PAGE_SIZE / WORD_SIZE;

/// Access protection of a mapped page.
///
/// The simulation only needs the two states the paper uses: normal data
/// pages, and pages MineSweeper has protected against all access after
/// decommitting a large quarantined allocation (§4.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Protection {
    /// Normal readable/writable data page.
    #[default]
    ReadWrite,
    /// All accesses fault (`PROT_NONE`).
    None,
}

/// A mapped page and its physical backing.
///
/// `data == None` means the page is mapped but not committed: it occupies
/// virtual address space but no physical memory (no RSS). A read through the
/// normal access path demand-commits it to zeroes.
///
/// `alias_of == Some(frame)` makes this a **virtual alias**: accesses
/// resolve to `frame`'s storage (one level only; the target must be a
/// plain page). Aliases have their own protection but no storage or RSS —
/// the mechanism behind Oscar-style shadow virtual pages (§6.3).
#[derive(Debug)]
pub(crate) struct PageSlot {
    pub(crate) data: Option<Box<[u64; WORDS_PER_PAGE]>>,
    pub(crate) prot: Protection,
    pub(crate) soft_dirty: bool,
    pub(crate) alias_of: Option<u64>,
}

impl PageSlot {
    /// Fresh mapped, uncommitted, read-write page.
    pub(crate) fn new() -> Self {
        PageSlot { data: None, prot: Protection::ReadWrite, soft_dirty: false, alias_of: None }
    }

    /// Fresh alias slot resolving to `frame`.
    pub(crate) fn new_alias(frame: u64) -> Self {
        PageSlot {
            data: None,
            prot: Protection::ReadWrite,
            soft_dirty: false,
            alias_of: Some(frame),
        }
    }

    pub(crate) fn is_committed(&self) -> bool {
        self.data.is_some()
    }

    /// Commits the page (idempotent), zero-filling fresh backing.
    /// Returns `true` if the page was newly committed.
    ///
    /// A fresh commit sets the soft-dirty bit: the page's observable
    /// contents change (whatever a decommit discarded is now zeroes), and
    /// Linux likewise reports newly faulted pages as soft-dirty after a
    /// `clear_refs` cycle. Consumers that skip clean pages (the sweep's
    /// page-summary cache) rely on this to never treat a
    /// decommit/recommit round-trip as "unchanged".
    pub(crate) fn commit(&mut self) -> bool {
        if self.data.is_none() {
            self.data = Some(Box::new([0u64; WORDS_PER_PAGE]));
            self.soft_dirty = true;
            true
        } else {
            false
        }
    }

    /// Discards physical backing (idempotent). Returns `true` if the page
    /// was committed before the call.
    pub(crate) fn decommit(&mut self) -> bool {
        self.data.take().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_decommit_cycle() {
        let mut slot = PageSlot::new();
        assert!(!slot.is_committed());
        assert!(slot.commit());
        assert!(!slot.commit(), "second commit is a no-op");
        assert!(slot.is_committed());
        assert!(slot.decommit());
        assert!(!slot.decommit(), "second decommit is a no-op");
        assert!(!slot.is_committed());
    }

    #[test]
    fn commit_zero_fills() {
        let mut slot = PageSlot::new();
        slot.commit();
        assert!(slot.data.as_ref().unwrap().iter().all(|&w| w == 0));
    }

    #[test]
    fn default_protection_is_read_write() {
        assert_eq!(Protection::default(), Protection::ReadWrite);
    }
}
