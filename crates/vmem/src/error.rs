//! Memory access and mapping errors.

use crate::Addr;
use std::error::Error;
use std::fmt;

/// An invalid operation on the simulated address space.
///
/// In the paper's threat model an access to unmapped or protected memory is a
/// memory-protection violation leading to "immediate clean termination"
/// (§2) — the benign outcome MineSweeper turns use-after-reallocate exploits
/// into. The simulation surfaces that as `Unmapped` / `Protected` errors that
/// the engine records as a clean termination instead of a compromise.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemError {
    /// The address is not part of any mapped region (SIGSEGV on real
    /// hardware).
    Unmapped(Addr),
    /// The page is mapped but its protection forbids the access — e.g. a
    /// quarantined large allocation whose pages MineSweeper has decommitted
    /// and protected (§4.2).
    Protected(Addr),
    /// A mapping request overlaps an existing mapping.
    AlreadyMapped(Addr),
    /// The operation requires an alignment the address does not satisfy.
    Misaligned(Addr),
}

impl MemError {
    /// The faulting address.
    pub fn addr(&self) -> Addr {
        match *self {
            MemError::Unmapped(a)
            | MemError::Protected(a)
            | MemError::AlreadyMapped(a)
            | MemError::Misaligned(a) => a,
        }
    }

    /// `true` if the error corresponds to a hardware memory-protection
    /// violation (as opposed to an API misuse such as a double map).
    pub fn is_fault(&self) -> bool {
        matches!(self, MemError::Unmapped(_) | MemError::Protected(_))
    }
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped(a) => write!(f, "access to unmapped address {a}"),
            MemError::Protected(a) => write!(f, "access to protected address {a}"),
            MemError::AlreadyMapped(a) => write!(f, "mapping overlaps existing page at {a}"),
            MemError::Misaligned(a) => write!(f, "misaligned access at {a}"),
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = MemError::Unmapped(Addr::new(0x40));
        assert_eq!(e.to_string(), "access to unmapped address 0x40");
        assert_eq!(e.addr(), Addr::new(0x40));
    }

    #[test]
    fn fault_classification() {
        assert!(MemError::Unmapped(Addr::NULL).is_fault());
        assert!(MemError::Protected(Addr::NULL).is_fault());
        assert!(!MemError::AlreadyMapped(Addr::NULL).is_fault());
        assert!(!MemError::Misaligned(Addr::NULL).is_fault());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemError>();
    }
}
