//! Fixed address-space layout: globals, stack and heap segments.
//!
//! The sweep must examine "heap, stack and globals" (§4.4). The simulation
//! gives each a fixed, widely separated segment so that an integer that
//! happens to fall inside the heap segment is a *false pointer* (Figure 4)
//! while ordinary small integers are not — matching the paper's observation
//! that the sparsity of the 64-bit address space limits false retention.

use crate::{Addr, PAGE_SIZE};

/// Named region of the simulated address space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Segment {
    /// Program globals (`.data`/`.bss`), swept as roots.
    Globals,
    /// The mutator stack, swept as roots.
    Stack,
    /// The managed heap; allocators carve extents out of this segment.
    Heap,
}

/// The address-space layout used throughout the workspace.
///
/// # Example
///
/// ```
/// use vmem::{Layout, Segment};
/// let layout = Layout::default();
/// assert!(layout.heap_contains(layout.segment_base(Segment::Heap)));
/// assert!(!layout.heap_contains(layout.segment_base(Segment::Stack)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Layout {
    globals_base: Addr,
    globals_pages: u64,
    stack_base: Addr,
    stack_pages: u64,
    heap_base: Addr,
    heap_pages: u64,
}

impl Layout {
    /// Globals at 256 MiB, stack just below 2 GiB, heap from 4 GiB with a
    /// 1 TiB reservation — mirroring a typical x86-64 process image.
    pub fn new() -> Self {
        Layout {
            globals_base: Addr::new(0x1000_0000),
            globals_pages: 16 * 1024, // 64 MiB
            stack_base: Addr::new(0x7000_0000),
            stack_pages: 2 * 1024, // 8 MiB
            heap_base: Addr::new(0x1_0000_0000),
            heap_pages: (1u64 << 40) / PAGE_SIZE as u64,
        }
    }

    /// Base address of a segment.
    pub fn segment_base(&self, seg: Segment) -> Addr {
        match seg {
            Segment::Globals => self.globals_base,
            Segment::Stack => self.stack_base,
            Segment::Heap => self.heap_base,
        }
    }

    /// Size of a segment in pages.
    pub fn segment_pages(&self, seg: Segment) -> u64 {
        match seg {
            Segment::Globals => self.globals_pages,
            Segment::Stack => self.stack_pages,
            Segment::Heap => self.heap_pages,
        }
    }

    /// One past the last address of a segment.
    pub fn segment_end(&self, seg: Segment) -> Addr {
        self.segment_base(seg).add_bytes(self.segment_pages(seg) * PAGE_SIZE as u64)
    }

    /// The segment containing `addr`, if any.
    pub fn segment_of(&self, addr: Addr) -> Option<Segment> {
        [Segment::Globals, Segment::Stack, Segment::Heap].into_iter().find(|&seg| addr >= self.segment_base(seg) && addr < self.segment_end(seg))
    }

    /// `true` if `addr` falls inside the heap segment. This is the fast
    /// range check the sweep applies to every word before touching the
    /// shadow map (§3.2: only words that could point at quarantined heap
    /// memory matter).
    #[inline]
    pub fn heap_contains(&self, addr: Addr) -> bool {
        addr >= self.heap_base && addr < self.segment_end(Segment::Heap)
    }
}

impl Default for Layout {
    fn default() -> Self {
        Layout::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_do_not_overlap() {
        let l = Layout::new();
        let segs = [Segment::Globals, Segment::Stack, Segment::Heap];
        for (i, &a) in segs.iter().enumerate() {
            for &b in &segs[i + 1..] {
                let (a0, a1) = (l.segment_base(a).raw(), l.segment_end(a).raw());
                let (b0, b1) = (l.segment_base(b).raw(), l.segment_end(b).raw());
                assert!(a1 <= b0 || b1 <= a0, "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn segment_of_classifies_boundaries() {
        let l = Layout::new();
        assert_eq!(l.segment_of(l.segment_base(Segment::Heap)), Some(Segment::Heap));
        let last = l.segment_end(Segment::Heap).raw() - 1;
        assert_eq!(l.segment_of(Addr::new(last)), Some(Segment::Heap));
        assert_eq!(l.segment_of(l.segment_end(Segment::Heap)), None);
        assert_eq!(l.segment_of(Addr::new(0x100)), None, "low memory is unmapped");
    }

    #[test]
    fn small_integers_are_not_heap_pointers() {
        // Sparsity argument from §3.3: ordinary data rarely aliases the heap.
        let l = Layout::new();
        for x in [0u64, 1, 42, 1 << 20, 0xffff_ffff] {
            assert!(!l.heap_contains(Addr::new(x)), "{x:#x} misclassified");
        }
    }
}
