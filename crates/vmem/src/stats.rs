//! Address-space statistics: RSS, mapped bytes, operation counts.

use crate::PAGE_SIZE;

/// Counters describing the state and history of an [`crate::AddrSpace`].
///
/// `committed_pages * PAGE_SIZE` is the simulated resident set size (RSS),
/// the quantity PSRecord samples in the paper's memory-overhead figures.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemStats {
    /// Pages currently mapped (VA reserved).
    pub mapped_pages: u64,
    /// Pages currently committed (physically backed; counts towards RSS).
    pub committed_pages: u64,
    /// High-water mark of `committed_pages`.
    pub peak_committed_pages: u64,
    /// Pages committed on demand by a read or write access (demand paging).
    pub demand_commits: u64,
    /// Pages committed explicitly via `commit`.
    pub explicit_commits: u64,
    /// Pages decommitted via `decommit`.
    pub decommits: u64,
    /// `map` calls.
    pub maps: u64,
    /// `unmap` calls.
    pub unmaps: u64,
    /// `protect` calls.
    pub protects: u64,
}

impl MemStats {
    /// Current resident set size in bytes.
    pub fn rss_bytes(&self) -> u64 {
        self.committed_pages * PAGE_SIZE as u64
    }

    /// Peak resident set size in bytes.
    pub fn peak_rss_bytes(&self) -> u64 {
        self.peak_committed_pages * PAGE_SIZE as u64
    }

    /// Currently mapped virtual memory in bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.mapped_pages * PAGE_SIZE as u64
    }

    pub(crate) fn on_commit(&mut self, on_demand: bool) {
        self.committed_pages += 1;
        if on_demand {
            self.demand_commits += 1;
        } else {
            self.explicit_commits += 1;
        }
        self.peak_committed_pages = self.peak_committed_pages.max(self.committed_pages);
    }

    pub(crate) fn on_decommit(&mut self) {
        self.committed_pages -= 1;
        self.decommits += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_tracks_commits_and_peak() {
        let mut s = MemStats::default();
        s.on_commit(false);
        s.on_commit(true);
        assert_eq!(s.committed_pages, 2);
        assert_eq!(s.demand_commits, 1);
        assert_eq!(s.explicit_commits, 1);
        assert_eq!(s.rss_bytes(), 2 * PAGE_SIZE as u64);
        s.on_decommit();
        assert_eq!(s.rss_bytes(), PAGE_SIZE as u64);
        assert_eq!(s.peak_rss_bytes(), 2 * PAGE_SIZE as u64, "peak survives decommit");
    }
}
