//! The simulated address space: mapping, commit, protection, access.

use std::collections::HashMap;

use crate::addr::{Addr, PageIdx, PageRange, PAGE_SIZE, WORD_SIZE};
use crate::error::MemError;
use crate::layout::{Layout, Segment};
use crate::page::{PageSlot, Protection};
use crate::stats::MemStats;

/// A simulated 64-bit virtual address space.
///
/// This is the substrate every allocator and mitigation in the workspace
/// runs on. It distinguishes *mapped* pages (VA reserved) from *committed*
/// pages (physically backed, counted in RSS), supports `mprotect`-style
/// protection, demand paging, and Linux-style soft-dirty write tracking.
///
/// Reads and writes are word-granular (8 bytes, aligned): the sweep only
/// ever inspects aligned words (§3.2 — "MineSweeper is designed to find
/// pointers that are correctly aligned"), and modelling sub-word accesses
/// would add nothing to the reproduction.
///
/// # Example
///
/// ```
/// use vmem::{AddrSpace, Protection, PageRange, PAGE_SIZE, MemError};
///
/// # fn main() -> Result<(), MemError> {
/// let mut space = AddrSpace::new();
/// let a = space.reserve_heap(1);
/// space.map(a, 1)?;
/// space.write_word(a, 7)?;
///
/// // Decommit + protect, like a quarantined large allocation (§4.2):
/// let pages = PageRange::spanning(a, PAGE_SIZE as u64);
/// space.decommit(pages)?;
/// space.protect(pages, Protection::None)?;
/// assert_eq!(space.read_word(a), Err(MemError::Protected(a)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AddrSpace {
    layout: Layout,
    pages: HashMap<u64, PageSlot>,
    heap_cursor: Addr,
    stats: MemStats,
}

impl AddrSpace {
    /// Creates an empty address space with the default [`Layout`] and the
    /// globals and stack segments pre-mapped (they exist for the lifetime of
    /// a process image).
    pub fn new() -> Self {
        Self::with_layout(Layout::default())
    }

    /// Creates an empty address space with a custom layout.
    pub fn with_layout(layout: Layout) -> Self {
        let mut space = AddrSpace {
            layout,
            pages: HashMap::new(),
            heap_cursor: layout.segment_base(Segment::Heap),
            stats: MemStats::default(),
        };
        for seg in [Segment::Globals, Segment::Stack] {
            space
                .map(layout.segment_base(seg), layout.segment_pages(seg))
                .expect("fresh layout segments cannot overlap");
        }
        space
    }

    /// The address-space layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Current resident set size in bytes.
    pub fn rss_bytes(&self) -> u64 {
        self.stats.rss_bytes()
    }

    /// Currently mapped virtual memory in bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.stats.mapped_bytes()
    }

    /// Reserves `pages` pages of fresh heap virtual address space and
    /// returns the base address. The range is *not* mapped; allocators call
    /// [`AddrSpace::map`] when they actually use it. Reservations are
    /// monotonically increasing, which is what both JeMalloc extents (via
    /// `sbrk`, per the artifact's modification) and FFmalloc's one-time
    /// allocator rely on.
    ///
    /// # Panics
    ///
    /// Panics if the heap segment is exhausted (1 TiB by default).
    pub fn reserve_heap(&mut self, pages: u64) -> Addr {
        let base = self.heap_cursor;
        let end = base.add_bytes(pages * PAGE_SIZE as u64);
        assert!(
            end <= self.layout.segment_end(Segment::Heap),
            "heap segment exhausted at {base}"
        );
        self.heap_cursor = end;
        base
    }

    /// Maps `pages` pages starting at page-aligned `addr` (uncommitted,
    /// read-write).
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] if `addr` is not page aligned;
    /// [`MemError::AlreadyMapped`] if any page in the range is mapped
    /// (nothing is mapped in that case).
    pub fn map(&mut self, addr: Addr, pages: u64) -> Result<(), MemError> {
        if !addr.is_aligned(PAGE_SIZE as u64) {
            return Err(MemError::Misaligned(addr));
        }
        let range = PageRange::new(addr.page(), pages);
        for p in range.iter() {
            if self.pages.contains_key(&p.raw()) {
                return Err(MemError::AlreadyMapped(p.base()));
            }
        }
        for p in range.iter() {
            self.pages.insert(p.raw(), PageSlot::new());
        }
        self.stats.mapped_pages += pages;
        self.stats.maps += 1;
        Ok(())
    }

    /// Unmaps every page in `range`, releasing any physical backing.
    ///
    /// # Errors
    ///
    /// [`MemError::Unmapped`] if any page in the range is not mapped
    /// (the range is left untouched in that case).
    pub fn unmap(&mut self, range: PageRange) -> Result<(), MemError> {
        for p in range.iter() {
            if !self.pages.contains_key(&p.raw()) {
                return Err(MemError::Unmapped(p.base()));
            }
        }
        for p in range.iter() {
            let slot = self.pages.remove(&p.raw()).expect("checked above");
            if slot.is_committed() {
                self.stats.on_decommit();
            }
        }
        self.stats.mapped_pages -= range.page_count();
        self.stats.unmaps += 1;
        Ok(())
    }

    /// Commits (physically backs, zero-filled) every page in `range`.
    /// Already-committed pages are untouched.
    ///
    /// # Errors
    ///
    /// [`MemError::Unmapped`] if any page in the range is not mapped; pages
    /// before the faulting one remain committed.
    pub fn commit(&mut self, range: PageRange) -> Result<(), MemError> {
        for p in range.iter() {
            let slot =
                self.pages.get_mut(&p.raw()).ok_or(MemError::Unmapped(p.base()))?;
            if slot.commit() {
                self.stats.on_commit(false);
            }
        }
        Ok(())
    }

    /// Discards the physical backing of every page in `range` (contents are
    /// lost; a later access demand-commits to zeroes). Uncommitted pages are
    /// untouched.
    ///
    /// Decommitting a committed page sets its soft-dirty bit: the contents
    /// observably change (to zeroes on the next access), so any cached
    /// per-page sweep summary is stale.
    ///
    /// # Errors
    ///
    /// [`MemError::Unmapped`] if any page in the range is not mapped.
    pub fn decommit(&mut self, range: PageRange) -> Result<(), MemError> {
        for p in range.iter() {
            let slot =
                self.pages.get_mut(&p.raw()).ok_or(MemError::Unmapped(p.base()))?;
            if slot.decommit() {
                slot.soft_dirty = true;
                self.stats.on_decommit();
            }
        }
        Ok(())
    }

    /// Sets the protection of every page in `range`.
    ///
    /// A protection *change* sets the soft-dirty bit on the affected pages
    /// (like `mprotect` remapping PTEs without `VM_SOFTDIRTY` preserved):
    /// cached sweep summaries for reprotected pages must be conservatively
    /// invalidated.
    ///
    /// # Errors
    ///
    /// [`MemError::Unmapped`] if any page in the range is not mapped.
    pub fn protect(&mut self, range: PageRange, prot: Protection) -> Result<(), MemError> {
        for p in range.iter() {
            if !self.pages.contains_key(&p.raw()) {
                return Err(MemError::Unmapped(p.base()));
            }
        }
        for p in range.iter() {
            let slot = self.pages.get_mut(&p.raw()).expect("checked above");
            if slot.prot != prot {
                slot.soft_dirty = true;
            }
            slot.prot = prot;
        }
        self.stats.protects += 1;
        Ok(())
    }

    /// Maps a single **alias page** at `va` (page aligned, unmapped)
    /// whose accesses resolve to the storage of `frame` — one level of
    /// virtual aliasing, as used by Oscar-style shadow pages (§6.3).
    /// The alias has its own protection but no backing of its own (no
    /// RSS); `frame` must be a mapped, non-alias page.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] if `va` is not page aligned;
    /// [`MemError::AlreadyMapped`] if `va` is mapped;
    /// [`MemError::Unmapped`] if `frame` is not a plain mapped page.
    pub fn map_alias(&mut self, va: Addr, frame: PageIdx) -> Result<(), MemError> {
        if !va.is_aligned(PAGE_SIZE as u64) {
            return Err(MemError::Misaligned(va));
        }
        if self.pages.contains_key(&va.page().raw()) {
            return Err(MemError::AlreadyMapped(va));
        }
        let target = self.pages.get(&frame.raw()).ok_or(MemError::Unmapped(frame.base()))?;
        if target.alias_of.is_some() {
            return Err(MemError::Unmapped(frame.base()));
        }
        self.pages.insert(va.page().raw(), PageSlot::new_alias(frame.raw()));
        self.stats.mapped_pages += 1;
        self.stats.maps += 1;
        Ok(())
    }

    /// The frame an alias page resolves to, if `addr` lies on an alias.
    pub fn alias_target(&self, addr: Addr) -> Option<PageIdx> {
        self.pages.get(&addr.page().raw())?.alias_of.map(PageIdx::new)
    }

    /// Resolves `page` to its storage page, honouring (one level of)
    /// aliasing and the *addressed* page's protection.
    fn resolve_storage(&self, page: u64, fault_at: Addr) -> Result<u64, MemError> {
        let slot = self.pages.get(&page).ok_or(MemError::Unmapped(fault_at))?;
        if slot.prot == Protection::None {
            return Err(MemError::Protected(fault_at));
        }
        match slot.alias_of {
            None => Ok(page),
            Some(frame) => {
                if self.pages.contains_key(&frame) {
                    Ok(frame)
                } else {
                    Err(MemError::Unmapped(fault_at))
                }
            }
        }
    }

    /// Whether the page containing `addr` is mapped.
    pub fn is_mapped(&self, addr: Addr) -> bool {
        self.pages.contains_key(&addr.page().raw())
    }

    /// Whether the page containing `addr` is committed (physically backed).
    pub fn is_committed(&self, addr: Addr) -> bool {
        self.pages.get(&addr.page().raw()).is_some_and(PageSlot::is_committed)
    }

    /// Protection of the page containing `addr`, if mapped.
    pub fn protection(&self, addr: Addr) -> Option<Protection> {
        self.pages.get(&addr.page().raw()).map(|s| s.prot)
    }

    /// Reads the aligned word at `addr`, demand-committing the page if it is
    /// mapped but unbacked (this is what makes naive sweeps of purged pages
    /// re-inflate RSS, §4.5).
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`], [`MemError::Unmapped`] or
    /// [`MemError::Protected`].
    pub fn read_word(&mut self, addr: Addr) -> Result<u64, MemError> {
        if !addr.is_aligned(WORD_SIZE as u64) {
            return Err(MemError::Misaligned(addr));
        }
        let storage = self.resolve_storage(addr.page().raw(), addr)?;
        let slot = self.pages.get_mut(&storage).expect("resolved");
        if slot.commit() {
            self.stats.on_commit(true);
        }
        Ok(slot.data.as_ref().expect("just committed")[addr.word_in_page()])
    }

    /// Reads the aligned word at `addr` without any side effect: an
    /// uncommitted mapped page reads as zero and stays uncommitted.
    ///
    /// This is the access the parallel one-shot sweeper uses from multiple
    /// threads (`&self`); zero is never a heap pointer, so treating unbacked
    /// pages as zero is exactly the "exclude purged pages from the sweep"
    /// behaviour of the commit/decommit extent hooks (§4.5).
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`], [`MemError::Unmapped`] or
    /// [`MemError::Protected`].
    pub fn peek_word(&self, addr: Addr) -> Result<u64, MemError> {
        if !addr.is_aligned(WORD_SIZE as u64) {
            return Err(MemError::Misaligned(addr));
        }
        let storage = self.resolve_storage(addr.page().raw(), addr)?;
        let slot = self.pages.get(&storage).expect("resolved");
        Ok(slot.data.as_ref().map_or(0, |d| d[addr.word_in_page()]))
    }

    /// Writes the aligned word at `addr`, demand-committing the page and
    /// setting its soft-dirty bit.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`], [`MemError::Unmapped`] or
    /// [`MemError::Protected`].
    pub fn write_word(&mut self, addr: Addr, value: u64) -> Result<(), MemError> {
        if !addr.is_aligned(WORD_SIZE as u64) {
            return Err(MemError::Misaligned(addr));
        }
        let storage = self.resolve_storage(addr.page().raw(), addr)?;
        let slot = self.pages.get_mut(&storage).expect("resolved");
        if slot.commit() {
            self.stats.on_commit(true);
        }
        slot.data.as_mut().expect("just committed")[addr.word_in_page()] = value;
        slot.soft_dirty = true;
        Ok(())
    }

    /// Zero-fills `[addr, addr + len)` (word aligned/sized), as
    /// MineSweeper's `free()` does before quarantining (§4.1).
    ///
    /// Committed pages are zeroed in place and marked soft-dirty;
    /// mapped-but-uncommitted pages are skipped (they already read as zero).
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] if `addr` or `len` is not word aligned,
    /// [`MemError::Unmapped`]/[`MemError::Protected`] on the first
    /// inaccessible page (earlier pages stay zeroed).
    pub fn fill_zero(&mut self, addr: Addr, len: u64) -> Result<(), MemError> {
        if !addr.is_aligned(WORD_SIZE as u64) || !len.is_multiple_of(WORD_SIZE as u64) {
            return Err(MemError::Misaligned(addr));
        }
        let mut cur = addr;
        let end = addr.add_bytes(len);
        while cur < end {
            let page_end = cur.page().next().base();
            let chunk_end = if page_end < end { page_end } else { end };
            let storage = self.resolve_storage(cur.page().raw(), cur)?;
            let slot = self.pages.get_mut(&storage).expect("resolved");
            if let Some(data) = slot.data.as_mut() {
                let w0 = cur.word_in_page();
                let w1 = w0 + ((chunk_end - cur) / WORD_SIZE as u64) as usize;
                data[w0..w1].fill(0);
                slot.soft_dirty = true;
            }
            cur = chunk_end;
        }
        Ok(())
    }

    /// Clears the soft-dirty bit on every mapped page, like writing `4` to
    /// `/proc/pid/clear_refs` at the start of a mostly-concurrent sweep.
    pub fn clear_soft_dirty(&mut self) {
        for slot in self.pages.values_mut() {
            slot.soft_dirty = false;
        }
    }

    /// Pages whose soft-dirty bit is set (committed pages only), sorted by
    /// index. These are the pages the mostly-concurrent stop-the-world pass
    /// re-checks (§4.3).
    pub fn soft_dirty_pages(&self) -> Vec<PageIdx> {
        let mut dirty: Vec<PageIdx> = self
            .pages
            .iter()
            .filter(|(_, s)| s.soft_dirty && s.is_committed())
            .map(|(&idx, _)| PageIdx::new(idx))
            .collect();
        dirty.sort_unstable();
        dirty
    }

    /// Whether the page containing `addr` has its soft-dirty bit set.
    pub fn is_soft_dirty(&self, addr: Addr) -> bool {
        self.pages.get(&addr.page().raw()).is_some_and(|s| s.soft_dirty)
    }

    /// Bulk soft-dirty snapshot over `range`, one `pagemap`-style read per
    /// sweep instead of a per-page query: the sorted pages in `range` that
    /// must be treated as **dirty** by anything caching per-page state.
    ///
    /// A page is reported dirty unless it is mapped, committed, readable
    /// and its soft-dirty bit is clear. Unmapped, unbacked, protected and
    /// alias pages have no stable directly-owned contents to be clean
    /// *relative to*, so they are always reported dirty — exactly like
    /// absent PTEs under `/proc/pid/pagemap`, which carry no soft-dirty
    /// history either.
    pub fn snapshot_soft_dirty(&self, range: PageRange) -> Vec<PageIdx> {
        range
            .iter()
            .filter(|p| {
                !self.pages.get(&p.raw()).is_some_and(|s| {
                    s.is_committed()
                        && s.prot == Protection::ReadWrite
                        && s.alias_of.is_none()
                        && !s.soft_dirty
                })
            })
            .collect()
    }

    /// Clears the soft-dirty bit on every mapped page in `range` only —
    /// the targeted counterpart of [`AddrSpace::clear_soft_dirty`], so a
    /// sweep can reset exactly the pages it is about to scan without
    /// erasing dirtiness history for pages outside its plan. Unmapped
    /// pages in the range are skipped.
    pub fn clear_soft_dirty_range(&mut self, range: PageRange) {
        for p in range.iter() {
            if let Some(slot) = self.pages.get_mut(&p.raw()) {
                slot.soft_dirty = false;
            }
        }
    }

    /// Word contents of a whole page for bulk scanning, without side
    /// effects: `Ok(Some(words))` for a committed readable page,
    /// `Ok(None)` for a mapped readable page with no backing (reads as
    /// zeroes — zero is never a heap pointer).
    ///
    /// This is the sweep's fast path: one lookup per page instead of one
    /// per word.
    ///
    /// # Errors
    ///
    /// [`MemError::Unmapped`] or [`MemError::Protected`].
    pub fn scan_page(&self, page: PageIdx) -> Result<Option<&[u64; 512]>, MemError> {
        // One hash lookup for directly-backed pages (the overwhelmingly
        // common case on the sweep's hot path); only aliases chase the
        // frame with a second lookup.
        let slot = self.pages.get(&page.raw()).ok_or(MemError::Unmapped(page.base()))?;
        if slot.prot == Protection::None {
            return Err(MemError::Protected(page.base()));
        }
        match slot.alias_of {
            None => Ok(slot.data.as_deref()),
            Some(frame) => match self.pages.get(&frame) {
                Some(s) => Ok(s.data.as_deref()),
                None => Err(MemError::Unmapped(page.base())),
            },
        }
    }

    /// Demand-commits a mapped, readable page as an actual read access
    /// would (the §4.5 cost of sweeping `madvise`-purged memory). No-op on
    /// already-committed pages.
    ///
    /// # Errors
    ///
    /// [`MemError::Unmapped`] or [`MemError::Protected`].
    pub fn touch_page(&mut self, page: PageIdx) -> Result<(), MemError> {
        let storage = self.resolve_storage(page.raw(), page.base())?;
        let slot = self.pages.get_mut(&storage).expect("resolved");
        if slot.commit() {
            self.stats.on_commit(true);
        }
        Ok(())
    }

    /// Number of committed pages in `range`. The sweep cost model charges
    /// for committed pages only — unbacked pages are skipped via the extent
    /// shadow bitmap (§4.5).
    pub fn committed_pages_in(&self, range: PageRange) -> u64 {
        range
            .iter()
            .filter(|p| self.pages.get(&p.raw()).is_some_and(PageSlot::is_committed))
            .count() as u64
    }
}

impl Default for AddrSpace {
    fn default() -> Self {
        AddrSpace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap_page(space: &mut AddrSpace) -> Addr {
        let a = space.reserve_heap(1);
        space.map(a, 1).unwrap();
        a
    }

    #[test]
    fn fresh_space_has_root_segments_mapped_but_unbacked() {
        let space = AddrSpace::new();
        let l = *space.layout();
        assert!(space.is_mapped(l.segment_base(Segment::Globals)));
        assert!(space.is_mapped(l.segment_base(Segment::Stack)));
        assert!(!space.is_mapped(l.segment_base(Segment::Heap)));
        assert_eq!(space.rss_bytes(), 0, "nothing committed yet");
    }

    #[test]
    fn reserve_heap_is_monotone() {
        let mut space = AddrSpace::new();
        let a = space.reserve_heap(3);
        let b = space.reserve_heap(1);
        assert_eq!(b - a, 3 * PAGE_SIZE as u64);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut space = AddrSpace::new();
        let a = heap_page(&mut space);
        space.write_word(a + 16, 0x1234).unwrap();
        assert_eq!(space.read_word(a + 16).unwrap(), 0x1234);
        assert_eq!(space.read_word(a + 24).unwrap(), 0, "fresh memory is zero");
    }

    #[test]
    fn misaligned_access_is_rejected() {
        let mut space = AddrSpace::new();
        let a = heap_page(&mut space);
        let odd = a + 4;
        assert_eq!(space.read_word(odd), Err(MemError::Misaligned(odd)));
        assert_eq!(space.write_word(odd, 1), Err(MemError::Misaligned(odd)));
    }

    #[test]
    fn unmapped_access_faults() {
        let mut space = AddrSpace::new();
        let a = space.reserve_heap(1); // reserved but never mapped
        assert_eq!(space.read_word(a), Err(MemError::Unmapped(a)));
        assert_eq!(space.write_word(a, 1), Err(MemError::Unmapped(a)));
        assert_eq!(space.peek_word(a), Err(MemError::Unmapped(a)));
    }

    #[test]
    fn double_map_is_rejected_atomically() {
        let mut space = AddrSpace::new();
        let a = space.reserve_heap(4);
        space.map(a, 2).unwrap();
        // Overlapping map fails and maps nothing new.
        let third = a + 2 * PAGE_SIZE as u64;
        let err = space.map(a + PAGE_SIZE as u64, 2).unwrap_err();
        assert_eq!(err, MemError::AlreadyMapped(a + PAGE_SIZE as u64));
        assert!(!space.is_mapped(third));
    }

    #[test]
    fn demand_commit_on_read_grows_rss() {
        let mut space = AddrSpace::new();
        let a = heap_page(&mut space);
        assert_eq!(space.rss_bytes(), 0);
        space.read_word(a).unwrap();
        assert_eq!(space.rss_bytes(), PAGE_SIZE as u64);
        assert_eq!(space.stats().demand_commits, 1);
    }

    #[test]
    fn peek_does_not_commit() {
        let mut space = AddrSpace::new();
        let a = heap_page(&mut space);
        assert_eq!(space.peek_word(a).unwrap(), 0);
        assert_eq!(space.rss_bytes(), 0, "peek must not demand-commit");
    }

    #[test]
    fn decommit_discards_contents_and_rss() {
        let mut space = AddrSpace::new();
        let a = heap_page(&mut space);
        space.write_word(a, 99).unwrap();
        let range = PageRange::spanning(a, PAGE_SIZE as u64);
        space.decommit(range).unwrap();
        assert_eq!(space.rss_bytes(), 0);
        assert_eq!(space.read_word(a).unwrap(), 0, "demand-zero after decommit");
    }

    #[test]
    fn protection_none_faults_all_access() {
        let mut space = AddrSpace::new();
        let a = heap_page(&mut space);
        let range = PageRange::spanning(a, PAGE_SIZE as u64);
        space.protect(range, Protection::None).unwrap();
        assert_eq!(space.read_word(a), Err(MemError::Protected(a)));
        assert_eq!(space.write_word(a, 1), Err(MemError::Protected(a)));
        assert_eq!(space.peek_word(a), Err(MemError::Protected(a)));
        space.protect(range, Protection::ReadWrite).unwrap();
        assert_eq!(space.read_word(a).unwrap(), 0);
    }

    #[test]
    fn unmap_releases_mapping_and_rss() {
        let mut space = AddrSpace::new();
        let a = heap_page(&mut space);
        space.write_word(a, 7).unwrap();
        let before = space.mapped_bytes();
        space.unmap(PageRange::spanning(a, PAGE_SIZE as u64)).unwrap();
        assert_eq!(space.mapped_bytes(), before - PAGE_SIZE as u64);
        assert_eq!(space.rss_bytes(), 0);
        assert_eq!(space.read_word(a), Err(MemError::Unmapped(a)));
    }

    #[test]
    fn soft_dirty_tracks_writes_since_clear() {
        let mut space = AddrSpace::new();
        let a = heap_page(&mut space);
        let b = heap_page(&mut space);
        space.write_word(a, 1).unwrap();
        space.write_word(b, 2).unwrap();
        space.clear_soft_dirty();
        assert!(space.soft_dirty_pages().is_empty());
        space.write_word(b, 3).unwrap();
        assert_eq!(space.soft_dirty_pages(), vec![b.page()]);
        assert!(!space.is_soft_dirty(a));
    }

    #[test]
    fn reads_do_not_set_soft_dirty() {
        let mut space = AddrSpace::new();
        let a = heap_page(&mut space);
        space.write_word(a, 1).unwrap();
        space.clear_soft_dirty();
        space.read_word(a).unwrap();
        assert!(!space.is_soft_dirty(a), "reads must not dirty pages");
    }

    #[test]
    fn snapshot_reports_unscannable_pages_as_dirty() {
        let mut space = AddrSpace::new();
        let a = space.reserve_heap(4);
        space.map(a, 4).unwrap();
        space.write_word(a, 1).unwrap(); // page 0: committed
        space.write_word(a + PAGE_SIZE as u64, 2).unwrap(); // page 1: committed
        // page 2 stays unbacked; page 3 committed then protected.
        space.write_word(a + 3 * PAGE_SIZE as u64, 3).unwrap();
        space
            .protect(
                PageRange::spanning(a + 3 * PAGE_SIZE as u64, PAGE_SIZE as u64),
                Protection::None,
            )
            .unwrap();
        space.clear_soft_dirty();
        space.write_word(a + PAGE_SIZE as u64, 9).unwrap(); // re-dirty page 1
        let range = PageRange::spanning(a, 4 * PAGE_SIZE as u64);
        let dirty = space.snapshot_soft_dirty(range);
        // Page 0 is the only provably-clean page: 1 is written, 2 is
        // unbacked, 3 is protected.
        assert_eq!(
            dirty,
            vec![
                (a + PAGE_SIZE as u64).page(),
                (a + 2 * PAGE_SIZE as u64).page(),
                (a + 3 * PAGE_SIZE as u64).page()
            ]
        );
    }

    #[test]
    fn decommit_recommit_round_trip_is_never_clean() {
        // The page-summary cache's key invariant: a page whose contents
        // were discarded (decommit) and re-faulted (commit) must not look
        // clean, even though no write touched it.
        let mut space = AddrSpace::new();
        let a = heap_page(&mut space);
        space.write_word(a, 1).unwrap();
        space.clear_soft_dirty();
        let range = PageRange::spanning(a, PAGE_SIZE as u64);
        space.decommit(range).unwrap();
        assert!(space.is_soft_dirty(a), "decommit changes observable contents");
        space.clear_soft_dirty();
        space.touch_page(a.page()).unwrap(); // demand-commit, no write
        assert!(space.is_soft_dirty(a), "a fresh commit is born dirty");
    }

    #[test]
    fn protection_change_sets_soft_dirty() {
        let mut space = AddrSpace::new();
        let a = heap_page(&mut space);
        space.write_word(a, 1).unwrap();
        space.clear_soft_dirty();
        let range = PageRange::spanning(a, PAGE_SIZE as u64);
        space.protect(range, Protection::None).unwrap();
        assert!(space.is_soft_dirty(a));
        space.clear_soft_dirty();
        space.protect(range, Protection::None).unwrap(); // no-op change
        assert!(!space.is_soft_dirty(a), "same-protection calls stay clean");
        space.protect(range, Protection::ReadWrite).unwrap();
        assert!(space.is_soft_dirty(a), "reopening a page invalidates too");
    }

    #[test]
    fn clear_soft_dirty_range_is_targeted() {
        let mut space = AddrSpace::new();
        let a = heap_page(&mut space);
        let b = heap_page(&mut space);
        space.write_word(a, 1).unwrap();
        space.write_word(b, 2).unwrap();
        space.clear_soft_dirty_range(PageRange::spanning(a, PAGE_SIZE as u64));
        assert!(!space.is_soft_dirty(a));
        assert!(space.is_soft_dirty(b), "out-of-range pages keep their bit");
        // Unmapped pages in the range are tolerated.
        let far = Addr::new(b.raw() + 64 * PAGE_SIZE as u64);
        space.clear_soft_dirty_range(PageRange::spanning(far, PAGE_SIZE as u64));
    }

    #[test]
    fn fill_zero_clears_only_committed_pages() {
        let mut space = AddrSpace::new();
        let a = space.reserve_heap(2);
        space.map(a, 2).unwrap();
        space.write_word(a, 42).unwrap(); // commit page 0 only
        space.fill_zero(a, 2 * PAGE_SIZE as u64).unwrap();
        assert_eq!(space.read_word(a).unwrap(), 0);
        assert_eq!(space.stats().committed_pages, 1, "zeroing must not commit");
    }

    #[test]
    fn fill_zero_partial_range() {
        let mut space = AddrSpace::new();
        let a = heap_page(&mut space);
        space.write_word(a, 1).unwrap();
        space.write_word(a + 8, 2).unwrap();
        space.write_word(a + 16, 3).unwrap();
        space.fill_zero(a + 8, 8).unwrap();
        assert_eq!(space.read_word(a).unwrap(), 1);
        assert_eq!(space.read_word(a + 8).unwrap(), 0);
        assert_eq!(space.read_word(a + 16).unwrap(), 3);
    }

    #[test]
    fn committed_pages_in_counts_backed_pages_only() {
        let mut space = AddrSpace::new();
        let a = space.reserve_heap(4);
        space.map(a, 4).unwrap();
        space.write_word(a, 1).unwrap();
        space.write_word(a + 3 * PAGE_SIZE as u64, 1).unwrap();
        let range = PageRange::spanning(a, 4 * PAGE_SIZE as u64);
        assert_eq!(space.committed_pages_in(range), 2);
    }

    #[test]
    fn scan_page_returns_contents_without_committing() {
        let mut space = AddrSpace::new();
        let a = heap_page(&mut space);
        // Unbacked: Ok(None), no commit.
        assert!(matches!(space.scan_page(a.page()), Ok(None)));
        assert_eq!(space.rss_bytes(), 0);
        // Committed: contents visible.
        space.write_word(a + 16, 77).unwrap();
        let words = space.scan_page(a.page()).unwrap().unwrap();
        assert_eq!(words[2], 77);
        assert_eq!(words[0], 0);
    }

    #[test]
    fn scan_page_respects_protection_and_mapping() {
        let mut space = AddrSpace::new();
        let a = heap_page(&mut space);
        space
            .protect(PageRange::spanning(a, PAGE_SIZE as u64), Protection::None)
            .unwrap();
        assert_eq!(space.scan_page(a.page()), Err(MemError::Protected(a)));
        let unmapped = space.reserve_heap(1);
        assert_eq!(space.scan_page(unmapped.page()), Err(MemError::Unmapped(unmapped)));
    }

    #[test]
    fn touch_page_demand_commits_like_a_read() {
        let mut space = AddrSpace::new();
        let a = heap_page(&mut space);
        space.touch_page(a.page()).unwrap();
        assert_eq!(space.rss_bytes(), PAGE_SIZE as u64);
        assert_eq!(space.stats().demand_commits, 1);
        // Idempotent.
        space.touch_page(a.page()).unwrap();
        assert_eq!(space.stats().demand_commits, 1);
        // Protected pages fault instead.
        space
            .protect(PageRange::spanning(a, PAGE_SIZE as u64), Protection::None)
            .unwrap();
        assert_eq!(space.touch_page(a.page()), Err(MemError::Protected(a)));
    }

    #[test]
    fn alias_pages_share_storage_without_rss() {
        let mut space = AddrSpace::new();
        let frame_base = heap_page(&mut space);
        space.write_word(frame_base + 8, 0x11).unwrap();
        let rss = space.rss_bytes();
        // Two aliases onto the same frame.
        let va1 = space.reserve_heap(1);
        let va2 = space.reserve_heap(1);
        space.map_alias(va1, frame_base.page()).unwrap();
        space.map_alias(va2, frame_base.page()).unwrap();
        assert_eq!(space.read_word(va1 + 8).unwrap(), 0x11, "alias sees frame data");
        space.write_word(va2 + 16, 0x22).unwrap();
        assert_eq!(space.read_word(frame_base + 16).unwrap(), 0x22, "writes land in frame");
        assert_eq!(space.read_word(va1 + 16).unwrap(), 0x22, "aliases see each other");
        assert_eq!(space.rss_bytes(), rss, "aliases cost no physical memory");
        assert_eq!(space.alias_target(va1), Some(frame_base.page()));
        assert_eq!(space.alias_target(frame_base), None);
    }

    #[test]
    fn alias_protection_is_independent() {
        // Oscar's revocation: protect ONE dangling alias; the object's
        // other aliases and the frame stay usable.
        let mut space = AddrSpace::new();
        let frame = heap_page(&mut space);
        let va1 = space.reserve_heap(1);
        let va2 = space.reserve_heap(1);
        space.map_alias(va1, frame.page()).unwrap();
        space.map_alias(va2, frame.page()).unwrap();
        space.protect(PageRange::spanning(va1, PAGE_SIZE as u64), Protection::None).unwrap();
        assert_eq!(space.read_word(va1), Err(MemError::Protected(va1)));
        assert_eq!(space.read_word(va2).unwrap(), 0, "sibling alias unaffected");
        assert_eq!(space.read_word(frame).unwrap(), 0, "frame unaffected");
    }

    #[test]
    fn alias_to_missing_or_alias_frame_rejected() {
        let mut space = AddrSpace::new();
        let frame = heap_page(&mut space);
        let va1 = space.reserve_heap(1);
        space.map_alias(va1, frame.page()).unwrap();
        let va2 = space.reserve_heap(1);
        // Chaining aliases is not allowed (one level only).
        assert!(space.map_alias(va2, va1.page()).is_err());
        // Nor aliasing unmapped frames.
        let unmapped = space.reserve_heap(1);
        assert!(space.map_alias(va2, unmapped.page()).is_err());
        // Double-mapping the alias VA is rejected.
        assert!(space.map_alias(va1, frame.page()).is_err());
    }

    #[test]
    fn unmapping_alias_leaves_frame_intact() {
        let mut space = AddrSpace::new();
        let frame = heap_page(&mut space);
        space.write_word(frame, 7).unwrap();
        let va = space.reserve_heap(1);
        space.map_alias(va, frame.page()).unwrap();
        space.unmap(PageRange::spanning(va, PAGE_SIZE as u64)).unwrap();
        assert_eq!(space.read_word(frame).unwrap(), 7);
        assert_eq!(space.read_word(va), Err(MemError::Unmapped(va)));
    }

    #[test]
    fn peak_rss_is_sticky() {
        let mut space = AddrSpace::new();
        let a = space.reserve_heap(3);
        space.map(a, 3).unwrap();
        space.commit(PageRange::spanning(a, 3 * PAGE_SIZE as u64)).unwrap();
        space.decommit(PageRange::spanning(a, 3 * PAGE_SIZE as u64)).unwrap();
        assert_eq!(space.stats().peak_rss_bytes(), 3 * PAGE_SIZE as u64);
        assert_eq!(space.rss_bytes(), 0);
    }
}
