#![warn(missing_docs)]

//! Simulated paged virtual memory for the MineSweeper reproduction.
//!
//! The MineSweeper paper ([Erdős, Ainsworth & Jones, ASPLOS '22]) operates on
//! the raw virtual memory of a protected process: it sweeps every mapped word
//! looking for pointers, decommits the physical pages behind large
//! quarantined allocations, `mprotect`s them against stray writes, and uses
//! Linux *soft-dirty* page tracking for its mostly-concurrent mode. This
//! crate provides a faithful, fully deterministic model of that substrate so
//! the rest of the workspace can exercise the exact same code paths in safe
//! Rust.
//!
//! # Model
//!
//! * A 64-bit, word-granular (8-byte) address space divided into 4 KiB pages.
//! * Pages are **mapped** (the virtual range is reserved) and independently
//!   **committed** (physical backing exists and counts towards RSS).
//! * Reading a mapped-but-uncommitted page *demand-commits* it and returns
//!   zeroes, exactly like demand paging after `madvise(MADV_DONTNEED)` — this
//!   is the behaviour §4.5 of the paper works around with commit/decommit
//!   extent hooks.
//! * Pages carry a [`Protection`]; accessing a [`Protection::None`] page is a
//!   memory-protection violation ([`MemError::Protected`]), the "clean
//!   termination" the paper turns use-after-free bugs into.
//! * Every write sets the page's *soft-dirty* bit ([`AddrSpace::write_word`]),
//!   which the mostly-concurrent sweep clears and re-reads, mirroring
//!   `/proc/pid/clear_refs` + pagemap.
//!
//! # Example
//!
//! ```
//! use vmem::{AddrSpace, Addr, PAGE_SIZE};
//!
//! # fn main() -> Result<(), vmem::MemError> {
//! let mut space = AddrSpace::new();
//! let base = space.reserve_heap(4); // 4 pages of fresh heap VA
//! space.map(base, 4)?;
//! space.write_word(base, 0xdead_beef)?;
//! assert_eq!(space.read_word(base)?, 0xdead_beef);
//! assert_eq!(space.rss_bytes(), PAGE_SIZE as u64); // only the touched page
//! # Ok(())
//! # }
//! ```
//!
//! [Erdős, Ainsworth & Jones, ASPLOS '22]: https://doi.org/10.1145/3503222.3507712

mod addr;
mod error;
mod layout;
mod page;
mod space;
mod stats;

pub use addr::{Addr, PageIdx, PageRange, GRANULE_SIZE, PAGE_SIZE, WORD_SIZE};
pub use error::MemError;
pub use layout::{Layout, Segment};
pub use page::Protection;
pub use space::AddrSpace;
pub use stats::MemStats;
