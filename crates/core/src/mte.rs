//! Memory-tagging combination (§6.2, the paper's future-work sketch).
//!
//! "Such hardware mechanisms \[Arm MTE\] could combine with MineSweeper to
//! achieve deterministic protection both with significantly lower
//! overheads than in software alone, by allowing limited reuse of regions,
//! and detection rather than just mitigation of attacks."
//!
//! This module implements that combination over the simulated substrate:
//!
//! * Every allocation gets a 4-bit **tag**; the tag is stored per 16-byte
//!   granule ([`TagTable`]) and replicated into the unused top byte of
//!   every pointer ([`tag_ptr`]).
//! * **Detection**: checked loads/stores compare pointer tag against
//!   granule tag; quarantined memory is retagged to a reserved quarantine
//!   tag, so any use of a dangling pointer faults *visibly*
//!   ([`MteError::TagMismatch`]) instead of reading benign zeroes —
//!   upgrading MineSweeper from mitigation to detection.
//! * **Limited reuse**: the tag-aware sweep treats a pointer as dangerous
//!   only if its embedded tag matches the target's *current* tag. After an
//!   allocation is retagged, stale pointers with old tags can no longer
//!   dereference it on MTE hardware — so the allocation can be recycled
//!   even though (now-harmless) pointers to it remain, cutting failed
//!   frees and quarantine residency.

use jalloc::JAlloc;
use vmem::{Addr, AddrSpace, GRANULE_SIZE, WORD_SIZE};

use crate::backend::HeapBackend;
use crate::config::MsConfig;
use crate::layer::{FreeOutcome, MineSweeper, SweepReport};
use crate::shadow::ShadowMap;
use crate::sweep::SweepPlan;

use std::collections::HashMap;

/// Tag reserved for quarantined (freed, not yet recycled) memory.
pub const QUARANTINE_TAG: u8 = 0xF;

/// Bit position of the tag inside a pointer (top byte, as Arm MTE uses).
const TAG_SHIFT: u32 = 56;

/// Embeds a tag in a pointer's unused top byte.
pub fn tag_ptr(addr: Addr, tag: u8) -> u64 {
    debug_assert!(tag <= 0xF);
    addr.raw() | u64::from(tag) << TAG_SHIFT
}

/// Splits a tagged pointer into `(address, tag)`.
pub fn untag_ptr(word: u64) -> (Addr, u8) {
    (Addr::new(word & !(0xFFu64 << TAG_SHIFT)), (word >> TAG_SHIFT) as u8 & 0xF)
}

/// A tag-check failure: the simulated hardware fault MTE raises.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MteError {
    /// Pointer tag does not match the memory's current tag: a temporal
    /// (or spatial) safety violation, *detected* at the faulting access.
    TagMismatch {
        /// The accessed address.
        addr: Addr,
        /// Tag carried by the pointer.
        ptr_tag: u8,
        /// Tag currently on the memory.
        mem_tag: u8,
    },
    /// The underlying access faulted (unmapped/protected page).
    Fault(Addr),
}

impl std::fmt::Display for MteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MteError::TagMismatch { addr, ptr_tag, mem_tag } => write!(
                f,
                "tag mismatch at {addr}: pointer tag {ptr_tag:#x}, memory tag {mem_tag:#x}"
            ),
            MteError::Fault(addr) => write!(f, "access fault at {addr}"),
        }
    }
}

impl std::error::Error for MteError {}

/// Sparse 4-bit-per-granule tag storage (the MTE tag memory).
#[derive(Debug, Default)]
pub struct TagTable {
    /// granule index -> tag. Sparse map keeps the model simple; real MTE
    /// stores tags in carved-out physical memory.
    tags: HashMap<u64, u8>,
}

impl TagTable {
    /// Creates an empty table (untagged memory reads as tag 0).
    pub fn new() -> Self {
        TagTable::default()
    }

    /// Tags every granule overlapping `[base, base + len)`.
    pub fn set_range(&mut self, base: Addr, len: u64, tag: u8) {
        debug_assert!(tag <= 0xF);
        if len == 0 {
            return;
        }
        let first = base.granule();
        let last = base.add_bytes(len - 1).granule();
        for g in first..=last {
            self.tags.insert(g, tag);
        }
    }

    /// Current tag of the granule containing `addr` (0 if never tagged).
    pub fn tag_of(&self, addr: Addr) -> u8 {
        self.tags.get(&addr.granule()).copied().unwrap_or(0)
    }
}

/// MineSweeper combined with MTE-style tagging.
///
/// # Example
///
/// ```
/// use minesweeper::{MsConfig, MteHeap, MteError};
/// use vmem::AddrSpace;
///
/// let mut space = AddrSpace::new();
/// let mut heap = MteHeap::new(MsConfig::fully_concurrent());
/// let p = heap.malloc(&mut space, 64);
/// heap.store(&mut space, p, 42).unwrap();
/// heap.free(&mut space, p);
/// // Use-after-free is DETECTED at the access, not just mitigated:
/// assert!(matches!(
///     heap.load(&mut space, p),
///     Err(MteError::TagMismatch { .. })
/// ));
/// ```
#[derive(Debug)]
pub struct MteHeap<B: HeapBackend = JAlloc> {
    ms: MineSweeper<B>,
    tags: TagTable,
    next_tag: u8,
    /// Tag-mismatch events detected (would be SIGSEGV-with-report on MTE
    /// hardware).
    detections: u64,
}

impl MteHeap<JAlloc> {
    /// Creates a tagged heap over the default JeMalloc-style backend.
    pub fn new(cfg: MsConfig) -> Self {
        Self::with_backend_ms(MineSweeper::new(cfg))
    }
}

impl<B: HeapBackend> MteHeap<B> {
    /// Wraps an existing MineSweeper layer with tagging.
    pub fn with_backend_ms(ms: MineSweeper<B>) -> Self {
        MteHeap { ms, tags: TagTable::new(), next_tag: 1, detections: 0 }
    }

    /// The wrapped MineSweeper layer.
    pub fn minesweeper(&self) -> &MineSweeper<B> {
        &self.ms
    }

    /// The tag table.
    pub fn tags(&self) -> &TagTable {
        &self.tags
    }

    /// Tag mismatches detected so far.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Whether the wrapped layer's sweep trigger has fired (so callers
    /// can pair it with [`MteHeap::sweep_now_tag_aware`] the way plain
    /// users pair [`MineSweeper::sweep_needed`] with `sweep_now`).
    pub fn sweep_needed(&self, space: &AddrSpace) -> bool {
        self.ms.sweep_needed(space)
    }

    fn fresh_tag(&mut self) -> u8 {
        // Cycle 1..=14, reserving 0 (untagged) and 0xF (quarantine).
        let tag = self.next_tag;
        self.next_tag = if self.next_tag >= 14 { 1 } else { self.next_tag + 1 };
        tag
    }

    /// Allocates `size` bytes; returns a **tagged** pointer.
    pub fn malloc(&mut self, space: &mut AddrSpace, size: u64) -> u64 {
        let base = self.ms.malloc(space, size);
        let usable = self.ms.heap().usable_size(base).expect("fresh allocation");
        let tag = self.fresh_tag();
        self.tags.set_range(base, usable, tag);
        tag_ptr(base, tag)
    }

    /// Frees through a tagged pointer. A mismatched tag is a detected
    /// double/invalid free; a matched tag quarantines and **retags the
    /// memory** to [`QUARANTINE_TAG`], so every later access through any
    /// stale pointer faults.
    pub fn free(&mut self, space: &mut AddrSpace, tagged: u64) -> FreeOutcome {
        let (base, tag) = untag_ptr(tagged);
        if self.tags.tag_of(base) != tag {
            self.detections += 1;
            return FreeOutcome::Invalid;
        }
        let usable = self.ms.heap().usable_size(base);
        let outcome = self.ms.free(space, base);
        if outcome == FreeOutcome::Quarantined {
            if let Some(usable) = usable {
                self.tags.set_range(base, usable, QUARANTINE_TAG);
            }
        }
        outcome
    }

    /// Tag-checked load (what every load instruction does under MTE).
    ///
    /// # Errors
    ///
    /// [`MteError::TagMismatch`] on a temporal-safety violation;
    /// [`MteError::Fault`] if the page itself is gone.
    pub fn load(&mut self, space: &mut AddrSpace, tagged: u64) -> Result<u64, MteError> {
        let (addr, ptr_tag) = untag_ptr(tagged);
        let mem_tag = self.tags.tag_of(addr);
        if ptr_tag != mem_tag {
            self.detections += 1;
            return Err(MteError::TagMismatch { addr, ptr_tag, mem_tag });
        }
        space.read_word(addr).map_err(|e| MteError::Fault(e.addr()))
    }

    /// Tag-checked store.
    ///
    /// # Errors
    ///
    /// As [`MteHeap::load`].
    pub fn store(
        &mut self,
        space: &mut AddrSpace,
        tagged: u64,
        value: u64,
    ) -> Result<(), MteError> {
        let (addr, ptr_tag) = untag_ptr(tagged);
        let mem_tag = self.tags.tag_of(addr);
        if ptr_tag != mem_tag {
            self.detections += 1;
            return Err(MteError::TagMismatch { addr, ptr_tag, mem_tag });
        }
        space.write_word(addr, value).map_err(|e| MteError::Fault(e.addr()))
    }

    /// A **tag-aware sweep**: like [`MineSweeper::sweep_now`], but a
    /// pointer only pins a quarantined allocation if its embedded tag
    /// matches the memory's current ([`QUARANTINE_TAG`]) tag — i.e. if it
    /// could actually dereference the memory on MTE hardware. Stale
    /// pointers whose referent was retagged are harmless, so their targets
    /// recycle immediately: the paper's "limited reuse of regions".
    pub fn sweep_now_tag_aware(&mut self, space: &mut AddrSpace) -> SweepReport {
        // Mark phase: scan the same ranges the normal sweep would, but
        // filter by tag match.
        let layout = *space.layout();
        let plan = SweepPlan::build(space, &self.ms.heap().active_ranges());
        let shadow = ShadowMap::new();
        let mut writer = shadow.writer();
        for &(range_base, len) in plan.ranges() {
            let mut off = 0;
            while off < len {
                let addr = range_base.add_bytes(off);
                let page_end = addr.page().next().base().offset_from(range_base).min(len);
                if let Ok(Some(words)) = space.scan_page(addr.page()) {
                    let w0 = addr.word_in_page();
                    let w1 = w0 + ((page_end - off) / WORD_SIZE as u64) as usize;
                    for &word in &words[w0..w1] {
                        let (target, ptr_tag) = untag_ptr(word);
                        if layout.heap_contains(target)
                            && self.tags.tag_of(target) == ptr_tag
                        {
                            writer.mark(target);
                        }
                    }
                }
                off = page_end;
            }
        }
        // Publish the writer's buffered marks before the release phase
        // reads the map.
        drop(writer);
        // Release phase: run the layer's sweep with marking disabled and
        // filter by our tag-aware shadow instead. Simplest faithful
        // composition: temporarily consult the shadow per-entry via the
        // normal sweep API is private, so re-create the decision here.
        self.ms.sweep_now_with_shadow(space, &shadow)
    }
}

/// One granule's worth of bytes, re-exported for tag-geometry tests.
pub const TAG_GRANULE: usize = GRANULE_SIZE;

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AddrSpace, MteHeap) {
        (AddrSpace::new(), MteHeap::new(MsConfig::fully_concurrent()))
    }

    #[test]
    fn tag_roundtrip() {
        let a = Addr::new(0x1_0000_0040);
        for tag in 0..=0xF {
            let p = tag_ptr(a, tag);
            assert_eq!(untag_ptr(p), (a, tag));
        }
    }

    #[test]
    fn tagged_pointers_work_while_live() {
        let (mut space, mut heap) = setup();
        let p = heap.malloc(&mut space, 64);
        heap.store(&mut space, p, 123).unwrap();
        assert_eq!(heap.load(&mut space, p).unwrap(), 123);
        assert_eq!(heap.detections(), 0);
    }

    #[test]
    fn use_after_free_is_detected_not_benign() {
        let (mut space, mut heap) = setup();
        let p = heap.malloc(&mut space, 64);
        heap.free(&mut space, p);
        // Plain MineSweeper would return benign zeroes; MTE detects.
        match heap.load(&mut space, p) {
            Err(MteError::TagMismatch { ptr_tag, mem_tag, .. }) => {
                assert_eq!(mem_tag, QUARANTINE_TAG);
                assert_ne!(ptr_tag, QUARANTINE_TAG);
            }
            other => panic!("expected detection, got {other:?}"),
        }
        assert_eq!(heap.detections(), 1);
    }

    #[test]
    fn double_free_is_detected_by_tag() {
        let (mut space, mut heap) = setup();
        let p = heap.malloc(&mut space, 64);
        assert_eq!(heap.free(&mut space, p), FreeOutcome::Quarantined);
        assert_eq!(heap.free(&mut space, p), FreeOutcome::Invalid);
        assert_eq!(heap.detections(), 1);
    }

    #[test]
    fn adjacent_allocations_get_distinct_tags() {
        let (mut space, mut heap) = setup();
        let p = heap.malloc(&mut space, 64);
        let q = heap.malloc(&mut space, 64);
        let (_, tp) = untag_ptr(p);
        let (_, tq) = untag_ptr(q);
        assert_ne!(tp, tq);
        // Cross-pointer access (spatial confusion) also detects.
        let (qa, _) = untag_ptr(q);
        let forged = tag_ptr(qa, tp);
        assert!(heap.load(&mut space, forged).is_err());
    }

    #[test]
    fn tag_aware_sweep_releases_despite_stale_pointer() {
        // The §6.2 "limited reuse" win: a dangling pointer whose tag no
        // longer matches cannot dereference, so its target can recycle.
        let (mut space, mut heap) = setup();
        let victim = heap.malloc(&mut space, 64);
        let holder = heap.malloc(&mut space, 64);
        // Store the TAGGED dangling pointer in live memory.
        heap.store(&mut space, holder, victim).unwrap();
        heap.free(&mut space, victim);

        // The plain sweep is conservative: the word looks like a pointer
        // into the heap (the address bits), so it pins. The tag-aware
        // sweep sees the tag mismatch (memory is QUARANTINE_TAG now) and
        // releases.
        let report = heap.sweep_now_tag_aware(&mut space);
        assert_eq!(report.failed, 0, "stale-tagged pointer must not pin");
        assert_eq!(report.released, 1);
        assert_eq!(heap.minesweeper().stats().released, 1);
    }

    #[test]
    fn tag_aware_sweep_still_pins_matching_pointers() {
        // A pointer that could still dereference (same tag) must pin: the
        // combination never weakens MineSweeper's guarantee.
        let (mut space, mut heap) = setup();
        let victim = heap.malloc(&mut space, 64);
        let holder = heap.malloc(&mut space, 64);
        let (vbase, _) = untag_ptr(victim);
        // Adversarially forge a pointer carrying the QUARANTINE tag.
        heap.store(&mut space, holder, tag_ptr(vbase, QUARANTINE_TAG)).unwrap();
        heap.free(&mut space, victim);
        let report = heap.sweep_now_tag_aware(&mut space);
        assert_eq!(report.failed, 1, "tag-matching pointer must pin");
    }
}
