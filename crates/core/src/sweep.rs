//! The sweep: linear marking of program memory, stop-the-world re-checks,
//! and the parallel one-shot marker.
//!
//! "Each word of memory is interpreted as a pointer, its granule index is
//! calculated and used to index and set the shadow-map bit" (§3.2). The
//! sweep is *linear* — no transitive closure — because zeroing on free
//! removed all edges out of the quarantine (§4.1, Figure 6).
//!
//! [`Marker`] exposes the marking phase as an incremental cursor so the
//! discrete-event engine can interleave mutator progress with sweep
//! progress in virtual time, faithfully reproducing the fully-concurrent
//! mode's relaxed guarantee (a dangling pointer *moved ahead of the cursor
//! and erased behind it* during the sweep is missed — §4.3 footnote 5) and
//! the mostly-concurrent mode's soft-dirty stop-the-world fix.
//!
//! The shadow map is atomic (see [`crate::shadow`]), so [`parallel_mark`]
//! threads share **one** map with no per-thread maps and no union barrier
//! (§4.4). Parallel marking schedules by **work stealing**: an atomic
//! cursor over fixed page-range chunks, so helpers never idle behind an
//! unlucky static share. The *serial* paths ([`Marker`], [`mark_page`])
//! instead take `&mut ShadowMap` and mark through the exclusive
//! store-only [`ShadowWriter`](crate::shadow::ShadowMap::writer_mut) —
//! no locked RMW per 1 KiB window.
//!
//! Every scanned word — serial, parallel, STW re-mark or forensic — goes
//! through the single [`scan_words`] inner loop, whose classify pass is
//! the runtime-dispatched SIMD kernel in [`crate::simd`].

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use vmem::{Addr, AddrSpace, Layout, MemError, PageIdx, Segment, PAGE_SIZE, WORD_SIZE};

use crate::filter::CandidateFilter;
use crate::forensics::EdgeRecorder;
use crate::pagecache::PageCache;
use crate::shadow::{ShadowMap, ShadowWriter};
use crate::simd::{self, ScanTier};
use crate::telem::SweepProf;

/// The memory ranges one sweep will examine: active heap extents plus the
/// committed pages of the globals and stack segments.
#[derive(Clone, Debug)]
pub struct SweepPlan {
    ranges: Vec<(Addr, u64)>,
    total_bytes: u64,
}

impl SweepPlan {
    /// Builds a plan from the allocator's active extents and the root
    /// segments. Only committed root pages are included (unbacked pages
    /// cannot hold pointers); heap extents are taken as-is, with protected
    /// or unbacked pages skipped during marking.
    pub fn build(space: &AddrSpace, heap_ranges: &[(Addr, u64)]) -> Self {
        let mut ranges: Vec<(Addr, u64)> = Vec::new();
        for seg in [Segment::Globals, Segment::Stack] {
            let base = space.layout().segment_base(seg);
            let pages = space.layout().segment_pages(seg);
            let mut run_start: Option<PageIdx> = None;
            let flush = |start: Option<PageIdx>, end: PageIdx, out: &mut Vec<_>| {
                if let Some(s) = start {
                    out.push((s.base(), (end.raw() - s.raw()) * PAGE_SIZE as u64));
                }
            };
            let first = base.page();
            for i in 0..pages {
                let p = PageIdx::new(first.raw() + i);
                if space.is_committed(p.base()) {
                    run_start.get_or_insert(p);
                } else {
                    flush(run_start.take(), p, &mut ranges);
                }
            }
            flush(run_start.take(), PageIdx::new(first.raw() + pages), &mut ranges);
        }
        ranges.extend(heap_ranges.iter().copied());
        let total_bytes = ranges.iter().map(|&(_, l)| l).sum();
        SweepPlan { ranges, total_bytes }
    }

    /// A plan over explicit ranges (tests, custom root sets).
    pub fn from_ranges(ranges: Vec<(Addr, u64)>) -> Self {
        let total_bytes = ranges.iter().map(|&(_, l)| l).sum();
        SweepPlan { ranges, total_bytes }
    }

    /// Total bytes the plan covers (before protected/unbacked skipping).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The ranges, address order within each segment group.
    pub fn ranges(&self) -> &[(Addr, u64)] {
        &self.ranges
    }
}

/// Progress report from one [`Marker::step`].
///
/// Accounting invariant: `bytes == words * 8 + skipped_bytes` — every
/// byte the cursor advances through is either read word-by-word or
/// skipped wholesale (cache-replayed clean pages, protected pages,
/// unmapped holes).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StepResult {
    /// Words actually read and tested.
    pub words: u64,
    /// Bytes advanced through the plan (including skipped pages).
    pub bytes: u64,
    /// Bytes advanced without reading: clean pages replayed from the
    /// page-summary cache plus protected/unmapped page skips.
    pub skipped_bytes: u64,
    /// Scanned words that passed the heap range test (survivors of the
    /// SIMD classify pass, pre-filter). Cache-replayed digests are not
    /// counted — replays are charged per page, not per word.
    pub heap_words: u64,
    /// Clean pages whose 512-word re-read was skipped via the cache.
    pub pages_skipped: u64,
    /// Skipped pages whose non-empty digest was replayed into the shadow
    /// map (a subset of `pages_skipped`; the rest had no heap pointers).
    pub pages_replayed: u64,
    /// Heap-pointing words suppressed by the candidate filter (scan and
    /// replay combined).
    pub filter_rejects: u64,
    /// Provenance edges recorded by the forensics [`EdgeRecorder`] during
    /// this step (zero when forensics is off or every edge was sampled
    /// out). Cache-replayed pages record page-granular edges.
    pub pin_edges: u64,
    /// Whether the marking phase is complete.
    pub finished: bool,
}

impl StepResult {
    /// Folds another step's counters into this one (`finished` takes the
    /// later step's value).
    fn absorb(&mut self, r: StepResult) {
        self.words += r.words;
        self.bytes += r.bytes;
        self.skipped_bytes += r.skipped_bytes;
        self.heap_words += r.heap_words;
        self.pages_skipped += r.pages_skipped;
        self.pages_replayed += r.pages_replayed;
        self.filter_rejects += r.filter_rejects;
        self.pin_edges += r.pin_edges;
        self.finished = r.finished;
    }
}

/// Acceleration context for a sweep: the optional candidate filter and
/// page-summary cache the marker consults, plus the quarantine generation
/// tag recorded into fresh digests.
///
/// A default (empty) accel reproduces the unaccelerated sweep exactly.
#[derive(Debug, Default)]
pub struct MarkAccel<'a> {
    /// Candidate filter built from this sweep's locked quarantine
    /// generation; `None` marks every heap-pointing word.
    pub filter: Option<&'a CandidateFilter>,
    /// Page-summary cache: clean pages replay their digest instead of
    /// being re-read, freshly scanned pages record a new digest.
    pub cache: Option<&'a mut PageCache>,
    /// Quarantine generation tag for recorded digests.
    pub qgen: u64,
    /// Forensics edge recorder: when present, words that hit a
    /// quarantined candidate also record a provenance edge (source
    /// address → quarantine entry). `None` keeps the recorder dispatch
    /// out of the survivors tail — the disabled cost is one branch per
    /// surviving word, never per scanned word.
    pub forensics: Option<&'a EdgeRecorder>,
    /// Scan-kernel tier override; `None` uses [`simd::active_tier`].
    /// Every tier produces bit-identical marks, digests and counts — the
    /// override exists for benchmarks and differential tests.
    pub tier: Option<ScanTier>,
    /// Sweep profiler: when present, each step records its wall scan time
    /// into `sweep/step_scan_ns` and folds the writer's write-combine /
    /// chunk-cache counters into the shared cells. `None` costs exactly
    /// one branch per step — no clock reads, no counter traffic.
    pub prof: Option<&'a SweepProf>,
}

/// Scan disposition of one page.
enum PageState {
    Committed,
    Unbacked,
    Skip,
}

/// Incremental cursor over a [`SweepPlan`].
///
/// Each call to [`Marker::step`] reads up to `word_budget` aligned words,
/// marking heap-pointing values in the shadow map. Protected and unmapped
/// pages are skipped a page at a time (the §4.5 extent hooks make purged
/// ranges fault rather than demand-commit).
#[derive(Clone, Debug)]
pub struct Marker {
    plan: SweepPlan,
    idx: usize,
    off: u64,
    done_bytes: u64,
    /// Plan ranges sorted by base — `(base, len, plan index)` — so
    /// [`Marker::has_passed`] is a binary search instead of a linear walk
    /// over the plan (root-heavy plans have thousands of ranges).
    by_base: Vec<(u64, u64, usize)>,
    /// In-progress page digest `(page index, heap-pointing values)` —
    /// carried across budget-split steps so a page scanned in several
    /// chunks still records one complete summary.
    pending: Option<(u64, Vec<u64>)>,
}

impl Marker {
    /// Creates a cursor at the start of `plan`.
    pub fn new(plan: SweepPlan) -> Self {
        let mut by_base: Vec<(u64, u64, usize)> = plan
            .ranges
            .iter()
            .enumerate()
            .map(|(i, &(base, len))| (base.raw(), len, i))
            .collect();
        by_base.sort_unstable();
        Marker { plan, idx: 0, off: 0, done_bytes: 0, by_base, pending: None }
    }

    /// Bytes of plan not yet advanced through.
    pub fn remaining_bytes(&self) -> u64 {
        self.plan.total_bytes - self.done_bytes
    }

    /// The plan this cursor walks. Pooled sweeps borrow it to cut the
    /// cross-arena chunk queue without consuming the marker.
    pub fn plan(&self) -> &SweepPlan {
        &self.plan
    }

    /// Whether the cursor has passed `addr` (used by tests to position
    /// race scenarios relative to the sweep front). Binary search over the
    /// base-sorted range index; plan ranges never overlap.
    pub fn has_passed(&self, addr: Addr) -> bool {
        let i = self.by_base.partition_point(|&(base, _, _)| base <= addr.raw());
        if i == 0 {
            return false;
        }
        let (base, len, plan_idx) = self.by_base[i - 1];
        if addr.raw() - base >= len {
            return false;
        }
        plan_idx < self.idx || (plan_idx == self.idx && addr.raw() - base < self.off)
    }

    /// Advances the cursor by up to `word_budget` words, marking pointer
    /// targets in `shadow`.
    ///
    /// Pages are processed in slices — one `scan_page` lookup per page,
    /// with the marks issued while the page borrow is live and the
    /// [`ShadowWriter`](crate::shadow::ShadowWriter) chunk cache carrying
    /// across pages. Sweeping a `madvise`-purged (mapped, unprotected,
    /// unbacked) page **demand-commits it** via [`AddrSpace::touch_page`],
    /// faithfully reproducing the §4.5 failure mode that the
    /// commit/decommit extent hooks exist to prevent; protected pages are
    /// skipped.
    pub fn step(
        &mut self,
        space: &mut AddrSpace,
        layout: &Layout,
        shadow: &mut ShadowMap,
        word_budget: u64,
    ) -> StepResult {
        self.step_accel(space, layout, shadow, word_budget, &mut MarkAccel::default())
    }

    /// [`Marker::step`] with the incremental-sweep accelerations engaged:
    ///
    /// * **cache replay** — a fully-covered page with a valid
    ///   [`PageCache`] entry skips its 512-word re-read; the digest is
    ///   re-filtered through the *current* filter and marked directly
    ///   (skipped pages cost no word budget — the engine charges them via
    ///   [`StepResult::skipped_bytes`] instead);
    /// * **candidate filter** — heap-pointing words whose target page
    ///   holds no quarantined granule never touch the shadow map;
    /// * **zero-word fast path** — zero (the overwhelmingly common swept
    ///   value after zero-on-free, §4.1) falls through in one compare;
    /// * **digest recording** — every fully scanned page records its
    ///   pre-filter digest for the next sweep.
    pub fn step_accel(
        &mut self,
        space: &mut AddrSpace,
        layout: &Layout,
        shadow: &mut ShadowMap,
        word_budget: u64,
        accel: &mut MarkAccel<'_>,
    ) -> StepResult {
        // The serial cursor owns its map for the duration of the step, so
        // it gets the exclusive writer's store-only flush.
        let mut writer = shadow.writer_mut();
        // Profiler gate: the disabled path is this one branch — no clock
        // read, and the epilogue fold below is skipped entirely.
        let scan_t0 = accel.prof.map(|_| Instant::now());
        let mut r = StepResult::default();
        let start_bytes = self.done_bytes;
        let edges_before = accel.forensics.map_or(0, EdgeRecorder::recorded);
        let tier = accel.tier.unwrap_or_else(simd::active_tier);
        while r.words < word_budget && self.idx < self.plan.ranges.len() {
            let (base, len) = self.plan.ranges[self.idx];
            if self.off >= len {
                self.idx += 1;
                self.off = 0;
                continue;
            }
            let addr = base.add_bytes(self.off);
            let page = addr.page();
            // The chunk is bounded by the page end, the range end and the
            // remaining word budget.
            let page_end = page.next().base().offset_from(base).min(len);
            let chunk_words =
                ((page_end - self.off) / WORD_SIZE as u64).min(word_budget - r.words);
            // Digests only make sense for pages this range covers
            // entirely: a partial scan would record (and later replay) a
            // partial truth.
            let covered = page.base().raw() >= base.raw()
                && page.base().offset_from(base) + PAGE_SIZE as u64 <= len;
            let at_page_start = covered && self.off == page.base().offset_from(base);

            // Clean-page fast path: replay the cached digest through the
            // current filter instead of re-reading 512 words.
            if at_page_start {
                if let Some(targets) =
                    accel.cache.as_deref().and_then(|c| c.lookup(page))
                {
                    let mut marked_any = false;
                    for &value in targets {
                        let target = Addr::new(value);
                        match accel.filter {
                            Some(f) if !f.allows(target) => r.filter_rejects += 1,
                            _ => {
                                writer.mark(target);
                                marked_any = true;
                                // Replayed digests lost the word offset:
                                // attribute the edge to the page.
                                if let Some(rec) = accel.forensics {
                                    rec.note(page.base(), target);
                                }
                            }
                        }
                    }
                    r.pages_skipped += 1;
                    r.pages_replayed += u64::from(marked_any);
                    r.skipped_bytes += PAGE_SIZE as u64;
                    self.off += PAGE_SIZE as u64;
                    self.done_bytes += PAGE_SIZE as u64;
                    continue;
                }
            }

            // Digest state for this chunk: open a fresh one at a covered
            // page start, continue one split by the word budget, drop
            // anything else (uncoverable or discontinuous).
            let digest_active = if accel.cache.is_some() && covered {
                if at_page_start {
                    self.pending = Some((page.raw(), Vec::new()));
                    true
                } else {
                    matches!(&self.pending, Some((p, _)) if *p == page.raw())
                }
            } else {
                self.pending = None;
                false
            };

            // One probe: mark in the committed arm (the page borrow ends
            // with the match), then advance state without it.
            let state = match space.scan_page(page) {
                Ok(Some(words)) => {
                    let start_word = addr.word_in_page();
                    let digest = self
                        .pending
                        .as_mut()
                        .filter(|_| digest_active)
                        .map(|(_, v)| v);
                    let slice = &words[start_word..start_word + chunk_words as usize];
                    scan_words(
                        tier,
                        slice,
                        addr,
                        layout,
                        &mut writer,
                        accel.filter,
                        digest,
                        &mut r.heap_words,
                        &mut r.filter_rejects,
                        accel.forensics,
                    );
                    PageState::Committed
                }
                Ok(None) => PageState::Unbacked,
                Err(MemError::Protected(_)) | Err(MemError::Unmapped(_)) => PageState::Skip,
                Err(e) => unreachable!("scan_page cannot fail with {e}"),
            };
            match state {
                PageState::Committed => {
                    r.words += chunk_words;
                    self.off += chunk_words * WORD_SIZE as u64;
                    self.done_bytes += chunk_words * WORD_SIZE as u64;
                    // Page fully scanned: publish its digest.
                    if digest_active
                        && self.off == page.base().offset_from(base) + PAGE_SIZE as u64
                    {
                        if let (Some((p, targets)), Some(cache)) =
                            (self.pending.take(), accel.cache.as_deref_mut())
                        {
                            cache.record(PageIdx::new(p), accel.qgen, targets);
                        }
                    }
                }
                PageState::Unbacked => {
                    // Mapped but unbacked: a real read faults it in
                    // (demand-zero) — the naive-purge RSS inflation. The
                    // fresh zeroes mark nothing; consume the chunk.
                    space.touch_page(page).expect("mapped page");
                    self.pending = None;
                    r.words += chunk_words;
                    self.off += chunk_words * WORD_SIZE as u64;
                    self.done_bytes += chunk_words * WORD_SIZE as u64;
                }
                PageState::Skip => {
                    // Skip the rest of the page without reading a word.
                    self.pending = None;
                    r.skipped_bytes += page_end - self.off;
                    self.done_bytes += page_end - self.off;
                    self.off = page_end;
                }
            }
        }
        r.bytes = self.done_bytes - start_bytes;
        r.finished = self.idx >= self.plan.ranges.len();
        r.pin_edges =
            accel.forensics.map_or(0, EdgeRecorder::recorded) - edges_before;
        if let (Some(prof), Some(t0)) = (accel.prof, scan_t0) {
            prof.step_scan_ns.record(t0.elapsed().as_nanos() as u64);
            prof.fold_writer(&writer.take_prof());
        }
        r
    }

    /// Runs the cursor to completion, returning total words examined.
    pub fn run_to_end(
        &mut self,
        space: &mut AddrSpace,
        layout: &Layout,
        shadow: &mut ShadowMap,
    ) -> u64 {
        let mut total = 0;
        loop {
            let r = self.step(space, layout, shadow, u64::MAX);
            total += r.words;
            if r.finished {
                return total;
            }
        }
    }

    /// Runs the cursor to completion with accelerations, returning the
    /// aggregated [`StepResult`].
    pub fn run_to_end_accel(
        &mut self,
        space: &mut AddrSpace,
        layout: &Layout,
        shadow: &mut ShadowMap,
        accel: &mut MarkAccel<'_>,
    ) -> StepResult {
        let mut total = StepResult::default();
        loop {
            let r = self.step_accel(space, layout, shadow, u64::MAX, accel);
            total.absorb(r);
            if total.finished {
                return total;
            }
        }
    }
}

/// **The one inner mark loop.** Every scanned word — serial, parallel,
/// stop-the-world or forensic — goes through this function.
///
/// The hot classify pass is the chunked [`simd`] kernel: 8 words per
/// iteration, lane-OR zero early-out (zero-on-free makes all-zero chunks
/// the common case, §4.1), branch-free heap-range test, tier dispatched
/// at runtime (AVX2 / SSE2 / portable SWAR). Words that survive — the
/// rare heap-range hits — reach the compacted tail closure below, where
/// digest capture, the [`CandidateFilter`], the shadow write and forensic
/// edge recording all live. Keeping those behind the compaction means the
/// optional features cost a branch per *survivor*, never per scanned
/// word, and there is exactly one classify loop to test and optimise.
/// The tail is instantiated twice: a bare shadow-write-only closure for
/// the steady-state sweep, and the full-featured one when any of digest /
/// filter / forensics is active.
///
/// `base` is the address of `words[0]` (forensic edge provenance);
/// `heap_words` counts survivors (pre-filter).
#[allow(clippy::too_many_arguments)]
fn scan_words(
    tier: ScanTier,
    words: &[u64],
    base: Addr,
    layout: &Layout,
    writer: &mut ShadowWriter<'_>,
    filter: Option<&CandidateFilter>,
    mut digest: Option<&mut Vec<u64>>,
    heap_words: &mut u64,
    filter_rejects: &mut u64,
    rec: Option<&EdgeRecorder>,
) {
    let lo = layout.segment_base(Segment::Heap).raw();
    let hi = layout.segment_end(Segment::Heap).raw();
    // Same kernel either way; only the survivor tail is instantiated
    // twice. The bare configuration (no digest, no filter, no forensics)
    // is the steady-state production sweep, and its tail shrinks to the
    // shadow write alone — `heap_words` comes from the kernel's
    // survivor-mask popcount rather than a per-survivor increment, and
    // the `Option` checks vanish instead of running on every survivor.
    if digest.is_none() && filter.is_none() && rec.is_none() {
        *heap_words += simd::for_each_in_range(tier, words, lo, hi, |_, value| {
            writer.mark(Addr::new(value));
        });
        return;
    }
    *heap_words += simd::for_each_in_range(tier, words, lo, hi, |i, value| {
        let target = Addr::new(value);
        if let Some(d) = digest.as_deref_mut() {
            d.push(value);
        }
        match filter {
            Some(f) if !f.allows(target) => *filter_rejects += 1,
            _ => {
                writer.mark(target);
                if let Some(rec) = rec {
                    rec.note(base.add_bytes(i as u64 * WORD_SIZE as u64), target);
                }
            }
        }
    });
}

/// Re-marks a single page (stop-the-world pass over soft-dirty pages,
/// §4.3). Runs the same [`scan_words`] kernel as the concurrent phase, so
/// the STW pass gets the zero fast path and SIMD classify too — a
/// soft-dirty page that was freed-and-zeroed since the snapshot costs one
/// lane-OR per cache line, not 512 range tests. Returns words examined;
/// protected/unmapped pages contribute zero.
pub fn mark_page(
    space: &mut AddrSpace,
    layout: &Layout,
    shadow: &mut ShadowMap,
    page: PageIdx,
) -> u64 {
    match space.scan_page(page) {
        Ok(Some(words)) => {
            let mut writer = shadow.writer_mut();
            let (mut heap_words, mut rejects) = (0u64, 0u64);
            scan_words(
                simd::active_tier(),
                words,
                page.base(),
                layout,
                &mut writer,
                None,
                None,
                &mut heap_words,
                &mut rejects,
                None,
            );
            (PAGE_SIZE / WORD_SIZE) as u64
        }
        _ => 0,
    }
}

/// Default work-queue chunk size for [`parallel_mark_opts`], in pages.
/// 64 pages (256 KiB) is small enough that a straggler finishing its last
/// chunk idles the other threads for at most ~a quarter-millisecond of
/// scanning, and large enough that the atomic cursor claim (one
/// `fetch_add` per chunk) is amortised over 32 K words.
pub const PARALLEL_CHUNK_PAGES: u64 = 64;

/// One-shot parallel marking with real OS threads (§4.4: "a main sweeper
/// thread and some helpers"). Work-stealing wrapper over
/// [`parallel_mark_opts`] — see there for the scheduling story.
///
/// This is the library-facing sweep used when no discrete-event engine is
/// orchestrating virtual time (examples, tests, raw-bandwidth benches).
///
/// The helper count is clamped via [`effective_helper_count`]: asking for
/// more helpers than the machine has spare cores only adds scheduling
/// churn to what is a bandwidth-bound loop.
pub fn parallel_mark(
    space: &AddrSpace,
    plan: &SweepPlan,
    layout: &Layout,
    helper_threads: usize,
) -> ShadowMap {
    parallel_mark_accel(space, plan, layout, helper_threads, None, None, None).0
}

/// Wall-clock and scheduling attribution from one profiled parallel
/// mark. Unlike the rest of [`ParallelMarkStats`] these fields are
/// **nondeterministic** (clock reads and claim-order dependent), which is
/// why they live behind [`ParallelMarkOpts::prof`]: with the profiler
/// off every field stays zero and whole-struct stats comparisons remain
/// exact.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MarkProfile {
    /// Chunks claimed from the shared cursor (all threads).
    pub chunks_claimed: u64,
    /// Chunks claimed by helper threads (work the main sweeper would
    /// otherwise have done — "stolen" in the §4.4 sense).
    pub chunks_stolen: u64,
    /// Summed per-thread busy nanoseconds (time inside chunk scans).
    pub busy_ns: u64,
    /// Wall nanoseconds for the whole mark (spawn to last join).
    pub wall_ns: u64,
}

/// Aggregated counters from one parallel mark. Every field is
/// **deterministic** — each chunk of the work queue is claimed exactly
/// once and every word is classified exactly once, so the totals are
/// independent of helper count, chunk size and claim order (the
/// work-stealing determinism proptests pin this down) — except the
/// diagnostic [`MarkProfile`], which stays all-zero unless
/// [`ParallelMarkOpts::prof`] is set.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ParallelMarkStats {
    /// Words read and classified (excludes cache-replayed pages).
    pub words: u64,
    /// Scanned words that passed the heap range test (pre-filter).
    pub heap_words: u64,
    /// Heap-pointing words suppressed by the candidate filter — scan and
    /// replay combined, exactly as the serial [`StepResult`] counts them.
    pub filter_rejects: u64,
    /// Clean pages whose 512-word re-read was skipped via the cache.
    pub pages_skipped: u64,
    /// Skipped pages whose non-empty digest was replayed (subset of
    /// `pages_skipped`).
    pub pages_replayed: u64,
    /// Chunks in the work queue (claims performed, not per-thread).
    pub chunks: u64,
    /// Helper threads actually spawned after the hardware clamp.
    pub effective_helpers: usize,
    /// Profiler attribution; all-zero when [`ParallelMarkOpts::prof`] is
    /// `None`.
    pub prof: MarkProfile,
}

/// Options for [`parallel_mark_opts`]. `Default` reproduces
/// [`parallel_mark`]: no filter, no cache, no forensics, auto-dispatched
/// scan tier, [`PARALLEL_CHUNK_PAGES`]-page chunks, zero helpers.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelMarkOpts<'a> {
    /// Helper threads requested (clamped via [`effective_helper_count`]).
    pub helper_threads: usize,
    /// Candidate filter gating shadow writes.
    pub filter: Option<&'a CandidateFilter>,
    /// Read-only page-summary cache; clean fully-covered pages replay
    /// their digest instead of being re-read. Helper threads never record
    /// fresh digests (recording needs `&mut` and a coherent full-page
    /// scan; the incremental [`Marker`] owns that path).
    pub cache: Option<&'a PageCache>,
    /// Forensics recorder shared by all threads (its counters are
    /// atomic).
    pub forensics: Option<&'a EdgeRecorder>,
    /// Scan-kernel tier override; `None` uses [`simd::active_tier`].
    pub tier: Option<ScanTier>,
    /// Work-queue chunk size in pages; `None` uses
    /// [`PARALLEL_CHUNK_PAGES`]. Exposed so the determinism tests can
    /// vary claim granularity; results are identical for every value.
    pub chunk_pages: Option<u64>,
    /// Sweep profiler: when present, per-chunk scan times, per-helper
    /// utilisation and the writers' write-combine / chunk-cache counters
    /// are recorded into the shared `sweep.*` cells and the returned
    /// [`MarkProfile`]. `None` (default) costs one branch per thread —
    /// no clock reads inside the claim loop.
    pub prof: Option<&'a SweepProf>,
}

/// [`parallel_mark`] with every knob exposed — the full work-stealing
/// marker.
///
/// The plan is cut into fixed page-range chunks (~[`PARALLEL_CHUNK_PAGES`]
/// pages) at chunk-aligned absolute addresses, queued behind one atomic
/// cursor. Every thread — the main sweeper and each helper — claims the
/// next chunk with a relaxed `fetch_add` and routes it through the same
/// [`scan_words`] SIMD kernel as the serial path. Compared to the static
/// contiguous byte shares this replaced, no thread can idle behind an
/// unlucky share: a thread that drew dense, cache-cold or demand-paged
/// chunks simply claims fewer of them, and the queue drains when the last
/// chunk does.
///
/// All threads mark **directly into one shared atomic shadow map** via
/// side-effect-free reads ([`AddrSpace::scan_page`], with unbacked pages
/// skipped — they read as zero, never a heap pointer). There are no
/// per-thread maps and no union barrier; each thread's
/// [`ShadowWriter`] keeps the hot loop off the radix walk. Per-thread
/// counters are folded into the returned [`ParallelMarkStats`] with one
/// atomic add per thread at join time.
pub fn parallel_mark_opts(
    space: &AddrSpace,
    plan: &SweepPlan,
    layout: &Layout,
    opts: &ParallelMarkOpts<'_>,
) -> (ShadowMap, ParallelMarkStats) {
    let helpers = effective_helper_count(opts.helper_threads);
    let threads = helpers + 1;
    let tier = opts.tier.unwrap_or_else(simd::active_tier);
    let chunk_bytes =
        opts.chunk_pages.unwrap_or(PARALLEL_CHUNK_PAGES).max(1) * PAGE_SIZE as u64;
    // Cut at chunk-aligned *absolute* addresses: steady-state chunk
    // boundaries are then page boundaries regardless of where a range
    // starts, so the clean-page replay fast path keeps seeing whole
    // pages and the chunk list for a given plan is identical for every
    // thread count.
    let mut chunks: Vec<(Addr, u64)> = Vec::new();
    for &(base, len) in plan.ranges() {
        let mut off = 0;
        while off < len {
            let addr = base.add_bytes(off);
            let next = (addr.raw() / chunk_bytes + 1) * chunk_bytes;
            let take = (next - addr.raw()).min(len - off);
            chunks.push((addr, take));
            off += take;
        }
    }

    let shadow = ShadowMap::new();
    let cursor = AtomicUsize::new(0);
    let words = AtomicU64::new(0);
    let heap_words = AtomicU64::new(0);
    let filter_rejects = AtomicU64::new(0);
    let pages_skipped = AtomicU64::new(0);
    let pages_replayed = AtomicU64::new(0);
    let prof_busy_ns = AtomicU64::new(0);
    let prof_claimed = AtomicU64::new(0);
    let prof_stolen = AtomicU64::new(0);
    // Profiler gate: one branch per thread with `prof` unset — no clock
    // reads in or around the claim loop.
    let mark_t0 = opts.prof.map(|_| Instant::now());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|thread_idx| {
                let (shadow, chunks, cursor) = (&shadow, &chunks, &cursor);
                let (words, heap_words) = (&words, &heap_words);
                let (filter_rejects, pages_skipped, pages_replayed) =
                    (&filter_rejects, &pages_skipped, &pages_replayed);
                let (prof_busy_ns, prof_claimed, prof_stolen) =
                    (&prof_busy_ns, &prof_claimed, &prof_stolen);
                let opts = *opts;
                scope.spawn(move || {
                    let thread_t0 = opts.prof.map(|_| Instant::now());
                    let mut writer = shadow.writer();
                    let mut local = ParallelMarkStats::default();
                    let (mut busy_ns, mut claimed) = (0u64, 0u64);
                    loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&(base, len)) = chunks.get(k) else { break };
                        let chunk_t0 = opts.prof.map(|_| Instant::now());
                        mark_chunk(
                            space,
                            layout,
                            tier,
                            opts.filter,
                            opts.cache,
                            opts.forensics,
                            base,
                            len,
                            &mut writer,
                            &mut local,
                        );
                        if let (Some(p), Some(t0)) = (opts.prof, chunk_t0) {
                            let ns = t0.elapsed().as_nanos() as u64;
                            p.chunk_scan_ns.record(ns);
                            busy_ns += ns;
                            claimed += 1;
                        }
                    }
                    if let (Some(p), Some(t0)) = (opts.prof, thread_t0) {
                        p.fold_writer(&writer.take_prof());
                        let wall = t0.elapsed().as_nanos() as u64;
                        p.helper_chunks.record(claimed);
                        p.helper_busy_pct.record(
                            (busy_ns * 100).checked_div(wall).map_or(100, |pct| pct.min(100)),
                        );
                        prof_busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
                        prof_claimed.fetch_add(claimed, Ordering::Relaxed);
                        p.chunks_claimed.add(claimed);
                        if thread_idx > 0 {
                            prof_stolen.fetch_add(claimed, Ordering::Relaxed);
                            p.chunks_stolen.add(claimed);
                        }
                    }
                    drop(writer);
                    words.fetch_add(local.words, Ordering::Relaxed);
                    heap_words.fetch_add(local.heap_words, Ordering::Relaxed);
                    filter_rejects.fetch_add(local.filter_rejects, Ordering::Relaxed);
                    pages_skipped.fetch_add(local.pages_skipped, Ordering::Relaxed);
                    pages_replayed.fetch_add(local.pages_replayed, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("marker thread panicked");
        }
    });
    let stats = ParallelMarkStats {
        words: words.into_inner(),
        heap_words: heap_words.into_inner(),
        filter_rejects: filter_rejects.into_inner(),
        pages_skipped: pages_skipped.into_inner(),
        pages_replayed: pages_replayed.into_inner(),
        chunks: chunks.len() as u64,
        effective_helpers: helpers,
        prof: MarkProfile {
            chunks_claimed: prof_claimed.into_inner(),
            chunks_stolen: prof_stolen.into_inner(),
            busy_ns: prof_busy_ns.into_inner(),
            wall_ns: mark_t0.map_or(0, |t0| t0.elapsed().as_nanos() as u64),
        },
    };
    (shadow, stats)
}

/// Marks one work-queue chunk: per-page slices through the shared
/// [`scan_words`] kernel, with the clean-page digest replay fast path for
/// fully-covered cached pages. Mirrors the serial [`Marker::step_accel`]
/// accounting (replay rejects count, `pages_replayed` means "replay
/// marked something").
#[allow(clippy::too_many_arguments)]
fn mark_chunk(
    space: &AddrSpace,
    layout: &Layout,
    tier: ScanTier,
    filter: Option<&CandidateFilter>,
    cache: Option<&PageCache>,
    forensics: Option<&EdgeRecorder>,
    base: Addr,
    len: u64,
    writer: &mut ShadowWriter<'_>,
    local: &mut ParallelMarkStats,
) {
    let mut off = 0;
    while off < len {
        let addr = base.add_bytes(off);
        let page_end = addr.page().next().base().offset_from(base).min(len);
        // Clean-page replay: only when this chunk piece covers the whole
        // page (a partial replay would mark words outside the chunk).
        if addr.is_aligned(PAGE_SIZE as u64) && page_end - off == PAGE_SIZE as u64 {
            if let Some(targets) = cache.and_then(|c| c.lookup(addr.page())) {
                let mut marked_any = false;
                for &value in targets {
                    let target = Addr::new(value);
                    match filter {
                        Some(f) if !f.allows(target) => local.filter_rejects += 1,
                        _ => {
                            writer.mark(target);
                            marked_any = true;
                            // Replayed digests lost the word offset:
                            // attribute the edge to the page.
                            if let Some(rec) = forensics {
                                rec.note(addr, target);
                            }
                        }
                    }
                }
                local.pages_skipped += 1;
                local.pages_replayed += u64::from(marked_any);
                off = page_end;
                continue;
            }
        }
        let chunk_words = (page_end - off) / WORD_SIZE as u64;
        if let Ok(Some(page)) = space.scan_page(addr.page()) {
            let w0 = addr.word_in_page();
            scan_words(
                tier,
                &page[w0..w0 + chunk_words as usize],
                addr,
                layout,
                writer,
                filter,
                None,
                &mut local.heap_words,
                &mut local.filter_rejects,
                forensics,
            );
            local.words += chunk_words;
        }
        // Unbacked pages read as zero; protected pages are skipped —
        // neither marks anything.
        off = page_end;
    }
}

/// One arena's share of a pooled cross-arena mark: the arena's address
/// space, its in-flight sweep plan, and the accelerators bound to that
/// sweep. Borrow one per scheduled arena (see
/// [`MineSweeper::pooled_mark_job`](crate::MineSweeper::pooled_mark_job))
/// and hand the batch to [`parallel_mark_pool`].
#[derive(Clone, Copy, Debug)]
pub struct PoolMarkJob<'a> {
    /// The arena's address space (read-only during marking).
    pub space: &'a AddrSpace,
    /// The arena's locked-in sweep plan.
    pub plan: &'a SweepPlan,
    /// The arena's shadow map (shared, atomic marking).
    pub shadow: &'a ShadowMap,
    /// Candidate filter over the arena's locked quarantine generation.
    pub filter: Option<&'a CandidateFilter>,
    /// Read-only page-summary cache (replay only, never records).
    pub cache: Option<&'a PageCache>,
    /// Forensics recorder over the arena's locked entries.
    pub forensics: Option<&'a EdgeRecorder>,
}

/// Options for [`parallel_mark_pool`]. `Default`: zero helpers, auto
/// tier, default chunking, shared roots on, no profiler.
#[derive(Clone, Copy, Debug)]
pub struct PoolMarkOpts<'a> {
    /// Helper threads requested (clamped via [`effective_helper_count`]).
    pub helper_threads: usize,
    /// Scan-kernel tier override; `None` uses [`simd::active_tier`].
    pub tier: Option<ScanTier>,
    /// Work-queue chunk size in pages; `None` uses
    /// [`PARALLEL_CHUNK_PAGES`].
    pub chunk_pages: Option<u64>,
    /// Treat root-segment (stack/globals) chunks as *shared process
    /// state*: each root chunk is scanned once per scheduled arena and
    /// marked into every arena's shadow through that arena's own filter,
    /// so a dangling root pointer in one arena pins quarantined blocks in
    /// another. Heap chunks always mark only their owning arena (tenant
    /// heaps are disjoint). Off reproduces N independent marks exactly.
    pub shared_roots: bool,
    /// Sweep profiler cells shared by all threads.
    pub prof: Option<&'a SweepProf>,
}

impl Default for PoolMarkOpts<'_> {
    fn default() -> Self {
        PoolMarkOpts {
            helper_threads: 0,
            tier: None,
            chunk_pages: None,
            shared_roots: true,
            prof: None,
        }
    }
}

/// Result of one pooled mark: per-job deterministic stats (index-aligned
/// with the job slice) plus the aggregate nondeterministic profile.
#[derive(Clone, Debug, Default)]
pub struct PoolMarkResult {
    /// Per-job stats; `chunks` counts the chunks the job *owns* and the
    /// word/reject counters come from the owner's scan pass only (a
    /// shared root chunk's words are charged once, to its owner), so each
    /// job's accounting identity `plan bytes == words*8 + skipped` holds
    /// independent of how many arenas were batched.
    pub per_job: Vec<ParallelMarkStats>,
    /// Aggregate wall/busy/steal attribution (all-zero without
    /// [`PoolMarkOpts::prof`]).
    pub profile: MarkProfile,
}

/// Whether `addr` lies in a root segment (globals or stack) of `layout`.
fn in_root_segment(layout: &Layout, addr: Addr) -> bool {
    [Segment::Globals, Segment::Stack].iter().any(|&seg| {
        let base = layout.segment_base(seg);
        let len = layout.segment_pages(seg) * PAGE_SIZE as u64;
        addr >= base && addr.raw() < base.raw() + len
    })
}

/// Per-job atomic fold targets for the pooled mark.
#[derive(Default)]
struct JobTotals {
    words: AtomicU64,
    heap_words: AtomicU64,
    filter_rejects: AtomicU64,
    pages_skipped: AtomicU64,
    pages_replayed: AtomicU64,
}

/// The cross-arena generalisation of [`parallel_mark_opts`]: **one**
/// work-stealing cursor drains the chunk queues of every scheduled
/// arena's plan, so a helper pool that finishes one tenant's dense heap
/// immediately steals chunks from the next instead of idling at a
/// per-arena join barrier — that barrier is exactly what naive per-arena
/// serial sweeping pays N times.
///
/// Chunks are cut per job exactly as [`parallel_mark_opts`] cuts them
/// (chunk-aligned absolute addresses), then interleaved round-robin
/// across jobs so early-claimed work spreads over all arenas. Each
/// thread keeps one [`ShadowWriter`] per job; heap chunks mark only
/// their owner's shadow, root chunks follow
/// [`PoolMarkOpts::shared_roots`]. All deterministic guarantees of the
/// single-arena marker carry over per job: the mark set and counters are
/// independent of helper count, chunk size and claim order.
pub fn parallel_mark_pool(
    jobs: &[PoolMarkJob<'_>],
    opts: &PoolMarkOpts<'_>,
) -> PoolMarkResult {
    let helpers = effective_helper_count(opts.helper_threads);
    let threads = helpers + 1;
    let tier = opts.tier.unwrap_or_else(simd::active_tier);
    let chunk_bytes =
        opts.chunk_pages.unwrap_or(PARALLEL_CHUNK_PAGES).max(1) * PAGE_SIZE as u64;

    // Cut each job's plan into chunks, tagging root-segment chunks, then
    // interleave the per-job lists so the shared cursor alternates
    // between arenas from the first claim.
    let mut per_job_chunks: Vec<Vec<(Addr, u64, bool)>> = jobs
        .iter()
        .map(|job| {
            let layout = job.space.layout();
            let mut out = Vec::new();
            for &(base, len) in job.plan.ranges() {
                let shared = in_root_segment(layout, base);
                let mut off = 0;
                while off < len {
                    let addr = base.add_bytes(off);
                    let next = (addr.raw() / chunk_bytes + 1) * chunk_bytes;
                    let take = (next - addr.raw()).min(len - off);
                    out.push((addr, take, shared));
                    off += take;
                }
            }
            out
        })
        .collect();
    let mut chunks: Vec<(usize, Addr, u64, bool)> = Vec::new();
    let mut round = 0;
    loop {
        let mut any = false;
        for (j, list) in per_job_chunks.iter_mut().enumerate() {
            if round < list.len() {
                let (addr, len, shared) = list[round];
                chunks.push((j, addr, len, shared));
                any = true;
            }
        }
        if !any {
            break;
        }
        round += 1;
    }
    let owned_chunks: Vec<u64> =
        per_job_chunks.iter().map(|l| l.len() as u64).collect();

    let totals: Vec<JobTotals> = jobs.iter().map(|_| JobTotals::default()).collect();
    let cursor = AtomicUsize::new(0);
    let prof_busy_ns = AtomicU64::new(0);
    let prof_claimed = AtomicU64::new(0);
    let prof_stolen = AtomicU64::new(0);
    let mark_t0 = opts.prof.map(|_| Instant::now());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|thread_idx| {
                let (chunks, cursor, totals) = (&chunks, &cursor, &totals);
                let (prof_busy_ns, prof_claimed, prof_stolen) =
                    (&prof_busy_ns, &prof_claimed, &prof_stolen);
                let opts = *opts;
                scope.spawn(move || {
                    let thread_t0 = opts.prof.map(|_| Instant::now());
                    let mut writers: Vec<ShadowWriter<'_>> =
                        jobs.iter().map(|j| j.shadow.writer()).collect();
                    let mut locals: Vec<ParallelMarkStats> =
                        jobs.iter().map(|_| ParallelMarkStats::default()).collect();
                    let (mut busy_ns, mut claimed) = (0u64, 0u64);
                    loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&(owner, base, len, shared)) = chunks.get(k) else {
                            break;
                        };
                        let job = &jobs[owner];
                        let chunk_t0 = opts.prof.map(|_| Instant::now());
                        if shared && opts.shared_roots {
                            // Shared process roots: scan the owner's
                            // words into every arena's shadow. Only the
                            // owner's pass counts (words are read once
                            // per target map but *charged* once).
                            let mut scratch = ParallelMarkStats::default();
                            for (j, target) in jobs.iter().enumerate() {
                                let local = if j == owner {
                                    &mut locals[owner]
                                } else {
                                    &mut scratch
                                };
                                mark_chunk(
                                    job.space,
                                    target.space.layout(),
                                    tier,
                                    target.filter,
                                    None,
                                    target.forensics,
                                    base,
                                    len,
                                    &mut writers[j],
                                    local,
                                );
                            }
                        } else {
                            mark_chunk(
                                job.space,
                                job.space.layout(),
                                tier,
                                job.filter,
                                job.cache,
                                job.forensics,
                                base,
                                len,
                                &mut writers[owner],
                                &mut locals[owner],
                            );
                        }
                        if let (Some(p), Some(t0)) = (opts.prof, chunk_t0) {
                            let ns = t0.elapsed().as_nanos() as u64;
                            p.chunk_scan_ns.record(ns);
                            busy_ns += ns;
                            claimed += 1;
                        }
                    }
                    if let (Some(p), Some(t0)) = (opts.prof, thread_t0) {
                        for w in &mut writers {
                            p.fold_writer(&w.take_prof());
                        }
                        let wall = t0.elapsed().as_nanos() as u64;
                        p.helper_chunks.record(claimed);
                        p.helper_busy_pct.record(
                            (busy_ns * 100)
                                .checked_div(wall)
                                .map_or(100, |pct| pct.min(100)),
                        );
                        prof_busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
                        prof_claimed.fetch_add(claimed, Ordering::Relaxed);
                        p.chunks_claimed.add(claimed);
                        if thread_idx > 0 {
                            prof_stolen.fetch_add(claimed, Ordering::Relaxed);
                            p.chunks_stolen.add(claimed);
                        }
                    }
                    drop(writers);
                    for (local, total) in locals.iter().zip(totals) {
                        total.words.fetch_add(local.words, Ordering::Relaxed);
                        total.heap_words.fetch_add(local.heap_words, Ordering::Relaxed);
                        total
                            .filter_rejects
                            .fetch_add(local.filter_rejects, Ordering::Relaxed);
                        total
                            .pages_skipped
                            .fetch_add(local.pages_skipped, Ordering::Relaxed);
                        total
                            .pages_replayed
                            .fetch_add(local.pages_replayed, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("pool marker thread panicked");
        }
    });
    let per_job = totals
        .into_iter()
        .zip(owned_chunks)
        .map(|(t, chunks)| ParallelMarkStats {
            words: t.words.into_inner(),
            heap_words: t.heap_words.into_inner(),
            filter_rejects: t.filter_rejects.into_inner(),
            pages_skipped: t.pages_skipped.into_inner(),
            pages_replayed: t.pages_replayed.into_inner(),
            chunks,
            effective_helpers: helpers,
            prof: MarkProfile::default(),
        })
        .collect();
    PoolMarkResult {
        per_job,
        profile: MarkProfile {
            chunks_claimed: prof_claimed.into_inner(),
            chunks_stolen: prof_stolen.into_inner(),
            busy_ns: prof_busy_ns.into_inner(),
            wall_ns: mark_t0.map_or(0, |t0| t0.elapsed().as_nanos() as u64),
        },
    }
}

/// Clamps a requested helper-thread count to the hardware: at most
/// `available_parallelism() - 1` helpers (the main sweeper thread takes
/// one core). Returns 0 (serial) on single-core machines or when the
/// parallelism query fails.
pub fn effective_helper_count(requested: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    requested.min(cores.saturating_sub(1))
}

/// [`parallel_mark`] with the incremental-sweep accelerations: an optional
/// candidate `filter` gating shadow-map writes and an optional read-only
/// page `cache` whose digests are replayed (through the current filter)
/// for clean, fully-chunk-covered pages instead of re-reading them.
/// Convenience shape of [`parallel_mark_opts`] with auto tier and default
/// chunking; the returned [`ParallelMarkStats`] carries the atomically
/// aggregated per-thread counters (notably `filter_rejects`, which the
/// telemetry reconcile checks against the trace).
pub fn parallel_mark_accel(
    space: &AddrSpace,
    plan: &SweepPlan,
    layout: &Layout,
    helper_threads: usize,
    filter: Option<&CandidateFilter>,
    cache: Option<&PageCache>,
    forensics: Option<&EdgeRecorder>,
) -> (ShadowMap, ParallelMarkStats) {
    parallel_mark_opts(
        space,
        plan,
        layout,
        &ParallelMarkOpts { helper_threads, filter, cache, forensics, ..Default::default() },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shadow::NaiveShadowMap;
    use vmem::Protection;

    /// Maps `pages` heap pages and returns the base.
    fn heap(space: &mut AddrSpace, pages: u64) -> Addr {
        let a = space.reserve_heap(pages);
        space.map(a, pages).unwrap();
        a
    }

    #[test]
    fn plan_includes_committed_roots_only() {
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let stack = layout.segment_base(Segment::Stack);
        space.write_word(stack, 1).unwrap(); // commit one stack page
        let plan = SweepPlan::build(&space, &[]);
        assert_eq!(plan.ranges().len(), 1);
        assert_eq!(plan.ranges()[0], (stack, PAGE_SIZE as u64));
    }

    #[test]
    fn plan_coalesces_adjacent_root_pages() {
        let mut space = AddrSpace::new();
        let stack = space.layout().segment_base(Segment::Stack);
        space.write_word(stack, 1).unwrap();
        space.write_word(stack + PAGE_SIZE as u64, 1).unwrap();
        space.write_word(stack + 3 * PAGE_SIZE as u64, 1).unwrap();
        let plan = SweepPlan::build(&space, &[]);
        assert_eq!(
            plan.ranges(),
            &[
                (stack, 2 * PAGE_SIZE as u64),
                (stack + 3 * PAGE_SIZE as u64, PAGE_SIZE as u64)
            ]
        );
    }

    #[test]
    fn marker_finds_pointers_and_ignores_data() {
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let target = heap(&mut space, 1);
        let src = heap(&mut space, 1);
        space.write_word(src, target.raw()).unwrap(); // a real pointer
        space.write_word(src + 8, 42).unwrap(); // plain data
        let mut shadow = ShadowMap::new();
        let mut marker =
            Marker::new(SweepPlan::from_ranges(vec![(src, PAGE_SIZE as u64)]));
        marker.run_to_end(&mut space, &layout, &mut shadow);
        assert!(shadow.is_marked(target));
        assert_eq!(shadow.marked_count(), 1, "42 is not a heap pointer");
    }

    #[test]
    fn marker_respects_word_budget() {
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let src = heap(&mut space, 1);
        space.commit(vmem::PageRange::spanning(src, PAGE_SIZE as u64)).unwrap();
        let mut shadow = ShadowMap::new();
        let mut marker =
            Marker::new(SweepPlan::from_ranges(vec![(src, PAGE_SIZE as u64)]));
        let r = marker.step(&mut space, &layout, &mut shadow, 100);
        assert_eq!(r.words, 100);
        assert!(!r.finished);
        assert_eq!(marker.remaining_bytes(), PAGE_SIZE as u64 - 800);
        assert!(marker.has_passed(src + 792));
        assert!(!marker.has_passed(src + 800));
    }

    #[test]
    fn has_passed_uses_plan_order_not_address_order() {
        // Ranges deliberately out of address order: the cursor's notion of
        // "passed" must follow plan position, which the base-sorted index
        // has to map back to.
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let lo = heap(&mut space, 1);
        let hi = heap(&mut space, 1);
        space.commit(vmem::PageRange::spanning(lo, PAGE_SIZE as u64)).unwrap();
        space.commit(vmem::PageRange::spanning(hi, PAGE_SIZE as u64)).unwrap();
        // Plan visits `hi` first, then `lo`.
        let plan = SweepPlan::from_ranges(vec![
            (hi, PAGE_SIZE as u64),
            (lo, PAGE_SIZE as u64),
        ]);
        let mut shadow = ShadowMap::new();
        let mut marker = Marker::new(plan);
        assert!(!marker.has_passed(hi));
        assert!(!marker.has_passed(lo));
        assert!(!marker.has_passed(Addr::new(lo.raw() - 8)), "below every range");
        assert!(!marker.has_passed(hi + PAGE_SIZE as u64), "above every range");
        // Step through `hi` plus 10 words of `lo`.
        marker.step(&mut space, &layout, &mut shadow, 512 + 10);
        assert!(marker.has_passed(hi));
        assert!(marker.has_passed(hi + 8 * 511));
        assert!(marker.has_passed(lo + 72));
        assert!(!marker.has_passed(lo + 80));
        // Finish: everything in-plan is passed, out-of-plan never is.
        marker.step(&mut space, &layout, &mut shadow, u64::MAX);
        assert!(marker.has_passed(lo + (PAGE_SIZE as u64 - 8)));
        assert!(!marker.has_passed(hi + PAGE_SIZE as u64));
    }

    #[test]
    fn marker_skips_protected_pages() {
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let a = heap(&mut space, 2);
        space.commit(vmem::PageRange::spanning(a, 2 * PAGE_SIZE as u64)).unwrap();
        space
            .protect(vmem::PageRange::spanning(a, PAGE_SIZE as u64), Protection::None)
            .unwrap();
        space.write_word(a + PAGE_SIZE as u64, 7).unwrap();
        let mut shadow = ShadowMap::new();
        let mut marker =
            Marker::new(SweepPlan::from_ranges(vec![(a, 2 * PAGE_SIZE as u64)]));
        let words = marker.run_to_end(&mut space, &layout, &mut shadow);
        assert_eq!(words, 512, "only the unprotected page is read");
    }

    #[test]
    fn sweeping_madvise_purged_page_demand_commits() {
        // The §4.5 failure mode: a naive sweep re-inflates purged memory.
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let a = heap(&mut space, 1);
        space.write_word(a, 1).unwrap();
        space.decommit(vmem::PageRange::spanning(a, PAGE_SIZE as u64)).unwrap();
        assert_eq!(space.rss_bytes(), 0);
        let mut shadow = ShadowMap::new();
        let mut marker = Marker::new(SweepPlan::from_ranges(vec![(a, PAGE_SIZE as u64)]));
        marker.run_to_end(&mut space, &layout, &mut shadow);
        assert_eq!(space.rss_bytes(), PAGE_SIZE as u64, "sweep faulted the page back");
    }

    #[test]
    fn mark_page_rechecks_dirty_page() {
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let target = heap(&mut space, 1);
        let src = heap(&mut space, 1);
        space.write_word(src + 64, target.raw()).unwrap();
        let mut shadow = ShadowMap::new();
        let words = mark_page(&mut space, &layout, &mut shadow, src.page());
        assert_eq!(words, 512);
        assert!(shadow.is_marked(target));
    }

    /// Builds a pointer-dense multi-page fixture shared by the parallel
    /// equivalence tests: scattered real pointers plus junk words.
    fn scatter_fixture(space: &mut AddrSpace) -> (Vec<Addr>, SweepPlan) {
        let targets: Vec<Addr> = (0..8).map(|_| heap(space, 1)).collect();
        let src = heap(space, 4);
        for (i, t) in targets.iter().enumerate() {
            space.write_word(src + (i as u64 * 1000 + 8) * 8 % (4 * 4096), t.raw()).unwrap();
        }
        for i in 0..200u64 {
            space.write_word(src + (i * 37 % 2048) * 8, i).unwrap();
        }
        (targets, SweepPlan::from_ranges(vec![(src, 4 * PAGE_SIZE as u64)]))
    }

    #[test]
    fn parallel_mark_agrees_with_serial() {
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let (targets, plan) = scatter_fixture(&mut space);

        let mut serial = ShadowMap::new();
        let mut marker = Marker::new(plan.clone());
        marker.run_to_end(&mut space, &layout, &mut serial);

        // The seed's naive map, driven by the same plan via direct page
        // reads, is the oracle both implementations must agree with.
        let mut naive = NaiveShadowMap::new();
        for &(base, len) in plan.ranges() {
            for w in 0..len / 8 {
                if let Ok(Some(page)) = space.scan_page(base.add_bytes(w * 8).page()) {
                    let value = page[base.add_bytes(w * 8).word_in_page()];
                    if layout.heap_contains(Addr::new(value)) {
                        naive.mark(Addr::new(value));
                    }
                }
            }
        }
        assert_eq!(serial.marked_count(), naive.marked_count());

        for threads in [0, 1, 3, 6] {
            let parallel = parallel_mark(&space, &plan, &layout, threads);
            assert_eq!(
                parallel.marked_count(),
                serial.marked_count(),
                "helper_threads={threads}"
            );
            for t in &targets {
                assert_eq!(parallel.is_marked(*t), serial.is_marked(*t));
                assert_eq!(naive.is_marked(*t), serial.is_marked(*t));
            }
        }
    }

    #[test]
    fn parallel_mark_shared_map_matches_serial_mark_set_exactly() {
        // Stronger than spot-checking targets: every word of the shared
        // map's mark set must equal the serial set — union-freedom must
        // not lose or invent marks under contention. Pointers repeat
        // across thread shares so distinct threads race on the same bits.
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let targets: Vec<Addr> = (0..8).map(|_| heap(&mut space, 1)).collect();
        let src = heap(&mut space, 8);
        for w in 0..(8 * 512u64) {
            // Every 3rd word points at a target cycled by word index, so
            // each target recurs in every thread's share.
            if w % 3 == 0 {
                let t = targets[(w as usize / 3) % targets.len()];
                space.write_word(src + w * 8, t.raw() + (w % 64)).unwrap();
            }
        }
        let plan = SweepPlan::from_ranges(vec![(src, 8 * PAGE_SIZE as u64)]);
        let mut serial = ShadowMap::new();
        Marker::new(plan.clone()).run_to_end(&mut space, &layout, &mut serial);
        for threads in [0, 1, 3, 6] {
            let parallel = parallel_mark(&space, &plan, &layout, threads);
            assert_eq!(parallel.marked_count(), serial.marked_count());
            for t in &targets {
                for off in (0..64).step_by(16) {
                    assert_eq!(
                        parallel.is_marked(*t + off),
                        serial.is_marked(*t + off),
                        "granule {t:?}+{off} helpers={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_mark_skips_unbacked_pages_without_committing() {
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let a = heap(&mut space, 4); // never touched: unbacked
        let plan = SweepPlan::from_ranges(vec![(a, 4 * PAGE_SIZE as u64)]);
        let shadow = parallel_mark(&space, &plan, &layout, 3);
        assert!(shadow.is_empty());
        assert_eq!(space.rss_bytes(), 0, "peek-based marking must not commit");
    }

    /// Two-page heap fixture: page 0 holds pointers to `t0`/`t1`, page 1
    /// holds a pointer to `t1` only. Returns (src, t0, t1, plan).
    fn two_page_fixture(space: &mut AddrSpace) -> (Addr, Addr, Addr, SweepPlan) {
        let t0 = heap(space, 1);
        let t1 = heap(space, 1);
        let src = heap(space, 2);
        space.write_word(src + 16, t0.raw()).unwrap();
        space.write_word(src + 256, t1.raw()).unwrap();
        space.write_word(src + PAGE_SIZE as u64 + 8, t1.raw()).unwrap();
        (src, t0, t1, SweepPlan::from_ranges(vec![(src, 2 * PAGE_SIZE as u64)]))
    }

    #[test]
    fn cache_skip_replays_identical_marks() {
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let (src, t0, t1, plan) = two_page_fixture(&mut space);

        // Sweep 1: cold cache — every page scanned, digests recorded.
        let mut cache = PageCache::new();
        let dirty = space.snapshot_soft_dirty(vmem::PageRange::spanning(
            src,
            2 * PAGE_SIZE as u64,
        ));
        cache.begin_sweep(&plan, &dirty, 1);
        space.clear_soft_dirty();
        let mut full = ShadowMap::new();
        let r1 = Marker::new(plan.clone()).run_to_end_accel(
            &mut space,
            &layout,
            &mut full,
            &mut MarkAccel { cache: Some(&mut cache), ..MarkAccel::default() },
        );
        assert_eq!(r1.pages_skipped, 0, "cold cache skips nothing");
        assert_eq!(r1.words, 2 * 512);
        assert_eq!(r1.bytes, r1.words * 8 + r1.skipped_bytes);
        assert_eq!(cache.len(), 2);

        // Sweep 2: both pages clean — zero words read, same mark set.
        let dirty = space.snapshot_soft_dirty(vmem::PageRange::spanning(
            src,
            2 * PAGE_SIZE as u64,
        ));
        assert!(dirty.is_empty(), "nothing written since the clear");
        cache.begin_sweep(&plan, &dirty, 2);
        let mut inc = ShadowMap::new();
        let r2 = Marker::new(plan.clone()).run_to_end_accel(
            &mut space,
            &layout,
            &mut inc,
            &mut MarkAccel { cache: Some(&mut cache), ..MarkAccel::default() },
        );
        assert_eq!(r2.pages_skipped, 2);
        assert_eq!(r2.pages_replayed, 2, "both pages hold heap pointers");
        assert_eq!(r2.words, 0);
        assert_eq!(r2.skipped_bytes, 2 * PAGE_SIZE as u64);
        assert_eq!(r2.bytes, r2.words * 8 + r2.skipped_bytes);
        assert_eq!(inc.marked_count(), full.marked_count());
        assert!(inc.is_marked(t0) && inc.is_marked(t1));

        // Dirty one page: only it is re-read; marks still identical.
        space.write_word(src + 24, t0.raw()).unwrap();
        let dirty = space.snapshot_soft_dirty(vmem::PageRange::spanning(
            src,
            2 * PAGE_SIZE as u64,
        ));
        assert_eq!(dirty, vec![src.page()]);
        cache.begin_sweep(&plan, &dirty, 3);
        space.clear_soft_dirty();
        let mut inc2 = ShadowMap::new();
        let r3 = Marker::new(plan).run_to_end_accel(
            &mut space,
            &layout,
            &mut inc2,
            &mut MarkAccel { cache: Some(&mut cache), ..MarkAccel::default() },
        );
        assert_eq!(r3.pages_skipped, 1, "only the clean page skips");
        assert_eq!(r3.words, 512);
        assert_eq!(inc2.marked_count(), full.marked_count());
    }

    #[test]
    fn digest_survives_budget_split_steps() {
        // A page scanned across several budget-limited steps must still
        // record one complete digest — and replay it next sweep.
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let (src, _, _, plan) = two_page_fixture(&mut space);
        let mut cache = PageCache::new();
        cache.begin_sweep(&plan, &[], 1);
        space.clear_soft_dirty();
        let mut full = ShadowMap::new();
        let mut marker = Marker::new(plan.clone());
        let mut accel = MarkAccel { cache: Some(&mut cache), ..MarkAccel::default() };
        loop {
            if marker.step_accel(&mut space, &layout, &mut full, 100, &mut accel).finished {
                break;
            }
        }
        assert_eq!(cache.len(), 2, "split scans still publish digests");

        let dirty = space.snapshot_soft_dirty(vmem::PageRange::spanning(
            src,
            2 * PAGE_SIZE as u64,
        ));
        cache.begin_sweep(&plan, &dirty, 2);
        let mut inc = ShadowMap::new();
        let r = Marker::new(plan).run_to_end_accel(
            &mut space,
            &layout,
            &mut inc,
            &mut MarkAccel { cache: Some(&mut cache), ..MarkAccel::default() },
        );
        assert_eq!(r.pages_skipped, 2);
        assert_eq!(inc.marked_count(), full.marked_count());
    }

    #[test]
    fn filter_preserves_candidate_marks_and_rejects_the_rest() {
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let (_, t0, t1, plan) = two_page_fixture(&mut space);

        // Only t1's page is a quarantine candidate.
        let filter = CandidateFilter::build([(t1, 64)]);
        let mut shadow = ShadowMap::new();
        let r = Marker::new(plan).run_to_end_accel(
            &mut space,
            &layout,
            &mut shadow,
            &mut MarkAccel { filter: Some(&filter), ..MarkAccel::default() },
        );
        assert!(shadow.is_marked(t1), "candidate marks preserved");
        assert!(!shadow.is_marked(t0), "non-candidate marks suppressed");
        assert_eq!(r.filter_rejects, 1, "one pointer to t0");
    }

    #[test]
    fn replay_applies_the_current_sweeps_filter() {
        // Digests are pre-filter: a page cached under one candidate set
        // must replay correctly under a different one.
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let (src, t0, t1, plan) = two_page_fixture(&mut space);
        let mut cache = PageCache::new();
        cache.begin_sweep(&plan, &[], 1);
        space.clear_soft_dirty();
        let f1 = CandidateFilter::build([(t1, 64)]);
        let mut s1 = ShadowMap::new();
        Marker::new(plan.clone()).run_to_end_accel(
            &mut space,
            &layout,
            &mut s1,
            &mut MarkAccel {
                filter: Some(&f1),
                cache: Some(&mut cache),
                qgen: 1,
                ..MarkAccel::default()
            },
        );
        assert!(!s1.is_marked(t0));

        // Next sweep: candidate set flips to t0. Clean pages replay, and
        // the replayed marks obey the *new* filter.
        let dirty = space.snapshot_soft_dirty(vmem::PageRange::spanning(
            src,
            2 * PAGE_SIZE as u64,
        ));
        cache.begin_sweep(&plan, &dirty, 2);
        let f2 = CandidateFilter::build([(t0, 64)]);
        let mut s2 = ShadowMap::new();
        let r = Marker::new(plan).run_to_end_accel(
            &mut space,
            &layout,
            &mut s2,
            &mut MarkAccel {
                filter: Some(&f2),
                cache: Some(&mut cache),
                qgen: 2,
                ..MarkAccel::default()
            },
        );
        assert_eq!(r.pages_skipped, 2, "filter change does not dirty pages");
        assert!(s2.is_marked(t0), "replay marks the new candidate");
        assert!(!s2.is_marked(t1), "replay suppresses the old one");
        assert_eq!(r.filter_rejects, 2, "two pointers to t1 rejected");
    }

    #[test]
    fn protected_skips_count_as_skipped_bytes() {
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let a = heap(&mut space, 2);
        space.commit(vmem::PageRange::spanning(a, 2 * PAGE_SIZE as u64)).unwrap();
        space
            .protect(vmem::PageRange::spanning(a, PAGE_SIZE as u64), Protection::None)
            .unwrap();
        let mut shadow = ShadowMap::new();
        let mut marker =
            Marker::new(SweepPlan::from_ranges(vec![(a, 2 * PAGE_SIZE as u64)]));
        let r = marker.run_to_end_accel(
            &mut space,
            &layout,
            &mut shadow,
            &mut MarkAccel::default(),
        );
        assert_eq!(r.words, 512);
        assert_eq!(r.skipped_bytes, PAGE_SIZE as u64);
        assert_eq!(r.bytes, 2 * PAGE_SIZE as u64);
        assert_eq!(r.bytes, r.words * 8 + r.skipped_bytes);
        assert_eq!(r.pages_skipped, 0, "protected skip is not a cache skip");
    }

    #[test]
    fn effective_helpers_clamp_to_hardware() {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(effective_helper_count(0), 0);
        assert_eq!(effective_helper_count(usize::MAX), cores - 1);
        assert!(effective_helper_count(3) <= 3);
    }

    #[test]
    fn parallel_mark_accel_agrees_with_serial_accel() {
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let (targets, plan) = scatter_fixture(&mut space);
        let filter =
            CandidateFilter::build(targets.iter().map(|&t| (t, PAGE_SIZE as u64)));

        // Prime a cache serially, then run the parallel marker against it.
        let mut cache = PageCache::new();
        cache.begin_sweep(&plan, &[], 1);
        space.clear_soft_dirty();
        let mut serial = ShadowMap::new();
        Marker::new(plan.clone()).run_to_end_accel(
            &mut space,
            &layout,
            &mut serial,
            &mut MarkAccel {
                filter: Some(&filter),
                cache: Some(&mut cache),
                qgen: 1,
                ..MarkAccel::default()
            },
        );
        let dirty = space.snapshot_soft_dirty(vmem::PageRange::spanning(
            plan.ranges()[0].0,
            plan.total_bytes(),
        ));
        cache.begin_sweep(&plan, &dirty, 2);
        for threads in [0, 1, 3] {
            let (parallel, _) = parallel_mark_accel(
                &space,
                &plan,
                &layout,
                threads,
                Some(&filter),
                Some(&cache),
                None,
            );
            assert_eq!(parallel.marked_count(), serial.marked_count());
            for t in &targets {
                assert_eq!(parallel.is_marked(*t), serial.is_marked(*t));
            }
        }
    }

    #[test]
    fn forensics_recording_does_not_change_marks_or_accounting() {
        // Differential guarantee behind the forensics knob: an attached
        // recorder observes the sweep, it never alters it. Same plan,
        // with and without a recorder — shadow maps and every StepResult
        // field except pin_edges must be bit-identical.
        use crate::config::ForensicsMode;
        use crate::quarantine::QEntry;
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let (targets, plan) = scatter_fixture(&mut space);
        let entries: Vec<QEntry> = targets
            .iter()
            .map(|&t| QEntry {
                base: t,
                usable: 64,
                unmapped_pages: 0,
                failed: false,
                site: 0,
            })
            .collect();

        let mut plain = ShadowMap::new();
        let r_plain = Marker::new(plan.clone()).run_to_end_accel(
            &mut space,
            &layout,
            &mut plain,
            &mut MarkAccel::default(),
        );

        let rec = EdgeRecorder::new(&entries, ForensicsMode::Full).unwrap();
        let mut forensic = ShadowMap::new();
        let r_forensic = Marker::new(plan.clone()).run_to_end_accel(
            &mut space,
            &layout,
            &mut forensic,
            &mut MarkAccel { forensics: Some(&rec), ..MarkAccel::default() },
        );

        assert_eq!(forensic.marked_count(), plain.marked_count());
        for t in &targets {
            assert_eq!(forensic.is_marked(*t), plain.is_marked(*t));
        }
        assert_eq!(r_plain.pin_edges, 0, "no recorder, no edges");
        assert!(r_forensic.pin_edges > 0, "pointers into candidates recorded");
        assert_eq!(r_forensic.pin_edges, rec.recorded());
        assert_eq!(
            StepResult { pin_edges: 0, ..r_forensic },
            r_plain,
            "recording changes nothing but the edge count"
        );

        // The parallel marker shares the same recorder semantics.
        let rec_par = EdgeRecorder::new(&entries, ForensicsMode::Full).unwrap();
        let (parallel, _) =
            parallel_mark_accel(&space, &plan, &layout, 3, None, None, Some(&rec_par));
        assert_eq!(parallel.marked_count(), plain.marked_count());
        assert_eq!(rec_par.recorded(), rec.recorded());
    }

    #[test]
    fn parallel_stats_match_serial_step_result() {
        // The work-stealing totals must agree with the serial cursor's
        // accounting word for word: same filter_rejects, heap_words and
        // scanned words — that is what lets the layer's reconcile treat
        // the two paths interchangeably.
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let (targets, plan) = scatter_fixture(&mut space);
        let filter =
            CandidateFilter::build(targets.iter().take(3).map(|&t| (t, PAGE_SIZE as u64)));
        let mut serial = ShadowMap::new();
        let r = Marker::new(plan.clone()).run_to_end_accel(
            &mut space,
            &layout,
            &mut serial,
            &mut MarkAccel { filter: Some(&filter), ..MarkAccel::default() },
        );
        assert!(r.filter_rejects > 0 && r.heap_words > r.filter_rejects);
        for helpers in [0, 2, 5] {
            let (map, stats) = parallel_mark_accel(
                &space,
                &plan,
                &layout,
                helpers,
                Some(&filter),
                None,
                None,
            );
            assert_eq!(map.marked_count(), serial.marked_count());
            assert_eq!(stats.filter_rejects, r.filter_rejects, "helpers={helpers}");
            assert_eq!(stats.heap_words, r.heap_words);
            assert_eq!(stats.words, r.words);
            assert_eq!(stats.effective_helpers, effective_helper_count(helpers));
        }
    }

    #[test]
    fn work_stealing_is_deterministic_across_chunking() {
        // Chunk size changes claim granularity and order; helper count
        // changes interleaving. Neither may change the mark set or the
        // aggregated counters. An unaligned range start exercises the
        // mid-page chunk head.
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let (targets, plan) = scatter_fixture(&mut space);
        let (base, len) = plan.ranges()[0];
        let ragged =
            SweepPlan::from_ranges(vec![(base.add_bytes(24), len - 24 - 64), (base, 24)]);
        let filter =
            CandidateFilter::build(targets.iter().map(|&t| (t, PAGE_SIZE as u64)));
        let reference = parallel_mark_opts(
            &space,
            &ragged,
            &layout,
            &ParallelMarkOpts { filter: Some(&filter), ..Default::default() },
        );
        for chunk_pages in [1, 2, 64, 1 << 20] {
            for helpers in [0, 1, 3, 7] {
                let (map, stats) = parallel_mark_opts(
                    &space,
                    &ragged,
                    &layout,
                    &ParallelMarkOpts {
                        helper_threads: helpers,
                        filter: Some(&filter),
                        chunk_pages: Some(chunk_pages),
                        ..Default::default()
                    },
                );
                assert_eq!(
                    map.marked_count(),
                    reference.0.marked_count(),
                    "chunk_pages={chunk_pages} helpers={helpers}"
                );
                for t in &targets {
                    assert_eq!(map.is_marked(*t), reference.0.is_marked(*t));
                }
                assert_eq!(stats.words, reference.1.words);
                assert_eq!(stats.heap_words, reference.1.heap_words);
                assert_eq!(stats.filter_rejects, reference.1.filter_rejects);
            }
        }
    }

    #[test]
    fn profiler_attributes_without_changing_marks() {
        use crate::telem::{SweepProf, SWEEP_SUBSYSTEM};
        use telemetry::Registry;

        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let (targets, plan) = scatter_fixture(&mut space);

        // Profiler off: the MarkProfile stays all-zero, so whole-struct
        // stats comparisons (the determinism tests) remain exact.
        let (plain, base) = parallel_mark_opts(
            &space,
            &plan,
            &layout,
            &ParallelMarkOpts::default(),
        );
        assert_eq!(base.prof, MarkProfile::default(), "off-mode profile must stay zero");

        // Profiler on: same marks and deterministic counters, plus
        // attribution in both the returned profile and the registry.
        let reg = Registry::new();
        let prof = SweepProf::register(&reg);
        let (profiled, stats) = parallel_mark_opts(
            &space,
            &plan,
            &layout,
            &ParallelMarkOpts { helper_threads: 2, prof: Some(&prof), ..Default::default() },
        );
        assert_eq!(profiled.marked_count(), plain.marked_count());
        assert_eq!(stats.words, base.words);
        assert_eq!(stats.heap_words, base.heap_words);
        assert_eq!(stats.prof.chunks_claimed, stats.chunks, "every chunk claimed once");
        assert!(stats.prof.chunks_stolen <= stats.prof.chunks_claimed);
        assert!(stats.prof.wall_ns > 0 && stats.prof.busy_ns > 0);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter(SWEEP_SUBSYSTEM, "chunks_claimed"),
            Some(stats.chunks),
            "registry cells mirror the returned profile"
        );
        let per_chunk = snap.histogram(SWEEP_SUBSYSTEM, "chunk_scan_ns").unwrap();
        assert_eq!(per_chunk.count(), stats.chunks);
        let busy = snap.histogram(SWEEP_SUBSYSTEM, "helper_busy_pct").unwrap();
        assert_eq!(busy.count(), stats.effective_helpers as u64 + 1, "one sample per thread");
        assert!(
            snap.counter(SWEEP_SUBSYSTEM, "wc_direct").unwrap_or(0)
                + snap.counter(SWEEP_SUBSYSTEM, "wc_window_bits").unwrap_or(0)
                >= profiled.marked_count(),
            "every mark left the writer via the direct or window path"
        );

        // Serial cursor: step timing lands in step_scan_ns and the writer
        // counters fold on the same cells.
        let reg2 = Registry::new();
        let prof2 = SweepProf::register(&reg2);
        let mut shadow = ShadowMap::new();
        Marker::new(plan.clone()).run_to_end_accel(
            &mut space,
            &layout,
            &mut shadow,
            &mut MarkAccel { prof: Some(&prof2), ..MarkAccel::default() },
        );
        assert_eq!(shadow.marked_count(), plain.marked_count());
        let snap2 = reg2.snapshot();
        assert!(snap2.histogram(SWEEP_SUBSYSTEM, "step_scan_ns").unwrap().count() >= 1);
        assert!(
            snap2.counter(SWEEP_SUBSYSTEM, "wc_direct").unwrap_or(0)
                + snap2.counter(SWEEP_SUBSYSTEM, "wc_window_bits").unwrap_or(0)
                >= shadow.marked_count()
        );
        let _ = targets;
    }

    #[test]
    fn every_tier_produces_identical_step_results() {
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let (targets, plan) = scatter_fixture(&mut space);
        let filter =
            CandidateFilter::build(targets.iter().take(2).map(|&t| (t, PAGE_SIZE as u64)));
        let mut results = Vec::new();
        for &tier in crate::simd::available_tiers() {
            let mut shadow = ShadowMap::new();
            let r = Marker::new(plan.clone()).run_to_end_accel(
                &mut space,
                &layout,
                &mut shadow,
                &mut MarkAccel {
                    filter: Some(&filter),
                    tier: Some(tier),
                    ..MarkAccel::default()
                },
            );
            results.push((tier, r, shadow.marked_count()));
        }
        let (_, r0, m0) = results[0];
        for &(tier, r, m) in &results[1..] {
            assert_eq!(r, r0, "{tier:?} StepResult diverged");
            assert_eq!(m, m0, "{tier:?} mark set diverged");
        }
    }

    #[test]
    fn false_pointer_is_conservatively_marked() {
        // Figure 4's purple case: integer data that equals an allocation
        // address prevents deallocation.
        let mut space = AddrSpace::new();
        let layout = *space.layout();
        let victim = heap(&mut space, 1);
        let src = heap(&mut space, 1);
        space.write_word(src, victim.raw()).unwrap(); // "just an integer"
        let mut shadow = ShadowMap::new();
        let mut marker = Marker::new(SweepPlan::from_ranges(vec![(src, PAGE_SIZE as u64)]));
        marker.run_to_end(&mut space, &layout, &mut shadow);
        assert!(shadow.range_marked(victim, 64), "false pointers retain allocations");
    }
}
