//! The quarantine: freed allocations waiting to be proven pointer-free.
//!
//! Frees are first batched in a thread-local buffer (contribution (c):
//! "thread-local quarantine buffers to reduce lock contention"), then
//! flushed to the global quarantine list. A shadow set of quarantined bases
//! de-duplicates double frees, making `free()` idempotent while a dangling
//! pointer exists (§3).

use std::collections::HashSet;

use vmem::{Addr, PAGE_SIZE};

use crate::arena::ArenaId;

/// A quarantined allocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QEntry {
    /// Base address of the allocation.
    pub base: Addr,
    /// Usable size in bytes (size-class or page-rounded; includes the +1
    /// `end()` padding, so past-the-end pointers are covered by the
    /// shadow-map check).
    pub usable: u64,
    /// Interior pages decommitted + protected at quarantine time (§4.2).
    pub unmapped_pages: u64,
    /// Whether the entry has already failed at least one sweep.
    pub failed: bool,
    /// Allocation-site id the workload attached to this allocation
    /// (0 when unknown). Forensics aggregates pinned bytes per site.
    pub site: u32,
}

impl QEntry {
    /// Creates an entry for an allocation with no unmapped pages.
    pub fn new(base: Addr, usable: u64) -> Self {
        QEntry { base, usable, unmapped_pages: 0, failed: false, site: 0 }
    }

    /// Bytes of this entry that sweeps must still examine (everything not
    /// unmapped).
    pub fn swept_bytes(&self) -> u64 {
        self.usable - self.unmapped_bytes()
    }

    /// Bytes released from physical memory by unmapping.
    pub fn unmapped_bytes(&self) -> u64 {
        self.unmapped_pages * PAGE_SIZE as u64
    }
}

/// Result of a quarantine insertion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InsertResult {
    /// The entry was accepted; `flushed` reports whether the thread-local
    /// buffer spilled to the global list (a lock acquisition in the real
    /// implementation — the cost model charges for it).
    Inserted { flushed: bool },
    /// The base address is already quarantined: a double free, absorbed
    /// idempotently.
    DoubleFree,
}

/// The quarantine data structure.
///
/// # Example
///
/// ```
/// use minesweeper::{Quarantine, QEntry};
/// use vmem::Addr;
///
/// let mut q = Quarantine::new(4);
/// let e = QEntry::new(Addr::new(0x1_0000_0000), 64);
/// q.insert(e);
/// assert_eq!(q.tracked_bytes(), 64);
/// assert!(q.contains(e.base));
/// ```
#[derive(Clone, Debug)]
pub struct Quarantine {
    tl_buffer: Vec<QEntry>,
    tl_capacity: usize,
    global: Vec<QEntry>,
    dedup: HashSet<u64>,
    tracked_bytes: u64,
    failed_bytes: u64,
    unmapped_bytes: u64,
    generation: u64,
    /// Arena shard this quarantine belongs to (root for single-tenant).
    arena: ArenaId,
}

impl Quarantine {
    /// Creates an empty quarantine with the given thread-local buffer
    /// capacity, owned by the root arena.
    pub fn new(tl_capacity: usize) -> Self {
        Self::for_arena(tl_capacity, ArenaId::ROOT)
    }

    /// Creates an empty quarantine shard for `arena`.
    pub fn for_arena(tl_capacity: usize, arena: ArenaId) -> Self {
        Quarantine {
            tl_buffer: Vec::with_capacity(tl_capacity.max(1)),
            tl_capacity: tl_capacity.max(1),
            global: Vec::new(),
            dedup: HashSet::new(),
            tracked_bytes: 0,
            failed_bytes: 0,
            unmapped_bytes: 0,
            generation: 0,
            arena,
        }
    }

    /// The arena this quarantine shard serves.
    pub fn arena(&self) -> ArenaId {
        self.arena
    }

    /// Inserts a freed allocation, de-duplicating double frees.
    pub fn insert(&mut self, entry: QEntry) -> InsertResult {
        if !self.dedup.insert(entry.base.raw()) {
            return InsertResult::DoubleFree;
        }
        self.generation += 1;
        self.tracked_bytes += entry.swept_bytes();
        self.unmapped_bytes += entry.unmapped_bytes();
        if entry.failed {
            self.failed_bytes += entry.swept_bytes();
        }
        self.tl_buffer.push(entry);
        let flushed = self.tl_buffer.len() >= self.tl_capacity;
        if flushed {
            self.global.append(&mut self.tl_buffer);
        }
        InsertResult::Inserted { flushed }
    }

    /// Locks in the current generation for a sweep: every entry quarantined
    /// so far (thread-local buffers included) is drained and returned.
    /// Entries quarantined after this call "can only be recycled by a
    /// future sweep" (§4.3). Aggregate accounting is untouched until
    /// [`Quarantine::on_released`] / [`Quarantine::on_failed`] decide each
    /// entry's fate.
    pub fn lock_generation(&mut self) -> Vec<QEntry> {
        let mut locked = std::mem::take(&mut self.global);
        locked.append(&mut self.tl_buffer);
        locked
    }

    /// Records that a locked-in entry was proven pointer-free and released
    /// to the allocator.
    pub fn on_released(&mut self, entry: &QEntry) {
        assert!(self.dedup.remove(&entry.base.raw()), "released entry must be tracked");
        self.generation += 1;
        self.tracked_bytes -= entry.swept_bytes();
        self.unmapped_bytes -= entry.unmapped_bytes();
        if entry.failed {
            self.failed_bytes -= entry.swept_bytes();
        }
    }

    /// Records that a locked-in entry failed its sweep (a dangling pointer
    /// was found): it rejoins the quarantine flagged as failed, so the
    /// trigger maths can subtract it "from both sides" (§3.2).
    pub fn on_failed(&mut self, mut entry: QEntry) {
        debug_assert!(self.dedup.contains(&entry.base.raw()));
        if !entry.failed {
            entry.failed = true;
            self.failed_bytes += entry.swept_bytes();
        }
        self.global.push(entry);
    }

    /// Whether `base` is currently quarantined (including locked-in
    /// entries mid-sweep).
    pub fn contains(&self, base: Addr) -> bool {
        self.dedup.contains(&base.raw())
    }

    /// Monotonic membership generation: bumped every time an allocation
    /// enters ([`Quarantine::insert`]) or leaves
    /// ([`Quarantine::on_released`]) the quarantine. Sweep-side caches
    /// epoch-tag their entries with this value so "has the candidate set
    /// changed?" is a single integer compare — O(1) invalidation, never a
    /// scan. (A failed entry rejoining via [`Quarantine::on_failed`] is
    /// not a membership change.)
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total swept (non-unmapped) bytes in quarantine.
    pub fn tracked_bytes(&self) -> u64 {
        self.tracked_bytes
    }

    /// Swept bytes belonging to entries that already failed a sweep.
    pub fn failed_bytes(&self) -> u64 {
        self.failed_bytes
    }

    /// Bytes of quarantined allocations whose pages were unmapped; these
    /// do "not count towards standard memory usage or quarantine-size sweep
    /// thresholds" (§4.2) but feed the 9× unmapped trigger.
    pub fn unmapped_bytes(&self) -> u64 {
        self.unmapped_bytes
    }

    /// Number of quarantined allocations (including locked-in entries).
    pub fn len(&self) -> usize {
        self.dedup.len()
    }

    /// Whether the quarantine is empty.
    pub fn is_empty(&self) -> bool {
        self.dedup.is_empty()
    }

    /// Entries awaiting the *next* sweep (not locked in), for tests and
    /// introspection.
    pub fn pending(&self) -> impl Iterator<Item = &QEntry> {
        self.global.iter().chain(self.tl_buffer.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(base: u64, usable: u64) -> QEntry {
        QEntry::new(Addr::new(base), usable)
    }

    #[test]
    fn insert_tracks_bytes() {
        let mut q = Quarantine::new(8);
        q.insert(entry(0x1000, 64));
        q.insert(entry(0x2000, 128));
        assert_eq!(q.tracked_bytes(), 192);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn double_free_is_deduplicated() {
        let mut q = Quarantine::new(8);
        assert_eq!(q.insert(entry(0x1000, 64)), InsertResult::Inserted { flushed: false });
        assert_eq!(q.insert(entry(0x1000, 64)), InsertResult::DoubleFree);
        assert_eq!(q.tracked_bytes(), 64, "duplicate adds nothing");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn tl_buffer_flushes_at_capacity() {
        let mut q = Quarantine::new(3);
        assert_eq!(q.insert(entry(0x1000, 16)), InsertResult::Inserted { flushed: false });
        assert_eq!(q.insert(entry(0x2000, 16)), InsertResult::Inserted { flushed: false });
        assert_eq!(q.insert(entry(0x3000, 16)), InsertResult::Inserted { flushed: true });
        assert_eq!(q.insert(entry(0x4000, 16)), InsertResult::Inserted { flushed: false });
    }

    #[test]
    fn lock_generation_drains_everything_once() {
        let mut q = Quarantine::new(2);
        q.insert(entry(0x1000, 16));
        q.insert(entry(0x2000, 16)); // flushes
        q.insert(entry(0x3000, 16)); // stays in tl buffer
        let locked = q.lock_generation();
        assert_eq!(locked.len(), 3);
        assert!(q.lock_generation().is_empty(), "second lock-in is empty");
        assert_eq!(q.len(), 3, "locked entries still counted until resolved");
    }

    #[test]
    fn released_entries_leave_completely() {
        let mut q = Quarantine::new(8);
        let e = entry(0x1000, 64);
        q.insert(e);
        let locked = q.lock_generation();
        q.on_released(&locked[0]);
        assert_eq!(q.tracked_bytes(), 0);
        assert!(!q.contains(e.base));
        // The base can be quarantined again after reallocation + refree.
        assert_eq!(q.insert(e), InsertResult::Inserted { flushed: false });
    }

    #[test]
    fn failed_entries_rejoin_flagged() {
        let mut q = Quarantine::new(8);
        q.insert(entry(0x1000, 64));
        let locked = q.lock_generation();
        q.on_failed(locked[0]);
        assert_eq!(q.failed_bytes(), 64);
        assert_eq!(q.tracked_bytes(), 64);
        assert!(q.contains(Addr::new(0x1000)));
        // Failing again must not double-count.
        let locked = q.lock_generation();
        assert!(locked[0].failed);
        q.on_failed(locked[0]);
        assert_eq!(q.failed_bytes(), 64);
    }

    #[test]
    fn failed_then_released_restores_balance() {
        let mut q = Quarantine::new(8);
        q.insert(entry(0x1000, 64));
        let locked = q.lock_generation();
        q.on_failed(locked[0]);
        let locked = q.lock_generation();
        q.on_released(&locked[0]);
        assert_eq!(q.tracked_bytes(), 0);
        assert_eq!(q.failed_bytes(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn unmapped_bytes_are_separated_from_tracked() {
        let mut q = Quarantine::new(8);
        let e = QEntry {
            base: Addr::new(0x10000),
            usable: 10 * PAGE_SIZE as u64,
            unmapped_pages: 9,
            failed: false,
            site: 0,
        };
        q.insert(e);
        assert_eq!(q.tracked_bytes(), PAGE_SIZE as u64);
        assert_eq!(q.unmapped_bytes(), 9 * PAGE_SIZE as u64);
        let locked = q.lock_generation();
        q.on_released(&locked[0]);
        assert_eq!(q.unmapped_bytes(), 0);
    }

    #[test]
    fn generation_tracks_membership_changes_only() {
        let mut q = Quarantine::new(8);
        let g0 = q.generation();
        q.insert(entry(0x1000, 16));
        assert_eq!(q.generation(), g0 + 1);
        q.insert(entry(0x1000, 16)); // double free: no membership change
        assert_eq!(q.generation(), g0 + 1);
        let locked = q.lock_generation();
        assert_eq!(q.generation(), g0 + 1, "locking is not a membership change");
        q.on_failed(locked[0]);
        assert_eq!(q.generation(), g0 + 1, "failed entries stay members");
        let locked = q.lock_generation();
        q.on_released(&locked[0]);
        assert_eq!(q.generation(), g0 + 2);
    }

    #[test]
    fn pending_excludes_locked_entries() {
        let mut q = Quarantine::new(8);
        q.insert(entry(0x1000, 16));
        q.lock_generation();
        q.insert(entry(0x2000, 16));
        let pending: Vec<Addr> = q.pending().map(|e| e.base).collect();
        assert_eq!(pending, vec![Addr::new(0x2000)]);
    }
}
