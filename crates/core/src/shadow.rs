//! The shadow map: one mark bit per 16-byte granule of virtual memory.
//!
//! "The shadow map marks the targets of pointers, and is consulted for each
//! quarantined allocation, to see if pointers have been discovered to it"
//! (§3.2). One bit per 128 bits of memory is the smallest allocation
//! granule, so every allocation maps to a distinct bit range. The paper
//! implements it as a flat reservation; the simulation uses a sparse
//! two-level radix bitmap with identical indexing semantics (the flat
//! space would be 2⁶⁰ bits here), keeping the <1 % space overhead
//! property.
//!
//! # Layout
//!
//! A granule index (`addr >> 4`) is decomposed into three digits:
//!
//! ```text
//!  granule = [ l1 : 12 bits ][ l2 : 15 bits ][ bit-in-chunk : 15 bits ]
//! ```
//!
//! * the low 15 bits select one of 32 Ki bits inside a **chunk** — 512
//!   `AtomicU64` words, a 4 KiB bitmap page shadowing 512 KiB of address
//!   space (the same 1/128 ratio as the paper's flat map);
//! * the middle 15 bits index a **level-2 table** of 32 Ki chunk
//!   pointers;
//! * the high 12 bits index the root **level-1 directory** of 4 Ki
//!   level-2 pointers.
//!
//! Together they cover 2⁴² granules = 64 TiB of virtual address space
//! ([`MAX_SHADOWED`]), comfortably above the [`vmem::Layout`] reservation.
//!
//! # Concurrency
//!
//! All mutation goes through `&self` with atomics, so one `ShadowMap` can
//! be shared by every marking thread (§4.4: parallel markers write into a
//! single map — mark bits are only ever *set* during a sweep, so there is
//! no lost-update hazard and no per-thread maps or merge barrier):
//!
//! * tables and chunks are lazily allocated and **published by
//!   compare-and-swap** (`AcqRel`/`Acquire`, so a reader that observes a
//!   pointer also observes the zeroed contents); a loser of the race
//!   frees its allocation and adopts the winner's;
//! * bits are set with a *load-first* `Relaxed` `fetch_or` — during
//!   marking most pointer-dense pages repeat targets, so the common case
//!   is a plain load that finds the bit already set and skips the RMW;
//! * the global mark counter is a `Relaxed` `AtomicU64` bumped only by
//!   the thread whose `fetch_or` actually flipped the bit, which keeps
//!   [`ShadowMap::marked_count`] exact under contention.
//!
//! Reads during a sweep are `Relaxed`: the release walk only begins after
//! the marking threads have been joined, which is already a stronger
//! synchronisation point than any fence the map could provide.
//!
//! [`ShadowWriter`] caches the last-touched chunk so the hot marking loop
//! (consecutive pointers overwhelmingly land in the same 512 KiB window)
//! skips the radix walk entirely.

use std::collections::HashMap;
use std::fmt;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use vmem::{Addr, GRANULE_SIZE};

/// `u64` words per chunk.
const CHUNK_WORDS: usize = 512;

/// Granules covered by one chunk: 512 words × 64 bits = 32 Ki granules,
/// i.e. one 4 KiB bitmap chunk shadows 512 KiB of address space.
const CHUNK_GRANULES: u64 = (CHUNK_WORDS * 64) as u64;

/// Bitmap words per [`ShadowWriter`] write-combining line: 8 words = one
/// 64-byte cache line of bitmap = 512 granules = 8 KiB of address space.
/// Wide enough that a monotone mark walk (the sweep's common shape)
/// flushes once per 8 KiB instead of once per 1 KiB.
const LINE_WORDS: usize = 8;

/// log2 of [`CHUNK_GRANULES`].
const CHUNK_SHIFT: u32 = CHUNK_GRANULES.trailing_zeros();

/// Entries in the [`ShadowWriter`]'s direct-mapped chunk cache: 32
/// chunk pointers cover 16 MiB of address space, so a sweep whose
/// pointer targets scatter across a bounded heap resolves its chunk
/// without the radix walk on essentially every mark.
const CHUNK_CACHE: usize = 32;

/// Chunk pointers per level-2 table.
const L2_ENTRIES: usize = 1 << 15;

/// log2 of [`L2_ENTRIES`].
const L2_SHIFT: u32 = L2_ENTRIES.trailing_zeros();

/// Level-2 pointers in the root directory.
const L1_ENTRIES: usize = 1 << 12;

/// One past the highest address the radix covers (64 TiB).
pub const MAX_SHADOWED: u64 =
    (L1_ENTRIES as u64) << (L2_SHIFT + CHUNK_SHIFT) << GRANULE_SIZE.trailing_zeros();

/// One 4 KiB bitmap leaf.
struct Chunk {
    words: [AtomicU64; CHUNK_WORDS],
}

impl Chunk {
    fn new_boxed() -> Box<Chunk> {
        Box::new(Chunk { words: std::array::from_fn(|_| AtomicU64::new(0)) })
    }
}

/// A level-2 table: 32 Ki lazily-published chunk pointers (256 KiB).
struct Level2 {
    chunks: Box<[AtomicPtr<Chunk>]>,
}

impl Level2 {
    fn new_boxed() -> Box<Level2> {
        // Built through a Vec: a 256 KiB array temporary must not cross
        // the stack.
        let chunks: Vec<AtomicPtr<Chunk>> =
            (0..L2_ENTRIES).map(|_| AtomicPtr::new(ptr::null_mut())).collect();
        Box::new(Level2 { chunks: chunks.into_boxed_slice() })
    }
}

impl Drop for Level2 {
    fn drop(&mut self) {
        for slot in self.chunks.iter_mut() {
            let p = *slot.get_mut();
            if !p.is_null() {
                // Published by a CAS from a Box we own; dropped exactly
                // once because `&mut self` is exclusive.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

/// A sparse two-level radix bitmap over granule indices, markable through
/// `&self` and [`Sync`] so parallel sweep threads share one map.
///
/// # Example
///
/// ```
/// use minesweeper::ShadowMap;
/// use vmem::Addr;
///
/// let shadow = ShadowMap::new();
/// shadow.mark(Addr::new(0x1_0000_0040)); // a pointer into some allocation
/// assert!(shadow.range_marked(Addr::new(0x1_0000_0040), 16));
/// assert!(!shadow.range_marked(Addr::new(0x1_0000_0100), 64));
/// ```
pub struct ShadowMap {
    l1: Box<[AtomicPtr<Level2>]>,
    marked: AtomicU64,
    /// Resident chunks, for O(1) [`ShadowMap::resident_bytes`].
    chunk_count: AtomicU64,
    /// Resident level-2 tables, for O(1) [`ShadowMap::directory_bytes`].
    l2_count: AtomicU64,
    /// Arena shard this map belongs to (root for single-tenant). Set at
    /// construction; [`ShadowMap::clear`] preserves it across epochs.
    arena: crate::arena::ArenaId,
}

impl Default for ShadowMap {
    fn default() -> Self {
        ShadowMap::new()
    }
}

impl ShadowMap {
    /// Creates an empty shadow map (one 32 KiB root directory; tables and
    /// chunks are allocated on first mark), owned by the root arena.
    pub fn new() -> Self {
        Self::for_arena(crate::arena::ArenaId::ROOT)
    }

    /// Creates an empty shadow-map shard for `arena`.
    pub fn for_arena(arena: crate::arena::ArenaId) -> Self {
        let l1: Vec<AtomicPtr<Level2>> =
            (0..L1_ENTRIES).map(|_| AtomicPtr::new(ptr::null_mut())).collect();
        ShadowMap {
            l1: l1.into_boxed_slice(),
            marked: AtomicU64::new(0),
            chunk_count: AtomicU64::new(0),
            l2_count: AtomicU64::new(0),
            arena,
        }
    }

    /// The arena this shadow-map shard serves.
    pub fn arena(&self) -> crate::arena::ArenaId {
        self.arena
    }

    /// Splits a chunk index into (level-1, level-2) digits.
    #[inline]
    fn split(chunk_idx: u64) -> (usize, usize) {
        ((chunk_idx >> L2_SHIFT) as usize, (chunk_idx & (L2_ENTRIES as u64 - 1)) as usize)
    }

    /// The chunk for `chunk_idx`, if it has ever been touched.
    #[inline]
    fn chunk(&self, chunk_idx: u64) -> Option<&Chunk> {
        let (i1, i2) = Self::split(chunk_idx);
        let l2 = self.l1.get(i1)?.load(Ordering::Acquire);
        if l2.is_null() {
            return None;
        }
        let c = unsafe { &*l2 }.chunks[i2].load(Ordering::Acquire);
        if c.is_null() {
            None
        } else {
            Some(unsafe { &*c })
        }
    }

    /// The chunk for `chunk_idx`, allocating and CAS-publishing the
    /// level-2 table and the chunk as needed.
    ///
    /// # Panics
    ///
    /// Panics if the chunk lies beyond [`MAX_SHADOWED`].
    fn chunk_or_insert(&self, chunk_idx: u64) -> &Chunk {
        let (i1, i2) = Self::split(chunk_idx);
        assert!(
            i1 < L1_ENTRIES,
            "address beyond the {} TiB shadowed span",
            MAX_SHADOWED >> 40
        );
        let slot = &self.l1[i1];
        let mut l2 = slot.load(Ordering::Acquire);
        if l2.is_null() {
            let fresh = Box::into_raw(Level2::new_boxed());
            match slot.compare_exchange(
                ptr::null_mut(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.l2_count.fetch_add(1, Ordering::Relaxed);
                    l2 = fresh;
                }
                Err(winner) => {
                    // Another thread published first; adopt its table.
                    drop(unsafe { Box::from_raw(fresh) });
                    l2 = winner;
                }
            }
        }
        let slot = &unsafe { &*l2 }.chunks[i2];
        let mut c = slot.load(Ordering::Acquire);
        if c.is_null() {
            let fresh = Box::into_raw(Chunk::new_boxed());
            match slot.compare_exchange(
                ptr::null_mut(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.chunk_count.fetch_add(1, Ordering::Relaxed);
                    c = fresh;
                }
                Err(winner) => {
                    drop(unsafe { Box::from_raw(fresh) });
                    c = winner;
                }
            }
        }
        unsafe { &*c }
    }

    /// Sets bit `bit` of `word`, bumping `counter` iff this call flipped
    /// it. The load-first fast path skips the RMW when the bit is already
    /// set — the common case on pointer-dense pages.
    #[inline]
    fn set_bit(counter: &AtomicU64, word: &AtomicU64, bit: u64) -> bool {
        let mask = 1u64 << bit;
        if word.load(Ordering::Relaxed) & mask != 0 {
            return false;
        }
        if word.fetch_or(mask, Ordering::Relaxed) & mask == 0 {
            counter.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Marks the granule containing `target` — the operation the marking
    /// phase performs for every word of memory that looks like a pointer.
    /// Returns whether this call newly set the bit (exact even when racing
    /// other markers; baselines use it to drive their worklists).
    #[inline]
    pub fn mark(&self, target: Addr) -> bool {
        let g = target.granule();
        let chunk = self.chunk_or_insert(g >> CHUNK_SHIFT);
        let bit = g & (CHUNK_GRANULES - 1);
        Self::set_bit(&self.marked, &chunk.words[(bit >> 6) as usize], bit & 63)
    }

    /// A cursor that caches the last-touched chunk and write-combines
    /// same-word marks for tight mark loops. Pending marks publish when
    /// the cursor changes words or the writer drops.
    pub fn writer(&self) -> ShadowWriter<'_> {
        ShadowWriter {
            map: self,
            cached_idx: u64::MAX,
            cached: None,
            line_idx: usize::MAX,
            snapshot: [0; LINE_WORDS],
            pending: [0; LINE_WORDS],
            last_chunk: u64::MAX,
            last_line: usize::MAX,
            dirty: false,
            chunk_tags: [u64::MAX; CHUNK_CACHE],
            chunk_refs: [None; CHUNK_CACHE],
            exclusive: false,
            deferred_newly: 0,
            prof: WriterProf::default(),
        }
    }

    /// An **exclusive** [`ShadowWriter`]: the `&mut` borrow statically
    /// proves no other writer or reader can touch the map while this
    /// cursor lives, so its flush publishes pending bits with a plain
    /// load + store instead of a locked `fetch_or`, and newly-set counts
    /// accumulate locally (one `fetch_add` at drop instead of one per
    /// flush). On the serial mark path the locked flush is the single
    /// largest per-survivor cost — roughly 20 cycles each time the sweep
    /// cursor leaves a 1 KiB address window — so the serial [`Marker`]
    /// and the stop-the-world re-mark run through this writer. The
    /// parallel helpers keep the shared [`ShadowMap::writer`].
    pub fn writer_mut(&mut self) -> ShadowWriter<'_> {
        ShadowWriter {
            map: self,
            cached_idx: u64::MAX,
            cached: None,
            line_idx: usize::MAX,
            snapshot: [0; LINE_WORDS],
            pending: [0; LINE_WORDS],
            last_chunk: u64::MAX,
            last_line: usize::MAX,
            dirty: false,
            chunk_tags: [u64::MAX; CHUNK_CACHE],
            chunk_refs: [None; CHUNK_CACHE],
            exclusive: true,
            deferred_newly: 0,
            prof: WriterProf::default(),
        }
    }

    /// Whether the granule containing `addr` is marked.
    #[inline]
    pub fn is_marked(&self, addr: Addr) -> bool {
        let g = addr.granule();
        self.chunk(g >> CHUNK_SHIFT).is_some_and(|chunk| {
            let bit = g & (CHUNK_GRANULES - 1);
            chunk.words[(bit >> 6) as usize].load(Ordering::Relaxed) & (1 << (bit & 63)) != 0
        })
    }

    /// Whether *any* granule overlapping `[base, base + len)` is marked —
    /// the release-phase test: a marked granule means a possible dangling
    /// pointer into the allocation, so it must stay quarantined. The paper
    /// checks "the full shadow-map range corresponding to the allocation"
    /// (§3.3 footnote), which includes interior pointers.
    ///
    /// Scans whole `u64` words with end masks rather than probing per
    /// granule, and skips absent chunks (512 KiB of address space) in one
    /// step.
    pub fn range_marked(&self, base: Addr, len: u64) -> bool {
        if len == 0 {
            return false;
        }
        let first = base.granule();
        let last = base.add_bytes(len - 1).granule();
        let mut g = first;
        while g <= last {
            let chunk_idx = g >> CHUNK_SHIFT;
            // Last granule this chunk covers (saturating: chunk_idx is
            // bounded by the 2⁶⁰ granule space, so no overflow).
            let chunk_last = ((chunk_idx + 1) << CHUNK_SHIFT) - 1;
            let hi = last.min(chunk_last);
            if let Some(chunk) = self.chunk(chunk_idx) {
                let lo_bit = g & (CHUNK_GRANULES - 1);
                let hi_bit = hi & (CHUNK_GRANULES - 1);
                let (w0, b0) = ((lo_bit >> 6) as usize, lo_bit & 63);
                let (w1, b1) = ((hi_bit >> 6) as usize, hi_bit & 63);
                let head = !0u64 << b0;
                let tail = !0u64 >> (63 - b1);
                if w0 == w1 {
                    if chunk.words[w0].load(Ordering::Relaxed) & head & tail != 0 {
                        return true;
                    }
                } else {
                    if chunk.words[w0].load(Ordering::Relaxed) & head != 0 {
                        return true;
                    }
                    if chunk.words[w0 + 1..w1]
                        .iter()
                        .any(|w| w.load(Ordering::Relaxed) != 0)
                    {
                        return true;
                    }
                    if chunk.words[w1].load(Ordering::Relaxed) & tail != 0 {
                        return true;
                    }
                }
            }
            g = chunk_last + 1;
        }
        false
    }

    /// Total granules marked (exact, even when marks raced).
    pub fn marked_count(&self) -> u64 {
        self.marked.load(Ordering::Relaxed)
    }

    /// Whether nothing is marked.
    pub fn is_empty(&self) -> bool {
        self.marked_count() == 0
    }

    /// Clears every mark bit **in place**, keeping chunks and tables
    /// resident so the next sweep reuses them instead of re-faulting the
    /// radix (the layer's per-epoch reset; `&mut self` guarantees no
    /// marker is concurrently writing).
    pub fn clear(&mut self) {
        self.for_each_chunk(|chunk| {
            for w in &chunk.words {
                w.store(0, Ordering::Relaxed);
            }
        });
        *self.marked.get_mut() = 0;
    }

    /// Unions another shadow map into this one (kept for merging maps
    /// built independently, e.g. per-phase maps; the parallel marking
    /// phase itself no longer needs it — §4.4 threads share one map).
    pub fn union(&self, other: &ShadowMap) {
        other.for_each_resident(|chunk_idx, other_chunk| {
            let chunk = self.chunk_or_insert(chunk_idx);
            for (w, ow) in chunk.words.iter().zip(&other_chunk.words) {
                let bits = ow.load(Ordering::Relaxed);
                if bits != 0 {
                    let newly = bits & !w.fetch_or(bits, Ordering::Relaxed);
                    if newly != 0 {
                        self.marked.fetch_add(newly.count_ones() as u64, Ordering::Relaxed);
                    }
                }
            }
        });
    }

    /// Resident size of the bitmap chunks in bytes (the paper's <1 %
    /// overhead figure; directory overhead is reported separately by
    /// [`ShadowMap::directory_bytes`]).
    pub fn resident_bytes(&self) -> u64 {
        self.chunk_count.load(Ordering::Relaxed) * (CHUNK_WORDS * 8) as u64
    }

    /// Resident size of the radix directory (root + level-2 tables).
    pub fn directory_bytes(&self) -> u64 {
        (L1_ENTRIES * 8) as u64
            + self.l2_count.load(Ordering::Relaxed) * (L2_ENTRIES * 8) as u64
    }

    /// Visits every resident chunk with its chunk index.
    fn for_each_resident(&self, mut f: impl FnMut(u64, &Chunk)) {
        for (i1, slot) in self.l1.iter().enumerate() {
            let l2 = slot.load(Ordering::Acquire);
            if l2.is_null() {
                continue;
            }
            for (i2, cslot) in unsafe { &*l2 }.chunks.iter().enumerate() {
                let c = cslot.load(Ordering::Acquire);
                if !c.is_null() {
                    f(((i1 << L2_SHIFT) | i2) as u64, unsafe { &*c });
                }
            }
        }
    }

    /// Visits every resident chunk (no index needed).
    fn for_each_chunk(&self, mut f: impl FnMut(&Chunk)) {
        self.for_each_resident(|_, chunk| f(chunk));
    }
}

impl Drop for ShadowMap {
    fn drop(&mut self) {
        for slot in self.l1.iter_mut() {
            let l2 = *slot.get_mut();
            if !l2.is_null() {
                drop(unsafe { Box::from_raw(l2) });
            }
        }
    }
}

impl Clone for ShadowMap {
    /// Deep copy. With `&self` shared, the clone is a best-effort snapshot
    /// of racing marks (each bit is read once, so it is internally
    /// consistent per word).
    fn clone(&self) -> Self {
        let copy = ShadowMap::new();
        copy.union(self);
        copy
    }
}

impl fmt::Debug for ShadowMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShadowMap")
            .field("marked", &self.marked_count())
            .field("resident_bytes", &self.resident_bytes())
            .field("directory_bytes", &self.directory_bytes())
            .finish()
    }
}

/// A marking cursor over a [`ShadowMap`] tuned for the sweep's hot loop.
/// Each marking thread holds its own writer; all writers feed one map.
///
/// Two layers of locality exploitation:
///
/// * a direct-mapped cache of [`CHUNK_CACHE`] **chunk** pointers, so
///   pointer targets over a bounded heap (16 MiB per cache generation)
///   skip the radix walk whether they arrive clustered or scattered;
/// * marks into the current bitmap **line** ([`LINE_WORDS`] words = 512
///   granules = 8 KiB of address space) are write-combined into local
///   pending masks and flushed when the cursor moves on — turning up to
///   512 RMWs into at most 8. The flush's returned previous values give
///   the exact count of bits this writer newly set (`pending & !prev`),
///   so [`ShadowMap::marked_count`] stays exact even when writers race
///   on the same words.
///
/// The combine window is **adaptive**: it only opens once two consecutive
/// marks land in the same line (the monotone walk a sweep over clustered
/// allocations produces). Scattered targets — a heap of small objects
/// pointed at from everywhere — take a direct single-word update instead,
/// because snapshotting and flushing an 8-word line around every isolated
/// mark costs about twice a plain RMW.
///
/// Buffered bits become visible to *other* threads at flush (next line,
/// or drop). Marking is the only concurrent phase and readers join the
/// markers first, so nothing observes the window. [`ShadowWriter::mark`]'s
/// newly-set return is exact from this writer's perspective (its own
/// Per-writer profiler counters, all bumped on the writer's cold paths
/// ([`ShadowWriter::mark_miss`], flush) so collecting them costs the hot
/// mark loop nothing. Always accumulated; the sweep profiler decides
/// whether to export them (see `SweepProf::fold_writer`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriterProf {
    /// Marks that took the direct single-word path (window closed).
    pub direct: u64,
    /// Times the write-combine window opened (two consecutive same-line
    /// marks demonstrated locality).
    pub window_opens: u64,
    /// Bits published out of the combine window at flush — the marks the
    /// window actually batched.
    pub window_bits: u64,
    /// Dirty-window flushes (each batches up to [`LINE_WORDS`] RMWs).
    pub flushes: u64,
    /// Direct-mapped chunk-cache probes that hit.
    pub cache_hits: u64,
    /// Probes that missed and walked the radix directory.
    pub cache_misses: u64,
    /// Misses that evicted a live tag (conflict misses; a high rate means
    /// the heap's chunk working set outruns [`CHUNK_CACHE`]).
    pub cache_evictions: u64,
}

/// earlier marks included); a racing writer may transiently see the same
/// bit as new, but the global counter is reconciled at flush.
pub struct ShadowWriter<'a> {
    map: &'a ShadowMap,
    cached_idx: u64,
    cached: Option<&'a Chunk>,
    /// Line (aligned [`LINE_WORDS`]-word group) within the cached chunk
    /// the pending bits belong to; `usize::MAX` when no line is open.
    line_idx: usize,
    /// The line's words as last loaded, plus every pending bit.
    snapshot: [u64; LINE_WORDS],
    /// Bits set through this writer but not yet flushed.
    pending: [u64; LINE_WORDS],
    /// (chunk, line) of the last mark that took the direct single-word
    /// path — when the next mark lands in the same line, locality is
    /// demonstrated and the combine window opens there.
    last_chunk: u64,
    last_line: usize,
    /// Whether the open window holds unpublished pending bits — one byte
    /// the direct-mark path tests instead of folding all 8 pending words.
    dirty: bool,
    /// Direct-mapped chunk cache (tag = chunk index, [`u64::MAX`] =
    /// empty): scattered marks over a bounded heap skip the radix walk.
    chunk_tags: [u64; CHUNK_CACHE],
    chunk_refs: [Option<&'a Chunk>; CHUNK_CACHE],
    /// Built via [`ShadowMap::writer_mut`]: the map is mutably borrowed,
    /// so flushes may store instead of RMW and the newly-set count may be
    /// settled once at drop.
    exclusive: bool,
    /// Exclusive mode only: newly-set bits not yet added to the global
    /// counter.
    deferred_newly: u64,
    /// Cold-path profiler counters (see [`WriterProf`]).
    prof: WriterProf,
}

impl<'a> ShadowWriter<'a> {
    /// Marks the granule containing `target`; returns whether the bit was
    /// newly set (exact with respect to this writer's own history; see
    /// the type docs for cross-writer races).
    #[inline]
    pub fn mark(&mut self, target: Addr) -> bool {
        let g = target.granule();
        let chunk_idx = g >> CHUNK_SHIFT;
        let bit = g & (CHUNK_GRANULES - 1);
        let (w, mask) = ((bit >> 6) as usize, 1u64 << (bit & 63));
        let (line, sub) = (w / LINE_WORDS, w % LINE_WORDS);
        if chunk_idx == self.cached_idx && line == self.line_idx {
            // Hot path: same 8 KiB window — pure local arithmetic.
            if self.snapshot[sub] & mask != 0 {
                return false;
            }
            self.snapshot[sub] |= mask;
            self.pending[sub] |= mask;
            self.dirty = true;
            return true;
        }
        self.mark_miss(chunk_idx, w, mask)
    }

    /// Window-miss path, kept out of line so only the few-instruction hot
    /// path inlines into the scan kernel's survivor walk (the full body
    /// inflates register pressure enough to slow the vector loop itself).
    #[cold]
    #[inline(never)]
    fn mark_miss(&mut self, chunk_idx: u64, w: usize, mask: u64) -> bool {
        let (line, sub) = (w / LINE_WORDS, w % LINE_WORDS);
        self.flush();
        let slot = (chunk_idx as usize) & (CHUNK_CACHE - 1);
        let chunk = match self.chunk_refs[slot] {
            Some(c) if self.chunk_tags[slot] == chunk_idx => {
                self.prof.cache_hits += 1;
                c
            }
            _ => {
                self.prof.cache_misses += 1;
                if self.chunk_tags[slot] != u64::MAX {
                    self.prof.cache_evictions += 1;
                }
                let c = self.map.chunk_or_insert(chunk_idx);
                self.chunk_tags[slot] = chunk_idx;
                self.chunk_refs[slot] = Some(c);
                c
            }
        };
        // Open a combine window only when consecutive marks demonstrate
        // line locality (this mark lands in the same line as the previous
        // one — the monotone sweep-walk shape). Scattered targets take a
        // direct single-word update instead: loading and flushing an
        // 8-word snapshot per isolated mark costs ~2× a plain RMW.
        if chunk_idx == self.last_chunk && line == self.last_line {
            self.prof.window_opens += 1;
            // `cached`/`cached_idx` name the chunk that owns the open
            // window; the hot path and flush key off them.
            self.cached_idx = chunk_idx;
            self.cached = Some(chunk);
            self.line_idx = line;
            for (k, s) in self.snapshot.iter_mut().enumerate() {
                *s = chunk.words[line * LINE_WORDS + k].load(Ordering::Relaxed);
            }
            if self.snapshot[sub] & mask != 0 {
                return false;
            }
            self.snapshot[sub] |= mask;
            self.pending[sub] = mask;
            self.dirty = true;
            return true;
        }
        self.last_chunk = chunk_idx;
        self.last_line = line;
        self.prof.direct += 1;
        let word = &chunk.words[w];
        let cur = word.load(Ordering::Relaxed);
        if cur & mask != 0 {
            return false;
        }
        if self.exclusive {
            word.store(cur | mask, Ordering::Relaxed);
            self.deferred_newly += 1;
            true
        } else if word.fetch_or(mask, Ordering::Relaxed) & mask == 0 {
            self.map.marked.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Publishes any pending bits, reconciling the global mark counter
    /// exactly. Shared writers `fetch_or` each dirty word and settle the
    /// counter from the returned previous values; exclusive writers (no
    /// one else can touch the line — see [`ShadowMap::writer_mut`]) store
    /// the snapshots outright, since every pending bit is new by
    /// construction, and defer the count to drop.
    #[inline]
    fn flush(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        self.prof.flushes += 1;
        let chunk = self.cached.expect("pending bits imply a cached chunk");
        let base = self.line_idx * LINE_WORDS;
        for (k, p) in self.pending.iter_mut().enumerate() {
            if *p == 0 {
                continue;
            }
            self.prof.window_bits += u64::from(p.count_ones());
            if self.exclusive {
                chunk.words[base + k].store(self.snapshot[k], Ordering::Relaxed);
                self.deferred_newly += u64::from(p.count_ones());
            } else {
                let prev = chunk.words[base + k].fetch_or(*p, Ordering::Relaxed);
                let newly = *p & !prev;
                if newly != 0 {
                    self.map.marked.fetch_add(newly.count_ones() as u64, Ordering::Relaxed);
                }
            }
            *p = 0;
        }
    }

    /// Takes the profiler counters accumulated so far, flushing first so
    /// buffered window bits are counted (the writer keeps working; its
    /// counters restart from zero).
    pub fn take_prof(&mut self) -> WriterProf {
        self.flush();
        std::mem::take(&mut self.prof)
    }
}

impl Drop for ShadowWriter<'_> {
    fn drop(&mut self) {
        self.flush();
        if self.deferred_newly != 0 {
            self.map.marked.fetch_add(self.deferred_newly, Ordering::Relaxed);
        }
    }
}

/// The seed's `HashMap`-of-chunks shadow map, kept as the reference
/// implementation: differential tests check the radix map against it, and
/// the sweep-bandwidth bench measures the atomic map's speedup over it
/// (including the per-thread-map + union merge the parallel phase used to
/// pay).
#[derive(Clone, Debug, Default)]
pub struct NaiveShadowMap {
    chunks: HashMap<u64, Box<[u64; CHUNK_WORDS]>>,
    marked: u64,
}

impl NaiveShadowMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        NaiveShadowMap::default()
    }

    /// Marks the granule containing `target`; returns whether the bit was
    /// newly set.
    #[inline]
    pub fn mark(&mut self, target: Addr) -> bool {
        let g = target.granule();
        let (chunk, bit) = (g / CHUNK_GRANULES, g % CHUNK_GRANULES);
        let words = self.chunks.entry(chunk).or_insert_with(|| Box::new([0; CHUNK_WORDS]));
        let (w, b) = ((bit / 64) as usize, bit % 64);
        if words[w] & (1 << b) == 0 {
            words[w] |= 1 << b;
            self.marked += 1;
            true
        } else {
            false
        }
    }

    /// Whether the granule containing `addr` is marked.
    #[inline]
    pub fn is_marked(&self, addr: Addr) -> bool {
        let g = addr.granule();
        let (chunk, bit) = (g / CHUNK_GRANULES, g % CHUNK_GRANULES);
        self.chunks
            .get(&chunk)
            .is_some_and(|words| words[(bit / 64) as usize] & (1 << (bit % 64)) != 0)
    }

    /// Whether any granule overlapping `[base, base + len)` is marked —
    /// deliberately the simplest possible per-granule probe, used as the
    /// oracle for [`ShadowMap::range_marked`]'s word-masked scan.
    pub fn range_marked(&self, base: Addr, len: u64) -> bool {
        if len == 0 {
            return false;
        }
        let first = base.granule();
        let last = base.add_bytes(len - 1).granule();
        (first..=last).any(|g| self.is_marked(Addr::new(g * GRANULE_SIZE as u64)))
    }

    /// Total granules marked.
    pub fn marked_count(&self) -> u64 {
        self.marked
    }

    /// Whether nothing is marked.
    pub fn is_empty(&self) -> bool {
        self.marked == 0
    }

    /// Unions another map into this one (the per-thread-map merge the
    /// seed's parallel marking phase performed, kept for the bench's
    /// before/after comparison).
    pub fn union(&mut self, other: &NaiveShadowMap) {
        for (&chunk, other_words) in &other.chunks {
            let words = self.chunks.entry(chunk).or_insert_with(|| Box::new([0; CHUNK_WORDS]));
            for (w, &ow) in other_words.iter().enumerate() {
                let newly = ow & !words[w];
                self.marked += newly.count_ones() as u64;
                words[w] |= ow;
            }
        }
    }

    /// Approximate resident size in bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.chunks.len() as u64 * (CHUNK_WORDS * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_check_single_granule() {
        let s = ShadowMap::new();
        let a = Addr::new(0x1_0000_0000);
        assert!(!s.is_marked(a));
        assert!(s.mark(a), "first mark newly sets");
        assert!(s.is_marked(a));
        assert!(s.is_marked(a + 15), "same granule");
        assert!(!s.is_marked(a + 16), "next granule");
        assert_eq!(s.marked_count(), 1);
    }

    #[test]
    fn mark_is_idempotent() {
        let s = ShadowMap::new();
        assert!(s.mark(Addr::new(64)));
        assert!(!s.mark(Addr::new(64)), "repeat mark is not new");
        assert!(!s.mark(Addr::new(70)), "same granule");
        assert_eq!(s.marked_count(), 1);
    }

    #[test]
    fn writer_matches_direct_marks() {
        let s = ShadowMap::new();
        let boundary = CHUNK_GRANULES * GRANULE_SIZE as u64;
        let mut w = s.writer();
        assert!(w.mark(Addr::new(boundary - 16)));
        assert!(w.mark(Addr::new(boundary)), "cache refreshes across chunks");
        assert!(!w.mark(Addr::new(boundary + 8)), "same granule via cache");
        drop(w); // publish buffered marks
        assert!(!s.mark(Addr::new(boundary)), "direct marks see writer's bits");
        assert_eq!(s.marked_count(), 2);
    }

    #[test]
    fn writer_buffers_until_flush_then_counts_exactly() {
        let s = ShadowMap::new();
        let mut w = s.writer();
        // The first mark takes the direct path (published immediately);
        // the second lands in the same line, which opens the combine
        // window, so the remainder buffer until flush.
        for i in 0..64u64 {
            assert!(w.mark(Addr::new(0x1_0000_0000 + i * GRANULE_SIZE as u64)));
        }
        assert!(!s.mark(Addr::new(0x1_0000_0000)), "direct first mark is already published");
        // Racing direct mark on a buffered bit: the flush reconciliation
        // must not double-count it.
        assert!(s.mark(Addr::new(0x1_0000_0000 + 5 * GRANULE_SIZE as u64)), "not yet published");
        drop(w);
        assert_eq!(s.marked_count(), 64, "63 from the writer + 1 raced");
        for i in 0..64u64 {
            assert!(s.is_marked(Addr::new(0x1_0000_0000 + i * GRANULE_SIZE as u64)));
        }
    }

    #[test]
    fn writer_prof_attributes_window_and_cache_behaviour() {
        let s = ShadowMap::new();
        let mut w = s.writer();
        // 64 consecutive granules: mark 0 is direct, mark 1 opens the
        // combine window, marks 1..=63 publish through it at flush.
        for i in 0..64u64 {
            w.mark(Addr::new(0x1_0000_0000 + i * GRANULE_SIZE as u64));
        }
        let p = w.take_prof();
        assert_eq!(p.direct, 1, "first mark is direct: {p:?}");
        assert_eq!(p.window_opens, 1, "{p:?}");
        assert_eq!(p.window_bits, 63, "window batched the rest: {p:?}");
        assert!(p.flushes >= 1, "{p:?}");
        assert_eq!(p.cache_misses, 1, "one radix walk for the chunk: {p:?}");
        assert_eq!(p.cache_evictions, 0, "{p:?}");

        // take_prof resets: scattered marks across CHUNK_CACHE+1 chunks
        // collide in the direct-mapped cache and evict.
        let chunk_bytes = CHUNK_GRANULES * GRANULE_SIZE as u64;
        for i in 0..=(CHUNK_CACHE as u64) {
            w.mark(Addr::new(i * chunk_bytes));
        }
        let p = w.take_prof();
        assert_eq!(p.window_opens, 0, "scattered marks never open the window: {p:?}");
        assert_eq!(p.direct, CHUNK_CACHE as u64 + 1, "{p:?}");
        assert!(p.cache_evictions >= 1, "wrap-around evicts slot 0: {p:?}");
        drop(w);
        assert_eq!(s.marked_count(), 64 + CHUNK_CACHE as u64 + 1);
    }

    #[test]
    fn interior_pointer_retains_whole_allocation() {
        // Figure 5: a pointer to any offset inside [a, a+size) must be
        // caught by checking the allocation's full granule range.
        let s = ShadowMap::new();
        let base = Addr::new(0x1_0000_0000);
        s.mark(base + 100); // interior pointer target
        assert!(s.range_marked(base, 128));
        assert!(!s.range_marked(base, 96), "range before the mark is clean");
        assert!(!s.range_marked(base + 112, 16));
    }

    #[test]
    fn range_marked_handles_granule_straddling() {
        let s = ShadowMap::new();
        let base = Addr::new(0x1_0000_0008); // misaligned to granule
        s.mark(base);
        // A range ending inside the marked granule must see the mark.
        assert!(s.range_marked(Addr::new(0x1_0000_0000), 8));
        assert!(s.range_marked(base, 1));
    }

    #[test]
    fn zero_length_range_is_never_marked() {
        let s = ShadowMap::new();
        s.mark(Addr::new(0x1000));
        assert!(!s.range_marked(Addr::new(0x1000), 0));
    }

    #[test]
    fn union_merges_and_counts_exactly() {
        let a = ShadowMap::new();
        let b = ShadowMap::new();
        a.mark(Addr::new(16));
        a.mark(Addr::new(32));
        b.mark(Addr::new(32)); // overlap
        b.mark(Addr::new(1 << 30)); // distinct chunk
        a.union(&b);
        assert_eq!(a.marked_count(), 3);
        assert!(a.is_marked(Addr::new(16)));
        assert!(a.is_marked(Addr::new(32)));
        assert!(a.is_marked(Addr::new(1 << 30)));
    }

    #[test]
    fn chunk_boundaries_are_seamless() {
        let s = ShadowMap::new();
        let boundary = CHUNK_GRANULES * GRANULE_SIZE as u64;
        s.mark(Addr::new(boundary - 16));
        s.mark(Addr::new(boundary));
        assert!(s.range_marked(Addr::new(boundary - 16), 32));
        assert_eq!(s.marked_count(), 2);
        assert_eq!(s.resident_bytes(), 2 * 4096, "one chunk per side");
    }

    #[test]
    fn sparse_representation_stays_small() {
        let s = ShadowMap::new();
        // Marks across 1 GiB of address space land in few chunks.
        for i in 0..1000u64 {
            s.mark(Addr::new(0x1_0000_0000 + i * 1024));
        }
        assert!(s.resident_bytes() < 16 * 4096, "sparse map must stay small");
    }

    #[test]
    fn clear_resets_marks_but_keeps_chunks_resident() {
        let mut s = ShadowMap::new();
        s.mark(Addr::new(0x1_0000_0000));
        s.mark(Addr::new(1 << 33));
        let resident = s.resident_bytes();
        s.clear();
        assert!(s.is_empty());
        assert!(!s.is_marked(Addr::new(0x1_0000_0000)));
        assert!(!s.range_marked(Addr::new(1 << 33), 4096));
        assert_eq!(s.resident_bytes(), resident, "chunks are reused, not freed");
        // The next epoch marks into the recycled chunks.
        assert!(s.mark(Addr::new(0x1_0000_0000)));
        assert_eq!(s.marked_count(), 1);
    }

    #[test]
    fn clone_is_deep() {
        let s = ShadowMap::new();
        s.mark(Addr::new(0x1_0000_0000));
        let c = s.clone();
        s.mark(Addr::new(0x2_0000_0000));
        assert_eq!(c.marked_count(), 1);
        assert!(!c.is_marked(Addr::new(0x2_0000_0000)));
        assert!(c.is_marked(Addr::new(0x1_0000_0000)));
    }

    #[test]
    fn far_addresses_use_distinct_directory_slots() {
        let s = ShadowMap::new();
        // 1 TiB apart: different level-2 tables.
        s.mark(Addr::new(1 << 40));
        s.mark(Addr::new(1 << 41));
        assert!(s.is_marked(Addr::new(1 << 40)));
        assert!(s.is_marked(Addr::new(1 << 41)));
        assert_eq!(s.marked_count(), 2);
        assert!(s.directory_bytes() > (L1_ENTRIES * 8) as u64);
    }

    #[test]
    #[should_panic(expected = "shadowed span")]
    fn marking_beyond_the_shadowed_span_panics() {
        ShadowMap::new().mark(Addr::new(MAX_SHADOWED));
    }

    #[test]
    fn concurrent_marks_count_exactly_across_chunk_boundary() {
        // 8 threads × 4096 granules straddling a chunk boundary, every
        // granule hit by every thread: the count must be exactly the
        // number of distinct granules.
        let s = ShadowMap::new();
        let boundary = CHUNK_GRANULES * GRANULE_SIZE as u64; // chunk 0 → 1
        let granules = 4096u64;
        let base = boundary - (granules / 2) * GRANULE_SIZE as u64;
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let s = &s;
                scope.spawn(move || {
                    let mut w = s.writer();
                    for i in 0..granules {
                        // Different starting phase per thread maximises
                        // same-bit contention.
                        let g = (i + t * 512) % granules;
                        w.mark(Addr::new(base + g * GRANULE_SIZE as u64));
                    }
                });
            }
        });
        assert_eq!(s.marked_count(), granules, "exact count under contention");
        for i in 0..granules {
            assert!(s.is_marked(Addr::new(base + i * GRANULE_SIZE as u64)));
        }
        assert!(s.range_marked(Addr::new(base), granules * GRANULE_SIZE as u64));
    }

    #[test]
    fn concurrent_publication_of_one_chunk_is_safe() {
        // All threads race to create the same chunk: exactly one wins,
        // losers adopt it, and every mark lands.
        for _ in 0..16 {
            let s = ShadowMap::new();
            std::thread::scope(|scope| {
                for t in 0..8u64 {
                    let s = &s;
                    scope.spawn(move || {
                        s.mark(Addr::new(0x1_0000_0000 + t * GRANULE_SIZE as u64));
                    });
                }
            });
            assert_eq!(s.marked_count(), 8);
            assert_eq!(s.resident_bytes(), 4096, "one chunk, no leak/dup");
        }
    }

    #[test]
    fn range_marked_agrees_with_naive_oracle() {
        // Differential test: word-masked scan vs the per-granule probe,
        // over a deliberately awkward bit population (word edges, chunk
        // edges, isolated bits).
        let fast = ShadowMap::new();
        let mut slow = NaiveShadowMap::new();
        let base = 0x1_0000_0000u64;
        let offsets = [
            0u64,
            15,
            16,
            63 * 16,
            64 * 16,
            (CHUNK_GRANULES - 1) * 16,
            CHUNK_GRANULES * 16,
            (CHUNK_GRANULES + 64) * 16,
            3 * CHUNK_GRANULES * 16 + 40,
        ];
        for &off in &offsets {
            fast.mark(Addr::new(base + off));
            slow.mark(Addr::new(base + off));
        }
        assert_eq!(fast.marked_count(), slow.marked_count());
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..4000 {
            // SplitMix64 over query starts/lengths around the population.
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            let start = base.wrapping_sub(256) + z % (4 * CHUNK_GRANULES * 16);
            let len = (z >> 40) % 3000;
            assert_eq!(
                fast.range_marked(Addr::new(start), len),
                slow.range_marked(Addr::new(start), len),
                "start={start:#x} len={len}"
            );
        }
    }
}
