//! The shadow map: one mark bit per 16-byte granule of virtual memory.
//!
//! "The shadow map marks the targets of pointers, and is consulted for each
//! quarantined allocation, to see if pointers have been discovered to it"
//! (§3.2). One bit per 128 bits of memory is the smallest allocation
//! granule, so every allocation maps to a distinct bit range. The paper
//! implements it as a flat reservation; the simulation uses a sparse,
//! chunked bitmap with identical indexing semantics (the flat space would
//! be 2⁶⁰ bits here), keeping the <1 % space overhead property.

use std::collections::HashMap;

use vmem::{Addr, GRANULE_SIZE};

/// Granules covered by one chunk: 512 words × 64 bits = 32 Ki granules,
/// i.e. one 4 KiB bitmap chunk shadows 512 KiB of address space — the same
/// 1/128 ratio as the paper's flat map.
const CHUNK_GRANULES: u64 = 512 * 64;

/// A sparse bitmap over granule indices.
///
/// # Example
///
/// ```
/// use minesweeper::ShadowMap;
/// use vmem::Addr;
///
/// let mut shadow = ShadowMap::new();
/// shadow.mark(Addr::new(0x1_0000_0040)); // a pointer into some allocation
/// assert!(shadow.range_marked(Addr::new(0x1_0000_0040), 16));
/// assert!(!shadow.range_marked(Addr::new(0x1_0000_0100), 64));
/// ```
#[derive(Clone, Debug, Default)]
pub struct ShadowMap {
    chunks: HashMap<u64, Box<[u64; 512]>>,
    marked: u64,
}

impl ShadowMap {
    /// Creates an empty shadow map.
    pub fn new() -> Self {
        ShadowMap::default()
    }

    /// Marks the granule containing `target` — the operation the marking
    /// phase performs for every word of memory that looks like a pointer.
    #[inline]
    pub fn mark(&mut self, target: Addr) {
        let g = target.granule();
        let (chunk, bit) = (g / CHUNK_GRANULES, g % CHUNK_GRANULES);
        let words = self.chunks.entry(chunk).or_insert_with(|| Box::new([0; 512]));
        let (w, b) = ((bit / 64) as usize, bit % 64);
        if words[w] & (1 << b) == 0 {
            words[w] |= 1 << b;
            self.marked += 1;
        }
    }

    /// Whether the granule containing `addr` is marked.
    #[inline]
    pub fn is_marked(&self, addr: Addr) -> bool {
        let g = addr.granule();
        let (chunk, bit) = (g / CHUNK_GRANULES, g % CHUNK_GRANULES);
        self.chunks
            .get(&chunk)
            .is_some_and(|words| words[(bit / 64) as usize] & (1 << (bit % 64)) != 0)
    }

    /// Whether *any* granule overlapping `[base, base + len)` is marked —
    /// the release-phase test: a marked granule means a possible dangling
    /// pointer into the allocation, so it must stay quarantined. The paper
    /// checks "the full shadow-map range corresponding to the allocation"
    /// (§3.3 footnote), which includes interior pointers.
    pub fn range_marked(&self, base: Addr, len: u64) -> bool {
        if len == 0 {
            return false;
        }
        let first = base.granule();
        let last = base.add_bytes(len - 1).granule();
        (first..=last).any(|g| self.is_marked(Addr::new(g * GRANULE_SIZE as u64)))
    }

    /// Total granules marked.
    pub fn marked_count(&self) -> u64 {
        self.marked
    }

    /// Whether nothing is marked.
    pub fn is_empty(&self) -> bool {
        self.marked == 0
    }

    /// Unions another shadow map into this one (used to merge the
    /// per-thread maps of the parallel marking phase, §4.4).
    pub fn union(&mut self, other: &ShadowMap) {
        for (&chunk, other_words) in &other.chunks {
            let words = self.chunks.entry(chunk).or_insert_with(|| Box::new([0; 512]));
            for (w, &ow) in other_words.iter().enumerate() {
                let newly = ow & !words[w];
                self.marked += newly.count_ones() as u64;
                words[w] |= ow;
            }
        }
    }

    /// Approximate resident size of the shadow map in bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.chunks.len() as u64 * 4096
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_check_single_granule() {
        let mut s = ShadowMap::new();
        let a = Addr::new(0x1_0000_0000);
        assert!(!s.is_marked(a));
        s.mark(a);
        assert!(s.is_marked(a));
        assert!(s.is_marked(a + 15), "same granule");
        assert!(!s.is_marked(a + 16), "next granule");
        assert_eq!(s.marked_count(), 1);
    }

    #[test]
    fn mark_is_idempotent() {
        let mut s = ShadowMap::new();
        s.mark(Addr::new(64));
        s.mark(Addr::new(64));
        s.mark(Addr::new(70)); // same granule
        assert_eq!(s.marked_count(), 1);
    }

    #[test]
    fn interior_pointer_retains_whole_allocation() {
        // Figure 5: a pointer to any offset inside [a, a+size) must be
        // caught by checking the allocation's full granule range.
        let mut s = ShadowMap::new();
        let base = Addr::new(0x1_0000_0000);
        s.mark(base + 100); // interior pointer target
        assert!(s.range_marked(base, 128));
        assert!(!s.range_marked(base, 96), "range before the mark is clean");
        assert!(!s.range_marked(base + 112, 16));
    }

    #[test]
    fn range_marked_handles_granule_straddling() {
        let mut s = ShadowMap::new();
        let base = Addr::new(0x1_0000_0008); // misaligned to granule
        s.mark(base);
        // A range ending inside the marked granule must see the mark.
        assert!(s.range_marked(Addr::new(0x1_0000_0000), 8));
        assert!(s.range_marked(base, 1));
    }

    #[test]
    fn zero_length_range_is_never_marked() {
        let mut s = ShadowMap::new();
        s.mark(Addr::new(0x1000));
        assert!(!s.range_marked(Addr::new(0x1000), 0));
    }

    #[test]
    fn union_merges_and_counts_exactly() {
        let mut a = ShadowMap::new();
        let mut b = ShadowMap::new();
        a.mark(Addr::new(16));
        a.mark(Addr::new(32));
        b.mark(Addr::new(32)); // overlap
        b.mark(Addr::new(1 << 30)); // distinct chunk
        a.union(&b);
        assert_eq!(a.marked_count(), 3);
        assert!(a.is_marked(Addr::new(16)));
        assert!(a.is_marked(Addr::new(32)));
        assert!(a.is_marked(Addr::new(1 << 30)));
    }

    #[test]
    fn chunk_boundaries_are_seamless() {
        let mut s = ShadowMap::new();
        let boundary = CHUNK_GRANULES * GRANULE_SIZE as u64;
        s.mark(Addr::new(boundary - 16));
        s.mark(Addr::new(boundary));
        assert!(s.range_marked(Addr::new(boundary - 16), 32));
        assert_eq!(s.marked_count(), 2);
        assert_eq!(s.chunks.len(), 2);
    }

    #[test]
    fn sparse_representation_stays_small() {
        let mut s = ShadowMap::new();
        // Marks across 1 GiB of address space land in few chunks.
        for i in 0..1000u64 {
            s.mark(Addr::new(0x1_0000_0000 + i * 1024));
        }
        assert!(s.resident_bytes() < 16 * 4096, "sparse map must stay small");
    }
}
