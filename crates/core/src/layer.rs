//! The drop-in allocator layer: `malloc`/`free` interposition, quarantine
//! management, sweep orchestration (§3, Figure 3).

use std::collections::HashMap;

use jalloc::{JAlloc, JallocConfig};
use telemetry::{EventKind, Histogram, Registry, Stopwatch, Tracer, Trigger};
use vmem::{Addr, AddrSpace, PageIdx, PageRange, Protection, WORD_SIZE};

use crate::arena::ArenaId;
use crate::backend::HeapBackend;
use crate::config::{MsConfig, SweepMode};
use crate::filter::CandidateFilter;
use crate::forensics::{EdgeAgg, EdgeRecorder, FailedFreeLedger};
use crate::pagecache::PageCache;
use crate::quarantine::{InsertResult, QEntry, Quarantine};
use crate::shadow::ShadowMap;
use crate::stats::MsStats;
use crate::sweep::{
    mark_page, MarkAccel, Marker, ParallelMarkStats, PoolMarkJob, StepResult, SweepPlan,
};
use crate::telem::MsCounters;

/// Maximum double-free report entries retained in debug mode.
const MAX_DOUBLE_FREE_REPORTS: usize = 64;

/// Minimum quarantined bytes before the proportional trigger can fire;
/// prevents degenerate sweeping while the heap is still tiny (an
/// implementation floor, not from the paper).
const MIN_SWEEP_BYTES: u64 = 64 * 1024;

/// What happened to a `free()` call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FreeOutcome {
    /// The allocation was quarantined (possibly zeroed/unmapped first).
    Quarantined,
    /// The base was already in quarantine: double free, absorbed
    /// idempotently (§3).
    DoubleFree,
    /// Quarantining is disabled (§5.5 partial versions): the allocation
    /// went straight back to the allocator.
    Passthrough,
    /// The address was not the base of a live allocation. MineSweeper never
    /// forwards such frees, so the allocator state cannot be corrupted.
    Invalid,
}

/// Outcome of one completed sweep.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SweepReport {
    /// Quarantined allocations proven pointer-free and recycled.
    pub released: u64,
    /// Bytes recycled.
    pub released_bytes: u64,
    /// Allocations that failed to free (possible dangling pointer found).
    pub failed: u64,
    /// Words examined by the marking phase.
    pub marked_words: u64,
    /// Bytes the marking phase advanced through without reading
    /// (cache-replayed clean pages plus protected/unmapped skips).
    pub skipped_bytes: u64,
    /// Pages re-examined by the stop-the-world pass (mostly-concurrent
    /// mode only).
    pub stw_pages: u64,
    /// Granules marked in the shadow map.
    pub marked_granules: u64,
}

/// The MineSweeper allocator layer.
///
/// Owns the underlying [`JAlloc`] heap and a [`Quarantine`]; exposes the
/// allocator API (`malloc`/`free`) plus sweep control. See the
/// [crate docs](crate) for an end-to-end example.
///
/// Sweeps can run three ways:
///
/// * [`MineSweeper::sweep_now`] — synchronously to completion (simple
///   library use; also how the non-concurrent ablation configs behave);
/// * [`MineSweeper::start_sweep`] / [`MineSweeper::sweep_step`] /
///   [`MineSweeper::finish_sweep`] — incrementally, for callers that
///   interleave mutator work with sweep progress (the discrete-event
///   engine uses this to model concurrency in virtual time);
/// * [`crate::parallel_mark`] — one-shot marking on real OS threads.
#[derive(Debug)]
pub struct MineSweeper<B: HeapBackend = JAlloc> {
    cfg: MsConfig,
    heap: B,
    quarantine: Quarantine,
    active: Option<ActiveSweep>,
    /// The shadow map lives across sweeps: [`MineSweeper::start_sweep`]
    /// clears the mark bits in place, so steady-state sweeping reuses the
    /// resident bitmap chunks instead of re-faulting a fresh radix every
    /// epoch (the paper's map is likewise one long-lived reservation).
    shadow: ShadowMap,
    /// Single source of truth for the layer's statistics: every counter
    /// [`MineSweeper::stats`] reports lives in this (shareable) registry,
    /// so an embedding engine or benchmark can snapshot one coherent set.
    registry: Registry,
    counters: MsCounters,
    /// Sweep profiler handles ([`MsConfig::profiler`]); `None` keeps the
    /// mark paths on their single-branch disabled gates and registers no
    /// `sweep.*` metrics at all.
    prof: Option<crate::telem::SweepProf>,
    tracer: Tracer,
    double_free_reports: Vec<Addr>,
    /// Sweeps started (numbers sweep-lifecycle trace events).
    next_sweep: u64,
    /// Soft-dirty page-summary cache: lives across sweeps so clean pages
    /// can replay last sweep's digests ([`MsConfig::page_cache`]).
    page_cache: PageCache,
    /// Cross-sweep failed-free ledger ([`MsConfig::forensics`]); empty and
    /// untouched when forensics is off.
    ledger: FailedFreeLedger,
    /// Residency histogram: sweeps a previously failed entry survived
    /// before release (recorded at release time, forensics only).
    residency: Histogram,
}

#[derive(Debug)]
struct ActiveSweep {
    marker: Marker,
    locked: Vec<QEntry>,
    /// 1-based sweep number (stamps this sweep's trace events).
    id: u64,
    /// Marking-phase accumulators across incremental steps.
    mark_bytes: u64,
    mark_words: u64,
    mark_skipped_bytes: u64,
    mark_filter_rejects: u64,
    mark_wall_ns: u64,
    /// Wall clock for the whole sweep (inert when tracing is off).
    stopwatch: Stopwatch,
    /// Candidate filter over this sweep's locked entries
    /// ([`MsConfig::candidate_filter`]).
    filter: Option<CandidateFilter>,
    /// Quarantine generation locked in at sweep start (tags digests).
    qgen: u64,
    /// Forensics edge recorder over the locked entries
    /// ([`MsConfig::forensics`]); `None` keeps the mark loop on its
    /// non-recording path.
    recorder: Option<EdgeRecorder>,
    /// Profiler cell values at sweep start, so the `MarkPhase` event can
    /// carry this sweep's deltas (the cells are cumulative).
    prof_base: Option<ProfBase>,
}

/// Cumulative profiler readings captured at sweep start.
#[derive(Clone, Copy, Debug)]
struct ProfBase {
    scan_ns: u64,
    window_bits: u64,
    direct: u64,
    evictions: u64,
}

impl MineSweeper<JAlloc> {
    /// Creates a layer with the given configuration over a JeMalloc-style
    /// heap. The heap runs the paper's "minimally modified JeMalloc"
    /// (end-pointer padding; commit/decommit purge hooks when post-sweep
    /// purging is enabled, plain `madvise` semantics otherwise, §4.5).
    pub fn new(cfg: MsConfig) -> Self {
        let jcfg = if cfg.purge_after_sweep {
            JallocConfig::minesweeper()
        } else {
            JallocConfig { end_padding: true, ..JallocConfig::stock() }
        };
        Self::with_heap_config(cfg, jcfg)
    }

    /// Creates a layer over a heap with an explicit allocator
    /// configuration.
    pub fn with_heap_config(cfg: MsConfig, jcfg: JallocConfig) -> Self {
        Self::with_backend(cfg, JAlloc::with_config(jcfg))
    }
}

impl<B: HeapBackend> MineSweeper<B> {
    /// Creates a layer over any [`HeapBackend`] — the §7 portability
    /// story (e.g. `scudo::Scudo`).
    pub fn with_backend(cfg: MsConfig, backend: B) -> Self {
        let registry = Registry::new();
        let counters = MsCounters::register(&registry);
        let prof = cfg.profiler.then(|| crate::telem::SweepProf::register(&registry));
        let residency = registry.histogram(crate::telem::LAYER_SUBSYSTEM, "residency_sweeps");
        // Every shard this layer builds carries the backend's arena id,
        // so pooled sweeps and telemetry can attribute work per tenant.
        let arena = backend.arena_id();
        MineSweeper {
            quarantine: Quarantine::for_arena(cfg.tl_buffer_capacity, arena),
            cfg,
            heap: backend,
            active: None,
            shadow: ShadowMap::for_arena(arena),
            registry,
            counters,
            prof,
            tracer: Tracer::disabled(),
            double_free_reports: Vec::new(),
            next_sweep: 0,
            page_cache: PageCache::new(),
            ledger: FailedFreeLedger::new(),
            residency,
        }
    }

    /// The layer configuration.
    pub fn config(&self) -> &MsConfig {
        &self.cfg
    }

    /// The arena this layer serves ([`HeapBackend::arena_id`], read once
    /// at construction; its quarantine and shadow shards carry the same
    /// id).
    pub fn arena_id(&self) -> ArenaId {
        self.quarantine.arena()
    }

    /// The underlying heap (read-only; allocate through the layer).
    pub fn heap(&self) -> &B {
        &self.heap
    }

    /// The quarantine (read-only).
    pub fn quarantine(&self) -> &Quarantine {
        &self.quarantine
    }

    /// Statistics snapshot, materialised from the registry counters.
    pub fn stats(&self) -> MsStats {
        let c = &self.counters;
        MsStats {
            sweeps: c.sweeps.get(),
            stw_passes: c.stw_passes.get(),
            quarantined: c.quarantined.get(),
            quarantined_bytes: c.quarantined_bytes.get(),
            released: c.released.get(),
            released_bytes: c.released_bytes.get(),
            failed_frees: c.failed_frees.get(),
            double_frees: c.double_frees.get(),
            zeroed_bytes: c.zeroed_bytes.get(),
            unmapped_pages: c.unmapped_pages.get(),
            swept_bytes: c.swept_bytes.get(),
            stw_pages: c.stw_pages.get(),
            tl_flushes: c.tl_flushes.get(),
            tl_flushed_entries: c.tl_flushed_entries.get(),
            invalid_frees: c.invalid_frees.get(),
            skipped_bytes: c.skipped_bytes.get(),
            pages_skipped: c.pages_skipped.get(),
            pages_replayed: c.pages_replayed.get(),
            filter_rejects: c.filter_rejects.get(),
            heap_words: c.heap_words.get(),
            double_free_reports: self.double_free_reports.clone(),
        }
    }

    /// The shadow map (read-only; cleared and repopulated by each sweep).
    /// Exposed so equivalence tests can compare mark sets across configs.
    pub fn shadow(&self) -> &ShadowMap {
        &self.shadow
    }

    /// The soft-dirty page-summary cache (read-only introspection).
    pub fn page_cache(&self) -> &PageCache {
        &self.page_cache
    }

    /// The cross-sweep failed-free ledger (read-only introspection; empty
    /// unless [`MsConfig::forensics`] is enabled).
    pub fn ledger(&self) -> &FailedFreeLedger {
        &self.ledger
    }

    /// The metrics registry this layer registers into. Clone it to let
    /// other subsystems (an engine, a benchmark harness) register their
    /// own instruments alongside the layer's and export one snapshot.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The sweep-lifecycle tracer (read-only).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The sweep-lifecycle tracer. Attach a sink with
    /// [`Tracer::set_sink`] to start receiving events; stamp the virtual
    /// clock with [`Tracer::set_virtual_now`].
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Allocates `size` bytes (forwarded to the heap; the quarantine layer
    /// adds nothing to the allocation fast path).
    pub fn malloc(&mut self, space: &mut AddrSpace, size: u64) -> Addr {
        self.heap.malloc(space, size)
    }

    /// Advances virtual time (drives the allocator's decay purging).
    pub fn advance_clock(&mut self, now: u64) {
        self.heap.advance_clock(now);
    }

    /// Runs the allocator's background decay purge (no-op for extents
    /// younger than the decay window).
    pub fn decay_purge(&mut self, space: &mut AddrSpace) {
        self.heap.purge_aged(space);
    }

    /// Intercepts `free()`: zero, unmap, quarantine (§3, §4.1, §4.2) — or
    /// pass through / reject, depending on configuration and validity.
    ///
    /// Never panics and never corrupts allocator state, whatever `addr` is:
    /// invalid frees return [`FreeOutcome::Invalid`], double frees
    /// [`FreeOutcome::DoubleFree`].
    pub fn free(&mut self, space: &mut AddrSpace, addr: Addr) -> FreeOutcome {
        self.free_sited(space, addr, 0)
    }

    /// [`MineSweeper::free`] with an allocation-site id attached: the site
    /// rides the quarantine entry into the forensics ledger, so failed
    /// frees attribute back to the code that allocated them. Site 0 means
    /// "unknown" (what plain `free` passes).
    pub fn free_sited(
        &mut self,
        space: &mut AddrSpace,
        addr: Addr,
        site: u32,
    ) -> FreeOutcome {
        // A base already in quarantine is a double free even before we ask
        // the heap (the heap still considers it live).
        if self.cfg.quarantine && self.quarantine.contains(addr) {
            return self.absorb_double_free(addr);
        }
        let Some(usable) = self.heap.usable_size(addr) else {
            self.counters.invalid_frees.inc();
            return FreeOutcome::Invalid;
        };

        if !self.cfg.quarantine {
            // §5.5 partial versions (1)/(2): optional zero/unmap, then
            // forward immediately.
            if self.cfg.zeroing {
                self.zero_entry(space, addr, usable, 0);
            }
            if self.cfg.unmapping {
                let interior = PageRange::interior(addr, usable);
                if interior.page_count() >= self.cfg.unmap_min_pages {
                    // "unmap (and immediately remap)": discard backing but
                    // leave the range usable for the allocator.
                    space.decommit(interior).expect("live allocation is mapped");
                    self.counters.unmapped_pages.add(interior.page_count());
                }
            }
            // The allocator can still reject the free (e.g. a double free
            // of a block it already recycled — usable_size may answer for
            // a freed-but-cached block). Without a quarantine to absorb
            // it idempotently, record and refuse rather than crash.
            if self.heap.free(space, addr).is_err() {
                self.counters.invalid_frees.inc();
                return FreeOutcome::Invalid;
            }
            return FreeOutcome::Passthrough;
        }

        // Unmap large allocations' interior pages (§4.2).
        let mut unmapped_pages = 0;
        if self.cfg.unmapping {
            let interior = PageRange::interior(addr, usable);
            if interior.page_count() >= self.cfg.unmap_min_pages {
                unmapped_pages = interior.page_count();
            }
        }
        // Zero the parts sweeps will still see (§4.1). Unmapped pages lose
        // their contents wholesale, so only the head/tail need zeroing.
        if self.cfg.zeroing {
            self.zero_entry(space, addr, usable, unmapped_pages);
        }
        if unmapped_pages > 0 {
            let interior = PageRange::interior(addr, usable);
            space.decommit(interior).expect("live allocation is mapped");
            space.protect(interior, Protection::None).expect("mapped");
            self.counters.unmapped_pages.add(unmapped_pages);
        }

        let entry = QEntry { base: addr, usable, unmapped_pages, failed: false, site };
        match self.quarantine.insert(entry) {
            InsertResult::Inserted { flushed } => {
                if flushed {
                    let entries = self.cfg.tl_buffer_capacity.max(1) as u64;
                    self.counters.tl_flushes.inc();
                    self.counters.tl_flushed_entries.add(entries);
                    self.tracer.emit(|| EventKind::QuarantineFlush { entries });
                }
                self.counters.quarantined.inc();
                self.counters.quarantined_bytes.add(usable);
                FreeOutcome::Quarantined
            }
            InsertResult::DoubleFree => self.absorb_double_free(addr),
        }
    }

    fn absorb_double_free(&mut self, addr: Addr) -> FreeOutcome {
        self.counters.double_frees.inc();
        if self.cfg.report_double_frees
            && self.double_free_reports.len() < MAX_DOUBLE_FREE_REPORTS
        {
            self.double_free_reports.push(addr);
        }
        FreeOutcome::DoubleFree
    }

    fn zero_entry(&mut self, space: &mut AddrSpace, base: Addr, usable: u64, unmapped_pages: u64) {
        let zero_len = usable / WORD_SIZE as u64 * WORD_SIZE as u64;
        if unmapped_pages == 0 {
            space.fill_zero(base, zero_len).expect("live allocation is accessible");
            self.counters.zeroed_bytes.add(zero_len);
            return;
        }
        let interior = PageRange::interior(base, usable);
        let head = interior.start().base().offset_from(base);
        space.fill_zero(base, head).expect("head is accessible");
        let tail_base = interior.end().base();
        let tail = base.add_bytes(zero_len).offset_from(tail_base);
        space.fill_zero(tail_base, tail).expect("tail is accessible");
        self.counters.zeroed_bytes.add(head + tail);
    }

    /// Whether the sweep trigger has fired (§3.2 "When to Sweep" plus the
    /// §4.2 unmapped-bytes trigger). Failed frees are subtracted from both
    /// sides so they cannot force back-to-back sweeps.
    pub fn sweep_needed(&self, space: &AddrSpace) -> bool {
        if self.active.is_some() || !self.cfg.quarantine {
            return false;
        }
        let (proportional, unmapped) = self.trigger_state(space);
        proportional || unmapped
    }

    /// Evaluates the two sweep triggers: `(proportional, unmapped)`.
    fn trigger_state(&self, space: &AddrSpace) -> (bool, bool) {
        let q = self.quarantine.tracked_bytes();
        let f = self.quarantine.failed_bytes();
        // Unmapped quarantined bytes "do not count towards standard memory
        // usage or quarantine-size sweep thresholds" (§4.2) — on either
        // side: they are still 'allocated' from the heap's perspective but
        // hold no physical memory.
        let heap_bytes = self
            .heap
            .allocated_bytes()
            .saturating_sub(self.quarantine.unmapped_bytes());
        let eligible = q.saturating_sub(f);
        let proportional = eligible >= MIN_SWEEP_BYTES
            && eligible as f64 >= self.cfg.sweep_threshold * heap_bytes.saturating_sub(f) as f64;
        let unmapped = self.quarantine.unmapped_bytes() > 0
            && self.quarantine.unmapped_bytes() as f64
                >= self.cfg.unmapped_trigger * space.rss_bytes() as f64;
        (proportional, unmapped)
    }

    /// Quarantine pressure as a permille of the proportional sweep
    /// trigger: 1000 means the trigger is exactly met. The global sweep
    /// scheduler ([`crate::SweepScheduler`]) orders and coalesces arenas
    /// by this value. Below the [`MIN_SWEEP_BYTES`] floor the value is
    /// clamped under 1000 (never "due"); an unmapped-trigger firing
    /// reports at least 1000. Zero while a sweep is in flight (pressure
    /// is released by finishing it, not by starting another).
    pub fn sweep_pressure(&self, space: &AddrSpace) -> u64 {
        if self.active.is_some() || !self.cfg.quarantine {
            return 0;
        }
        let q = self.quarantine.tracked_bytes();
        let f = self.quarantine.failed_bytes();
        let heap_bytes = self
            .heap
            .allocated_bytes()
            .saturating_sub(self.quarantine.unmapped_bytes());
        let eligible = q.saturating_sub(f);
        let denom =
            (self.cfg.sweep_threshold * heap_bytes.saturating_sub(f) as f64).max(1.0);
        let mut permille = (eligible as f64 * 1000.0 / denom) as u64;
        if eligible < MIN_SWEEP_BYTES {
            permille = permille.min(999);
        }
        let (proportional, unmapped) = self.trigger_state(space);
        if proportional || unmapped {
            permille = permille.max(1000);
        }
        permille
    }

    /// Classifies what is firing the sweep that is about to start.
    fn trigger_kind(&self, space: &AddrSpace) -> Trigger {
        match self.trigger_state(space) {
            (true, _) => Trigger::Proportional,
            (false, true) => Trigger::Unmapped,
            (false, false) => Trigger::Manual,
        }
    }

    /// Whether the mutator should pause new allocations because the
    /// quarantine has outrun the in-flight sweep (§5.7's overload valve).
    pub fn pause_needed(&self) -> bool {
        if self.active.is_none() {
            return false;
        }
        let q = self.quarantine.tracked_bytes();
        let f = self.quarantine.failed_bytes();
        let heap_bytes = self.heap.allocated_bytes();
        q.saturating_sub(f) as f64
            >= self.cfg.pause_factor
                * self.cfg.sweep_threshold
                * heap_bytes.saturating_sub(f) as f64
    }

    /// Whether a sweep is in flight.
    pub fn in_sweep(&self) -> bool {
        self.active.is_some()
    }

    /// Bytes of marking work left in the in-flight sweep.
    pub fn sweep_remaining_bytes(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.marker.remaining_bytes())
    }

    /// Begins a sweep: locks in the current quarantine generation (§4.3 —
    /// later frees wait for the next sweep), builds the plan over heap +
    /// roots, and (in mostly-concurrent mode) clears soft-dirty bits.
    ///
    /// # Panics
    ///
    /// Panics if a sweep is already in flight.
    pub fn start_sweep(&mut self, space: &mut AddrSpace) {
        assert!(self.active.is_none(), "sweep already in flight");
        self.next_sweep += 1;
        let id = self.next_sweep;
        let trigger = self.trigger_kind(space);
        let quarantine_bytes = self.quarantine.tracked_bytes();
        let quarantine_entries = self.quarantine.len() as u64;
        self.tracer.emit(|| EventKind::SweepStart {
            sweep: id,
            trigger,
            quarantine_bytes,
            quarantine_entries,
        });
        let stopwatch = self.tracer.stopwatch();
        let locked = self.quarantine.lock_generation();
        let plan = if self.cfg.marking {
            SweepPlan::build(space, &self.heap.active_ranges())
        } else {
            SweepPlan::from_ranges(Vec::new())
        };
        // Rebuild the candidate filter over exactly this sweep's locked
        // candidate set: only marks into these entries' pages can change a
        // release decision.
        let filter = (self.cfg.marking && self.cfg.candidate_filter)
            .then(|| CandidateFilter::build(locked.iter().map(|e| (e.base, e.usable))));
        // Snapshot soft-dirty state BEFORE any clearing, then retire cache
        // entries for dirty pages and pages that left the plan.
        if self.cfg.marking && self.cfg.page_cache {
            let mut dirty: Vec<PageIdx> = plan
                .ranges()
                .iter()
                .flat_map(|&(base, len)| {
                    space.snapshot_soft_dirty(PageRange::spanning(base, len))
                })
                .collect();
            dirty.sort_unstable();
            dirty.dedup();
            self.page_cache.begin_sweep(&plan, &dirty, id);
        }
        match self.cfg.mode {
            // The STW contract needs dirtiness tracked everywhere, so the
            // global clear stays (the cache's snapshot already happened).
            SweepMode::MostlyConcurrent => space.clear_soft_dirty(),
            // Fully concurrent only clears what the cache tracks: the
            // plan's own ranges. Everything else keeps accumulating
            // dirtiness and is reported dirty at the next snapshot.
            SweepMode::FullyConcurrent if self.cfg.marking && self.cfg.page_cache => {
                for &(base, len) in plan.ranges() {
                    space.clear_soft_dirty_range(PageRange::spanning(base, len));
                }
            }
            SweepMode::FullyConcurrent => {}
        }
        // New epoch: wipe last sweep's marks, keeping the chunks resident.
        self.shadow.clear();
        // Forensics: a recorder over exactly this sweep's candidates (None
        // when the knob is off, or when nothing marks anyway).
        let recorder = if self.cfg.marking {
            EdgeRecorder::new(&locked, self.cfg.forensics)
        } else {
            None
        };
        // Profiler baselines: the sweep.* cells are cumulative, so the
        // MarkPhase event reports deltas against sweep-start readings.
        let prof_base = self.prof.as_ref().map(|p| ProfBase {
            scan_ns: p.step_scan_ns.sum(),
            window_bits: p.wc_window_bits.get(),
            direct: p.wc_direct.get(),
            evictions: p.chunk_cache_evictions.get(),
        });
        self.active = Some(ActiveSweep {
            marker: Marker::new(plan),
            locked,
            id,
            mark_bytes: 0,
            mark_words: 0,
            mark_skipped_bytes: 0,
            mark_filter_rejects: 0,
            mark_wall_ns: 0,
            stopwatch,
            filter,
            qgen: self.quarantine.generation(),
            recorder,
            prof_base,
        });
    }

    /// Advances the in-flight sweep's marking phase by up to `word_budget`
    /// words.
    ///
    /// # Panics
    ///
    /// Panics if no sweep is in flight.
    pub fn sweep_step(&mut self, space: &mut AddrSpace, word_budget: u64) -> StepResult {
        let sw = self.tracer.stopwatch();
        let active = self.active.as_mut().expect("no sweep in flight");
        let layout = *space.layout();
        let cache = (self.cfg.marking && self.cfg.page_cache)
            .then_some(&mut self.page_cache);
        let mut accel = MarkAccel {
            filter: active.filter.as_ref(),
            cache,
            qgen: active.qgen,
            forensics: active.recorder.as_ref(),
            tier: None,
            prof: self.prof.as_ref(),
        };
        let r =
            active.marker.step_accel(space, &layout, &mut self.shadow, word_budget, &mut accel);
        active.mark_bytes += r.bytes;
        active.mark_words += r.words;
        active.mark_skipped_bytes += r.skipped_bytes;
        active.mark_filter_rejects += r.filter_rejects;
        active.mark_wall_ns += sw.elapsed_ns();
        self.absorb_mark_counters(&r);
        r
    }

    /// Folds one mark step's counters into the registry.
    fn absorb_mark_counters(&self, r: &StepResult) {
        self.counters.swept_bytes.add(r.bytes);
        self.counters.skipped_bytes.add(r.skipped_bytes);
        self.counters.heap_words.add(r.heap_words);
        self.counters.pages_skipped.add(r.pages_skipped);
        self.counters.pages_replayed.add(r.pages_replayed);
        self.counters.filter_rejects.add(r.filter_rejects);
        self.counters.pin_edges.add(r.pin_edges);
    }

    /// Completes the in-flight sweep: finishes marking if needed, runs the
    /// stop-the-world re-check (mostly-concurrent mode), then walks the
    /// locked-in quarantine releasing unmarked entries and retaining failed
    /// frees.
    ///
    /// # Panics
    ///
    /// Panics if no sweep is in flight.
    pub fn finish_sweep(&mut self, space: &mut AddrSpace) -> SweepReport {
        let mut active = self.active.take().expect("no sweep in flight");
        let layout = *space.layout();
        let mut report = SweepReport::default();

        // Drain any marking the caller did not step through.
        let sw = self.tracer.stopwatch();
        let drained = {
            let cache = (self.cfg.marking && self.cfg.page_cache)
                .then_some(&mut self.page_cache);
            let mut accel = MarkAccel {
                filter: active.filter.as_ref(),
                cache,
                qgen: active.qgen,
                forensics: active.recorder.as_ref(),
                tier: None,
                prof: self.prof.as_ref(),
            };
            active.marker.run_to_end_accel(space, &layout, &mut self.shadow, &mut accel)
        };
        report.marked_words += drained.words;
        active.mark_bytes += drained.bytes;
        active.mark_words += drained.words;
        active.mark_skipped_bytes += drained.skipped_bytes;
        active.mark_filter_rejects += drained.filter_rejects;
        active.mark_wall_ns += sw.elapsed_ns();
        self.absorb_mark_counters(&drained);
        self.complete_sweep(space, active, report)
    }

    /// One arena's share of a pooled cross-arena mark: the in-flight
    /// sweep's plan, shadow map and accelerators, borrowed immutably so
    /// [`crate::parallel_mark_pool`] can drain many arenas' plans through
    /// one work-stealing cursor. The caller passes the same `space` the
    /// sweep was started on.
    ///
    /// The page cache is exposed read-only (replay only — pooled helpers
    /// never record digests, so pooled sweeps let cached pages age out
    /// instead of refreshing them; a correctness no-op).
    ///
    /// # Panics
    ///
    /// Panics if no sweep is in flight.
    pub fn pooled_mark_job<'a>(&'a self, space: &'a AddrSpace) -> PoolMarkJob<'a> {
        let active = self.active.as_ref().expect("no sweep in flight");
        PoolMarkJob {
            space,
            plan: active.marker.plan(),
            shadow: &self.shadow,
            filter: active.filter.as_ref(),
            cache: (self.cfg.marking && self.cfg.page_cache).then_some(&self.page_cache),
            forensics: active.recorder.as_ref(),
        }
    }

    /// Completes a sweep whose marking ran *externally* (a pooled
    /// cross-arena mark wrote this arena's shadow map already): folds the
    /// pooled stats into the layer's accounting, then runs the same
    /// release path as [`MineSweeper::finish_sweep`].
    ///
    /// Accounting: the pooled mark covered the whole plan, so this sweep
    /// advanced `plan bytes` with `stats.words` read and the remainder
    /// skipped wholesale (unbacked/protected pages and cache replays) —
    /// the `bytes == words*8 + skipped` identity `ms-report --check`
    /// verifies holds exactly.
    ///
    /// # Panics
    ///
    /// Panics if no sweep is in flight.
    pub fn finish_sweep_premarked(
        &mut self,
        space: &mut AddrSpace,
        stats: &ParallelMarkStats,
        mark_wall_ns: u64,
    ) -> SweepReport {
        let mut active = self.active.take().expect("no sweep in flight");
        let bytes = active.marker.plan().total_bytes();
        let words = stats.words;
        let skipped = bytes.saturating_sub(words * WORD_SIZE as u64);
        let pin_edges = active
            .recorder
            .as_ref()
            .map_or(0, |r| r.aggregates().values().map(|a| a.hits).sum());
        active.mark_bytes += bytes;
        active.mark_words += words;
        active.mark_skipped_bytes += skipped;
        active.mark_filter_rejects += stats.filter_rejects;
        active.mark_wall_ns += mark_wall_ns;
        let step = StepResult {
            words,
            bytes,
            skipped_bytes: skipped,
            heap_words: stats.heap_words,
            pages_skipped: stats.pages_skipped,
            pages_replayed: stats.pages_replayed,
            filter_rejects: stats.filter_rejects,
            pin_edges,
            finished: true,
        };
        self.absorb_mark_counters(&step);
        let report = SweepReport { marked_words: words, ..SweepReport::default() };
        self.complete_sweep(space, active, report)
    }

    /// The shared sweep tail: `MarkPhase` event, optional stop-the-world
    /// pass, the release walk over the locked quarantine generation,
    /// post-sweep purge and the `SweepEnd` event. Both
    /// [`MineSweeper::finish_sweep`] and
    /// [`MineSweeper::finish_sweep_premarked`] come through here, so a
    /// pooled arena's release semantics cannot drift from the
    /// single-arena path.
    fn complete_sweep(
        &mut self,
        space: &mut AddrSpace,
        active: ActiveSweep,
        mut report: SweepReport,
    ) -> SweepReport {
        let id = active.id;
        let layout = *space.layout();
        report.skipped_bytes = active.mark_skipped_bytes;
        let marked_granules = self.shadow.marked_count();
        // Profiler attribution for this sweep: deltas of the cumulative
        // sweep.* cells against the sweep-start baselines. `None` (the
        // default) keeps the event byte-identical to its pre-profiler
        // shape.
        let mark_prof = match (&self.prof, active.prof_base) {
            (Some(p), Some(b)) => Some(telemetry::MarkProf {
                // Deterministic traces zero wall-clock fields (the same
                // contract as `wall_ns` via the inert stopwatch).
                scan_ns: if self.tracer.deterministic() {
                    0
                } else {
                    p.step_scan_ns.sum().saturating_sub(b.scan_ns)
                },
                wc_window_bits: p.wc_window_bits.get().saturating_sub(b.window_bits),
                wc_direct: p.wc_direct.get().saturating_sub(b.direct),
                cache_evictions: p.chunk_cache_evictions.get().saturating_sub(b.evictions),
            }),
            _ => None,
        };
        self.tracer.emit(|| EventKind::MarkPhase {
            sweep: id,
            bytes: active.mark_bytes,
            words: active.mark_words,
            skipped_bytes: active.mark_skipped_bytes,
            filter_rejects: active.mark_filter_rejects,
            marked_granules,
            wall_ns: active.mark_wall_ns,
            prof: mark_prof,
        });

        // Phase 2 (optional): stop the world, re-check modified pages.
        if self.cfg.mode == SweepMode::MostlyConcurrent && self.cfg.marking {
            let mut stw_words = 0;
            for page in space.soft_dirty_pages() {
                stw_words += mark_page(space, &layout, &mut self.shadow, page);
                report.stw_pages += 1;
            }
            report.marked_words += stw_words;
            self.counters.stw_pages.add(report.stw_pages);
            self.counters.stw_passes.inc();
            let pages = report.stw_pages;
            self.tracer.emit(|| EventKind::StwPass { sweep: id, pages, words: stw_words });
        }

        // Phase 3: release unmarked entries, retain the rest.
        let edges = active.recorder.as_ref().map(EdgeRecorder::aggregates);
        for entry in active.locked {
            let dangling = self.cfg.marking
                && self.shadow.range_marked(entry.base, entry.usable);
            self.resolve_entry(space, entry, dangling, id, edges.as_ref(), &mut report);
        }
        report.marked_granules = self.shadow.marked_count();
        self.tracer.emit(|| EventKind::Release {
            sweep: id,
            released: report.released,
            released_bytes: report.released_bytes,
            failed_frees: report.failed,
        });

        // §4.5: synchronise allocator cleanup with the end of the sweep.
        if self.cfg.purge_after_sweep {
            let purged0 = self.heap.purged_pages();
            self.heap.purge_all(space);
            let purged_pages = self.heap.purged_pages().saturating_sub(purged0);
            self.tracer.emit(|| EventKind::Purge { sweep: id, purged_pages });
        }
        self.counters.sweeps.inc();
        let wall_ns = active.stopwatch.elapsed_ns();
        let ledger = self.sweep_end_ledger();
        self.tracer.emit(|| EventKind::SweepEnd { sweep: id, wall_ns, ledger });
        report
    }

    /// The ledger snapshot a `SweepEnd` event carries: `None` with
    /// forensics off (the event then serialises in its pre-forensics
    /// shape). With it on, the ledger's bytes must mirror the
    /// quarantine's failed-byte accounting exactly — both derive from the
    /// same release decisions.
    fn sweep_end_ledger(&self) -> Option<telemetry::LedgerTotals> {
        if !self.cfg.forensics.enabled() {
            return None;
        }
        let totals = self.ledger.totals();
        debug_assert_eq!(
            totals.bytes,
            self.quarantine.failed_bytes(),
            "ledger and quarantine disagree on failed bytes"
        );
        Some(totals)
    }

    /// The single release-or-retain decision point for one locked entry —
    /// both [`MineSweeper::finish_sweep`] and
    /// [`MineSweeper::sweep_now_with_shadow`] come through here, so the
    /// forensics ledger can never diverge from the quarantine's own
    /// failed-free accounting.
    fn resolve_entry(
        &mut self,
        space: &mut AddrSpace,
        entry: QEntry,
        dangling: bool,
        sweep: u64,
        edges: Option<&HashMap<u64, EdgeAgg>>,
        report: &mut SweepReport,
    ) {
        let forensics = self.cfg.forensics.enabled();
        let agg = edges.and_then(|m| m.get(&entry.base.raw()).copied());
        if forensics {
            // Aggregates only hold entries with at least one recorded hit.
            if let Some(a) = agg {
                let (site, base, bytes) = (entry.site, entry.base.raw(), entry.swept_bytes());
                self.tracer.emit(|| EventKind::PinEdge {
                    sweep,
                    site,
                    base,
                    bytes,
                    hits: a.hits,
                    src: a.src,
                });
            }
        }
        if dangling && self.cfg.honor_failed_frees {
            if forensics {
                let swept = entry.swept_bytes();
                let (site, base) = (entry.site, entry.base.raw());
                let (rec, first) = self.ledger.on_failed(&entry, sweep, agg);
                let (survivals, first_failed) = (rec.survivals, rec.first_failed);
                if first {
                    self.counters.ledger_bytes_in.add(swept);
                }
                self.tracer.emit(|| EventKind::FailedFreeAged {
                    sweep,
                    site,
                    base,
                    bytes: swept,
                    survivals,
                    first_failed,
                });
            }
            self.quarantine.on_failed(entry);
            self.counters.failed_frees.inc();
            report.failed += 1;
        } else {
            if forensics {
                if let Some(rec) = self.ledger.on_released(entry.base) {
                    self.counters.ledger_bytes_out.add(rec.bytes);
                    self.residency.record(sweep.saturating_sub(rec.first_failed));
                }
            }
            self.release_entry(space, &entry);
            report.released += 1;
            report.released_bytes += entry.usable;
        }
    }

    fn release_entry(&mut self, space: &mut AddrSpace, entry: &QEntry) {
        if entry.unmapped_pages > 0 {
            // Restore access before handing the range back; backing stays
            // discarded (the allocator reuses it demand-zero).
            let interior = PageRange::interior(entry.base, entry.usable);
            space.protect(interior, Protection::ReadWrite).expect("mapped");
        }
        self.heap.free(space, entry.base).expect("quarantine owns this allocation");
        self.quarantine.on_released(entry);
        self.counters.released.inc();
        self.counters.released_bytes.add(entry.usable);
    }

    /// Runs a complete sweep synchronously and returns its report.
    ///
    /// # Panics
    ///
    /// Panics if a sweep is already in flight.
    pub fn sweep_now(&mut self, space: &mut AddrSpace) -> SweepReport {
        self.start_sweep(space);
        self.finish_sweep(space)
    }

    /// Runs a sweep whose marking phase is replaced by a caller-provided
    /// shadow map. Used by the MTE tag-aware sweep ([`crate::MteHeap`]),
    /// whose marker only records pointers that could actually dereference
    /// their target under tag checking.
    ///
    /// # Panics
    ///
    /// Panics if a sweep is already in flight.
    pub fn sweep_now_with_shadow(
        &mut self,
        space: &mut AddrSpace,
        shadow: &ShadowMap,
    ) -> SweepReport {
        assert!(self.active.is_none(), "sweep already in flight");
        self.next_sweep += 1;
        let id = self.next_sweep;
        let quarantine_bytes = self.quarantine.tracked_bytes();
        let quarantine_entries = self.quarantine.len() as u64;
        self.tracer.emit(|| EventKind::SweepStart {
            sweep: id,
            trigger: Trigger::Manual,
            quarantine_bytes,
            quarantine_entries,
        });
        let stopwatch = self.tracer.stopwatch();
        let locked = self.quarantine.lock_generation();
        let mut report = SweepReport::default();
        // The caller's shadow map replaced marking, so the mark phase has
        // zero swept bytes/words here — only the granule count is real.
        let marked_granules = shadow.marked_count();
        self.tracer.emit(|| EventKind::MarkPhase {
            sweep: id,
            bytes: 0,
            words: 0,
            skipped_bytes: 0,
            filter_rejects: 0,
            marked_granules,
            wall_ns: 0,
            prof: None,
        });
        // Caller-provided shadow map: marking ran elsewhere, so there is no
        // edge recorder — forensics still keeps the ledger from the release
        // decisions themselves.
        for entry in locked {
            let dangling = shadow.range_marked(entry.base, entry.usable);
            self.resolve_entry(space, entry, dangling, id, None, &mut report);
        }
        report.marked_granules = shadow.marked_count();
        self.tracer.emit(|| EventKind::Release {
            sweep: id,
            released: report.released,
            released_bytes: report.released_bytes,
            failed_frees: report.failed,
        });
        if self.cfg.purge_after_sweep {
            let purged0 = self.heap.purged_pages();
            self.heap.purge_all(space);
            let purged_pages = self.heap.purged_pages().saturating_sub(purged0);
            self.tracer.emit(|| EventKind::Purge { sweep: id, purged_pages });
        }
        self.counters.sweeps.inc();
        let wall_ns = stopwatch.elapsed_ns();
        let ledger = self.sweep_end_ledger();
        self.tracer.emit(|| EventKind::SweepEnd { sweep: id, wall_ns, ledger });
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmem::PAGE_SIZE;

    fn setup(cfg: MsConfig) -> (AddrSpace, MineSweeper) {
        (AddrSpace::new(), MineSweeper::new(cfg))
    }

    #[test]
    fn free_quarantines_and_zeroes() {
        let (mut space, mut ms) = setup(MsConfig::fully_concurrent());
        let a = ms.malloc(&mut space, 64);
        space.write_word(a, 0xdead).unwrap();
        assert_eq!(ms.free(&mut space, a), FreeOutcome::Quarantined);
        assert_eq!(space.read_word(a).unwrap(), 0, "quarantined data is zeroed");
        assert!(ms.quarantine().contains(a));
        assert_eq!(ms.heap().stats().frees, 0, "allocator not yet told");
    }

    #[test]
    fn clean_quarantine_is_released_by_sweep() {
        let (mut space, mut ms) = setup(MsConfig::fully_concurrent());
        let a = ms.malloc(&mut space, 64);
        ms.free(&mut space, a);
        let report = ms.sweep_now(&mut space);
        assert_eq!(report.released, 1);
        assert_eq!(report.failed, 0);
        assert!(!ms.quarantine().contains(a));
        assert_eq!(ms.heap().stats().frees, 1);
    }

    #[test]
    fn dangling_pointer_blocks_release_until_erased() {
        let (mut space, mut ms) = setup(MsConfig::fully_concurrent());
        let a = ms.malloc(&mut space, 64);
        let holder = ms.malloc(&mut space, 64);
        space.write_word(holder, a.raw()).unwrap(); // dangling-to-be
        ms.free(&mut space, a);

        let report = ms.sweep_now(&mut space);
        assert_eq!((report.released, report.failed), (0, 1));
        assert!(ms.quarantine().contains(a), "failed free stays quarantined");

        space.write_word(holder, 0).unwrap(); // erase the dangling pointer
        let report = ms.sweep_now(&mut space);
        assert_eq!((report.released, report.failed), (1, 0));
    }

    #[test]
    fn interior_dangling_pointer_also_blocks() {
        let (mut space, mut ms) = setup(MsConfig::fully_concurrent());
        let a = ms.malloc(&mut space, 256);
        let holder = ms.malloc(&mut space, 64);
        space.write_word(holder, a.raw() + 128).unwrap();
        ms.free(&mut space, a);
        assert_eq!(ms.sweep_now(&mut space).failed, 1);
    }

    #[test]
    fn no_reallocation_while_dangling_pointer_exists() {
        // The core security property: the quarantined range cannot be
        // returned by malloc while a dangling pointer to it remains.
        let (mut space, mut ms) = setup(MsConfig::fully_concurrent());
        let a = ms.malloc(&mut space, 64);
        let holder = ms.malloc(&mut space, 64);
        space.write_word(holder, a.raw()).unwrap();
        ms.free(&mut space, a);
        ms.sweep_now(&mut space);
        for _ in 0..200 {
            let b = ms.malloc(&mut space, 64);
            assert_ne!(b, a, "quarantined memory must not be reallocated");
        }
    }

    #[test]
    fn zeroing_breaks_quarantine_internal_cycles() {
        // §4.1 / Figure 6: two quarantined allocations pointing at each
        // other must still be reclaimed, because free() zeroed the edges.
        let (mut space, mut ms) = setup(MsConfig::fully_concurrent());
        let a = ms.malloc(&mut space, 64);
        let b = ms.malloc(&mut space, 64);
        space.write_word(a, b.raw()).unwrap();
        space.write_word(b, a.raw()).unwrap();
        ms.free(&mut space, a);
        ms.free(&mut space, b);
        let report = ms.sweep_now(&mut space);
        assert_eq!((report.released, report.failed), (2, 0));
    }

    #[test]
    fn without_zeroing_cycles_fail_to_free() {
        let cfg = MsConfig::builder().zeroing(false).build();
        let (mut space, mut ms) = setup(cfg);
        let a = ms.malloc(&mut space, 64);
        let b = ms.malloc(&mut space, 64);
        space.write_word(a, b.raw()).unwrap();
        space.write_word(b, a.raw()).unwrap();
        ms.free(&mut space, a);
        ms.free(&mut space, b);
        let report = ms.sweep_now(&mut space);
        assert_eq!((report.released, report.failed), (0, 2), "cycle pins both");
    }

    #[test]
    fn double_free_is_idempotent_and_reported() {
        let cfg = MsConfig::builder().report_double_frees(true).build();
        let (mut space, mut ms) = setup(cfg);
        let a = ms.malloc(&mut space, 64);
        assert_eq!(ms.free(&mut space, a), FreeOutcome::Quarantined);
        assert_eq!(ms.free(&mut space, a), FreeOutcome::DoubleFree);
        assert_eq!(ms.free(&mut space, a), FreeOutcome::DoubleFree);
        assert_eq!(ms.stats().double_frees, 2);
        assert_eq!(ms.stats().double_free_reports, vec![a, a]);
        // Exactly one true free reaches the allocator.
        ms.sweep_now(&mut space);
        assert_eq!(ms.heap().stats().frees, 1);
    }

    #[test]
    fn invalid_free_is_rejected_without_corruption() {
        let (mut space, mut ms) = setup(MsConfig::fully_concurrent());
        let a = ms.malloc(&mut space, 64);
        assert_eq!(ms.free(&mut space, a + 8), FreeOutcome::Invalid);
        assert_eq!(
            ms.free(&mut space, Addr::new(0x4444_0000_0000)),
            FreeOutcome::Invalid
        );
        assert_eq!(ms.stats().invalid_frees, 2);
        // The real allocation is still usable and freeable.
        space.write_word(a, 1).unwrap();
        assert_eq!(ms.free(&mut space, a), FreeOutcome::Quarantined);
    }

    #[test]
    fn large_allocation_unmapping_releases_rss_and_protects() {
        let (mut space, mut ms) = setup(MsConfig::fully_concurrent());
        let size = 64 * PAGE_SIZE as u64;
        let a = ms.malloc(&mut space, size);
        // Touch every page.
        for p in 0..64u64 {
            space.write_word(a + p * PAGE_SIZE as u64, p).unwrap();
        }
        let rss_before = space.rss_bytes();
        ms.free(&mut space, a);
        assert!(
            space.rss_bytes() <= rss_before - 63 * PAGE_SIZE as u64,
            "interior pages decommitted"
        );
        // Dangling writes into the unmapped range fault (clean termination)
        // instead of landing in recycled memory.
        assert!(space.write_word(a + PAGE_SIZE as u64, 0xbad).is_err());
        assert!(ms.stats().unmapped_pages >= 63);
    }

    #[test]
    fn unmapped_entry_release_restores_usability() {
        let (mut space, mut ms) = setup(MsConfig::fully_concurrent());
        let size = 16 * PAGE_SIZE as u64;
        let a = ms.malloc(&mut space, size);
        space.write_word(a, 1).unwrap();
        ms.free(&mut space, a);
        let report = ms.sweep_now(&mut space);
        assert_eq!(report.released, 1);
        let b = ms.malloc(&mut space, size);
        assert_eq!(b, a, "extent recycled after quarantine");
        space.write_word(b + 5 * PAGE_SIZE as u64, 7).unwrap();
        assert_eq!(space.read_word(b + 5 * PAGE_SIZE as u64).unwrap(), 7);
    }

    #[test]
    fn sweep_trigger_fires_on_quarantine_fraction() {
        let (mut space, mut ms) = setup(MsConfig::fully_concurrent());
        // Build a heap of ~2 MiB live.
        let live: Vec<Addr> = (0..512).map(|_| ms.malloc(&mut space, 4096)).collect();
        assert!(!ms.sweep_needed(&space));
        // Free ~20% of it (above the 15% threshold and the floor).
        for &a in live.iter().take(103) {
            ms.free(&mut space, a);
        }
        assert!(ms.sweep_needed(&space));
        ms.sweep_now(&mut space);
        assert!(!ms.sweep_needed(&space), "trigger resets after sweep");
    }

    #[test]
    fn failed_frees_do_not_retrigger_sweeps() {
        let (mut space, mut ms) = setup(MsConfig::fully_concurrent());
        let live: Vec<Addr> = (0..512).map(|_| ms.malloc(&mut space, 4096)).collect();
        let holder = ms.malloc(&mut space, 4096);
        // Free 20% with dangling pointers to each (all will fail).
        for (i, &a) in live.iter().take(103).enumerate() {
            space.write_word(holder + (i as u64 * 8), a.raw()).unwrap();
            ms.free(&mut space, a);
        }
        ms.sweep_now(&mut space);
        assert_eq!(ms.stats().failed_frees, 103);
        assert!(
            !ms.sweep_needed(&space),
            "failed frees are subtracted from both sides (§3.2)"
        );
    }

    #[test]
    fn mostly_concurrent_stw_catches_moved_pointer() {
        // The §4.3 race: the only copy of a dangling pointer moves from B
        // to A (already swept), then B is erased. Fully-concurrent misses
        // it; mostly-concurrent re-checks the dirty pages and catches it.
        for (mode, expect_failed) in
            [(SweepMode::FullyConcurrent, 0), (SweepMode::MostlyConcurrent, 1)]
        {
            let cfg = MsConfig::builder().mode(mode).build();
            let (mut space, mut ms) = setup(cfg);
            let victim = ms.malloc(&mut space, 64);
            let slot_a = ms.malloc(&mut space, 64); // low address (swept first)
            let slot_b = ms.malloc(&mut space, 64);
            assert!(slot_a < slot_b);
            space.write_word(slot_b, victim.raw()).unwrap();
            ms.free(&mut space, victim);

            ms.start_sweep(&mut space);
            // Drive the marker one word at a time until it has passed
            // slot_a but not yet reached slot_b.
            loop {
                let r = ms.sweep_step(&mut space, 1);
                if marker_passed(&ms, slot_a) || r.finished {
                    break;
                }
            }
            // Move the pointer behind the cursor and erase the original.
            if marker_passed(&ms, slot_b) {
                // Degenerate layout; skip (cannot construct the race).
                ms.finish_sweep(&mut space);
                continue;
            }
            space.write_word(slot_a, victim.raw()).unwrap();
            space.write_word(slot_b, 0).unwrap();
            let report = ms.finish_sweep(&mut space);
            assert_eq!(
                report.failed, expect_failed,
                "mode {mode:?}: STW must catch the moved pointer"
            );
        }
    }

    fn marker_passed(ms: &MineSweeper, addr: Addr) -> bool {
        ms.active.as_ref().is_some_and(|a| a.marker.has_passed(addr))
    }

    #[test]
    fn partial_base_forwards_frees() {
        let (mut space, mut ms) = setup(MsConfig::partial_base());
        let a = ms.malloc(&mut space, 64);
        space.write_word(a, 0xdead).unwrap();
        assert_eq!(ms.free(&mut space, a), FreeOutcome::Passthrough);
        assert_eq!(ms.heap().stats().frees, 1);
        assert!(!ms.sweep_needed(&space), "no quarantine, no sweeps");
    }

    #[test]
    fn partial_unmap_zero_forwards_after_scrubbing() {
        let (mut space, mut ms) = setup(MsConfig::partial_unmap_zero());
        let a = ms.malloc(&mut space, 64);
        space.write_word(a, 0xdead).unwrap();
        assert_eq!(ms.free(&mut space, a), FreeOutcome::Passthrough);
        // Data zeroed, allocation recycled immediately.
        let b = ms.malloc(&mut space, 64);
        assert_eq!(b, a);
        assert_eq!(space.read_word(b).unwrap(), 0);
    }

    #[test]
    fn partial_quarantine_recycles_without_marking() {
        let (mut space, mut ms) = setup(MsConfig::partial_quarantine());
        let a = ms.malloc(&mut space, 64);
        let holder = ms.malloc(&mut space, 64);
        space.write_word(holder, a.raw()).unwrap();
        ms.free(&mut space, a);
        let report = ms.sweep_now(&mut space);
        assert_eq!(report.released, 1, "no marking: everything recycles");
        assert_eq!(report.marked_words, 0);
    }

    #[test]
    fn partial_sweep_marks_but_releases_anyway() {
        let (mut space, mut ms) = setup(MsConfig::partial_sweep());
        let a = ms.malloc(&mut space, 64);
        let holder = ms.malloc(&mut space, 64);
        space.write_word(holder, a.raw()).unwrap();
        ms.free(&mut space, a);
        let report = ms.sweep_now(&mut space);
        assert_eq!(report.released, 1);
        assert_eq!(report.failed, 0);
        assert!(report.marked_words > 0, "marking did run");
    }

    #[test]
    fn pause_trigger_fires_under_quarantine_overrun() {
        let cfg = MsConfig::builder().pause_factor(2.0).build();
        let (mut space, mut ms) = setup(cfg);
        let live: Vec<Addr> = (0..600).map(|_| ms.malloc(&mut space, 4096)).collect();
        ms.start_sweep(&mut space);
        assert!(!ms.pause_needed());
        // Quarantine > pause_factor * threshold * heap while sweeping.
        for &a in live.iter().take(400) {
            ms.free(&mut space, a);
        }
        assert!(ms.pause_needed());
        ms.finish_sweep(&mut space);
        assert!(!ms.pause_needed(), "pause clears once the sweep lands");
    }

    #[test]
    fn purge_after_sweep_drops_free_extent_rss() {
        let (mut space, mut ms) = setup(MsConfig::fully_concurrent());
        let addrs: Vec<Addr> =
            (0..64).map(|_| ms.malloc(&mut space, 20 * PAGE_SIZE as u64)).collect();
        for &a in &addrs {
            space.write_word(a, 1).unwrap();
            ms.free(&mut space, a);
        }
        ms.sweep_now(&mut space);
        assert_eq!(
            ms.heap().free_committed_bytes(&space),
            0,
            "post-sweep purge decommits the allocator's free extents"
        );
    }

    #[test]
    fn unmapped_trigger_fires_at_nine_times_rss() {
        // §4.2: a sweep is also initiated once unmapped quarantined bytes
        // reach 9x the program's physical footprint, to bound kernel and
        // allocator metadata pressure.
        let (mut space, mut ms) = setup(MsConfig::fully_concurrent());
        // Small resident footprint.
        let keep = ms.malloc(&mut space, 4096);
        space.write_word(keep, 1).unwrap();
        // Free a stream of large allocations; their pages are unmapped so
        // the proportional trigger never sees them.
        let mut fired = false;
        for _ in 0..400 {
            let big = ms.malloc(&mut space, 64 * PAGE_SIZE as u64);
            space.write_word(big, 1).unwrap();
            ms.free(&mut space, big);
            if ms.sweep_needed(&space) {
                fired = true;
                break;
            }
        }
        assert!(fired, "unmapped trigger must eventually fire");
        assert!(
            ms.quarantine().unmapped_bytes() as f64 >= 9.0 * space.rss_bytes() as f64,
            "fired exactly when unmapped bytes reached 9x RSS"
        );
        ms.sweep_now(&mut space);
    }

    #[test]
    fn tiny_heaps_do_not_thrash_sweeps() {
        // The MIN_SWEEP_BYTES floor: a few small frees on a tiny heap must
        // not trigger a sweep even though they exceed 15% proportionally.
        let (mut space, mut ms) = setup(MsConfig::fully_concurrent());
        let a = ms.malloc(&mut space, 256);
        let _b = ms.malloc(&mut space, 256);
        ms.free(&mut space, a);
        assert!(!ms.sweep_needed(&space), "50% of a 512-byte heap is not sweep-worthy");
    }

    #[test]
    fn quarantined_reads_are_benign_zeroes() {
        // §1.2: quarantined memory may still be read (benign use-after-
        // free); MineSweeper guarantees it is not *reallocated*. With
        // zeroing, such reads observe zeroes rather than stale secrets.
        let (mut space, mut ms) = setup(MsConfig::fully_concurrent());
        let a = ms.malloc(&mut space, 64);
        space.write_word(a, 0x5ec7e7).unwrap();
        ms.free(&mut space, a);
        assert_eq!(space.read_word(a).unwrap(), 0, "no data leaks from quarantine");
    }

    #[test]
    fn sweep_step_budget_is_respected_midflight() {
        let (mut space, mut ms) = setup(MsConfig::fully_concurrent());
        for _ in 0..64 {
            let a = ms.malloc(&mut space, 4096);
            space.write_word(a, 1).unwrap();
            ms.free(&mut space, a);
        }
        ms.start_sweep(&mut space);
        assert!(ms.in_sweep());
        let before = ms.sweep_remaining_bytes();
        let r = ms.sweep_step(&mut space, 16);
        assert!(r.words <= 16);
        assert!(ms.sweep_remaining_bytes() < before);
        let report = ms.finish_sweep(&mut space);
        assert!(!ms.in_sweep());
        assert!(report.released > 0);
    }

    #[test]
    fn sweeps_count_in_stats() {
        let (mut space, mut ms) = setup(MsConfig::mostly_concurrent());
        let a = ms.malloc(&mut space, 64);
        ms.free(&mut space, a);
        ms.sweep_now(&mut space);
        ms.sweep_now(&mut space);
        assert_eq!(ms.stats().sweeps, 2);
        assert_eq!(ms.stats().stw_passes, 2);
    }
}
