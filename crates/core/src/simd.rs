//! Runtime-dispatched SIMD kernel for the mark loop.
//!
//! The sweep's inner loop (§4.4) classifies every aligned word: is it a
//! potential heap pointer? That is a pure range test against the heap
//! segment — `lo <= word < hi` — with two properties the kernel exploits:
//!
//! * **zero dominates.** Zero-on-free (§4.1) makes all-zero memory the
//!   overwhelmingly common swept input, so words are processed in chunks
//!   of [`CHUNK_WORDS`] with a lane-OR early-out: one compare retires
//!   eight words.
//! * **the test is branch-free.** `lo <= x < hi` for unsigned `x` is
//!   `(x - lo) < (hi - lo)` — one subtract and one compare per lane, no
//!   data-dependent branches until a survivor is found.
//!
//! Three tiers implement the same contract (visit every in-range word in
//! index order) and are selected once per process by [`active_tier`]:
//!
//! * [`ScanTier::Avx2`] — 4×u64 vectors; the unsigned compare uses the
//!   sign-flip trick (`x ^ MSB` turns unsigned order into signed order)
//!   because AVX2 has no unsigned 64-bit compare. Survivor lanes come
//!   back as a movemask bitmask, so the scalar tail only touches words
//!   that passed.
//! * [`ScanTier::Sse2`] — baseline x86-64 vectors: the zero early-out is
//!   vectorised (SSE2 has no 64-bit compare at all), survivors of the
//!   zero test take the scalar range test.
//! * [`ScanTier::Swar`] — portable scalar fallback: chunked lane-OR
//!   early-out plus the same branch-free range test, no `std::arch`.
//!   This is what non-x86 targets run, and what `MS_SCAN_TIER=swar`
//!   forces so any machine can exercise both code paths.
//!
//! All tiers are differential-tested against each other (bit-identical
//! visit sequences) in the core proptests.

use std::sync::OnceLock;

/// Words per kernel chunk. Eight words (64 bytes) is one cache line: the
/// lane-OR early-out retires exactly one line per compare, and the two
/// 256-bit AVX2 loads it takes stay within a single line fill.
pub const CHUNK_WORDS: usize = 8;

/// Environment variable naming the scan tier to force (`avx2`, `sse2` or
/// `swar`). Requests for a tier the CPU lacks fall back to the best
/// available one; `swar` always works, which is how CI exercises the
/// portable fallback on AVX2 hardware.
pub const TIER_ENV: &str = "MS_SCAN_TIER";

/// One implementation tier of the scan kernel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ScanTier {
    /// AVX2: 4×u64 lanes, vectorised zero early-out and range test.
    Avx2,
    /// SSE2 (x86-64 baseline): vectorised zero early-out, scalar range
    /// test on chunks that survive it.
    Sse2,
    /// Portable scalar fallback (SWAR): chunked OR early-out, branch-free
    /// scalar range test. Runs on every target.
    Swar,
}

impl ScanTier {
    /// Lower-case tier name, as accepted by [`TIER_ENV`].
    pub fn as_str(self) -> &'static str {
        match self {
            ScanTier::Avx2 => "avx2",
            ScanTier::Sse2 => "sse2",
            ScanTier::Swar => "swar",
        }
    }

    /// Parses a tier name (case-insensitive).
    pub fn parse(s: &str) -> Option<ScanTier> {
        match s.to_ascii_lowercase().as_str() {
            "avx2" => Some(ScanTier::Avx2),
            "sse2" => Some(ScanTier::Sse2),
            "swar" => Some(ScanTier::Swar),
            _ => None,
        }
    }
}

/// The tiers this CPU can run, best first. [`ScanTier::Swar`] is always
/// last (and always present).
pub fn available_tiers() -> &'static [ScanTier] {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            &[ScanTier::Avx2, ScanTier::Sse2, ScanTier::Swar]
        } else {
            // SSE2 is architecturally guaranteed on x86-64.
            &[ScanTier::Sse2, ScanTier::Swar]
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        &[ScanTier::Swar]
    }
}

/// The tier the sweep uses when none is forced: the best available one,
/// unless [`TIER_ENV`] requests a (supported) downgrade. Resolved once
/// per process.
pub fn active_tier() -> ScanTier {
    static TIER: OnceLock<ScanTier> = OnceLock::new();
    *TIER.get_or_init(|| {
        let best = available_tiers()[0];
        match std::env::var(TIER_ENV).ok().as_deref().and_then(ScanTier::parse) {
            Some(forced) if available_tiers().contains(&forced) => forced,
            _ => best,
        }
    })
}

/// Runs the scan kernel over `words`: calls `f(index, value)` for every
/// word whose value lies in `[lo, hi)`, in increasing index order, and
/// returns the survivor count (the number of calls made). The count
/// falls out of the survivor masks via popcount, so callers that only
/// need `heap_words` don't pay a per-survivor increment. All tiers
/// produce identical call sequences; `tier` only selects *how* the
/// non-survivors are rejected. Requires `0 < lo < hi` (the heap never
/// starts at address zero), which lets every tier treat zero words as
/// trivially out of range.
pub fn for_each_in_range(
    tier: ScanTier,
    words: &[u64],
    lo: u64,
    hi: u64,
    f: impl FnMut(usize, u64),
) -> u64 {
    debug_assert!(0 < lo && lo < hi);
    match tier {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `active_tier`/`available_tiers` only hand out Avx2 when
        // the CPU reports it; a hand-constructed tier is re-checked here.
        ScanTier::Avx2 if std::arch::is_x86_feature_detected!("avx2") => unsafe {
            x86::scan_avx2(words, lo, hi, f)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline.
        ScanTier::Sse2 => unsafe { x86::scan_sse2(words, lo, hi, f) },
        _ => scan_swar(words, lo, hi, f),
    }
}

/// Scalar tail shared by every tier: the branch-free unsigned range test
/// applied to a non-chunk-multiple remainder. Returns the survivor count.
#[inline]
fn scan_tail(words: &[u64], start: usize, lo: u64, hi: u64, f: &mut impl FnMut(usize, u64)) -> u64 {
    let span = hi - lo;
    let mut count = 0;
    for (i, &v) in words.iter().enumerate().skip(start) {
        if v.wrapping_sub(lo) < span {
            count += 1;
            f(i, v);
        }
    }
    count
}

/// Portable fallback: 8-word chunks, lane-OR zero early-out, branch-free
/// range test. `u64` arithmetic only — this is the reference
/// implementation the vector tiers are tested against.
fn scan_swar(words: &[u64], lo: u64, hi: u64, mut f: impl FnMut(usize, u64)) -> u64 {
    let span = hi - lo;
    let mut i = 0;
    let mut count = 0u64;
    while i + CHUNK_WORDS <= words.len() {
        let c = &words[i..i + CHUNK_WORDS];
        if c[0] | c[1] | c[2] | c[3] | c[4] | c[5] | c[6] | c[7] == 0 {
            i += CHUNK_WORDS;
            continue;
        }
        // Build the survivor mask branch-free, then walk only set bits —
        // the same compaction shape the vector tiers use.
        let mut mask = 0u32;
        for (j, &v) in c.iter().enumerate() {
            mask |= u32::from(v.wrapping_sub(lo) < span) << j;
        }
        count += u64::from(mask.count_ones());
        while mask != 0 {
            let j = mask.trailing_zeros() as usize;
            f(i + j, c[j]);
            mask &= mask - 1;
        }
        i += CHUNK_WORDS;
    }
    count + scan_tail(words, i, lo, hi, &mut f)
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{scan_tail, CHUNK_WORDS};
    use std::arch::x86_64::*;

    /// AVX2 kernel. Works in 32-word groups (eight 4×u64 loads): one
    /// `vptest` zero early-out per group, then a 32-bit survivor mask
    /// built from movemask compaction and walked with `tzcnt`.
    ///
    /// Two width-driven wins over a naive 8-word loop:
    ///
    /// * the `mask != 0` branch runs once per 32 words. At pointer-dense
    ///   survivor rates an 8-word mask is empty ~30% of the time — an
    ///   unpredictable branch per chunk — while a 32-word mask is almost
    ///   never empty, so the walk loop's trip count is what the predictor
    ///   sees, not a coin flip.
    /// * the range test is three ops per lane: `x - lo` (wrapping),
    ///   sign-bit flip, one signed compare against `span ^ MSB`. Flipping
    ///   the sign bit maps unsigned order onto signed order, which is the
    ///   only 64-bit compare AVX2 has.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scan_avx2(words: &[u64], lo: u64, hi: u64, mut f: impl FnMut(usize, u64)) -> u64 {
        const SIGN: i64 = i64::MIN;
        const GROUP: usize = 4 * CHUNK_WORDS;
        let lo_v = _mm256_set1_epi64x(lo as i64);
        let span_s = _mm256_set1_epi64x((hi - lo) as i64 ^ SIGN);
        let sign = _mm256_set1_epi64x(SIGN);
        // in-range ⇔ (x - lo) <u span ⇔ ((x - lo) ^ MSB) <s (span ^ MSB).
        // Zero words fall out for free: 0 - lo wraps to 2^64 - lo, far
        // above any heap span (the kernel contract requires lo > 0).
        let lane_mask = |v: __m256i| -> u32 {
            let d = _mm256_xor_si256(_mm256_sub_epi64(v, lo_v), sign);
            _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(span_s, d))) as u32
        };
        let mut i = 0;
        let mut count = 0u64;
        while i + GROUP <= words.len() {
            let p = words.as_ptr().add(i).cast::<__m256i>();
            let v0 = _mm256_loadu_si256(p);
            let v1 = _mm256_loadu_si256(p.add(1));
            let v2 = _mm256_loadu_si256(p.add(2));
            let v3 = _mm256_loadu_si256(p.add(3));
            let v4 = _mm256_loadu_si256(p.add(4));
            let v5 = _mm256_loadu_si256(p.add(5));
            let v6 = _mm256_loadu_si256(p.add(6));
            let v7 = _mm256_loadu_si256(p.add(7));
            let or = _mm256_or_si256(
                _mm256_or_si256(_mm256_or_si256(v0, v1), _mm256_or_si256(v2, v3)),
                _mm256_or_si256(_mm256_or_si256(v4, v5), _mm256_or_si256(v6, v7)),
            );
            if _mm256_testz_si256(or, or) != 0 {
                i += GROUP;
                continue;
            }
            let mut mask = lane_mask(v0)
                | (lane_mask(v1) << 4)
                | (lane_mask(v2) << 8)
                | (lane_mask(v3) << 12)
                | (lane_mask(v4) << 16)
                | (lane_mask(v5) << 20)
                | (lane_mask(v6) << 24)
                | (lane_mask(v7) << 28);
            count += u64::from(mask.count_ones());
            while mask != 0 {
                let j = mask.trailing_zeros() as usize;
                f(i + j, *words.get_unchecked(i + j));
                mask &= mask - 1;
            }
            i += GROUP;
        }
        // Sub-group remainder: 8-word chunks, then the scalar tail.
        while i + CHUNK_WORDS <= words.len() {
            let p = words.as_ptr().add(i).cast::<__m256i>();
            let a = _mm256_loadu_si256(p);
            let b = _mm256_loadu_si256(p.add(1));
            let or = _mm256_or_si256(a, b);
            if _mm256_testz_si256(or, or) == 0 {
                let mut mask = lane_mask(a) | (lane_mask(b) << 4);
                count += u64::from(mask.count_ones());
                while mask != 0 {
                    let j = mask.trailing_zeros() as usize;
                    f(i + j, *words.get_unchecked(i + j));
                    mask &= mask - 1;
                }
            }
            i += CHUNK_WORDS;
        }
        count + scan_tail(words, i, lo, hi, &mut f)
    }

    /// SSE2 kernel: the zero early-out is vectorised (four 2×u64 loads
    /// ORed, one byte-compare movemask); SSE2 has no 64-bit compare, so
    /// chunks that survive take the scalar branch-free range test.
    ///
    /// # Safety
    ///
    /// The CPU must support SSE2 (always true on x86-64).
    #[target_feature(enable = "sse2")]
    pub unsafe fn scan_sse2(words: &[u64], lo: u64, hi: u64, mut f: impl FnMut(usize, u64)) -> u64 {
        let span = hi - lo;
        let zero = _mm_setzero_si128();
        let mut i = 0;
        let mut count = 0u64;
        while i + CHUNK_WORDS <= words.len() {
            let p = words.as_ptr().add(i).cast::<__m128i>();
            let or = _mm_or_si128(
                _mm_or_si128(_mm_loadu_si128(p), _mm_loadu_si128(p.add(1))),
                _mm_or_si128(_mm_loadu_si128(p.add(2)), _mm_loadu_si128(p.add(3))),
            );
            if _mm_movemask_epi8(_mm_cmpeq_epi8(or, zero)) == 0xffff {
                i += CHUNK_WORDS;
                continue;
            }
            for j in 0..CHUNK_WORDS {
                let v = words[i + j];
                if v.wrapping_sub(lo) < span {
                    count += 1;
                    f(i + j, v);
                }
            }
            i += CHUNK_WORDS;
        }
        count + scan_tail(words, i, lo, hi, &mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(tier: ScanTier, words: &[u64], lo: u64, hi: u64) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        let n = for_each_in_range(tier, words, lo, hi, |i, v| out.push((i, v)));
        assert_eq!(n as usize, out.len(), "returned count must equal calls made");
        out
    }

    #[test]
    fn tiers_agree_on_boundaries_and_tails() {
        let (lo, hi) = (0x1_0000_0000u64, 0x101_0000_0000u64);
        // Boundary values, zeros, junk — at every alignment, with every
        // tail length 0..CHUNK_WORDS.
        let pattern = [
            0u64,
            lo - 1,
            lo,
            lo + 8,
            hi - 1,
            hi,
            hi + 8,
            1,
            u64::MAX,
            0,
            0,
            lo + 4096,
            42,
            0,
            lo + (1 << 30),
            0x7000_0000,
            0,
        ];
        for start in 0..pattern.len() {
            for end in start..=pattern.len() {
                let slice = &pattern[start..end];
                let want = collect(ScanTier::Swar, slice, lo, hi);
                for &tier in available_tiers() {
                    assert_eq!(collect(tier, slice, lo, hi), want, "{tier:?} [{start}..{end}]");
                }
            }
        }
    }

    #[test]
    fn all_zero_chunks_visit_nothing() {
        let words = [0u64; 64];
        for &tier in available_tiers() {
            assert!(collect(tier, &words, 0x1_0000_0000, 0x2_0000_0000).is_empty());
        }
    }

    #[test]
    fn tier_names_round_trip() {
        for t in [ScanTier::Avx2, ScanTier::Sse2, ScanTier::Swar] {
            assert_eq!(ScanTier::parse(t.as_str()), Some(t));
        }
        assert_eq!(ScanTier::parse("AVX2"), Some(ScanTier::Avx2));
        assert_eq!(ScanTier::parse("neon"), None);
    }

    #[test]
    fn active_tier_is_available() {
        assert!(available_tiers().contains(&active_tier()));
        assert_eq!(*available_tiers().last().unwrap(), ScanTier::Swar);
    }
}
