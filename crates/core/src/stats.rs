//! MineSweeper runtime statistics.

use vmem::Addr;

/// Counters describing a [`crate::MineSweeper`]'s history.
#[derive(Clone, Debug, Default)]
pub struct MsStats {
    /// Completed sweeps (Figure 14 counts these).
    pub sweeps: u64,
    /// Sweeps that included a stop-the-world re-check (mostly-concurrent
    /// mode).
    pub stw_passes: u64,
    /// Allocations quarantined.
    pub quarantined: u64,
    /// Bytes quarantined (usable sizes).
    pub quarantined_bytes: u64,
    /// Allocations released from quarantine to the allocator.
    pub released: u64,
    /// Bytes released.
    pub released_bytes: u64,
    /// Failed frees: entries retained by a sweep because a (possible)
    /// dangling pointer was found.
    pub failed_frees: u64,
    /// Double frees absorbed idempotently.
    pub double_frees: u64,
    /// Bytes zero-filled on free (§4.1).
    pub zeroed_bytes: u64,
    /// Pages decommitted by large-allocation unmapping (§4.2).
    pub unmapped_pages: u64,
    /// Bytes examined by marking phases.
    pub swept_bytes: u64,
    /// Pages re-examined by stop-the-world passes.
    pub stw_pages: u64,
    /// Thread-local quarantine buffer flushes.
    pub tl_flushes: u64,
    /// Entries those flushes spilled to the global quarantine.
    pub tl_flushed_entries: u64,
    /// Frees of addresses that were not live allocation bases (reported,
    /// not forwarded — the allocator never sees them).
    pub invalid_frees: u64,
    /// Bytes marking advanced through without reading (incremental sweep:
    /// cache-replayed clean pages plus protected/unmapped skips).
    pub skipped_bytes: u64,
    /// Clean pages whose 512-word re-read was skipped via the
    /// page-summary cache.
    pub pages_skipped: u64,
    /// Skipped pages whose non-empty digest was replayed into the shadow
    /// map.
    pub pages_replayed: u64,
    /// Heap-pointing words suppressed by the candidate filter.
    pub filter_rejects: u64,
    /// Scanned words that passed the heap range test (survivors of the
    /// SIMD classify pass, pre-filter; excludes cache replays).
    pub heap_words: u64,
    /// Double-free reports (populated only with
    /// [`crate::MsConfig::report_double_frees`]; capped).
    pub double_free_reports: Vec<Addr>,
}

impl MsStats {
    /// Allocations still in quarantine according to the counters.
    /// Saturating: a snapshot taken between a sweep's release phase and
    /// its counter updates (or a copied/defaulted stats value) must read
    /// 0, not wrap to 2^64.
    pub fn in_quarantine(&self) -> u64 {
        self.quarantined.saturating_sub(self.released)
    }

    /// Permille of all ever-quarantined bytes still resident (not yet
    /// released) — the quantity the telemetry watchdog's `qratio`
    /// objective bounds, computed here from the layer's own counters so
    /// callers without a registry snapshot can watch the same number.
    /// `None` when nothing was ever quarantined.
    pub fn quarantine_permille(&self) -> Option<u64> {
        if self.quarantined_bytes == 0 {
            return None;
        }
        let resident = self.quarantined_bytes.saturating_sub(self.released_bytes);
        Some(resident.saturating_mul(1000) / self.quarantined_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_quarantine_balance() {
        let s = MsStats { quarantined: 10, released: 7, ..Default::default() };
        assert_eq!(s.in_quarantine(), 3);
    }

    #[test]
    fn in_quarantine_saturates_instead_of_wrapping() {
        let s = MsStats { quarantined: 3, released: 7, ..Default::default() };
        assert_eq!(s.in_quarantine(), 0);
    }

    #[test]
    fn quarantine_permille_matches_the_watchdog_objective() {
        let s = MsStats { quarantined_bytes: 1000, released_bytes: 400, ..Default::default() };
        assert_eq!(s.quarantine_permille(), Some(600));
        assert_eq!(MsStats::default().quarantine_permille(), None, "nothing quarantined");
        let s = MsStats { quarantined_bytes: 5, released_bytes: 9, ..Default::default() };
        assert_eq!(s.quarantine_permille(), Some(0), "over-release saturates to zero");
    }

    #[test]
    fn default_is_all_zero() {
        let s = MsStats::default();
        assert_eq!(s.sweeps + s.quarantined + s.released + s.failed_frees, 0);
        assert!(s.double_free_reports.is_empty());
    }
}
