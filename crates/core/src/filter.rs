//! Quarantine candidate filter: a coarse 1-bit-per-4 KiB bitmap over heap
//! VA marking pages that contain at least one quarantined granule.
//!
//! Only marks that land inside a locked-in quarantine entry can change a
//! release decision (`ShadowMap::range_marked` is consulted per entry,
//! nothing else). The common swept word — zero after zero-on-free, or a
//! pointer to *live* memory — therefore never needs the shadow map at
//! all: the mark loop tests this bitmap first, trading the shadow map's
//! radix walk + CAS cache line for one predictable branch over a dense,
//! read-only bitmap. The filter is rebuilt when the quarantine generation
//! is locked in at sweep start, so it covers exactly the candidate set of
//! the running sweep.
//!
//! Filtering changes which *irrelevant* marks exist in the shadow map
//! (pointers to live memory are dropped), but for every page the filter
//! covers, all marks are preserved — release decisions are bit-for-bit
//! identical to an unfiltered sweep.

use vmem::Addr;
#[cfg(test)]
use vmem::PAGE_SIZE;

/// Dense page-granular bitmap over the span of quarantined allocations.
///
/// The span is `[base_page, base_page + 64 * bits.len())`; addresses
/// outside it are rejected with the same single branch as in-span misses.
/// Built once per sweep from the locked entries, queried once per
/// heap-pointing word.
#[derive(Clone, Debug, Default)]
pub struct CandidateFilter {
    base_page: u64,
    bits: Box<[u64]>,
}

impl CandidateFilter {
    /// Builds the filter from `(base, usable)` allocation ranges — every
    /// page any range touches gets its bit set. An empty iterator yields a
    /// filter that rejects everything (no candidates: no mark can matter).
    pub fn build(ranges: impl IntoIterator<Item = (Addr, u64)>) -> Self {
        let spans: Vec<(u64, u64)> = ranges
            .into_iter()
            .filter(|&(_, usable)| usable > 0)
            .map(|(base, usable)| {
                (base.page().raw(), base.add_bytes(usable - 1).page().raw())
            })
            .collect();
        if spans.is_empty() {
            return CandidateFilter::default();
        }
        let base_page = spans.iter().map(|&(lo, _)| lo).min().expect("non-empty");
        let last_page = spans.iter().map(|&(_, hi)| hi).max().expect("non-empty");
        let words = ((last_page - base_page) / 64 + 1) as usize;
        let mut bits = vec![0u64; words].into_boxed_slice();
        for (lo, hi) in spans {
            for p in lo..=hi {
                let off = p - base_page;
                bits[(off / 64) as usize] |= 1 << (off % 64);
            }
        }
        CandidateFilter { base_page, bits }
    }

    /// Whether `addr` lies on a page holding at least one quarantined
    /// granule — i.e. whether a mark at `addr` could influence any release
    /// decision this sweep.
    #[inline]
    pub fn allows(&self, addr: Addr) -> bool {
        let off = addr.page().raw().wrapping_sub(self.base_page);
        self.bits
            .get((off / 64) as usize)
            .is_some_and(|&w| w >> (off % 64) & 1 == 1)
    }

    /// Number of pages with the candidate bit set (introspection/tests).
    pub fn candidate_pages(&self) -> u64 {
        self.bits.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Bitmap footprint in bytes (telemetry: the cost of the filter).
    pub fn bitmap_bytes(&self) -> u64 {
        (self.bits.len() * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: u64 = PAGE_SIZE as u64;

    #[test]
    fn empty_filter_rejects_everything() {
        let f = CandidateFilter::default();
        assert!(!f.allows(Addr::new(0)));
        assert!(!f.allows(Addr::new(0x4000_0000)));
        assert_eq!(f.candidate_pages(), 0);
    }

    #[test]
    fn covers_every_page_a_range_touches() {
        // 3 bytes straddling a page boundary cover both pages.
        let base = Addr::new(0x1_0000_0000 + P - 8);
        let f = CandidateFilter::build([(base, 16)]);
        assert!(f.allows(base));
        assert!(f.allows(Addr::new(0x1_0000_0000)), "first page");
        assert!(f.allows(Addr::new(0x1_0000_0000 + P)), "second page");
        assert!(!f.allows(Addr::new(0x1_0000_0000 + 2 * P)));
        assert_eq!(f.candidate_pages(), 2);
    }

    #[test]
    fn rejects_outside_span_without_panicking() {
        let f = CandidateFilter::build([(Addr::new(0x2_0000_0000), 64)]);
        assert!(f.allows(Addr::new(0x2_0000_0000 + 63)));
        assert!(!f.allows(Addr::new(0x2_0000_0000 - 8)), "below span");
        assert!(!f.allows(Addr::new(0x7_0000_0000)), "above span");
        assert!(!f.allows(Addr::new(0)), "wrapping offsets reject");
    }

    #[test]
    fn sparse_entries_share_one_span() {
        let lo = Addr::new(0x3_0000_0000);
        let hi = Addr::new(0x3_0000_0000 + 1000 * P);
        let f = CandidateFilter::build([(lo, 64), (hi, 64)]);
        assert!(f.allows(lo));
        assert!(f.allows(hi));
        assert!(!f.allows(Addr::new(0x3_0000_0000 + 500 * P)));
        assert_eq!(f.candidate_pages(), 2);
        assert!(f.bitmap_bytes() <= 1024 / 8 * 2 + 16, "1 bit per page in span");
    }
}
