//! Registry-backed layer counters.
//!
//! [`MsCounters`] holds one [`Counter`] handle per [`crate::MsStats`]
//! field, registered under the `layer` subsystem of a shared
//! [`Registry`]. The registry is the single source of truth: the layer
//! increments these handles on its hot paths (relaxed atomic adds) and
//! [`crate::MineSweeper::stats`] materialises an [`crate::MsStats`]
//! snapshot from them on demand.

use telemetry::{Counter, Registry};

/// The subsystem label the allocator layer registers under.
pub const LAYER_SUBSYSTEM: &str = "layer";

/// Counter handles backing the layer's statistics.
#[derive(Clone, Debug)]
pub struct MsCounters {
    /// Completed sweeps.
    pub sweeps: Counter,
    /// Sweeps that included a stop-the-world re-check.
    pub stw_passes: Counter,
    /// Allocations quarantined.
    pub quarantined: Counter,
    /// Bytes quarantined (usable sizes).
    pub quarantined_bytes: Counter,
    /// Allocations released from quarantine.
    pub released: Counter,
    /// Bytes released.
    pub released_bytes: Counter,
    /// Entries retained by sweeps (failed frees).
    pub failed_frees: Counter,
    /// Double frees absorbed.
    pub double_frees: Counter,
    /// Bytes zero-filled on free.
    pub zeroed_bytes: Counter,
    /// Pages decommitted by large-allocation unmapping.
    pub unmapped_pages: Counter,
    /// Bytes examined by marking phases.
    pub swept_bytes: Counter,
    /// Pages re-examined by stop-the-world passes.
    pub stw_pages: Counter,
    /// Thread-local quarantine buffer flushes.
    pub tl_flushes: Counter,
    /// Entries those flushes spilled to the global quarantine.
    pub tl_flushed_entries: Counter,
    /// Invalid frees rejected.
    pub invalid_frees: Counter,
    /// Bytes the marker advanced through without reading (cache-replayed
    /// clean pages plus protected/unmapped skips).
    pub skipped_bytes: Counter,
    /// Clean pages whose re-read was skipped via the page-summary cache.
    pub pages_skipped: Counter,
    /// Skipped pages whose non-empty digest was replayed.
    pub pages_replayed: Counter,
    /// Heap-pointing words suppressed by the candidate filter.
    pub filter_rejects: Counter,
    /// Scanned words that passed the heap range test (pre-filter
    /// survivors of the SIMD classify pass; excludes cache replays).
    pub heap_words: Counter,
    /// Provenance edges recorded by the forensics layer (post-sampling;
    /// zero with forensics off).
    pub pin_edges: Counter,
    /// Bytes entering the failed-free ledger (first failure of an entry).
    pub ledger_bytes_in: Counter,
    /// Bytes leaving the ledger (release of a previously failed entry).
    /// The ledger's live total is always `ledger_bytes_in -
    /// ledger_bytes_out`.
    pub ledger_bytes_out: Counter,
}

impl MsCounters {
    /// Registers (or re-attaches to) the layer's counters in `registry`.
    pub fn register(registry: &Registry) -> Self {
        let c = |name: &str| registry.counter(LAYER_SUBSYSTEM, name);
        MsCounters {
            sweeps: c("sweeps"),
            stw_passes: c("stw_passes"),
            quarantined: c("quarantined"),
            quarantined_bytes: c("quarantined_bytes"),
            released: c("released"),
            released_bytes: c("released_bytes"),
            failed_frees: c("failed_frees"),
            double_frees: c("double_frees"),
            zeroed_bytes: c("zeroed_bytes"),
            unmapped_pages: c("unmapped_pages"),
            swept_bytes: c("swept_bytes"),
            stw_pages: c("stw_pages"),
            tl_flushes: c("tl_flushes"),
            tl_flushed_entries: c("tl_flushed_entries"),
            invalid_frees: c("invalid_frees"),
            skipped_bytes: c("skipped_bytes"),
            pages_skipped: c("pages_skipped"),
            pages_replayed: c("pages_replayed"),
            filter_rejects: c("filter_rejects"),
            heap_words: c("heap_words"),
            pin_edges: c("pin_edges"),
            ledger_bytes_in: c("ledger_bytes_in"),
            ledger_bytes_out: c("ledger_bytes_out"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_and_shared() {
        let reg = Registry::new();
        let a = MsCounters::register(&reg);
        let b = MsCounters::register(&reg);
        a.sweeps.inc();
        b.sweeps.add(2);
        assert_eq!(a.sweeps.get(), 3, "same cells behind both handles");
        assert_eq!(reg.snapshot().counter(LAYER_SUBSYSTEM, "sweeps"), Some(3));
    }
}
