//! Registry-backed layer counters.
//!
//! [`MsCounters`] holds one [`Counter`] handle per [`crate::MsStats`]
//! field, registered under the `layer` subsystem of a shared
//! [`Registry`]. The registry is the single source of truth: the layer
//! increments these handles on its hot paths (relaxed atomic adds) and
//! [`crate::MineSweeper::stats`] materialises an [`crate::MsStats`]
//! snapshot from them on demand.

use telemetry::{Counter, Histogram, Registry};

use crate::shadow::WriterProf;

/// The subsystem label the allocator layer registers under.
pub const LAYER_SUBSYSTEM: &str = "layer";

/// The subsystem label the sweep profiler registers under.
pub const SWEEP_SUBSYSTEM: &str = "sweep";

/// Counter handles backing the layer's statistics.
#[derive(Clone, Debug)]
pub struct MsCounters {
    /// Completed sweeps.
    pub sweeps: Counter,
    /// Sweeps that included a stop-the-world re-check.
    pub stw_passes: Counter,
    /// Allocations quarantined.
    pub quarantined: Counter,
    /// Bytes quarantined (usable sizes).
    pub quarantined_bytes: Counter,
    /// Allocations released from quarantine.
    pub released: Counter,
    /// Bytes released.
    pub released_bytes: Counter,
    /// Entries retained by sweeps (failed frees).
    pub failed_frees: Counter,
    /// Double frees absorbed.
    pub double_frees: Counter,
    /// Bytes zero-filled on free.
    pub zeroed_bytes: Counter,
    /// Pages decommitted by large-allocation unmapping.
    pub unmapped_pages: Counter,
    /// Bytes examined by marking phases.
    pub swept_bytes: Counter,
    /// Pages re-examined by stop-the-world passes.
    pub stw_pages: Counter,
    /// Thread-local quarantine buffer flushes.
    pub tl_flushes: Counter,
    /// Entries those flushes spilled to the global quarantine.
    pub tl_flushed_entries: Counter,
    /// Invalid frees rejected.
    pub invalid_frees: Counter,
    /// Bytes the marker advanced through without reading (cache-replayed
    /// clean pages plus protected/unmapped skips).
    pub skipped_bytes: Counter,
    /// Clean pages whose re-read was skipped via the page-summary cache.
    pub pages_skipped: Counter,
    /// Skipped pages whose non-empty digest was replayed.
    pub pages_replayed: Counter,
    /// Heap-pointing words suppressed by the candidate filter.
    pub filter_rejects: Counter,
    /// Scanned words that passed the heap range test (pre-filter
    /// survivors of the SIMD classify pass; excludes cache replays).
    pub heap_words: Counter,
    /// Provenance edges recorded by the forensics layer (post-sampling;
    /// zero with forensics off).
    pub pin_edges: Counter,
    /// Bytes entering the failed-free ledger (first failure of an entry).
    pub ledger_bytes_in: Counter,
    /// Bytes leaving the ledger (release of a previously failed entry).
    /// The ledger's live total is always `ledger_bytes_in -
    /// ledger_bytes_out`.
    pub ledger_bytes_out: Counter,
}

impl MsCounters {
    /// Registers (or re-attaches to) the layer's counters in `registry`.
    pub fn register(registry: &Registry) -> Self {
        let c = |name: &str| registry.counter(LAYER_SUBSYSTEM, name);
        MsCounters {
            sweeps: c("sweeps"),
            stw_passes: c("stw_passes"),
            quarantined: c("quarantined"),
            quarantined_bytes: c("quarantined_bytes"),
            released: c("released"),
            released_bytes: c("released_bytes"),
            failed_frees: c("failed_frees"),
            double_frees: c("double_frees"),
            zeroed_bytes: c("zeroed_bytes"),
            unmapped_pages: c("unmapped_pages"),
            swept_bytes: c("swept_bytes"),
            stw_pages: c("stw_pages"),
            tl_flushes: c("tl_flushes"),
            tl_flushed_entries: c("tl_flushed_entries"),
            invalid_frees: c("invalid_frees"),
            skipped_bytes: c("skipped_bytes"),
            pages_skipped: c("pages_skipped"),
            pages_replayed: c("pages_replayed"),
            filter_rejects: c("filter_rejects"),
            heap_words: c("heap_words"),
            pin_edges: c("pin_edges"),
            ledger_bytes_in: c("ledger_bytes_in"),
            ledger_bytes_out: c("ledger_bytes_out"),
        }
    }
}

/// Sampled cycle-attribution handles for the sweep profiler.
///
/// Registered under the `sweep` subsystem only when
/// [`crate::MsConfig::profiler`] is on; every handle is shared through
/// the registry so concurrent helpers fold into the same cells with
/// relaxed atomic adds. The mark hot path itself never touches these —
/// scan timing is gated on one `Option` branch and the write-combine /
/// chunk-cache counters are accumulated privately per writer
/// ([`WriterProf`]) and folded here once per scan step.
#[derive(Clone, Debug)]
pub struct SweepProf {
    /// Nanoseconds spent scanning per mark step (histogram).
    pub step_scan_ns: Histogram,
    /// Nanoseconds spent scanning per claimed chunk (histogram).
    pub chunk_scan_ns: Histogram,
    /// Per-helper busy/wall utilisation in percent (histogram).
    pub helper_busy_pct: Histogram,
    /// Chunks processed per helper thread (histogram).
    pub helper_chunks: Histogram,
    /// Chunks claimed in order from the shared cursor.
    pub chunks_claimed: Counter,
    /// Chunks claimed by a helper other than the calling thread.
    pub chunks_stolen: Counter,
    /// Shadow writes that took the single-word direct-store path.
    pub wc_direct: Counter,
    /// Write-combine windows opened (two consecutive same-line marks).
    pub wc_window_opens: Counter,
    /// Bits published from write-combine windows at flush.
    pub wc_window_bits: Counter,
    /// Write-combine window flushes.
    pub wc_flushes: Counter,
    /// Chunk-pointer cache hits in the shadow writer.
    pub chunk_cache_hits: Counter,
    /// Chunk-pointer cache misses (radix re-walks).
    pub chunk_cache_misses: Counter,
    /// Chunk-pointer cache evictions (live tag replaced).
    pub chunk_cache_evictions: Counter,
}

impl SweepProf {
    /// Registers (or re-attaches to) the profiler handles in `registry`.
    pub fn register(registry: &Registry) -> Self {
        let c = |name: &str| registry.counter(SWEEP_SUBSYSTEM, name);
        let h = |name: &str| registry.histogram(SWEEP_SUBSYSTEM, name);
        SweepProf {
            step_scan_ns: h("step_scan_ns"),
            chunk_scan_ns: h("chunk_scan_ns"),
            helper_busy_pct: h("helper_busy_pct"),
            helper_chunks: h("helper_chunks"),
            chunks_claimed: c("chunks_claimed"),
            chunks_stolen: c("chunks_stolen"),
            wc_direct: c("wc_direct"),
            wc_window_opens: c("wc_window_opens"),
            wc_window_bits: c("wc_window_bits"),
            wc_flushes: c("wc_flushes"),
            chunk_cache_hits: c("chunk_cache_hits"),
            chunk_cache_misses: c("chunk_cache_misses"),
            chunk_cache_evictions: c("chunk_cache_evictions"),
        }
    }

    /// Folds one writer's private counters into the shared cells.
    pub fn fold_writer(&self, w: &WriterProf) {
        self.wc_direct.add(w.direct);
        self.wc_window_opens.add(w.window_opens);
        self.wc_window_bits.add(w.window_bits);
        self.wc_flushes.add(w.flushes);
        self.chunk_cache_hits.add(w.cache_hits);
        self.chunk_cache_misses.add(w.cache_misses);
        self.chunk_cache_evictions.add(w.cache_evictions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_and_shared() {
        let reg = Registry::new();
        let a = MsCounters::register(&reg);
        let b = MsCounters::register(&reg);
        a.sweeps.inc();
        b.sweeps.add(2);
        assert_eq!(a.sweeps.get(), 3, "same cells behind both handles");
        assert_eq!(reg.snapshot().counter(LAYER_SUBSYSTEM, "sweeps"), Some(3));
    }

    #[test]
    fn sweep_prof_folds_writer_counters() {
        let reg = Registry::new();
        let prof = SweepProf::register(&reg);
        prof.fold_writer(&WriterProf {
            direct: 3,
            window_opens: 2,
            window_bits: 40,
            flushes: 2,
            cache_hits: 5,
            cache_misses: 1,
            cache_evictions: 1,
        });
        prof.fold_writer(&WriterProf {
            direct: 1,
            ..WriterProf::default()
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter(SWEEP_SUBSYSTEM, "wc_direct"), Some(4));
        assert_eq!(snap.counter(SWEEP_SUBSYSTEM, "wc_window_bits"), Some(40));
        assert_eq!(snap.counter(SWEEP_SUBSYSTEM, "chunk_cache_evictions"), Some(1));
    }
}
