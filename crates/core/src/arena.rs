//! Multi-tenant arenas and the global sweep scheduler.
//!
//! The paper evaluates one heap, one quarantine, one sweep plan. A
//! production deployment serves many tenants, each with its own arena
//! (heap + quarantine + shadow map), all competing for the same physical
//! sweep bandwidth. This module shards the layer per arena and puts a
//! scheduler above the shards:
//!
//! * [`ArenaId`] tags every shard — the quarantine, the shadow map and
//!   the backend all carry the id of the arena that owns them.
//! * [`Arena`] is one tenant: a [`MineSweeper`] layer over an
//!   id-carrying backend plus its own [`AddrSpace`].
//! * [`SweepScheduler`] turns per-arena quarantine pressure into a
//!   priority-ordered, coalesced batch: when any arena's sweep trigger
//!   fires, other arenas already most of the way to their own trigger
//!   ride along in the same round.
//! * [`ArenaPool`] executes a round: it starts each scheduled arena's
//!   sweep, drains **all** their mark plans through one work-stealing
//!   helper pool ([`crate::parallel_mark_pool`] — a single chunk cursor
//!   spanning every arena, clamped by
//!   [`crate::effective_helper_count`]), then finishes each sweep with
//!   its pooled mark stats.
//!
//! Heap words mark only their owning arena's shadow — tenant heaps are
//! disjoint, so a batched round's release decisions are bit-identical to
//! sweeping each arena alone (the differential proptest pins this).
//! Root segments (stack/globals) model *shared process state*: a root
//! chunk is marked into every scheduled arena's shadow, so a dangling
//! root pointer in arena A pins a quarantined block in arena B.

use jalloc::{JAlloc, JallocConfig};
use vmem::{Addr, AddrSpace};

use crate::backend::{ArenaBackend, HeapBackend};
use crate::config::MsConfig;
use crate::layer::{FreeOutcome, MineSweeper, SweepReport};
use crate::sweep::{parallel_mark_pool, ParallelMarkStats, PoolMarkOpts};

/// Identifies one arena (tenant shard). Id 0 is the root arena — the
/// single-arena layer constructors use it, so existing single-tenant
/// code is "arena 0" of the sharded world.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ArenaId(u32);

impl ArenaId {
    /// The root (single-tenant / default) arena.
    pub const ROOT: ArenaId = ArenaId(0);

    /// An arena id from its raw index.
    pub const fn new(id: u32) -> Self {
        ArenaId(id)
    }

    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The telemetry label for this arena's shard counters (`a0`, `a1`,
    /// …) — the same names `ms-report` reconciles against the global
    /// totals.
    pub fn label(self) -> String {
        format!("a{}", self.0)
    }

    /// Parses a [`label`](Self::label) (`a0`, `a17`, …) back into an id.
    /// Reporting uses this to join per-arena metric keys — shard counters
    /// and `cost/arena_a{k}_cycles` shares — into numeric shard order.
    pub fn from_label(label: &str) -> Option<ArenaId> {
        let idx = label.strip_prefix('a')?;
        if idx.is_empty() || idx.len() > 1 && idx.starts_with('0') {
            return None;
        }
        idx.parse().ok().map(ArenaId)
    }
}

impl std::fmt::Display for ArenaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// One tenant arena: an id-tagged [`MineSweeper`] layer plus the address
/// space it manages. Arenas own disjoint spaces; only the sweep pool
/// looks across them.
#[derive(Debug)]
pub struct Arena<B: HeapBackend = JAlloc> {
    ms: MineSweeper<ArenaBackend<B>>,
    space: AddrSpace,
}

impl Arena<JAlloc> {
    /// Creates an arena over the default JeMalloc-style heap, configured
    /// exactly as [`MineSweeper::new`] configures its heap.
    pub fn new(id: ArenaId, cfg: MsConfig) -> Self {
        let jcfg = if cfg.purge_after_sweep {
            JallocConfig::minesweeper()
        } else {
            JallocConfig { end_padding: true, ..JallocConfig::stock() }
        };
        Arena::with_backend(id, cfg, JAlloc::with_config(jcfg))
    }
}

impl<B: HeapBackend> Arena<B> {
    /// Creates an arena over any backend; the backend is wrapped so its
    /// [`HeapBackend::arena_id`] reports `id` and every shard the layer
    /// builds (quarantine, shadow map) carries it.
    pub fn with_backend(id: ArenaId, cfg: MsConfig, backend: B) -> Self {
        Arena {
            ms: MineSweeper::with_backend(cfg, ArenaBackend::new(id, backend)),
            space: AddrSpace::new(),
        }
    }

    /// This arena's id.
    pub fn id(&self) -> ArenaId {
        self.ms.arena_id()
    }

    /// The layer (read-only).
    pub fn ms(&self) -> &MineSweeper<ArenaBackend<B>> {
        &self.ms
    }

    /// The layer (mutable — for tracer/sweep control).
    pub fn ms_mut(&mut self) -> &mut MineSweeper<ArenaBackend<B>> {
        &mut self.ms
    }

    /// The arena's address space (read-only).
    pub fn space(&self) -> &AddrSpace {
        &self.space
    }

    /// The arena's address space (mutable — for mutator writes).
    pub fn space_mut(&mut self) -> &mut AddrSpace {
        &mut self.space
    }

    /// Allocates in this arena.
    pub fn malloc(&mut self, size: u64) -> Addr {
        self.ms.malloc(&mut self.space, size)
    }

    /// Frees in this arena (quarantining per the layer config).
    pub fn free(&mut self, addr: Addr) -> FreeOutcome {
        self.ms.free(&mut self.space, addr)
    }

    /// [`Arena::free`] with an allocation-site id.
    pub fn free_sited(&mut self, addr: Addr, site: u32) -> FreeOutcome {
        self.ms.free_sited(&mut self.space, addr, site)
    }

    /// Sweeps this arena alone, outside any pool (the single-arena
    /// reference path the differential tests compare against).
    pub fn sweep_now(&mut self) -> SweepReport {
        self.ms.sweep_now(&mut self.space)
    }

    /// Whether this arena's own sweep trigger has fired.
    pub fn sweep_needed(&self) -> bool {
        self.ms.sweep_needed(&self.space)
    }

    /// Quarantine pressure in permille of the sweep trigger.
    pub fn pressure(&self) -> u64 {
        self.ms.sweep_pressure(&self.space)
    }
}

/// Scheduler policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct SchedPolicy {
    /// Arenas at or above this fraction of their own trigger (permille)
    /// are coalesced into a round another arena made due. 1000 disables
    /// coalescing (only due arenas sweep); 0 batches everyone with any
    /// pressure. Default 500: an arena halfway to its trigger rides
    /// along rather than paying its own round shortly after.
    pub coalesce_permille: u64,
    /// Maximum arenas per round (highest pressure wins; fairness bound
    /// on round length). Default unbounded.
    pub max_batch: usize,
}

impl Default for SchedPolicy {
    fn default() -> Self {
        SchedPolicy { coalesce_permille: 500, max_batch: usize::MAX }
    }
}

/// The global sweep scheduler: quarantine-ratio pressure in, coalesced
/// priority-ordered batch out.
///
/// Pressure for an arena is its eligible quarantined bytes as a permille
/// of its own sweep trigger ([`MineSweeper::sweep_pressure`]); ≥ 1000
/// means the arena is *due* (its [`MineSweeper::sweep_needed`] fired).
/// A round is scheduled only when at least one arena is due; the batch
/// is then every due arena plus every arena above
/// [`SchedPolicy::coalesce_permille`], sorted by pressure (ties by
/// arena index, so rounds are deterministic), truncated to
/// [`SchedPolicy::max_batch`].
#[derive(Clone, Debug, Default)]
pub struct SweepScheduler {
    policy: SchedPolicy,
    rounds: u64,
    scheduled: u64,
    coalesced: u64,
}

impl SweepScheduler {
    /// A scheduler with the given policy.
    pub fn new(policy: SchedPolicy) -> Self {
        SweepScheduler { policy, ..Default::default() }
    }

    /// The policy in force.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Rounds planned so far that scheduled at least one arena.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total arena-sweeps scheduled across all rounds.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Arena-sweeps that were *coalesced* (swept before their own
    /// trigger fired, riding a due arena's round).
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Plans one round over `(due, pressure)` per arena: returns the
    /// arena indices to sweep, highest pressure first. Empty when no
    /// arena is due.
    pub fn plan_round(&mut self, arenas: &[(bool, u64)]) -> Vec<usize> {
        if !arenas.iter().any(|&(due, _)| due) {
            return Vec::new();
        }
        let mut batch: Vec<(u64, usize, bool)> = arenas
            .iter()
            .enumerate()
            .filter(|&(_, &(due, p))| due || p >= self.policy.coalesce_permille)
            .map(|(i, &(due, p))| (p, i, due))
            .collect();
        // Highest pressure first; ties resolve by arena index so the
        // round is deterministic.
        batch.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        batch.truncate(self.policy.max_batch.max(1));
        self.rounds += 1;
        self.scheduled += batch.len() as u64;
        self.coalesced += batch.iter().filter(|&&(_, _, due)| !due).count() as u64;
        batch.into_iter().map(|(_, i, _)| i).collect()
    }
}

/// Outcome of one pooled sweep round.
#[derive(Clone, Debug, Default)]
pub struct RoundReport {
    /// `(arena, report)` per scheduled arena, in scheduling (pressure)
    /// order. Empty when no arena was due.
    pub swept: Vec<(ArenaId, SweepReport)>,
    /// Pooled mark stats, index-aligned with `swept`.
    pub mark_stats: Vec<ParallelMarkStats>,
    /// Wall nanoseconds of the pooled mark phase.
    pub mark_wall_ns: u64,
    /// Helpers actually used after the hardware clamp.
    pub effective_helpers: usize,
}

/// A pool of arenas sharing one sweep scheduler and one helper pool.
#[derive(Debug)]
pub struct ArenaPool<B: HeapBackend = JAlloc> {
    arenas: Vec<Arena<B>>,
    sched: SweepScheduler,
    /// Helper threads requested per round (clamped at mark time).
    helpers: usize,
}

impl ArenaPool<JAlloc> {
    /// A pool of `n` default-heap arenas with ids `a0..a{n-1}`, all
    /// running the same layer configuration.
    pub fn new(n: u32, cfg: MsConfig) -> Self {
        let arenas =
            (0..n).map(|i| Arena::new(ArenaId::new(i), cfg)).collect();
        ArenaPool { arenas, sched: SweepScheduler::default(), helpers: 0 }
    }
}

impl<B: HeapBackend> ArenaPool<B> {
    /// A pool over pre-built arenas.
    pub fn from_arenas(arenas: Vec<Arena<B>>) -> Self {
        ArenaPool { arenas, sched: SweepScheduler::default(), helpers: 0 }
    }

    /// Sets the scheduler policy.
    pub fn set_policy(&mut self, policy: SchedPolicy) {
        self.sched = SweepScheduler::new(policy);
    }

    /// Sets the helper threads requested per pooled mark.
    pub fn set_helpers(&mut self, helpers: usize) {
        self.helpers = helpers;
    }

    /// The scheduler (read-only; rounds/coalesced counters).
    pub fn scheduler(&self) -> &SweepScheduler {
        &self.sched
    }

    /// Number of arenas.
    pub fn len(&self) -> usize {
        self.arenas.len()
    }

    /// Whether the pool has no arenas.
    pub fn is_empty(&self) -> bool {
        self.arenas.is_empty()
    }

    /// The arena at `idx`.
    pub fn arena(&self, idx: usize) -> &Arena<B> {
        &self.arenas[idx]
    }

    /// The arena at `idx` (mutable).
    pub fn arena_mut(&mut self, idx: usize) -> &mut Arena<B> {
        &mut self.arenas[idx]
    }

    /// Iterates the arenas.
    pub fn iter(&self) -> impl Iterator<Item = &Arena<B>> {
        self.arenas.iter()
    }

    /// Runs one scheduler round: plans the batch from per-arena
    /// pressure, and if any arena is due, sweeps the whole batch through
    /// one pooled mark. Returns an empty report when nothing was due.
    pub fn sweep_round(&mut self) -> RoundReport {
        let states: Vec<(bool, u64)> = self
            .arenas
            .iter()
            .map(|a| (a.sweep_needed(), a.pressure()))
            .collect();
        let batch = self.sched.plan_round(&states);
        self.run_round(&batch)
    }

    /// Sweeps **every** arena in one pooled round regardless of
    /// pressure (manual trigger; exploit scenarios and tests).
    pub fn sweep_all(&mut self) -> RoundReport {
        let batch: Vec<usize> = (0..self.arenas.len()).collect();
        self.run_round(&batch)
    }

    /// Executes one batched round over explicit arena indices: start
    /// every sweep (locking each arena's quarantine generation), pool
    /// all mark plans through one work-stealing cursor, then finish each
    /// sweep with its own pooled stats.
    fn run_round(&mut self, batch: &[usize]) -> RoundReport {
        if batch.is_empty() {
            return RoundReport::default();
        }
        for &i in batch {
            let a = &mut self.arenas[i];
            let (ms, space) = a.split_mut();
            ms.start_sweep(space);
        }
        let (per_job, wall_ns, helpers) = {
            let jobs: Vec<_> = batch
                .iter()
                .map(|&i| {
                    let a = &self.arenas[i];
                    a.ms.pooled_mark_job(&a.space)
                })
                .collect();
            let opts =
                PoolMarkOpts { helper_threads: self.helpers, ..Default::default() };
            let t0 = std::time::Instant::now();
            let result = parallel_mark_pool(&jobs, &opts);
            let wall_ns = t0.elapsed().as_nanos() as u64;
            let helpers =
                result.per_job.first().map_or(0, |s| s.effective_helpers);
            (result.per_job, wall_ns, helpers)
        };
        let mut report = RoundReport {
            swept: Vec::with_capacity(batch.len()),
            mark_stats: per_job.clone(),
            mark_wall_ns: wall_ns,
            effective_helpers: helpers,
        };
        for (&i, stats) in batch.iter().zip(&per_job) {
            let a = &mut self.arenas[i];
            let (ms, space) = a.split_mut();
            let r = ms.finish_sweep_premarked(space, stats, wall_ns);
            report.swept.push((ms.arena_id(), r));
        }
        report
    }
}

impl<B: HeapBackend> Arena<B> {
    /// Splits the arena into its layer and space for calls needing both
    /// mutably.
    pub fn split_mut(&mut self) -> (&mut MineSweeper<ArenaBackend<B>>, &mut AddrSpace) {
        (&mut self.ms, &mut self.space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_ids_tag_every_shard() {
        let a = Arena::new(ArenaId::new(3), MsConfig::fully_concurrent());
        assert_eq!(a.id(), ArenaId::new(3));
        assert_eq!(a.ms().arena_id(), ArenaId::new(3));
        assert_eq!(a.ms().quarantine().arena(), ArenaId::new(3));
        assert_eq!(a.ms().shadow().arena(), ArenaId::new(3));
        assert_eq!(a.id().label(), "a3");
    }

    #[test]
    fn single_arena_layer_is_root() {
        let ms = MineSweeper::new(MsConfig::fully_concurrent());
        assert_eq!(ms.arena_id(), ArenaId::ROOT);
        assert_eq!(ms.quarantine().arena(), ArenaId::ROOT);
    }

    #[test]
    fn scheduler_waits_for_a_due_arena() {
        let mut sched = SweepScheduler::default();
        // Plenty of pressure, nobody due: no round.
        assert!(sched.plan_round(&[(false, 900), (false, 800)]).is_empty());
        assert_eq!(sched.rounds(), 0);
    }

    #[test]
    fn scheduler_coalesces_and_orders_by_pressure() {
        let mut sched = SweepScheduler::default();
        // a1 due; a3 above the coalesce bar; a0/a2 below it.
        let batch =
            sched.plan_round(&[(false, 100), (true, 1200), (false, 499), (false, 700)]);
        assert_eq!(batch, vec![1, 3]);
        assert_eq!(sched.scheduled(), 2);
        assert_eq!(sched.coalesced(), 1);
    }

    #[test]
    fn scheduler_max_batch_keeps_highest_pressure() {
        let mut sched =
            SweepScheduler::new(SchedPolicy { coalesce_permille: 0, max_batch: 2 });
        let batch = sched.plan_round(&[(true, 1000), (false, 400), (true, 1500)]);
        assert_eq!(batch, vec![2, 0]);
    }

    #[test]
    fn pooled_round_sweeps_due_arenas() {
        let mut pool = ArenaPool::new(2, MsConfig::fully_concurrent());
        // Arena 0: enough frees to trip its trigger. Arena 1: idle.
        for _ in 0..64 {
            let p = pool.arena_mut(0).malloc(4096);
            pool.arena_mut(0).space_mut().write_word(p, 1).unwrap();
            pool.arena_mut(0).free(p);
        }
        assert!(pool.arena(0).sweep_needed());
        let round = pool.sweep_round();
        assert_eq!(round.swept.len(), 1);
        assert_eq!(round.swept[0].0, ArenaId::new(0));
        assert!(round.swept[0].1.released > 0);
        assert!(!pool.arena(0).sweep_needed(), "round cleared the trigger");
        // Nothing due any more: the next round is empty.
        assert!(pool.sweep_round().swept.is_empty());
    }

    #[test]
    fn pooled_round_matches_standalone_decisions() {
        // Two arenas, one with a dangling heap pointer: the batched round
        // must release/retain exactly like standalone sweeps.
        let cfg = MsConfig::fully_concurrent();
        let mut pool = ArenaPool::new(2, cfg);
        let victim = pool.arena_mut(0).malloc(64);
        let holder = pool.arena_mut(0).malloc(64);
        pool.arena_mut(0).space_mut().write_word(holder, victim.raw()).unwrap();
        pool.arena_mut(0).free(victim);
        let clean = pool.arena_mut(1).malloc(64);
        pool.arena_mut(1).free(clean);
        let round = pool.sweep_all();
        let by_id: std::collections::HashMap<_, _> = round.swept.into_iter().collect();
        assert_eq!(by_id[&ArenaId::new(0)].failed, 1, "dangling pointer pins");
        assert_eq!(by_id[&ArenaId::new(1)].released, 1, "clean arena releases");
    }

    #[test]
    fn arena_labels_roundtrip() {
        for k in [0u32, 1, 9, 10, 4095] {
            let id = ArenaId::new(k);
            assert_eq!(ArenaId::from_label(&id.label()), Some(id));
        }
        assert_eq!(ArenaId::from_label("a"), None);
        assert_eq!(ArenaId::from_label("a01"), None);
        assert_eq!(ArenaId::from_label("b3"), None);
        assert_eq!(ArenaId::from_label("none"), None);
    }

    #[test]
    fn shared_root_pointer_pins_across_arenas() {
        // The multi-tenant model: stacks/globals are shared process
        // state. A root word in arena A holding an address in arena B's
        // quarantine pins B's entry during a pooled round.
        let mut pool = ArenaPool::new(2, MsConfig::fully_concurrent());
        let victim = pool.arena_mut(1).malloc(64);
        pool.arena_mut(1).free(victim);
        let stack = {
            let a = pool.arena(0);
            a.space().layout().segment_base(vmem::Segment::Stack)
        };
        pool.arena_mut(0).space_mut().write_word(stack, victim.raw()).unwrap();
        let round = pool.sweep_all();
        let by_id: std::collections::HashMap<_, _> = round.swept.into_iter().collect();
        assert_eq!(by_id[&ArenaId::new(1)].failed, 1, "cross-arena root pin");
        // Erase the root pointer: the next round releases it.
        pool.arena_mut(0).space_mut().write_word(stack, 0).unwrap();
        let round = pool.sweep_all();
        let by_id: std::collections::HashMap<_, _> = round.swept.into_iter().collect();
        assert_eq!(by_id[&ArenaId::new(1)].released, 1);
    }
}
