#![warn(missing_docs)]

//! **MineSweeper**: drop-in use-after-free prevention by quarantine and
//! linear memory sweeps — a reproduction of Erdős, Ainsworth & Jones,
//! *MineSweeper: A "Clean Sweep" for Drop-In Use-after-Free Prevention*,
//! ASPLOS 2022.
//!
//! # How it works
//!
//! MineSweeper interposes on `free()`. Instead of returning memory to the
//! allocator, it:
//!
//! 1. **zero-fills** the allocation (flattening the reference graph so no
//!    transitive marking is needed and quarantined cycles collapse, §4.1),
//! 2. **decommits and protects** the full pages of large allocations
//!    (§4.2), and
//! 3. places the allocation in a **quarantine**, de-duplicating double
//!    frees (§3).
//!
//! When quarantined bytes exceed a threshold fraction of the heap (15 % by
//! default), a **sweep** runs: every aligned word of heap, stack and globals
//! is treated as a potential pointer and its target granule is marked in a
//! **shadow map** (one bit per 16 bytes, §3.2). Quarantined allocations with
//! no marked granule provably have no dangling pointers and are released to
//! the real allocator; the rest are *failed frees* and stay quarantined.
//!
//! Two modes ship (§4.3): **fully concurrent** (single pass, no
//! stop-the-world; guarantees dangling pointers that are not *moved* during
//! the sweep are found) and **mostly concurrent** (a brief stop-the-world
//! re-check of soft-dirty pages; equivalent guarantees to MarkUs).
//!
//! # Quick start
//!
//! ```
//! use minesweeper::{MineSweeper, MsConfig, FreeOutcome};
//! use vmem::AddrSpace;
//!
//! let mut space = AddrSpace::new();
//! let mut ms = MineSweeper::new(MsConfig::fully_concurrent());
//!
//! let p = ms.malloc(&mut space, 64);
//! space.write_word(p, 123).unwrap();
//!
//! // Store a dangling pointer in another allocation, then free p.
//! let q = ms.malloc(&mut space, 64);
//! space.write_word(q, p.raw()).unwrap();
//! assert_eq!(ms.free(&mut space, p), FreeOutcome::Quarantined);
//!
//! // The sweep finds the dangling pointer: p is NOT recycled.
//! let report = ms.sweep_now(&mut space);
//! assert_eq!(report.failed, 1);
//!
//! // Erase the dangling pointer; the next sweep releases p.
//! space.write_word(q, 0).unwrap();
//! let report = ms.sweep_now(&mut space);
//! assert_eq!(report.released, 1);
//! ```

mod arena;
mod backend;
mod config;
mod filter;
mod forensics;
mod layer;
mod mte;
mod pagecache;
mod quarantine;
mod shadow;
pub mod simd;
mod stats;
mod sweep;
mod telem;

pub use arena::{Arena, ArenaId, ArenaPool, RoundReport, SchedPolicy, SweepScheduler};
pub use backend::{ArenaBackend, HeapBackend};
pub use config::{ForensicsMode, MsConfig, MsConfigBuilder, SweepMode};
pub use filter::CandidateFilter;
pub use forensics::{EdgeAgg, EdgeRecorder, FailedFreeLedger, LedgerEntry};
pub use layer::{FreeOutcome, MineSweeper, SweepReport};
pub use mte::{tag_ptr, untag_ptr, MteError, MteHeap, TagTable, QUARANTINE_TAG, TAG_GRANULE};
pub use pagecache::PageCache;
pub use quarantine::{QEntry, Quarantine};
pub use shadow::{NaiveShadowMap, ShadowMap, ShadowWriter, WriterProf, MAX_SHADOWED};
pub use stats::MsStats;
pub use simd::ScanTier;
pub use sweep::{
    effective_helper_count, parallel_mark, parallel_mark_accel, parallel_mark_opts,
    parallel_mark_pool, MarkAccel, MarkProfile, Marker, ParallelMarkOpts, ParallelMarkStats,
    PoolMarkJob, PoolMarkOpts, PoolMarkResult, StepResult, SweepPlan, PARALLEL_CHUNK_PAGES,
};
pub use telem::{MsCounters, SweepProf, LAYER_SUBSYSTEM, SWEEP_SUBSYSTEM};

// The telemetry crate itself, re-exported so embedders can name sinks,
// snapshots and events without a separate dependency.
pub use ::telemetry;
