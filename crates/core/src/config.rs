//! MineSweeper configuration: the two operation modes, the sweep
//! thresholds, and every knob the paper's ablation studies (§5.4, §5.5)
//! toggle.

/// The two sweep operation modes (§4.3, §5.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SweepMode {
    /// Single concurrent pass, no stop-the-world. Guarantees all dangling
    /// pointers that are not moved/copied after their referent was freed
    /// are found. The paper's recommended default.
    #[default]
    FullyConcurrent,
    /// Adds a brief stop-the-world pass re-checking pages modified during
    /// the concurrent pass (tracked via soft-dirty bits), giving the same
    /// guarantees as MarkUs: every reachable dangling pointer is found even
    /// if the program moves it around.
    MostlyConcurrent,
}

/// Sweep-forensics recording mode: whether the mark loop records
/// provenance edges (source word → quarantined candidate) and the layer
/// maintains the failed-free ledger.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ForensicsMode {
    /// No recording. The mark loop pays exactly one branch per chunk; the
    /// ledger stays empty and no forensic events are emitted.
    #[default]
    Off,
    /// Record roughly 1-in-N provenance edges (a shared atomic tick keeps
    /// the sampling deterministic in serial marking). Ledger bookkeeping
    /// and the byte-conservation invariants stay exact — only the
    /// per-entry hit counts and example sources are sampled.
    Sampled(u32),
    /// Record every edge.
    Full,
}

impl ForensicsMode {
    /// Whether any recording happens at all.
    pub fn enabled(&self) -> bool {
        !matches!(self, ForensicsMode::Off)
    }
}

/// Full configuration for a [`crate::MineSweeper`] instance.
///
/// Use the presets ([`MsConfig::fully_concurrent`],
/// [`MsConfig::mostly_concurrent`], the `ablation_*` ladder of §5.4 and the
/// `partial_*` ladder of §5.5) or [`MsConfig::builder`] for custom setups.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MsConfig {
    /// Operation mode.
    pub mode: SweepMode,
    /// Trigger a sweep when
    /// `quarantine_bytes - failed ≥ threshold × (heap_bytes - failed)`.
    /// The paper picks 0.15 (vs MarkUs's 0.25) because the linear sweep is
    /// cheap enough to trade towards lower memory overhead (§3.2).
    pub sweep_threshold: f64,
    /// Pause new allocations when the quarantine (minus failed frees)
    /// exceeds `pause_factor × sweep_threshold × heap_bytes` while a sweep
    /// is running — the overload valve that bounds the mimalloc-bench
    /// worst cases (§5.7).
    pub pause_factor: f64,
    /// Zero-fill freed data before quarantining (§4.1).
    pub zeroing: bool,
    /// Decommit + protect the full interior pages of large quarantined
    /// allocations (§4.2).
    pub unmapping: bool,
    /// Minimum number of *interior* pages before unmapping is worthwhile.
    pub unmap_min_pages: u64,
    /// Also sweep when unmapped quarantined bytes reach
    /// `unmapped_trigger × RSS` ("nine times the program's total
    /// physical-memory footprint", §4.2).
    pub unmapped_trigger: f64,
    /// Run the sweep concurrently on background threads (§4.3). When
    /// `false` the whole sweep executes in the mutator (the paper's
    /// "sequential version", §5.4).
    pub concurrent: bool,
    /// Helper threads for parallel marking, in addition to the main
    /// sweeper (§4.4; the paper defaults to 6).
    pub helper_threads: usize,
    /// Trigger a full allocator purge after every sweep (§4.5).
    pub purge_after_sweep: bool,
    /// Whether the sweep actually marks memory. The §5.5 "Quarantining" /
    /// "Concurrency" partial versions quarantine and then recycle *all*
    /// entries without sweeping.
    pub marking: bool,
    /// Whether allocations with discovered pointers stay in quarantine.
    /// The §5.5 "Sweeping" partial version sweeps, checks which frees would
    /// fail, "but deallocate\[s\] regardless".
    pub honor_failed_frees: bool,
    /// Whether frees are quarantined at all. The §5.5 "Base overheads" and
    /// "Unmapping + Zeroing" partial versions forward every free to the
    /// allocator immediately.
    pub quarantine: bool,
    /// Thread-local quarantine buffer capacity (contribution (c): batching
    /// reduces lock contention on the global quarantine).
    pub tl_buffer_capacity: usize,
    /// Report double frees (debug mode, §3 footnote 3). Always *handled*
    /// idempotently; this only controls recording them.
    pub report_double_frees: bool,
    /// Incremental sweep: cache per-page digests of heap-pointing words
    /// and replay them for pages whose soft-dirty bit stayed clear,
    /// skipping their 512-word re-read ([`crate::PageCache`]).
    pub page_cache: bool,
    /// Incremental sweep: gate shadow-map writes through a coarse
    /// 1-bit-per-page bitmap of pages holding quarantined granules
    /// ([`crate::CandidateFilter`]). Release decisions are unchanged; only
    /// marks that could never matter are dropped.
    pub candidate_filter: bool,
    /// Sweep forensics: provenance-edge recording and the failed-free
    /// ledger ([`crate::EdgeRecorder`], [`crate::FailedFreeLedger`]). Off
    /// by default; release decisions are identical in every mode.
    pub forensics: ForensicsMode,
    /// Sweep profiler: sampled cycle attribution for the mark phase
    /// (scan-time histograms, helper utilisation, write-combine and
    /// chunk-cache counters) exported under the `sweep.*` registry
    /// subsystem ([`crate::SweepProf`]). Off by default; when off the
    /// scan path pays a single `Option` branch and registers nothing.
    pub profiler: bool,
}

impl MsConfig {
    /// The paper's default configuration: fully concurrent sweeps, all
    /// optimisations on.
    pub fn fully_concurrent() -> Self {
        MsConfig {
            mode: SweepMode::FullyConcurrent,
            sweep_threshold: 0.15,
            pause_factor: 4.0,
            zeroing: true,
            unmapping: true,
            unmap_min_pages: 1,
            unmapped_trigger: 9.0,
            concurrent: true,
            helper_threads: 6,
            purge_after_sweep: true,
            marking: true,
            honor_failed_frees: true,
            quarantine: true,
            tl_buffer_capacity: 64,
            report_double_frees: false,
            page_cache: true,
            candidate_filter: true,
            forensics: ForensicsMode::Off,
            profiler: false,
        }
    }

    /// Mostly concurrent mode: same as the default plus the stop-the-world
    /// soft-dirty re-check (§5.3).
    pub fn mostly_concurrent() -> Self {
        MsConfig { mode: SweepMode::MostlyConcurrent, ..Self::fully_concurrent() }
    }

    /// Starts a builder from the fully-concurrent preset.
    pub fn builder() -> MsConfigBuilder {
        MsConfigBuilder { cfg: Self::fully_concurrent() }
    }

    // ---- §5.4 ablation ladder (Figures 15 & 16) -------------------------

    /// "Unoptimised": quarantine + synchronous in-mutator sweeps only.
    /// The incremental-sweep accelerations are part of the optimisation
    /// set, so they are off here and return with the final ladder step.
    pub fn ablation_unoptimised() -> Self {
        MsConfig {
            zeroing: false,
            unmapping: false,
            concurrent: false,
            purge_after_sweep: false,
            page_cache: false,
            candidate_filter: false,
            ..Self::fully_concurrent()
        }
    }

    /// "+ Zeroing".
    pub fn ablation_zeroing() -> Self {
        MsConfig { zeroing: true, ..Self::ablation_unoptimised() }
    }

    /// "+ Unmapping" (the paper's sequential version: 9.5 % time,
    /// 21.1 % memory).
    pub fn ablation_unmapping() -> Self {
        MsConfig { unmapping: true, ..Self::ablation_zeroing() }
    }

    /// "+ Concurrency".
    pub fn ablation_concurrency() -> Self {
        MsConfig { concurrent: true, ..Self::ablation_unmapping() }
    }

    /// "+ Purging" — identical to [`MsConfig::fully_concurrent`] (the
    /// incremental-sweep accelerations come back with the full config).
    pub fn ablation_purging() -> Self {
        MsConfig {
            purge_after_sweep: true,
            page_cache: true,
            candidate_filter: true,
            ..Self::ablation_concurrency()
        }
    }

    // ---- §5.5 partial-version ladder (Figure 17) ------------------------

    /// (1) "Base overheads": the layer is loaded, data structures are
    /// maintained, but `free()` forwards straight to the allocator.
    pub fn partial_base() -> Self {
        MsConfig {
            quarantine: false,
            zeroing: false,
            unmapping: false,
            ..Self::fully_concurrent()
        }
    }

    /// (2) "Unmapping + Zeroing": zero / unmap-and-remap on free, then
    /// forward to the allocator immediately.
    pub fn partial_unmap_zero() -> Self {
        MsConfig { zeroing: true, unmapping: true, ..Self::partial_base() }
    }

    /// (3) "Quarantining": quarantine until the next sweep, which recycles
    /// everything without marking, in the mutator thread.
    pub fn partial_quarantine() -> Self {
        MsConfig {
            quarantine: true,
            marking: false,
            concurrent: false,
            ..Self::partial_unmap_zero()
        }
    }

    /// (4) "Concurrency": as (3) but recycling happens on the sweeper
    /// thread.
    pub fn partial_concurrency() -> Self {
        MsConfig { concurrent: true, ..Self::partial_quarantine() }
    }

    /// (5) "Sweeping": marks memory and checks which frees would fail, but
    /// deallocates regardless.
    pub fn partial_sweep() -> Self {
        MsConfig { marking: true, honor_failed_frees: false, ..Self::partial_concurrency() }
    }

    /// (6) Full version — identical to [`MsConfig::fully_concurrent`].
    pub fn partial_full() -> Self {
        MsConfig { honor_failed_frees: true, ..Self::partial_sweep() }
    }
}

impl Default for MsConfig {
    fn default() -> Self {
        MsConfig::fully_concurrent()
    }
}

/// Builder for [`MsConfig`].
///
/// # Example
///
/// ```
/// use minesweeper::{MsConfig, SweepMode};
/// let cfg = MsConfig::builder()
///     .mode(SweepMode::MostlyConcurrent)
///     .sweep_threshold(0.25)
///     .helper_threads(2)
///     .build();
/// assert_eq!(cfg.sweep_threshold, 0.25);
/// ```
#[derive(Clone, Debug)]
pub struct MsConfigBuilder {
    cfg: MsConfig,
}

impl MsConfigBuilder {
    /// Sets the operation mode.
    pub fn mode(mut self, mode: SweepMode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Sets the quarantine-fraction sweep trigger.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < threshold`.
    pub fn sweep_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold > 0.0, "sweep threshold must be positive");
        self.cfg.sweep_threshold = threshold;
        self
    }

    /// Sets the allocation-pause factor (§5.7).
    pub fn pause_factor(mut self, factor: f64) -> Self {
        assert!(factor > 1.0, "pause factor must exceed 1");
        self.cfg.pause_factor = factor;
        self
    }

    /// Enables or disables zeroing on free.
    pub fn zeroing(mut self, on: bool) -> Self {
        self.cfg.zeroing = on;
        self
    }

    /// Enables or disables large-allocation unmapping.
    pub fn unmapping(mut self, on: bool) -> Self {
        self.cfg.unmapping = on;
        self
    }

    /// Enables or disables concurrent sweeping.
    pub fn concurrent(mut self, on: bool) -> Self {
        self.cfg.concurrent = on;
        self
    }

    /// Sets the number of helper threads for parallel marking.
    pub fn helper_threads(mut self, n: usize) -> Self {
        self.cfg.helper_threads = n;
        self
    }

    /// Enables or disables the post-sweep allocator purge.
    pub fn purge_after_sweep(mut self, on: bool) -> Self {
        self.cfg.purge_after_sweep = on;
        self
    }

    /// Sets the thread-local quarantine buffer capacity.
    pub fn tl_buffer_capacity(mut self, cap: usize) -> Self {
        self.cfg.tl_buffer_capacity = cap;
        self
    }

    /// Enables double-free reporting (debug mode).
    pub fn report_double_frees(mut self, on: bool) -> Self {
        self.cfg.report_double_frees = on;
        self
    }

    /// Enables or disables the soft-dirty page-summary cache.
    pub fn page_cache(mut self, on: bool) -> Self {
        self.cfg.page_cache = on;
        self
    }

    /// Enables or disables the quarantine candidate filter.
    pub fn candidate_filter(mut self, on: bool) -> Self {
        self.cfg.candidate_filter = on;
        self
    }

    /// Sets the sweep-forensics mode.
    pub fn forensics(mut self, mode: ForensicsMode) -> Self {
        self.cfg.forensics = mode;
        self
    }

    /// Enables or disables the sweep profiler.
    pub fn profiler(mut self, on: bool) -> Self {
        self.cfg.profiler = on;
        self
    }

    /// Finalises the configuration.
    pub fn build(self) -> MsConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_headline_config() {
        let c = MsConfig::default();
        assert_eq!(c.mode, SweepMode::FullyConcurrent);
        assert!((c.sweep_threshold - 0.15).abs() < 1e-12);
        assert_eq!(c.helper_threads, 6);
        assert!(c.zeroing && c.unmapping && c.concurrent && c.purge_after_sweep);
        assert!((c.unmapped_trigger - 9.0).abs() < 1e-12);
    }

    #[test]
    fn ablation_ladder_is_cumulative() {
        let steps = [
            MsConfig::ablation_unoptimised(),
            MsConfig::ablation_zeroing(),
            MsConfig::ablation_unmapping(),
            MsConfig::ablation_concurrency(),
            MsConfig::ablation_purging(),
        ];
        let on = |c: &MsConfig| {
            [c.zeroing, c.unmapping, c.concurrent, c.purge_after_sweep]
                .iter()
                .filter(|&&b| b)
                .count()
        };
        for w in steps.windows(2) {
            assert_eq!(on(&w[1]), on(&w[0]) + 1, "each step adds one optimisation");
        }
        assert_eq!(steps[4], MsConfig::fully_concurrent());
    }

    #[test]
    fn partial_ladder_ends_at_full() {
        assert_eq!(MsConfig::partial_full(), MsConfig::fully_concurrent());
        assert!(!MsConfig::partial_base().quarantine);
        assert!(!MsConfig::partial_quarantine().marking);
        assert!(!MsConfig::partial_sweep().honor_failed_frees);
    }

    #[test]
    fn builder_roundtrip() {
        let c = MsConfig::builder()
            .mode(SweepMode::MostlyConcurrent)
            .sweep_threshold(0.3)
            .zeroing(false)
            .helper_threads(1)
            .build();
        assert_eq!(c.mode, SweepMode::MostlyConcurrent);
        assert!((c.sweep_threshold - 0.3).abs() < 1e-12);
        assert!(!c.zeroing);
        assert_eq!(c.helper_threads, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn builder_rejects_zero_threshold() {
        MsConfig::builder().sweep_threshold(0.0);
    }

    #[test]
    fn forensics_defaults_off_everywhere() {
        assert_eq!(MsConfig::fully_concurrent().forensics, ForensicsMode::Off);
        assert_eq!(MsConfig::mostly_concurrent().forensics, ForensicsMode::Off);
        assert_eq!(MsConfig::ablation_unoptimised().forensics, ForensicsMode::Off);
        assert!(!ForensicsMode::Off.enabled());
        assert!(ForensicsMode::Sampled(16).enabled());
        assert!(ForensicsMode::Full.enabled());
        let c = MsConfig::builder().forensics(ForensicsMode::Sampled(8)).build();
        assert_eq!(c.forensics, ForensicsMode::Sampled(8));
    }

    #[test]
    fn profiler_defaults_off_everywhere() {
        assert!(!MsConfig::fully_concurrent().profiler);
        assert!(!MsConfig::mostly_concurrent().profiler);
        assert!(!MsConfig::ablation_unoptimised().profiler);
        assert!(MsConfig::builder().profiler(true).build().profiler);
    }

    #[test]
    fn incremental_knobs_toggle_independently() {
        assert!(MsConfig::fully_concurrent().page_cache);
        assert!(MsConfig::fully_concurrent().candidate_filter);
        assert!(!MsConfig::ablation_unoptimised().page_cache);
        assert!(!MsConfig::ablation_unoptimised().candidate_filter);
        let c = MsConfig::builder().page_cache(false).candidate_filter(true).build();
        assert!(!c.page_cache);
        assert!(c.candidate_filter);
        let c = MsConfig::builder().page_cache(true).candidate_filter(false).build();
        assert!(c.page_cache);
        assert!(!c.candidate_filter);
    }
}
