//! Sweep forensics: dangling-pointer provenance and failed-free
//! attribution.
//!
//! Two cooperating pieces, both off unless the `forensics` config knob is
//! set ([`crate::ForensicsMode`]):
//!
//! * [`EdgeRecorder`] — a per-sweep, lock-free aggregator the mark loop
//!   feeds. When a scanned word points into a locked quarantine candidate,
//!   the recorder attributes a *provenance edge* (source address → target
//!   entry) to the entry, keeping a hit count and one example source per
//!   entry. All state is atomic, so serial stepping and
//!   [`crate::parallel_mark_accel`] share one recorder without locks.
//!   Sampled mode records roughly 1-in-N edges through a shared tick.
//! * [`FailedFreeLedger`] — survives across sweeps in the layer. Every
//!   failed-free decision lands here (first-failed generation, survival
//!   count, capped pinner-page set); releases of previously failed entries
//!   retire their record and report the residency time. The ledger's
//!   totals mirror the quarantine's failed-byte accounting exactly —
//!   sampling never affects them, because they derive from release
//!   decisions, not from recorded edges.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use telemetry::LedgerTotals;
use vmem::{Addr, PAGE_SIZE};

use crate::config::ForensicsMode;
use crate::quarantine::QEntry;

/// Maximum distinct pinner pages remembered per ledger entry.
const MAX_PINNERS: usize = 4;

/// Aggregated provenance edges for one locked candidate over one sweep.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EdgeAgg {
    /// Edges recorded into the entry (post-sampling).
    pub hits: u64,
    /// First source address recorded (0 when none).
    pub src: u64,
}

/// Lock-free per-sweep recorder of provenance edges into the locked
/// quarantine candidates.
///
/// Built once per sweep from the locked generation; the mark loop calls
/// [`EdgeRecorder::note`] for every word it marks. A miss (the target is
/// not inside any candidate) costs one binary search over the sorted
/// candidate starts; a hit additionally pays two relaxed atomic RMWs.
#[derive(Debug)]
pub struct EdgeRecorder {
    /// Candidate base addresses, sorted ascending.
    starts: Vec<u64>,
    /// Exclusive end address of each candidate, in `starts` order.
    ends: Vec<u64>,
    /// Recorded hits per candidate, in `starts` order.
    hits: Vec<AtomicU64>,
    /// First recorded source address per candidate (0 = none yet).
    src: Vec<AtomicU64>,
    /// Record one edge in `period` (1 = record everything).
    period: u64,
    /// Shared sampling tick.
    tick: AtomicU64,
    /// Total edges recorded, post-sampling.
    recorded: AtomicU64,
}

impl EdgeRecorder {
    /// Builds a recorder over the locked candidates, or `None` when the
    /// mode is [`ForensicsMode::Off`] (the mark loop then skips the hook
    /// entirely — its single disabled branch).
    pub fn new(entries: &[QEntry], mode: ForensicsMode) -> Option<EdgeRecorder> {
        let period = match mode {
            ForensicsMode::Off => return None,
            ForensicsMode::Sampled(n) => u64::from(n.max(1)),
            ForensicsMode::Full => 1,
        };
        let mut ranges: Vec<(u64, u64)> =
            entries.iter().map(|e| (e.base.raw(), e.base.raw() + e.usable)).collect();
        ranges.sort_unstable();
        let n = ranges.len();
        Some(EdgeRecorder {
            starts: ranges.iter().map(|&(s, _)| s).collect(),
            ends: ranges.iter().map(|&(_, e)| e).collect(),
            hits: (0..n).map(|_| AtomicU64::new(0)).collect(),
            src: (0..n).map(|_| AtomicU64::new(0)).collect(),
            period,
            tick: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
        })
    }

    /// Records one provenance edge if the sampler elects this call and
    /// `target` lies inside a candidate. `src` is the address of the
    /// scanned word holding the pointer — page-granular for
    /// cache-replayed words. The sampler runs first so sampled mode
    /// skips the candidate search for the 1-in-N calls it drops.
    #[inline]
    pub fn note(&self, src: Addr, target: Addr) {
        if self.period > 1 && !self.tick.fetch_add(1, Ordering::Relaxed).is_multiple_of(self.period)
        {
            return;
        }
        let t = target.raw();
        let Some(idx) = self.starts.partition_point(|&s| s <= t).checked_sub(1) else {
            return;
        };
        if t >= self.ends[idx] {
            return;
        }
        self.hits[idx].fetch_add(1, Ordering::Relaxed);
        let _ = self.src[idx].compare_exchange(
            0,
            src.raw(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Total edges recorded so far (post-sampling).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Per-candidate aggregates for every candidate with at least one
    /// recorded edge, keyed by candidate base address.
    pub fn aggregates(&self) -> HashMap<u64, EdgeAgg> {
        let mut out = HashMap::new();
        for (i, &base) in self.starts.iter().enumerate() {
            let hits = self.hits[i].load(Ordering::Relaxed);
            if hits > 0 {
                out.insert(base, EdgeAgg { hits, src: self.src[i].load(Ordering::Relaxed) });
            }
        }
        out
    }
}

/// One failed-free record in the ledger.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LedgerEntry {
    /// Allocation-site id of the failed entry.
    pub site: u32,
    /// Swept bytes the entry pins in quarantine.
    pub bytes: u64,
    /// Sweep number of the first failure.
    pub first_failed: u64,
    /// Consecutive sweeps the entry has failed (1 after the first).
    pub survivals: u64,
    /// Distinct pages holding recorded pinning pointers, capped at
    /// [`MAX_PINNERS`].
    pub pinners: Vec<u64>,
}

/// The cross-sweep failed-free ledger: who is pinned, since when, and by
/// what.
///
/// Byte conservation: at every sweep end, [`FailedFreeLedger::totals`]'s
/// `bytes` equals the quarantine's failed bytes, because entries join
/// exactly when [`crate::Quarantine::on_failed`] first flags them and
/// leave exactly when a failed entry is released.
#[derive(Clone, Debug, Default)]
pub struct FailedFreeLedger {
    entries: HashMap<u64, LedgerEntry>,
    bytes: u64,
    fail_events: u64,
    bytes_in: u64,
    bytes_out: u64,
}

impl FailedFreeLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        FailedFreeLedger::default()
    }

    /// Records a failed-free decision for `entry` at sweep `sweep`.
    /// Returns the updated record and whether this was the entry's first
    /// failure (the caller counts `bytes_in` exactly once per residency).
    pub fn on_failed(
        &mut self,
        entry: &QEntry,
        sweep: u64,
        agg: Option<EdgeAgg>,
    ) -> (&LedgerEntry, bool) {
        self.fail_events += 1;
        let key = entry.base.raw();
        let first = !self.entries.contains_key(&key);
        if first {
            self.bytes += entry.swept_bytes();
            self.bytes_in += entry.swept_bytes();
            self.entries.insert(
                key,
                LedgerEntry {
                    site: entry.site,
                    bytes: entry.swept_bytes(),
                    first_failed: sweep,
                    survivals: 0,
                    pinners: Vec::new(),
                },
            );
        }
        let rec = self.entries.get_mut(&key).expect("just inserted");
        rec.survivals += 1;
        if let Some(a) = agg {
            if a.src != 0 {
                let page = a.src & !(PAGE_SIZE as u64 - 1);
                if rec.pinners.len() < MAX_PINNERS && !rec.pinners.contains(&page) {
                    rec.pinners.push(page);
                }
            }
        }
        (&*rec, first)
    }

    /// Retires the record for a released entry, if it ever failed.
    /// Returns the retired record (its residency is
    /// `sweep - first_failed` sweeps at the caller's current sweep).
    pub fn on_released(&mut self, base: Addr) -> Option<LedgerEntry> {
        let rec = self.entries.remove(&base.raw())?;
        self.bytes -= rec.bytes;
        self.bytes_out += rec.bytes;
        Some(rec)
    }

    /// Current totals for the sweep-end ledger snapshot.
    pub fn totals(&self) -> LedgerTotals {
        LedgerTotals {
            entries: self.entries.len() as u64,
            bytes: self.bytes,
            fail_events: self.fail_events,
        }
    }

    /// Cumulative bytes that ever entered the failed state.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in
    }

    /// Cumulative bytes that left the failed state via release.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out
    }

    /// The record for `base`, if it is currently failed.
    pub fn get(&self, base: Addr) -> Option<&LedgerEntry> {
        self.entries.get(&base.raw())
    }

    /// Iterates the current records as `(base, record)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &LedgerEntry)> {
        self.entries.iter().map(|(&k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(base: u64, usable: u64, site: u32) -> QEntry {
        QEntry { base: Addr::new(base), usable, unmapped_pages: 0, failed: false, site }
    }

    #[test]
    fn recorder_attributes_hits_to_the_right_entry() {
        let entries = [entry(0x2000, 0x100, 1), entry(0x1000, 0x80, 2)];
        let rec = EdgeRecorder::new(&entries, ForensicsMode::Full).unwrap();
        rec.note(Addr::new(0x9000), Addr::new(0x2000)); // base hit
        rec.note(Addr::new(0x9008), Addr::new(0x20ff)); // interior hit
        rec.note(Addr::new(0x9010), Addr::new(0x2100)); // one past end: miss
        rec.note(Addr::new(0x9018), Addr::new(0x1040)); // other entry
        rec.note(Addr::new(0x9020), Addr::new(0x0800)); // below all: miss
        rec.note(Addr::new(0x9028), Addr::new(0x1f00)); // gap between: miss
        assert_eq!(rec.recorded(), 3);
        let agg = rec.aggregates();
        assert_eq!(agg[&0x2000], EdgeAgg { hits: 2, src: 0x9000 });
        assert_eq!(agg[&0x1000], EdgeAgg { hits: 1, src: 0x9018 });
        assert_eq!(agg.len(), 2);
    }

    #[test]
    fn recorder_off_is_none_and_sampling_thins_hits() {
        assert!(EdgeRecorder::new(&[entry(0x1000, 0x100, 0)], ForensicsMode::Off).is_none());
        let rec =
            EdgeRecorder::new(&[entry(0x1000, 0x100, 0)], ForensicsMode::Sampled(4)).unwrap();
        for i in 0..100 {
            rec.note(Addr::new(0x9000 + i * 8), Addr::new(0x1000));
        }
        assert_eq!(rec.recorded(), 25, "1-in-4 sampling records a quarter");
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = EdgeRecorder::new(&[entry(0x1000, 0x1000, 0)], ForensicsMode::Full).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let rec = &rec;
                s.spawn(move || {
                    for i in 0..1000 {
                        rec.note(Addr::new(0x9000 + t * 8192 + i * 8), Addr::new(0x1800));
                    }
                });
            }
        });
        assert_eq!(rec.recorded(), 4000, "no lost updates");
    }

    #[test]
    fn ledger_tracks_survivals_and_conserves_bytes() {
        let mut l = FailedFreeLedger::new();
        let e = entry(0x1000, 64, 7);
        let (rec, first) = l.on_failed(&e, 1, Some(EdgeAgg { hits: 2, src: 0x9123 }));
        assert!(first);
        assert_eq!((rec.survivals, rec.first_failed, rec.site), (1, 1, 7));
        let (rec, first) = l.on_failed(&e, 2, Some(EdgeAgg { hits: 1, src: 0xa001 }));
        assert!(!first);
        assert_eq!(rec.survivals, 2);
        assert_eq!(rec.pinners, vec![0x9000, 0xa000]);
        assert_eq!(
            l.totals(),
            LedgerTotals { entries: 1, bytes: 64, fail_events: 2 }
        );
        let retired = l.on_released(e.base).unwrap();
        assert_eq!(retired.survivals, 2);
        assert_eq!(l.totals(), LedgerTotals { entries: 0, bytes: 0, fail_events: 2 });
        assert_eq!((l.bytes_in(), l.bytes_out()), (64, 64));
        assert!(l.on_released(e.base).is_none(), "never-failed releases are no-ops");
    }

    #[test]
    fn pinner_set_is_capped() {
        let mut l = FailedFreeLedger::new();
        let e = entry(0x1000, 64, 0);
        for i in 0..10u64 {
            l.on_failed(&e, i + 1, Some(EdgeAgg { hits: 1, src: (i + 1) * 0x10_000 }));
        }
        assert_eq!(l.get(e.base).unwrap().pinners.len(), MAX_PINNERS);
    }
}
