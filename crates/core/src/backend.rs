//! The allocator-backend abstraction.
//!
//! "Much of the implementation is allocator-agnostic; MineSweeper hooks
//! into the allocator's public API and slightly extends it to efficiently
//! identify active memory ranges" (§3.2) — and §7 reports a second
//! implementation over Scudo at 4.4 % overhead. [`HeapBackend`] is that
//! slightly-extended public API: anything implementing it can sit under
//! the quarantine layer. [`jalloc::JAlloc`] is the default; the `ms-scudo`
//! crate provides the hardened-allocator alternative.

use jalloc::FreeError;
use vmem::{Addr, AddrSpace};

use crate::arena::ArenaId;

/// The allocator interface MineSweeper interposes on.
///
/// Beyond `malloc`/`free`, the layer needs: usable sizes (to zero and to
/// check shadow ranges), active memory ranges (what sweeps must examine),
/// total allocated bytes (the sweep-trigger denominator), and purge
/// control (§4.5's post-sweep cleanup).
pub trait HeapBackend {
    /// Allocates `size` bytes and returns the base address.
    fn malloc(&mut self, space: &mut AddrSpace, size: u64) -> Addr;

    /// Frees the allocation based at `addr`.
    ///
    /// # Errors
    ///
    /// [`FreeError`] if `addr` is not a live allocation base. The
    /// quarantine layer only forwards addresses it verified, so an error
    /// here indicates a layering bug.
    fn free(&mut self, space: &mut AddrSpace, addr: Addr) -> Result<(), FreeError>;

    /// Usable size of the live allocation based exactly at `addr`.
    fn usable_size(&self, addr: Addr) -> Option<u64>;

    /// Address-ordered `(base, byte_len)` ranges sweeps must examine.
    fn active_ranges(&self) -> Vec<(Addr, u64)>;

    /// Bytes in live allocations (the "total memory use of the
    /// application" for the §3.2 sweep trigger).
    fn allocated_bytes(&self) -> u64;

    /// Releases all free physical memory now (§4.5: triggered after every
    /// sweep).
    fn purge_all(&mut self, space: &mut AddrSpace);

    /// Background decay purging (time-based; may be a no-op).
    fn purge_aged(&mut self, space: &mut AddrSpace);

    /// Advances the allocator's virtual clock.
    fn advance_clock(&mut self, now: u64);

    /// Cumulative pages this allocator has decommitted by purging, for
    /// telemetry deltas around [`HeapBackend::purge_all`]. Backends
    /// without purge accounting may keep the 0 default.
    fn purged_pages(&self) -> u64 {
        0
    }

    /// Which arena this backend serves. The layer reads it once at
    /// construction and tags its quarantine and shadow map with it, so
    /// every shard's telemetry and sweep bookkeeping names its tenant.
    /// Single-tenant backends keep the [`ArenaId::ROOT`] default; wrap
    /// in [`ArenaBackend`] to assign a real id.
    fn arena_id(&self) -> ArenaId {
        ArenaId::ROOT
    }
}

/// Wraps any backend with an explicit [`ArenaId`] — the plumbing that
/// turns a single-tenant backend into one shard of an
/// [`ArenaPool`](crate::ArenaPool).
#[derive(Debug)]
pub struct ArenaBackend<B> {
    id: ArenaId,
    inner: B,
}

impl<B> ArenaBackend<B> {
    /// Tags `inner` as serving arena `id`.
    pub fn new(id: ArenaId, inner: B) -> Self {
        ArenaBackend { id, inner }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwraps the backend.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: HeapBackend> HeapBackend for ArenaBackend<B> {
    fn malloc(&mut self, space: &mut AddrSpace, size: u64) -> Addr {
        self.inner.malloc(space, size)
    }

    fn free(&mut self, space: &mut AddrSpace, addr: Addr) -> Result<(), FreeError> {
        self.inner.free(space, addr)
    }

    fn usable_size(&self, addr: Addr) -> Option<u64> {
        self.inner.usable_size(addr)
    }

    fn active_ranges(&self) -> Vec<(Addr, u64)> {
        self.inner.active_ranges()
    }

    fn allocated_bytes(&self) -> u64 {
        self.inner.allocated_bytes()
    }

    fn purge_all(&mut self, space: &mut AddrSpace) {
        self.inner.purge_all(space)
    }

    fn purge_aged(&mut self, space: &mut AddrSpace) {
        self.inner.purge_aged(space)
    }

    fn advance_clock(&mut self, now: u64) {
        self.inner.advance_clock(now)
    }

    fn purged_pages(&self) -> u64 {
        self.inner.purged_pages()
    }

    fn arena_id(&self) -> ArenaId {
        self.id
    }
}

impl HeapBackend for jalloc::JAlloc {
    fn malloc(&mut self, space: &mut AddrSpace, size: u64) -> Addr {
        jalloc::JAlloc::malloc(self, space, size)
    }

    fn free(&mut self, space: &mut AddrSpace, addr: Addr) -> Result<(), FreeError> {
        jalloc::JAlloc::free(self, space, addr)
    }

    fn usable_size(&self, addr: Addr) -> Option<u64> {
        jalloc::JAlloc::usable_size(self, addr)
    }

    fn active_ranges(&self) -> Vec<(Addr, u64)> {
        jalloc::JAlloc::active_ranges(self)
    }

    fn allocated_bytes(&self) -> u64 {
        self.stats().allocated_bytes
    }

    fn purge_all(&mut self, space: &mut AddrSpace) {
        jalloc::JAlloc::purge_all(self, space)
    }

    fn purge_aged(&mut self, space: &mut AddrSpace) {
        jalloc::JAlloc::purge_aged(self, space)
    }

    fn advance_clock(&mut self, now: u64) {
        jalloc::JAlloc::advance_clock(self, now)
    }

    fn purged_pages(&self) -> u64 {
        self.stats().purged_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jalloc_implements_the_backend_contract() {
        let mut space = AddrSpace::new();
        let mut heap = jalloc::JAlloc::new();
        let backend: &mut dyn HeapBackend = &mut heap;
        let a = backend.malloc(&mut space, 100);
        assert!(backend.usable_size(a).unwrap() >= 100);
        assert!(backend.allocated_bytes() >= 100);
        assert!(!backend.active_ranges().is_empty());
        backend.free(&mut space, a).unwrap();
        backend.purge_all(&mut space);
        assert_eq!(backend.allocated_bytes(), 0);
    }
}
