//! Soft-dirty page-summary cache: skip re-reading provably-clean pages.
//!
//! The sweep is linear over every committed word of the plan (§3.2), but
//! between two sweeps most pages are untouched — the kernel's soft-dirty
//! tracking (already used for the mostly-concurrent stop-the-world pass,
//! §4.3) proves it. This cache records, for each fully scanned page, a
//! compact digest: the **pre-filter** list of heap-pointing word values
//! the page contained. On the next sweep, a page whose soft-dirty bit is
//! clear skips the 512-word re-read entirely and replays its digest into
//! the shadow map instead.
//!
//! ## Invalidation rules
//!
//! A digest is only ever replayed for a page whose contents are provably
//! unchanged since it was recorded:
//!
//! * **written** pages are soft-dirty ([`vmem::AddrSpace::write_word`] /
//!   `fill_zero`);
//! * **decommitted** and freshly **committed** pages are marked soft-dirty
//!   by `vmem` (contents observably change to zeroes);
//! * **reprotected** pages are marked soft-dirty on any protection change;
//! * **unmapped** pages (and pages that left the sweep plan) lose their
//!   entries at [`PageCache::begin_sweep`]: an entry survives only if its
//!   page is fully covered by the current plan *and* absent from the
//!   sweep's dirty snapshot — and the snapshot reports unmapped, unbacked,
//!   protected and alias pages as dirty.
//!
//! ## Quarantine staleness
//!
//! Digests are recorded **before** the candidate filter
//! ([`crate::CandidateFilter`]), so quarantine membership changes can
//! never make a cached mark stale: replay re-applies the *current*
//! sweep's filter to the digest (one bit test per candidate), which is
//! exactly what re-scanning the unchanged page would compute. Entries are
//! still epoch-tagged with the [`crate::Quarantine::generation`] they
//! were recorded under — the tag documents which candidate set produced
//! the digest and lets [`PageCache::invalidate_all`] retire every entry
//! with a single epoch bump, O(1), never a scan.

use std::collections::HashMap;

#[cfg(test)]
use vmem::Addr;
use vmem::{PageIdx, PAGE_SIZE, WORD_SIZE};

use crate::sweep::SweepPlan;

/// One page's recorded summary.
#[derive(Clone, Debug)]
struct PageEntry {
    /// Sweep epoch the digest was recorded in (entries older than the
    /// cache's `min_epoch` are dead — see [`PageCache::invalidate_all`]).
    epoch: u64,
    /// Quarantine generation the digest was recorded under.
    qgen: u64,
    /// Heap-pointing word values found on the page, pre-filter.
    targets: Box<[u64]>,
}

/// Per-page sweep summaries keyed by page index.
///
/// Owned by the layer across sweeps; consumed by the marker through
/// [`crate::MarkAccel`].
#[derive(Clone, Debug, Default)]
pub struct PageCache {
    entries: HashMap<u64, PageEntry>,
    /// Current sweep epoch (monotonic, supplied by the layer).
    epoch: u64,
    /// Entries recorded before this epoch are invalid.
    min_epoch: u64,
}

impl PageCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PageCache::default()
    }

    /// Opens a sweep epoch: records the epoch, then retires every entry
    /// that is no longer replayable — pages in the sweep's dirty snapshot
    /// (`dirty`, sorted, from [`vmem::AddrSpace::snapshot_soft_dirty`])
    /// and pages not fully covered by the current `plan` (a page that left
    /// the plan may be written while its soft-dirty history is not being
    /// tracked by any sweep, so its digest can silently go stale).
    pub fn begin_sweep(&mut self, plan: &SweepPlan, dirty: &[PageIdx], epoch: u64) {
        self.epoch = epoch;
        let min_epoch = self.min_epoch;
        let mut covered: Vec<(u64, u64)> = plan
            .ranges()
            .iter()
            .filter_map(|&(base, len)| {
                // First and last partially-covered pages don't count.
                let first = base.page().raw() + u64::from(!base.is_aligned(PAGE_SIZE as u64));
                let end = base.add_bytes(len).raw() / PAGE_SIZE as u64;
                (end > first).then_some((first, end))
            })
            .collect();
        covered.sort_unstable();
        self.entries.retain(|&page, e| {
            e.epoch >= min_epoch
                && dirty.binary_search(&PageIdx::new(page)).is_err()
                && covered
                    .partition_point(|&(first, _)| first <= page)
                    .checked_sub(1)
                    .is_some_and(|i| page < covered[i].1)
        });
    }

    /// The digest for `page`, if a valid entry exists. Replay applies the
    /// current filter to each returned value; an empty slice means the
    /// page is known to contain no heap pointers at all.
    pub fn lookup(&self, page: PageIdx) -> Option<&[u64]> {
        self.entries
            .get(&page.raw())
            .filter(|e| e.epoch >= self.min_epoch)
            .map(|e| &*e.targets)
    }

    /// Records a freshly scanned page's digest under the current epoch.
    pub fn record(&mut self, page: PageIdx, qgen: u64, targets: Vec<u64>) {
        self.entries.insert(
            page.raw(),
            PageEntry { epoch: self.epoch, qgen, targets: targets.into_boxed_slice() },
        );
    }

    /// Drops one page's entry (explicit invalidation hook).
    pub fn invalidate(&mut self, page: PageIdx) {
        self.entries.remove(&page.raw());
    }

    /// Retires every entry in O(1): entries recorded before the next
    /// epoch stop resolving, and `begin_sweep` lazily reclaims them.
    pub fn invalidate_all(&mut self) {
        self.min_epoch = self.epoch + 1;
    }

    /// Number of live (replayable as of the last `begin_sweep`) entries.
    pub fn len(&self) -> usize {
        self.entries.values().filter(|e| e.epoch >= self.min_epoch).count()
    }

    /// Whether no live entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Quarantine generation a cached page was recorded under, if cached.
    pub fn recorded_generation(&self, page: PageIdx) -> Option<u64> {
        self.entries
            .get(&page.raw())
            .filter(|e| e.epoch >= self.min_epoch)
            .map(|e| e.qgen)
    }

    /// Approximate resident size of the cache in bytes (telemetry).
    pub fn footprint_bytes(&self) -> u64 {
        self.entries
            .values()
            .map(|e| (e.targets.len() * WORD_SIZE) as u64 + 32)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: u64 = PAGE_SIZE as u64;

    fn plan(ranges: &[(u64, u64)]) -> SweepPlan {
        SweepPlan::from_ranges(
            ranges.iter().map(|&(b, l)| (Addr::new(b), l)).collect(),
        )
    }

    #[test]
    fn record_then_lookup_round_trips() {
        let mut c = PageCache::new();
        let page = Addr::new(0x1_0000_0000).page();
        c.begin_sweep(&plan(&[(0x1_0000_0000, 4 * P)]), &[], 1);
        c.record(page, 7, vec![0x2_0000_0000, 0x2_0000_0040]);
        assert_eq!(c.lookup(page), Some(&[0x2_0000_0000, 0x2_0000_0040][..]));
        assert_eq!(c.recorded_generation(page), Some(7));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn dirty_pages_lose_their_entries() {
        let mut c = PageCache::new();
        let p0 = Addr::new(0x1_0000_0000).page();
        let p1 = Addr::new(0x1_0000_0000 + P).page();
        c.begin_sweep(&plan(&[(0x1_0000_0000, 2 * P)]), &[], 1);
        c.record(p0, 0, vec![1]);
        c.record(p1, 0, vec![2]);
        c.begin_sweep(&plan(&[(0x1_0000_0000, 2 * P)]), &[p1], 2);
        assert!(c.lookup(p0).is_some());
        assert!(c.lookup(p1).is_none(), "dirty page retired");
    }

    #[test]
    fn pages_leaving_the_plan_are_retired() {
        let mut c = PageCache::new();
        let p0 = Addr::new(0x1_0000_0000).page();
        c.begin_sweep(&plan(&[(0x1_0000_0000, P)]), &[], 1);
        c.record(p0, 0, vec![1]);
        // Next sweep's plan no longer covers the page.
        c.begin_sweep(&plan(&[(0x1_0000_0000 + 8 * P, P)]), &[], 2);
        assert!(c.lookup(p0).is_none());
    }

    #[test]
    fn partially_covered_pages_never_survive() {
        let mut c = PageCache::new();
        let p0 = Addr::new(0x1_0000_0000).page();
        c.begin_sweep(&plan(&[(0x1_0000_0000, 2 * P)]), &[], 1);
        c.record(p0, 0, vec![1]);
        // The plan now covers only half of the page: the digest would
        // replay marks the scan wouldn't find (or miss coverage), so out.
        c.begin_sweep(&plan(&[(0x1_0000_0000 + P / 2, P)]), &[], 2);
        assert!(c.lookup(p0).is_none());
    }

    #[test]
    fn invalidate_all_is_an_epoch_bump() {
        let mut c = PageCache::new();
        let p0 = Addr::new(0x1_0000_0000).page();
        c.begin_sweep(&plan(&[(0x1_0000_0000, P)]), &[], 1);
        c.record(p0, 3, vec![1, 2, 3]);
        c.invalidate_all();
        assert!(c.lookup(p0).is_none());
        assert!(c.is_empty());
        // Entries recorded after the bump resolve again.
        c.begin_sweep(&plan(&[(0x1_0000_0000, P)]), &[], 2);
        c.record(p0, 4, vec![9]);
        assert_eq!(c.lookup(p0), Some(&[9u64][..]));
    }
}
