//! Cross-plane reconcile for the parallel marking path.
//!
//! The work-stealing [`parallel_mark_accel`] folds per-thread counters —
//! notably `filter_rejects` — into one [`ParallelMarkStats`] with a
//! single atomic add per thread at join time. This test drives those
//! aggregated stats through both telemetry planes (the `layer` counter
//! registry and the typed event trace) and checks that
//! [`RunReport::reconcile`] holds them equal, exactly as
//! `ms-report --check` does for a recorded run. Crediting only the main
//! thread's rejects — the bug the atomic aggregation exists to prevent —
//! must make the reconcile fail by name.

use minesweeper::telemetry::{Event, EventKind, Registry, RunReport, Trigger};
use minesweeper::{
    parallel_mark_accel, CandidateFilter, MarkAccel, Marker, MsCounters, ShadowMap, SweepPlan,
};
use vmem::{Addr, AddrSpace, PAGE_SIZE};

/// Pointers written at the candidate / non-candidate targets.
const CANDIDATE_PTRS: u64 = 5;
const REJECTED_PTRS: u64 = 7;

/// Builds a 4-page source region holding [`CANDIDATE_PTRS`] pointers into
/// a quarantine candidate and [`REJECTED_PTRS`] pointers into a live
/// (non-candidate) allocation, spread across pages so every work-queue
/// chunk sees some of each.
fn fixture(space: &mut AddrSpace) -> (Addr, Addr, SweepPlan) {
    let heap = |space: &mut AddrSpace, pages| {
        let a = space.reserve_heap(pages);
        space.map(a, pages).unwrap();
        a
    };
    let candidate = heap(space, 1);
    let live = heap(space, 1);
    let src = heap(space, 4);
    let page = PAGE_SIZE as u64;
    for i in 0..CANDIDATE_PTRS {
        let slot = src + (i % 4) * page + (i / 4) * 128 + 8;
        space.write_word(slot, candidate.raw() + i * 8).unwrap();
    }
    for i in 0..REJECTED_PTRS {
        let slot = src + (i % 4) * page + (i / 4) * 128 + 64;
        space.write_word(slot, live.raw() + i * 8).unwrap();
    }
    (candidate, live, SweepPlan::from_ranges(vec![(src, 4 * page)]))
}

#[test]
fn parallel_rejects_reconcile_across_both_telemetry_planes() {
    let mut space = AddrSpace::new();
    let layout = *space.layout();
    let (candidate, live, plan) = fixture(&mut space);
    let filter = CandidateFilter::build([(candidate, CANDIDATE_PTRS * 8)]);

    // Parallel mark with the candidate filter: rejects are counted by
    // every worker and atomically folded at join.
    let (shadow, stats) =
        parallel_mark_accel(&space, &plan, &layout, 3, Some(&filter), None, None);
    assert_eq!(stats.filter_rejects, REJECTED_PTRS, "every live-pointer word rejected");
    assert_eq!(stats.heap_words, CANDIDATE_PTRS + REJECTED_PTRS);
    assert!(shadow.is_marked(candidate), "candidate marks survive the filter");
    assert!(!shadow.is_marked(live), "non-candidate marks suppressed");

    // The serial marker over the same plan and filter is the ground
    // truth the parallel aggregation must reproduce.
    let mut serial = ShadowMap::new();
    let r = Marker::new(plan.clone()).run_to_end_accel(
        &mut space,
        &layout,
        &mut serial,
        &mut MarkAccel { filter: Some(&filter), ..MarkAccel::default() },
    );
    assert_eq!(stats.filter_rejects, r.filter_rejects);
    assert_eq!(stats.heap_words, r.heap_words);
    assert_eq!(stats.words, r.words);

    // Plane 1: the layer counters, credited from the aggregated stats
    // the way `MineSweeper` credits its own parallel phase.
    let registry = Registry::new();
    let counters = MsCounters::register(&registry);
    counters.sweeps.inc();
    counters.swept_bytes.add(stats.words * 8);
    counters.heap_words.add(stats.heap_words);
    counters.filter_rejects.add(stats.filter_rejects);

    // Plane 2: the event trace for the same sweep.
    let events = vec![
        Event {
            seq: 0,
            vnow: 1,
            kind: EventKind::SweepStart {
                sweep: 1,
                trigger: Trigger::Manual,
                quarantine_bytes: CANDIDATE_PTRS * 8,
                quarantine_entries: 1,
            },
        },
        Event {
            seq: 1,
            vnow: 2,
            kind: EventKind::MarkPhase {
                sweep: 1,
                bytes: stats.words * 8,
                words: stats.words,
                skipped_bytes: 0,
                marked_granules: shadow.marked_count(),
                filter_rejects: stats.filter_rejects,
                wall_ns: 0,
                prof: None,
            },
        },
        Event { seq: 2, vnow: 3, kind: EventKind::SweepEnd { sweep: 1, wall_ns: 0, ledger: None } },
    ];
    let report = RunReport::from_events(&events);
    report.reconcile(&registry.snapshot()).expect("aggregated parallel stats must reconcile");

    // The regression this guards: crediting only the main thread's view
    // of the rejects (dropping the helpers' atomic contributions) leaves
    // the counter short and the reconcile must say so by name.
    let broken = Registry::new();
    let short = MsCounters::register(&broken);
    short.sweeps.inc();
    short.swept_bytes.add(stats.words * 8);
    short.filter_rejects.add(stats.filter_rejects - 1);
    let err = report.reconcile(&broken.snapshot()).unwrap_err();
    assert!(err.contains("filter_rejects"), "mismatch must be named: {err}");
}

#[test]
fn parallel_reject_totals_are_thread_count_invariant() {
    // The aggregated totals are deterministic: identical for every
    // requested helper count (including counts the hardware clamps away)
    // and chunk granularity.
    let mut space = AddrSpace::new();
    let layout = *space.layout();
    let (candidate, _, plan) = fixture(&mut space);
    let filter = CandidateFilter::build([(candidate, CANDIDATE_PTRS * 8)]);
    for helpers in [0, 1, 3, 7] {
        let (_, stats) =
            parallel_mark_accel(&space, &plan, &layout, helpers, Some(&filter), None, None);
        assert_eq!(stats.filter_rejects, REJECTED_PTRS, "helpers={helpers}");
        assert_eq!(stats.heap_words, CANDIDATE_PTRS + REJECTED_PTRS, "helpers={helpers}");
    }
}
