//! Property-based tests for the MineSweeper layer.
//!
//! The headline property (§1.2): *if an aligned, unhidden pointer to any
//! byte of a freed allocation exists anywhere in swept memory, the
//! allocation is never recycled* — so a use-after-free can never become a
//! use-after-reallocate. Dually (precision): allocations with no such
//! pointers are released by the next sweep, and double frees are absorbed
//! exactly once.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

use minesweeper::telemetry::{RingSink, RunReport};
use minesweeper::{
    parallel_mark_opts, CandidateFilter, EdgeRecorder, ForensicsMode, FreeOutcome, MarkAccel,
    Marker, MineSweeper, MsConfig, NaiveShadowMap, PageCache, ParallelMarkOpts, QEntry, ShadowMap,
    SweepPlan,
};
use vmem::{Addr, AddrSpace, Segment, PAGE_SIZE};

#[derive(Clone, Debug)]
enum Op {
    /// Allocate `size` bytes; object id = running counter.
    Malloc { size: u64 },
    /// Write a pointer to object `to` into root slot `slot`.
    Point { slot: u8, to: usize },
    /// Clear root slot `slot`.
    Unpoint { slot: u8 },
    /// Free object `n` (possibly already freed: double free).
    Free { n: usize },
    /// Run a full sweep.
    Sweep,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (8u64..9000).prop_map(|size| Op::Malloc { size }),
        3 => (0u8..16, any::<usize>()).prop_map(|(slot, to)| Op::Point { slot, to }),
        2 => (0u8..16).prop_map(|slot| Op::Unpoint { slot }),
        3 => any::<usize>().prop_map(|n| Op::Free { n }),
        1 => Just(Op::Sweep),
    ]
}

fn run_scenario(cfg: MsConfig, ops: Vec<Op>) -> Result<(), TestCaseError> {
    let mut space = AddrSpace::new();
    let mut ms = MineSweeper::new(cfg);
    let stack = space.layout().segment_base(Segment::Stack);

    // Model state.
    let mut objects: Vec<(Addr, u64)> = Vec::new(); // id -> (base, usable)
    let mut live: BTreeSet<usize> = BTreeSet::new();
    let mut freed: BTreeSet<usize> = BTreeSet::new(); // freed, not yet recycled
    let mut roots: BTreeMap<u8, usize> = BTreeMap::new(); // slot -> object id

    for op in ops {
        match op {
            Op::Malloc { size } => {
                let a = ms.malloc(&mut space, size);
                let usable = ms.heap().usable_size(a).unwrap();
                // Reallocation may reuse a base that belonged to a freed,
                // since-released object; the old id stays in `objects` but
                // is no longer freed/live.
                objects.push((a, usable));
                live.insert(objects.len() - 1);
            }
            Op::Point { slot, to } => {
                if objects.is_empty() {
                    continue;
                }
                let id = to % objects.len();
                roots.insert(slot, id);
                space
                    .write_word(stack + slot as u64 * 8, objects[id].0.raw())
                    .unwrap();
            }
            Op::Unpoint { slot } => {
                roots.remove(&slot);
                space.write_word(stack + slot as u64 * 8, 0).unwrap();
            }
            Op::Free { n } => {
                if live.is_empty() {
                    continue;
                }
                let &id = live.iter().nth(n % live.len()).unwrap();
                let outcome = ms.free(&mut space, objects[id].0);
                prop_assert_eq!(outcome, FreeOutcome::Quarantined);
                live.remove(&id);
                freed.insert(id);
                // Double-freeing right away must be absorbed.
                if n % 3 == 0 {
                    prop_assert_eq!(
                        ms.free(&mut space, objects[id].0),
                        FreeOutcome::DoubleFree
                    );
                }
            }
            Op::Sweep => {
                if ms.quarantine().is_empty() {
                    continue;
                }
                ms.sweep_now(&mut space);
                let rooted: BTreeSet<Addr> =
                    roots.values().map(|&id| objects[id].0).collect();
                let mut recycled = Vec::new();
                for &id in &freed {
                    let (base, _) = objects[id];
                    if rooted.contains(&base) {
                        // SAFETY PROPERTY: a rooted dangling pointer must
                        // pin the allocation in quarantine.
                        prop_assert!(
                            ms.quarantine().contains(base),
                            "object {id} at {base} recycled despite dangling root"
                        );
                    } else if !ms.quarantine().contains(base) {
                        recycled.push(id);
                    }
                }
                for id in recycled {
                    freed.remove(&id);
                }
            }
        }

        // Inter-step invariants: every live object is intact in the heap.
        for &id in &live {
            let (base, usable) = objects[id];
            prop_assert_eq!(ms.heap().usable_size(base), Some(usable));
        }
    }

    // Final sweep twice with all roots cleared: everything freed must
    // drain out of quarantine (no leaks from the mitigation itself).
    for slot in 0..16u8 {
        space.write_word(stack + slot as u64 * 8, 0).unwrap();
    }
    ms.sweep_now(&mut space);
    ms.sweep_now(&mut space);
    prop_assert!(
        ms.quarantine().is_empty(),
        "{} entries leaked in quarantine",
        ms.quarantine().len()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fully_concurrent_never_recycles_reachable_danglers(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        run_scenario(MsConfig::fully_concurrent(), ops)?;
    }

    #[test]
    fn mostly_concurrent_never_recycles_reachable_danglers(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        run_scenario(MsConfig::mostly_concurrent(), ops)?;
    }

    #[test]
    fn unoptimised_config_preserves_safety(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        // Zeroing off: quarantine may retain more (stale pointers inside
        // quarantined data), but the safety direction must still hold, and
        // nothing live may be disturbed. Drain checks don't apply, so run
        // a reduced scenario without the final leak assertion.
        let mut cfg = MsConfig::ablation_unoptimised();
        cfg.zeroing = true; // leak-freedom needs zeroing; keep safety focus
        run_scenario(cfg, ops)?;
    }

    #[test]
    fn shadow_map_agrees_with_naive_reference(
        // Addresses span two level-1 directory slots, so chunk, table and
        // word boundaries are all crossed.
        addrs in proptest::collection::vec(0u64..(1u64 << 35), 1..250),
        use_writer in any::<bool>(),
        queries in proptest::collection::vec((0u64..(1u64 << 35), 0u64..65_536), 1..120),
    ) {
        // Differential test: the atomic radix map (direct marks or the
        // write-combining writer) against the seed's naive map — same
        // newly-set verdicts, same count, same word-masked range queries.
        let fast = ShadowMap::new();
        let mut slow = NaiveShadowMap::new();
        if use_writer {
            let mut w = fast.writer();
            for &a in &addrs {
                prop_assert_eq!(w.mark(Addr::new(a)), slow.mark(Addr::new(a)));
            }
        } else {
            for &a in &addrs {
                prop_assert_eq!(fast.mark(Addr::new(a)), slow.mark(Addr::new(a)));
            }
        }
        prop_assert_eq!(fast.marked_count(), slow.marked_count());
        for &a in &addrs {
            prop_assert!(fast.is_marked(Addr::new(a)));
        }
        for &(start, len) in &queries {
            prop_assert_eq!(
                fast.range_marked(Addr::new(start), len),
                slow.range_marked(Addr::new(start), len),
                "range [{:#x}, +{}) disagrees", start, len
            );
        }
    }

    #[test]
    fn telemetry_balances_and_reconciles(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        // Two invariants over arbitrary scenarios:
        //  (a) byte conservation — every byte ever quarantined is either
        //      released or still in quarantine (swept or unmapped);
        //  (b) the sweep-lifecycle event stream aggregates to exactly the
        //      registry's counters (RunReport::reconcile).
        let mut space = AddrSpace::new();
        let mut ms = MineSweeper::new(MsConfig::fully_concurrent());
        let ring = RingSink::new(1 << 16);
        ms.tracer_mut().set_sink(Box::new(ring.clone()));
        ms.tracer_mut().set_deterministic(true);
        let stack = space.layout().segment_base(Segment::Stack);

        let mut objects: Vec<Addr> = Vec::new();
        let mut live: BTreeSet<usize> = BTreeSet::new();
        for op in ops {
            match op {
                Op::Malloc { size } => {
                    objects.push(ms.malloc(&mut space, size));
                    live.insert(objects.len() - 1);
                }
                Op::Point { slot, to } => {
                    if !objects.is_empty() {
                        let id = to % objects.len();
                        space
                            .write_word(stack + slot as u64 * 8, objects[id].raw())
                            .unwrap();
                    }
                }
                Op::Unpoint { slot } => {
                    space.write_word(stack + slot as u64 * 8, 0).unwrap();
                }
                Op::Free { n } => {
                    if live.is_empty() {
                        continue;
                    }
                    let &id = live.iter().nth(n % live.len()).unwrap();
                    ms.free(&mut space, objects[id]);
                    live.remove(&id);
                    if n % 3 == 0 {
                        // Absorbed double frees must not skew the balance.
                        ms.free(&mut space, objects[id]);
                    }
                }
                Op::Sweep => {
                    ms.sweep_now(&mut space);
                }
            }
            let st = ms.stats();
            let q = ms.quarantine();
            prop_assert_eq!(
                st.quarantined_bytes,
                st.released_bytes + q.tracked_bytes() + q.unmapped_bytes(),
                "quarantined bytes must be released or still tracked"
            );
        }

        let events = ring.events();
        let report = RunReport::from_events(events.iter());
        let snap = ms.registry().snapshot();
        if let Err(e) = report.reconcile(&snap) {
            prop_assert!(false, "event/counter reconciliation failed: {}", e);
        }
    }

    #[test]
    fn incremental_sweep_is_equivalent_to_full_sweep(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        // Differential test for the incremental sweep: the same op
        // sequence drives three layers in lockstep —
        //   base: page cache off, candidate filter off (from-scratch);
        //   inc:  page cache on (digest replay), filter off;
        //   incf: page cache on AND candidate filter on.
        // After every sweep, `inc` must produce a shadow map identical to
        // `base` (the cache only replays provably-clean pages), and all
        // three must make identical release decisions (the filter drops
        // only marks no locked quarantine entry can observe).
        let base_cfg = MsConfig::builder().page_cache(false).candidate_filter(false).build();
        let inc_cfg = MsConfig::builder().page_cache(true).candidate_filter(false).build();
        let incf_cfg = MsConfig::builder().page_cache(true).candidate_filter(true).build();
        let mut layers: Vec<(AddrSpace, MineSweeper<_>)> = [base_cfg, inc_cfg, incf_cfg]
            .into_iter()
            .map(|cfg| (AddrSpace::new(), MineSweeper::new(cfg)))
            .collect();
        let stack = layers[0].0.layout().segment_base(Segment::Stack);

        let mut objects: Vec<(Addr, u64)> = Vec::new();
        let mut live: BTreeSet<usize> = BTreeSet::new();
        let mut freed: BTreeSet<usize> = BTreeSet::new();
        for op in ops {
            match op {
                Op::Malloc { size } => {
                    let addrs: Vec<Addr> = layers
                        .iter_mut()
                        .map(|(space, ms)| ms.malloc(space, size))
                        .collect();
                    // The allocator is deterministic, so lockstep drives
                    // must agree on placement — everything below relies
                    // on comparing the same addresses.
                    prop_assert!(addrs.iter().all(|&a| a == addrs[0]));
                    let usable = layers[0].1.heap().usable_size(addrs[0]).unwrap();
                    objects.push((addrs[0], usable));
                    live.insert(objects.len() - 1);
                }
                Op::Point { slot, to } => {
                    if objects.is_empty() {
                        continue;
                    }
                    let id = to % objects.len();
                    for (space, _) in &mut layers {
                        space
                            .write_word(stack + slot as u64 * 8, objects[id].0.raw())
                            .unwrap();
                    }
                }
                Op::Unpoint { slot } => {
                    for (space, _) in &mut layers {
                        space.write_word(stack + slot as u64 * 8, 0).unwrap();
                    }
                }
                Op::Free { n } => {
                    if live.is_empty() {
                        continue;
                    }
                    let &id = live.iter().nth(n % live.len()).unwrap();
                    let outcomes: Vec<FreeOutcome> = layers
                        .iter_mut()
                        .map(|(space, ms)| ms.free(space, objects[id].0))
                        .collect();
                    prop_assert!(outcomes.iter().all(|&o| o == outcomes[0]));
                    live.remove(&id);
                    freed.insert(id);
                }
                Op::Sweep => {
                    if layers[0].1.quarantine().is_empty() {
                        continue;
                    }
                    for (space, ms) in &mut layers {
                        ms.sweep_now(space);
                    }
                    let (_, base) = &layers[0];
                    let (_, inc) = &layers[1];
                    let (_, incf) = &layers[2];
                    // Cache replay must reproduce the from-scratch shadow
                    // map bit for bit.
                    prop_assert_eq!(
                        base.shadow().marked_count(),
                        inc.shadow().marked_count(),
                        "cache replay changed the mark count"
                    );
                    for &(obj, usable) in &objects {
                        prop_assert_eq!(
                            base.shadow().range_marked(obj, usable),
                            inc.shadow().range_marked(obj, usable),
                            "cache replay flipped a mark over {}", obj
                        );
                    }
                    // All three agree on every release decision.
                    for &id in &freed {
                        let b = base.quarantine().contains(objects[id].0);
                        prop_assert_eq!(b, inc.quarantine().contains(objects[id].0));
                        prop_assert_eq!(b, incf.quarantine().contains(objects[id].0));
                    }
                    let (bs, is_, fs) = (base.stats(), inc.stats(), incf.stats());
                    prop_assert_eq!(bs.released, is_.released);
                    prop_assert_eq!(bs.released, fs.released);
                    prop_assert_eq!(bs.failed_frees, is_.failed_frees);
                    prop_assert_eq!(bs.failed_frees, fs.failed_frees);
                    freed.retain(|&id| base.quarantine().contains(objects[id].0));
                }
            }
        }

        // Drain: with roots cleared, every layer must empty its
        // quarantine within two sweeps and still agree on totals.
        for slot in 0..16u8 {
            for (space, _) in &mut layers {
                space.write_word(stack + slot as u64 * 8, 0).unwrap();
            }
        }
        for (space, ms) in &mut layers {
            ms.sweep_now(space);
            ms.sweep_now(space);
            prop_assert!(ms.quarantine().is_empty());
        }
        let totals: Vec<(u64, u64)> = layers
            .iter()
            .map(|(_, ms)| (ms.stats().released, ms.stats().failed_frees))
            .collect();
        prop_assert!(totals.iter().all(|&t| t == totals[0]), "totals diverged: {:?}", totals);
        // The accelerated layers actually exercised their machinery at
        // least once if anything swept (cache entries get recorded on
        // every scan).
        if layers[1].1.stats().sweeps > 0 {
            prop_assert!(!layers[1].1.page_cache().is_empty());
        }
    }

    #[test]
    fn forensics_preserves_decisions_and_conserves_ledger_bytes(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        sampled in any::<bool>(),
    ) {
        // Differential + conservation test for the forensics subsystem.
        // The same op sequence drives two layers in lockstep — forensics
        // off, and forensics full (or sampled) — and after every sweep:
        //  (a) release decisions are identical (recording is observation
        //      only: it may never flip a mark or retain an entry);
        //  (b) the failed-free ledger's pinned bytes equal the
        //      quarantine's failed bytes, and together with released
        //      bytes respect quarantine byte conservation;
        //  (c) the ledger_bytes_in/out counters balance to the ledger.
        use minesweeper::ForensicsMode;
        let mode = if sampled { ForensicsMode::Sampled(3) } else { ForensicsMode::Full };
        let off_cfg = MsConfig::fully_concurrent();
        let on_cfg = MsConfig { forensics: mode, ..MsConfig::fully_concurrent() };
        let mut layers: Vec<(AddrSpace, MineSweeper)> = [off_cfg, on_cfg]
            .into_iter()
            .map(|cfg| (AddrSpace::new(), MineSweeper::new(cfg)))
            .collect();
        let stack = layers[0].0.layout().segment_base(Segment::Stack);

        let mut objects: Vec<(Addr, u64)> = Vec::new();
        let mut live: BTreeSet<usize> = BTreeSet::new();
        let mut freed: BTreeSet<usize> = BTreeSet::new();
        let mut next_site = 1u32;
        for op in ops {
            match op {
                Op::Malloc { size } => {
                    let addrs: Vec<Addr> = layers
                        .iter_mut()
                        .map(|(space, ms)| ms.malloc(space, size))
                        .collect();
                    prop_assert!(addrs.iter().all(|&a| a == addrs[0]));
                    let usable = layers[0].1.heap().usable_size(addrs[0]).unwrap();
                    objects.push((addrs[0], usable));
                    live.insert(objects.len() - 1);
                }
                Op::Point { slot, to } => {
                    if objects.is_empty() {
                        continue;
                    }
                    let id = to % objects.len();
                    for (space, _) in &mut layers {
                        space
                            .write_word(stack + slot as u64 * 8, objects[id].0.raw())
                            .unwrap();
                    }
                }
                Op::Unpoint { slot } => {
                    for (space, _) in &mut layers {
                        space.write_word(stack + slot as u64 * 8, 0).unwrap();
                    }
                }
                Op::Free { n } => {
                    if live.is_empty() {
                        continue;
                    }
                    let &id = live.iter().nth(n % live.len()).unwrap();
                    next_site += 1;
                    let outcomes: Vec<FreeOutcome> = layers
                        .iter_mut()
                        .map(|(space, ms)| {
                            ms.free_sited(space, objects[id].0, next_site)
                        })
                        .collect();
                    prop_assert!(outcomes.iter().all(|&o| o == outcomes[0]));
                    live.remove(&id);
                    freed.insert(id);
                }
                Op::Sweep => {
                    if layers[0].1.quarantine().is_empty() {
                        continue;
                    }
                    for (space, ms) in &mut layers {
                        ms.sweep_now(space);
                    }
                    let off = &layers[0].1;
                    let on = &layers[1].1;
                    // (a) identical release decisions, entry by entry.
                    for &id in &freed {
                        prop_assert_eq!(
                            off.quarantine().contains(objects[id].0),
                            on.quarantine().contains(objects[id].0),
                            "forensics changed the fate of {}", objects[id].0
                        );
                    }
                    let (so, sn) = (off.stats(), on.stats());
                    prop_assert_eq!(so.released, sn.released);
                    prop_assert_eq!(so.released_bytes, sn.released_bytes);
                    prop_assert_eq!(so.failed_frees, sn.failed_frees);
                    // (b) ledger pinned bytes == quarantine failed bytes,
                    // and conservation holds with the ledger folded in.
                    let totals = on.ledger().totals();
                    prop_assert_eq!(totals.bytes, on.quarantine().failed_bytes());
                    let q = on.quarantine();
                    prop_assert_eq!(
                        sn.quarantined_bytes,
                        sn.released_bytes + q.tracked_bytes() + q.unmapped_bytes(),
                        "ledger recording broke byte conservation"
                    );
                    prop_assert!(totals.bytes <= q.tracked_bytes() + q.unmapped_bytes());
                    // (c) the flow counters balance to the live ledger.
                    let snap = on.registry().snapshot();
                    let bytes_in = snap.counter("layer", "ledger_bytes_in").unwrap_or(0);
                    let bytes_out = snap.counter("layer", "ledger_bytes_out").unwrap_or(0);
                    prop_assert_eq!(totals.bytes, bytes_in - bytes_out);
                    // The off layer must never touch its ledger.
                    prop_assert_eq!(off.ledger().totals().entries, 0);
                    freed.retain(|&id| off.quarantine().contains(objects[id].0));
                }
            }
        }

        // Drain and re-check the final balance: an empty quarantine means
        // an empty ledger, with in == out.
        for slot in 0..16u8 {
            for (space, _) in &mut layers {
                space.write_word(stack + slot as u64 * 8, 0).unwrap();
            }
        }
        for (space, ms) in &mut layers {
            ms.sweep_now(space);
            ms.sweep_now(space);
            prop_assert!(ms.quarantine().is_empty());
        }
        let totals = layers[1].1.ledger().totals();
        prop_assert_eq!(totals.bytes, 0, "drained quarantine left ledger bytes");
        prop_assert_eq!(totals.entries, 0);
        let snap = layers[1].1.registry().snapshot();
        prop_assert_eq!(
            snap.counter("layer", "ledger_bytes_in"),
            snap.counter("layer", "ledger_bytes_out")
        );
        prop_assert_eq!(
            layers[0].1.stats().released,
            layers[1].1.stats().released
        );
    }

    #[test]
    fn malloc_free_roundtrip_is_stable_under_quarantine(
        sizes in proptest::collection::vec(8u64..100_000, 1..40)
    ) {
        // Alloc all, free all, sweep, repeatedly: everything must recycle
        // each round, and the mapped footprint must converge (best-fit
        // splitting may shuffle extents for a few rounds, but with no live
        // growth the layout reaches a fixed point — quarantine-induced
        // fragmentation is bounded, §3.2).
        let mut space = AddrSpace::new();
        let mut ms = MineSweeper::new(MsConfig::fully_concurrent());
        let mut mapped_history = Vec::new();
        for _round in 0..6 {
            let addrs: Vec<Addr> = sizes.iter().map(|&s| ms.malloc(&mut space, s)).collect();
            for &a in &addrs {
                ms.free(&mut space, a);
            }
            ms.sweep_now(&mut space);
            prop_assert!(ms.quarantine().is_empty());
            mapped_history.push(space.mapped_bytes());
        }
        let n = mapped_history.len();
        prop_assert_eq!(mapped_history[n - 1], mapped_history[n - 2],
            "mapped footprint must converge: {:?}", mapped_history);
    }
}

/// Builds one scan fixture for the differential kernel tests: `pages`
/// mapped source pages whose words are an LCG-driven mix of zeros, heap
/// pointers into a two-page target window, and junk — including the
/// exact heap boundary values (`lo - 8`, `hi - 8`, `hi`) every scan tier
/// must classify identically. The returned plan starts `start_off` words
/// in and stops `end_trim` words early, so the kernel's 32-word group
/// alignment, head scalar-up and tail remainder are all arbitrary.
fn scan_fixture(
    space: &mut AddrSpace,
    seed: u64,
    pages: u64,
    start_off: u64,
    end_trim: u64,
    zero_pct: u64,
    ptr_pct: u64,
) -> (SweepPlan, Addr) {
    let tbase = {
        let a = space.reserve_heap(2);
        space.map(a, 2).unwrap();
        a
    };
    let src = {
        let a = space.reserve_heap(pages);
        space.map(a, pages).unwrap();
        a
    };
    let layout = *space.layout();
    let lo = layout.segment_base(Segment::Heap).raw();
    let hi = layout.segment_end(Segment::Heap).raw();
    let mut r = seed | 1;
    let mut lcg = move || {
        r = r.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        r >> 11
    };
    for i in 0..pages * 512 {
        let roll = lcg() % 100;
        let v = if roll < zero_pct {
            0
        } else if roll < zero_pct + ptr_pct {
            tbase.raw() + lcg() % (2 * PAGE_SIZE as u64)
        } else {
            match lcg() % 8 {
                0 => lo.wrapping_sub(8), // just below the heap: rejected
                1 => hi,                 // one past the heap: rejected
                2 => hi - 8,             // last heap word: survivor
                3 => lo,                 // first heap word: survivor
                4 => 1,
                5 => u64::MAX,
                _ => lcg(), // arbitrary 53-bit junk
            }
        };
        space.write_word(src + i * 8, v).unwrap();
    }
    let total = pages * 512;
    let words = (total - start_off.min(total - 1)).saturating_sub(end_trim).max(1);
    (SweepPlan::from_ranges(vec![(src + start_off * 8, words * 8)]), tbase)
}

/// Folds a full accelerated mark of `plan` under one tier into a
/// comparable digest: the summed step counters, the shadow map's count
/// and granule-by-granule contents over the target window, the page
/// cache's recorded digests, and the forensic edge aggregates.
#[allow(clippy::type_complexity)]
fn run_tier(
    space: &mut AddrSpace,
    plan: &SweepPlan,
    tier: minesweeper::ScanTier,
    budget: u64,
    filter: Option<&CandidateFilter>,
    entries: Option<&[QEntry]>,
    tbase: Addr,
) -> ((u64, u64, u64, u64, u64, u64), u64, Vec<bool>, Vec<Option<Vec<u64>>>, u64, Vec<(u64, u64, u64)>) {
    let layout = *space.layout();
    let mut shadow = ShadowMap::new();
    let mut cache = PageCache::new();
    cache.begin_sweep(plan, &[], 1);
    let rec = entries.and_then(|e| EdgeRecorder::new(e, ForensicsMode::Full));
    let mut marker = Marker::new(plan.clone());
    let mut totals = (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    loop {
        let mut accel = MarkAccel {
            filter,
            cache: Some(&mut cache),
            qgen: 1,
            forensics: rec.as_ref(),
            tier: Some(tier),
            prof: None,
        };
        let r = marker.step_accel(space, &layout, &mut shadow, budget, &mut accel);
        totals.0 += r.words;
        totals.1 += r.bytes;
        totals.2 += r.heap_words;
        totals.3 += r.filter_rejects;
        totals.4 += r.skipped_bytes;
        totals.5 += r.pin_edges;
        if r.finished {
            break;
        }
    }
    let window: Vec<bool> = (0..2 * PAGE_SIZE as u64 / 16)
        .map(|g| shadow.is_marked(tbase + g * 16))
        .collect();
    let digests: Vec<Option<Vec<u64>>> = plan
        .ranges()
        .iter()
        .flat_map(|&(base, len)| {
            (0..len.div_ceil(PAGE_SIZE as u64))
                .map(move |k| base.add_bytes(k * PAGE_SIZE as u64).page())
        })
        .map(|pg| cache.lookup(pg).map(<[u64]>::to_vec))
        .collect();
    let (recorded, mut aggs) = rec
        .map(|r| {
            let a = r
                .aggregates()
                .into_iter()
                .map(|(base, agg)| (base, agg.hits, agg.src))
                .collect::<Vec<_>>();
            (r.recorded(), a)
        })
        .unwrap_or_default();
    aggs.sort_unstable();
    (totals, shadow.marked_count(), window, digests, recorded, aggs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scan_tiers_are_bit_identical_through_the_full_pipeline(
        seed in any::<u64>(),
        pages in 1u64..4,
        start_off in 0u64..70,
        end_trim in 0u64..70,
        zero_pct in 0u64..80,
        ptr_pct in 0u64..20,
        budget in 16u64..3000,
        filter_on in any::<bool>(),
        forensics_on in any::<bool>(),
    ) {
        // Differential test for the SIMD kernel (the tentpole): every
        // available tier — AVX2, SSE2, portable SWAR — must produce
        // bit-identical shadow maps, step counters, page digests,
        // filter-reject counts and forensic edges over arbitrary word
        // soup, arbitrary (unaligned) plan starts/ends and arbitrary
        // step budgets. SWAR is the reference; it contains no
        // platform-specific code.
        let mut space = AddrSpace::new();
        let (plan, tbase) =
            scan_fixture(&mut space, seed, pages, start_off, end_trim, zero_pct, ptr_pct);
        // Candidate region: the second target page only, so the filter
        // rejects roughly half the in-window pointers.
        let filter = CandidateFilter::build([(tbase + PAGE_SIZE as u64, PAGE_SIZE as u64)]);
        let filter = filter_on.then_some(&filter);
        let entries = [QEntry::new(tbase + PAGE_SIZE as u64, PAGE_SIZE as u64)];
        let entries = forensics_on.then_some(&entries[..]);

        let tiers = minesweeper::simd::available_tiers();
        let reference = run_tier(&mut space, &plan, tiers[tiers.len() - 1], budget, filter, entries, tbase);
        prop_assert_eq!(tiers[tiers.len() - 1], minesweeper::ScanTier::Swar);
        for &tier in &tiers[..tiers.len() - 1] {
            let got = run_tier(&mut space, &plan, tier, budget, filter, entries, tbase);
            prop_assert_eq!(&got, &reference, "tier {} diverges from swar", tier.as_str());
        }
    }

    #[test]
    fn work_stealing_mark_is_deterministic(
        seed in any::<u64>(),
        pages in 1u64..5,
        zero_pct in 0u64..80,
        ptr_pct in 0u64..20,
        helpers in 0usize..5,
        chunk_pages in 1u64..4,
        filter_on in any::<bool>(),
    ) {
        // The work-stealing queue must not change *what* is computed:
        // for any helper count (including counts the hardware clamps)
        // and any chunk granularity, the aggregated stats and the shadow
        // map equal the serial marker's, claim order notwithstanding.
        let mut space = AddrSpace::new();
        let (plan, tbase) = scan_fixture(&mut space, seed, pages, 0, 0, zero_pct, ptr_pct);
        let layout = *space.layout();
        let filter = CandidateFilter::build([(tbase, PAGE_SIZE as u64)]);
        let filter = filter_on.then_some(&filter);

        let mut serial_map = ShadowMap::new();
        let serial = Marker::new(plan.clone()).run_to_end_accel(
            &mut space,
            &layout,
            &mut serial_map,
            &mut MarkAccel { filter, ..MarkAccel::default() },
        );

        let (map, stats) = parallel_mark_opts(
            &space,
            &plan,
            &layout,
            &ParallelMarkOpts {
                helper_threads: helpers,
                filter,
                chunk_pages: Some(chunk_pages),
                ..ParallelMarkOpts::default()
            },
        );
        prop_assert_eq!(stats.words, serial.words);
        prop_assert_eq!(stats.heap_words, serial.heap_words);
        prop_assert_eq!(stats.filter_rejects, serial.filter_rejects);
        prop_assert_eq!(map.marked_count(), serial_map.marked_count());
        for g in 0..2 * PAGE_SIZE as u64 / 16 {
            prop_assert_eq!(
                map.is_marked(tbase + g * 16),
                serial_map.is_marked(tbase + g * 16),
                "granule {} disagrees", g
            );
        }
    }

    #[test]
    fn adaptive_writer_matches_naive_on_runs_and_jumps(
        segs in proptest::collection::vec(
            (0u64..(1u64 << 30), 1u64..96), 1..40),
        use_shared in any::<bool>(),
    ) {
        // The write-combining window is adaptive: sequential granule
        // runs open it, isolated marks take the direct path, and chunk /
        // line boundaries force flushes. Mark-by-mark "newly set"
        // verdicts and the final count must match the naive reference
        // for any interleaving of runs and jumps — including re-marking
        // granules a previous run already set.
        let fast = ShadowMap::new();
        let mut slow = NaiveShadowMap::new();
        let mut drive = |w: &mut dyn FnMut(Addr) -> bool| {
            for &(base, run) in &segs {
                for k in 0..run {
                    let a = Addr::new(base * 16 + k * 16);
                    assert_eq!(w(a), slow.mark(a), "verdict diverges at {a}");
                }
            }
        };
        if use_shared {
            let mut w = fast.writer();
            drive(&mut |a| w.mark(a));
        } else {
            let mut fast2 = ShadowMap::new();
            {
                let mut w = fast2.writer_mut();
                drive(&mut |a| w.mark(a));
            }
            prop_assert_eq!(fast2.marked_count(), slow.marked_count());
            return Ok(());
        }
        prop_assert_eq!(fast.marked_count(), slow.marked_count());
        for &(base, run) in &segs {
            for k in 0..run {
                prop_assert!(fast.is_marked(Addr::new(base * 16 + k * 16)));
            }
        }
    }
}
