//! Property-based tests for the MineSweeper layer.
//!
//! The headline property (§1.2): *if an aligned, unhidden pointer to any
//! byte of a freed allocation exists anywhere in swept memory, the
//! allocation is never recycled* — so a use-after-free can never become a
//! use-after-reallocate. Dually (precision): allocations with no such
//! pointers are released by the next sweep, and double frees are absorbed
//! exactly once.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

use minesweeper::telemetry::{RingSink, RunReport};
use minesweeper::{FreeOutcome, MineSweeper, MsConfig, NaiveShadowMap, ShadowMap};
use vmem::{Addr, AddrSpace, Segment};

#[derive(Clone, Debug)]
enum Op {
    /// Allocate `size` bytes; object id = running counter.
    Malloc { size: u64 },
    /// Write a pointer to object `to` into root slot `slot`.
    Point { slot: u8, to: usize },
    /// Clear root slot `slot`.
    Unpoint { slot: u8 },
    /// Free object `n` (possibly already freed: double free).
    Free { n: usize },
    /// Run a full sweep.
    Sweep,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (8u64..9000).prop_map(|size| Op::Malloc { size }),
        3 => (0u8..16, any::<usize>()).prop_map(|(slot, to)| Op::Point { slot, to }),
        2 => (0u8..16).prop_map(|slot| Op::Unpoint { slot }),
        3 => any::<usize>().prop_map(|n| Op::Free { n }),
        1 => Just(Op::Sweep),
    ]
}

fn run_scenario(cfg: MsConfig, ops: Vec<Op>) -> Result<(), TestCaseError> {
    let mut space = AddrSpace::new();
    let mut ms = MineSweeper::new(cfg);
    let stack = space.layout().segment_base(Segment::Stack);

    // Model state.
    let mut objects: Vec<(Addr, u64)> = Vec::new(); // id -> (base, usable)
    let mut live: BTreeSet<usize> = BTreeSet::new();
    let mut freed: BTreeSet<usize> = BTreeSet::new(); // freed, not yet recycled
    let mut roots: BTreeMap<u8, usize> = BTreeMap::new(); // slot -> object id

    for op in ops {
        match op {
            Op::Malloc { size } => {
                let a = ms.malloc(&mut space, size);
                let usable = ms.heap().usable_size(a).unwrap();
                // Reallocation may reuse a base that belonged to a freed,
                // since-released object; the old id stays in `objects` but
                // is no longer freed/live.
                objects.push((a, usable));
                live.insert(objects.len() - 1);
            }
            Op::Point { slot, to } => {
                if objects.is_empty() {
                    continue;
                }
                let id = to % objects.len();
                roots.insert(slot, id);
                space
                    .write_word(stack + slot as u64 * 8, objects[id].0.raw())
                    .unwrap();
            }
            Op::Unpoint { slot } => {
                roots.remove(&slot);
                space.write_word(stack + slot as u64 * 8, 0).unwrap();
            }
            Op::Free { n } => {
                if live.is_empty() {
                    continue;
                }
                let &id = live.iter().nth(n % live.len()).unwrap();
                let outcome = ms.free(&mut space, objects[id].0);
                prop_assert_eq!(outcome, FreeOutcome::Quarantined);
                live.remove(&id);
                freed.insert(id);
                // Double-freeing right away must be absorbed.
                if n % 3 == 0 {
                    prop_assert_eq!(
                        ms.free(&mut space, objects[id].0),
                        FreeOutcome::DoubleFree
                    );
                }
            }
            Op::Sweep => {
                if ms.quarantine().is_empty() {
                    continue;
                }
                ms.sweep_now(&mut space);
                let rooted: BTreeSet<Addr> =
                    roots.values().map(|&id| objects[id].0).collect();
                let mut recycled = Vec::new();
                for &id in &freed {
                    let (base, _) = objects[id];
                    if rooted.contains(&base) {
                        // SAFETY PROPERTY: a rooted dangling pointer must
                        // pin the allocation in quarantine.
                        prop_assert!(
                            ms.quarantine().contains(base),
                            "object {id} at {base} recycled despite dangling root"
                        );
                    } else if !ms.quarantine().contains(base) {
                        recycled.push(id);
                    }
                }
                for id in recycled {
                    freed.remove(&id);
                }
            }
        }

        // Inter-step invariants: every live object is intact in the heap.
        for &id in &live {
            let (base, usable) = objects[id];
            prop_assert_eq!(ms.heap().usable_size(base), Some(usable));
        }
    }

    // Final sweep twice with all roots cleared: everything freed must
    // drain out of quarantine (no leaks from the mitigation itself).
    for slot in 0..16u8 {
        space.write_word(stack + slot as u64 * 8, 0).unwrap();
    }
    ms.sweep_now(&mut space);
    ms.sweep_now(&mut space);
    prop_assert!(
        ms.quarantine().is_empty(),
        "{} entries leaked in quarantine",
        ms.quarantine().len()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fully_concurrent_never_recycles_reachable_danglers(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        run_scenario(MsConfig::fully_concurrent(), ops)?;
    }

    #[test]
    fn mostly_concurrent_never_recycles_reachable_danglers(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        run_scenario(MsConfig::mostly_concurrent(), ops)?;
    }

    #[test]
    fn unoptimised_config_preserves_safety(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        // Zeroing off: quarantine may retain more (stale pointers inside
        // quarantined data), but the safety direction must still hold, and
        // nothing live may be disturbed. Drain checks don't apply, so run
        // a reduced scenario without the final leak assertion.
        let mut cfg = MsConfig::ablation_unoptimised();
        cfg.zeroing = true; // leak-freedom needs zeroing; keep safety focus
        run_scenario(cfg, ops)?;
    }

    #[test]
    fn shadow_map_agrees_with_naive_reference(
        // Addresses span two level-1 directory slots, so chunk, table and
        // word boundaries are all crossed.
        addrs in proptest::collection::vec(0u64..(1u64 << 35), 1..250),
        use_writer in any::<bool>(),
        queries in proptest::collection::vec((0u64..(1u64 << 35), 0u64..65_536), 1..120),
    ) {
        // Differential test: the atomic radix map (direct marks or the
        // write-combining writer) against the seed's naive map — same
        // newly-set verdicts, same count, same word-masked range queries.
        let fast = ShadowMap::new();
        let mut slow = NaiveShadowMap::new();
        if use_writer {
            let mut w = fast.writer();
            for &a in &addrs {
                prop_assert_eq!(w.mark(Addr::new(a)), slow.mark(Addr::new(a)));
            }
        } else {
            for &a in &addrs {
                prop_assert_eq!(fast.mark(Addr::new(a)), slow.mark(Addr::new(a)));
            }
        }
        prop_assert_eq!(fast.marked_count(), slow.marked_count());
        for &a in &addrs {
            prop_assert!(fast.is_marked(Addr::new(a)));
        }
        for &(start, len) in &queries {
            prop_assert_eq!(
                fast.range_marked(Addr::new(start), len),
                slow.range_marked(Addr::new(start), len),
                "range [{:#x}, +{}) disagrees", start, len
            );
        }
    }

    #[test]
    fn telemetry_balances_and_reconciles(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        // Two invariants over arbitrary scenarios:
        //  (a) byte conservation — every byte ever quarantined is either
        //      released or still in quarantine (swept or unmapped);
        //  (b) the sweep-lifecycle event stream aggregates to exactly the
        //      registry's counters (RunReport::reconcile).
        let mut space = AddrSpace::new();
        let mut ms = MineSweeper::new(MsConfig::fully_concurrent());
        let ring = RingSink::new(1 << 16);
        ms.tracer_mut().set_sink(Box::new(ring.clone()));
        ms.tracer_mut().set_deterministic(true);
        let stack = space.layout().segment_base(Segment::Stack);

        let mut objects: Vec<Addr> = Vec::new();
        let mut live: BTreeSet<usize> = BTreeSet::new();
        for op in ops {
            match op {
                Op::Malloc { size } => {
                    objects.push(ms.malloc(&mut space, size));
                    live.insert(objects.len() - 1);
                }
                Op::Point { slot, to } => {
                    if !objects.is_empty() {
                        let id = to % objects.len();
                        space
                            .write_word(stack + slot as u64 * 8, objects[id].raw())
                            .unwrap();
                    }
                }
                Op::Unpoint { slot } => {
                    space.write_word(stack + slot as u64 * 8, 0).unwrap();
                }
                Op::Free { n } => {
                    if live.is_empty() {
                        continue;
                    }
                    let &id = live.iter().nth(n % live.len()).unwrap();
                    ms.free(&mut space, objects[id]);
                    live.remove(&id);
                    if n % 3 == 0 {
                        // Absorbed double frees must not skew the balance.
                        ms.free(&mut space, objects[id]);
                    }
                }
                Op::Sweep => {
                    ms.sweep_now(&mut space);
                }
            }
            let st = ms.stats();
            let q = ms.quarantine();
            prop_assert_eq!(
                st.quarantined_bytes,
                st.released_bytes + q.tracked_bytes() + q.unmapped_bytes(),
                "quarantined bytes must be released or still tracked"
            );
        }

        let events = ring.events();
        let report = RunReport::from_events(events.iter());
        let snap = ms.registry().snapshot();
        if let Err(e) = report.reconcile(&snap) {
            prop_assert!(false, "event/counter reconciliation failed: {}", e);
        }
    }

    #[test]
    fn incremental_sweep_is_equivalent_to_full_sweep(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        // Differential test for the incremental sweep: the same op
        // sequence drives three layers in lockstep —
        //   base: page cache off, candidate filter off (from-scratch);
        //   inc:  page cache on (digest replay), filter off;
        //   incf: page cache on AND candidate filter on.
        // After every sweep, `inc` must produce a shadow map identical to
        // `base` (the cache only replays provably-clean pages), and all
        // three must make identical release decisions (the filter drops
        // only marks no locked quarantine entry can observe).
        let base_cfg = MsConfig::builder().page_cache(false).candidate_filter(false).build();
        let inc_cfg = MsConfig::builder().page_cache(true).candidate_filter(false).build();
        let incf_cfg = MsConfig::builder().page_cache(true).candidate_filter(true).build();
        let mut layers: Vec<(AddrSpace, MineSweeper<_>)> = [base_cfg, inc_cfg, incf_cfg]
            .into_iter()
            .map(|cfg| (AddrSpace::new(), MineSweeper::new(cfg)))
            .collect();
        let stack = layers[0].0.layout().segment_base(Segment::Stack);

        let mut objects: Vec<(Addr, u64)> = Vec::new();
        let mut live: BTreeSet<usize> = BTreeSet::new();
        let mut freed: BTreeSet<usize> = BTreeSet::new();
        for op in ops {
            match op {
                Op::Malloc { size } => {
                    let addrs: Vec<Addr> = layers
                        .iter_mut()
                        .map(|(space, ms)| ms.malloc(space, size))
                        .collect();
                    // The allocator is deterministic, so lockstep drives
                    // must agree on placement — everything below relies
                    // on comparing the same addresses.
                    prop_assert!(addrs.iter().all(|&a| a == addrs[0]));
                    let usable = layers[0].1.heap().usable_size(addrs[0]).unwrap();
                    objects.push((addrs[0], usable));
                    live.insert(objects.len() - 1);
                }
                Op::Point { slot, to } => {
                    if objects.is_empty() {
                        continue;
                    }
                    let id = to % objects.len();
                    for (space, _) in &mut layers {
                        space
                            .write_word(stack + slot as u64 * 8, objects[id].0.raw())
                            .unwrap();
                    }
                }
                Op::Unpoint { slot } => {
                    for (space, _) in &mut layers {
                        space.write_word(stack + slot as u64 * 8, 0).unwrap();
                    }
                }
                Op::Free { n } => {
                    if live.is_empty() {
                        continue;
                    }
                    let &id = live.iter().nth(n % live.len()).unwrap();
                    let outcomes: Vec<FreeOutcome> = layers
                        .iter_mut()
                        .map(|(space, ms)| ms.free(space, objects[id].0))
                        .collect();
                    prop_assert!(outcomes.iter().all(|&o| o == outcomes[0]));
                    live.remove(&id);
                    freed.insert(id);
                }
                Op::Sweep => {
                    if layers[0].1.quarantine().is_empty() {
                        continue;
                    }
                    for (space, ms) in &mut layers {
                        ms.sweep_now(space);
                    }
                    let (_, base) = &layers[0];
                    let (_, inc) = &layers[1];
                    let (_, incf) = &layers[2];
                    // Cache replay must reproduce the from-scratch shadow
                    // map bit for bit.
                    prop_assert_eq!(
                        base.shadow().marked_count(),
                        inc.shadow().marked_count(),
                        "cache replay changed the mark count"
                    );
                    for &(obj, usable) in &objects {
                        prop_assert_eq!(
                            base.shadow().range_marked(obj, usable),
                            inc.shadow().range_marked(obj, usable),
                            "cache replay flipped a mark over {}", obj
                        );
                    }
                    // All three agree on every release decision.
                    for &id in &freed {
                        let b = base.quarantine().contains(objects[id].0);
                        prop_assert_eq!(b, inc.quarantine().contains(objects[id].0));
                        prop_assert_eq!(b, incf.quarantine().contains(objects[id].0));
                    }
                    let (bs, is_, fs) = (base.stats(), inc.stats(), incf.stats());
                    prop_assert_eq!(bs.released, is_.released);
                    prop_assert_eq!(bs.released, fs.released);
                    prop_assert_eq!(bs.failed_frees, is_.failed_frees);
                    prop_assert_eq!(bs.failed_frees, fs.failed_frees);
                    freed.retain(|&id| base.quarantine().contains(objects[id].0));
                }
            }
        }

        // Drain: with roots cleared, every layer must empty its
        // quarantine within two sweeps and still agree on totals.
        for slot in 0..16u8 {
            for (space, _) in &mut layers {
                space.write_word(stack + slot as u64 * 8, 0).unwrap();
            }
        }
        for (space, ms) in &mut layers {
            ms.sweep_now(space);
            ms.sweep_now(space);
            prop_assert!(ms.quarantine().is_empty());
        }
        let totals: Vec<(u64, u64)> = layers
            .iter()
            .map(|(_, ms)| (ms.stats().released, ms.stats().failed_frees))
            .collect();
        prop_assert!(totals.iter().all(|&t| t == totals[0]), "totals diverged: {:?}", totals);
        // The accelerated layers actually exercised their machinery at
        // least once if anything swept (cache entries get recorded on
        // every scan).
        if layers[1].1.stats().sweeps > 0 {
            prop_assert!(!layers[1].1.page_cache().is_empty());
        }
    }

    #[test]
    fn forensics_preserves_decisions_and_conserves_ledger_bytes(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        sampled in any::<bool>(),
    ) {
        // Differential + conservation test for the forensics subsystem.
        // The same op sequence drives two layers in lockstep — forensics
        // off, and forensics full (or sampled) — and after every sweep:
        //  (a) release decisions are identical (recording is observation
        //      only: it may never flip a mark or retain an entry);
        //  (b) the failed-free ledger's pinned bytes equal the
        //      quarantine's failed bytes, and together with released
        //      bytes respect quarantine byte conservation;
        //  (c) the ledger_bytes_in/out counters balance to the ledger.
        use minesweeper::ForensicsMode;
        let mode = if sampled { ForensicsMode::Sampled(3) } else { ForensicsMode::Full };
        let off_cfg = MsConfig::fully_concurrent();
        let on_cfg = MsConfig { forensics: mode, ..MsConfig::fully_concurrent() };
        let mut layers: Vec<(AddrSpace, MineSweeper)> = [off_cfg, on_cfg]
            .into_iter()
            .map(|cfg| (AddrSpace::new(), MineSweeper::new(cfg)))
            .collect();
        let stack = layers[0].0.layout().segment_base(Segment::Stack);

        let mut objects: Vec<(Addr, u64)> = Vec::new();
        let mut live: BTreeSet<usize> = BTreeSet::new();
        let mut freed: BTreeSet<usize> = BTreeSet::new();
        let mut next_site = 1u32;
        for op in ops {
            match op {
                Op::Malloc { size } => {
                    let addrs: Vec<Addr> = layers
                        .iter_mut()
                        .map(|(space, ms)| ms.malloc(space, size))
                        .collect();
                    prop_assert!(addrs.iter().all(|&a| a == addrs[0]));
                    let usable = layers[0].1.heap().usable_size(addrs[0]).unwrap();
                    objects.push((addrs[0], usable));
                    live.insert(objects.len() - 1);
                }
                Op::Point { slot, to } => {
                    if objects.is_empty() {
                        continue;
                    }
                    let id = to % objects.len();
                    for (space, _) in &mut layers {
                        space
                            .write_word(stack + slot as u64 * 8, objects[id].0.raw())
                            .unwrap();
                    }
                }
                Op::Unpoint { slot } => {
                    for (space, _) in &mut layers {
                        space.write_word(stack + slot as u64 * 8, 0).unwrap();
                    }
                }
                Op::Free { n } => {
                    if live.is_empty() {
                        continue;
                    }
                    let &id = live.iter().nth(n % live.len()).unwrap();
                    next_site += 1;
                    let outcomes: Vec<FreeOutcome> = layers
                        .iter_mut()
                        .map(|(space, ms)| {
                            ms.free_sited(space, objects[id].0, next_site)
                        })
                        .collect();
                    prop_assert!(outcomes.iter().all(|&o| o == outcomes[0]));
                    live.remove(&id);
                    freed.insert(id);
                }
                Op::Sweep => {
                    if layers[0].1.quarantine().is_empty() {
                        continue;
                    }
                    for (space, ms) in &mut layers {
                        ms.sweep_now(space);
                    }
                    let off = &layers[0].1;
                    let on = &layers[1].1;
                    // (a) identical release decisions, entry by entry.
                    for &id in &freed {
                        prop_assert_eq!(
                            off.quarantine().contains(objects[id].0),
                            on.quarantine().contains(objects[id].0),
                            "forensics changed the fate of {}", objects[id].0
                        );
                    }
                    let (so, sn) = (off.stats(), on.stats());
                    prop_assert_eq!(so.released, sn.released);
                    prop_assert_eq!(so.released_bytes, sn.released_bytes);
                    prop_assert_eq!(so.failed_frees, sn.failed_frees);
                    // (b) ledger pinned bytes == quarantine failed bytes,
                    // and conservation holds with the ledger folded in.
                    let totals = on.ledger().totals();
                    prop_assert_eq!(totals.bytes, on.quarantine().failed_bytes());
                    let q = on.quarantine();
                    prop_assert_eq!(
                        sn.quarantined_bytes,
                        sn.released_bytes + q.tracked_bytes() + q.unmapped_bytes(),
                        "ledger recording broke byte conservation"
                    );
                    prop_assert!(totals.bytes <= q.tracked_bytes() + q.unmapped_bytes());
                    // (c) the flow counters balance to the live ledger.
                    let snap = on.registry().snapshot();
                    let bytes_in = snap.counter("layer", "ledger_bytes_in").unwrap_or(0);
                    let bytes_out = snap.counter("layer", "ledger_bytes_out").unwrap_or(0);
                    prop_assert_eq!(totals.bytes, bytes_in - bytes_out);
                    // The off layer must never touch its ledger.
                    prop_assert_eq!(off.ledger().totals().entries, 0);
                    freed.retain(|&id| off.quarantine().contains(objects[id].0));
                }
            }
        }

        // Drain and re-check the final balance: an empty quarantine means
        // an empty ledger, with in == out.
        for slot in 0..16u8 {
            for (space, _) in &mut layers {
                space.write_word(stack + slot as u64 * 8, 0).unwrap();
            }
        }
        for (space, ms) in &mut layers {
            ms.sweep_now(space);
            ms.sweep_now(space);
            prop_assert!(ms.quarantine().is_empty());
        }
        let totals = layers[1].1.ledger().totals();
        prop_assert_eq!(totals.bytes, 0, "drained quarantine left ledger bytes");
        prop_assert_eq!(totals.entries, 0);
        let snap = layers[1].1.registry().snapshot();
        prop_assert_eq!(
            snap.counter("layer", "ledger_bytes_in"),
            snap.counter("layer", "ledger_bytes_out")
        );
        prop_assert_eq!(
            layers[0].1.stats().released,
            layers[1].1.stats().released
        );
    }

    #[test]
    fn malloc_free_roundtrip_is_stable_under_quarantine(
        sizes in proptest::collection::vec(8u64..100_000, 1..40)
    ) {
        // Alloc all, free all, sweep, repeatedly: everything must recycle
        // each round, and the mapped footprint must converge (best-fit
        // splitting may shuffle extents for a few rounds, but with no live
        // growth the layout reaches a fixed point — quarantine-induced
        // fragmentation is bounded, §3.2).
        let mut space = AddrSpace::new();
        let mut ms = MineSweeper::new(MsConfig::fully_concurrent());
        let mut mapped_history = Vec::new();
        for _round in 0..6 {
            let addrs: Vec<Addr> = sizes.iter().map(|&s| ms.malloc(&mut space, s)).collect();
            for &a in &addrs {
                ms.free(&mut space, a);
            }
            ms.sweep_now(&mut space);
            prop_assert!(ms.quarantine().is_empty());
            mapped_history.push(space.mapped_bytes());
        }
        let n = mapped_history.len();
        prop_assert_eq!(mapped_history[n - 1], mapped_history[n - 2],
            "mapped footprint must converge: {:?}", mapped_history);
    }
}
