//! Golden-file test for the JSONL trace format.
//!
//! A fixed scenario in deterministic mode must keep producing
//! byte-identical JSONL — the format is a wire contract for `ms-report`
//! and any external tooling. Regenerate the fixture after an intentional
//! format change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p minesweeper --test golden_trace
//! ```

use minesweeper::telemetry::{Event, JsonlSink, RunReport, SharedBuf};
use minesweeper::{ForensicsMode, MineSweeper, MsConfig};
use vmem::{AddrSpace, Segment};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_trace.jsonl");
const GOLDEN_FORENSICS: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_trace_forensics.jsonl");

/// A scripted run: allocate, wire one dangling pointer, free everything
/// (spilling the thread-local quarantine buffer), sweep twice — first
/// retaining the dangling target, then releasing it.
fn scripted_trace() -> String {
    let mut cfg = MsConfig::fully_concurrent();
    cfg.tl_buffer_capacity = 2;
    let mut space = AddrSpace::new();
    let mut ms = MineSweeper::new(cfg);
    let buf = SharedBuf::new();
    ms.tracer_mut().set_sink(Box::new(JsonlSink::new(buf.clone())));
    ms.tracer_mut().set_deterministic(true);

    let stack = space.layout().segment_base(Segment::Stack);
    let ptrs: Vec<_> = (0..4).map(|_| ms.malloc(&mut space, 256)).collect();
    // Root a dangling pointer to the first allocation.
    space.write_word(stack, ptrs[0].raw()).unwrap();
    for (i, &p) in ptrs.iter().enumerate() {
        ms.tracer_mut().set_virtual_now(1_000 * (i as u64 + 1));
        ms.free(&mut space, p);
    }
    ms.tracer_mut().set_virtual_now(10_000);
    ms.sweep_now(&mut space); // ptrs[0] fails, the rest release
    space.write_word(stack, 0).unwrap();
    ms.tracer_mut().set_virtual_now(20_000);
    ms.sweep_now(&mut space); // ptrs[0] drains
    ms.tracer_mut().flush();
    buf.contents()
}

/// The same scripted run with forensics on and per-free site ids: the
/// trace additionally carries `pin_edge` / `failed_free_aged` events and
/// ledger snapshots on every `sweep_end`.
fn scripted_forensic_trace() -> String {
    let mut cfg = MsConfig::fully_concurrent();
    cfg.tl_buffer_capacity = 2;
    cfg.forensics = ForensicsMode::Full;
    let mut space = AddrSpace::new();
    let mut ms = MineSweeper::new(cfg);
    let buf = SharedBuf::new();
    ms.tracer_mut().set_sink(Box::new(JsonlSink::new(buf.clone())));
    ms.tracer_mut().set_deterministic(true);

    let stack = space.layout().segment_base(Segment::Stack);
    let ptrs: Vec<_> = (0..4).map(|_| ms.malloc(&mut space, 256)).collect();
    space.write_word(stack, ptrs[0].raw()).unwrap();
    for (i, &p) in ptrs.iter().enumerate() {
        ms.tracer_mut().set_virtual_now(1_000 * (i as u64 + 1));
        ms.free_sited(&mut space, p, 40 + i as u32);
    }
    ms.tracer_mut().set_virtual_now(10_000);
    ms.sweep_now(&mut space); // ptrs[0] (site 40) fails, the rest release
    space.write_word(stack, 0).unwrap();
    ms.tracer_mut().set_virtual_now(20_000);
    ms.sweep_now(&mut space); // ptrs[0] drains
    ms.tracer_mut().flush();
    buf.contents()
}

#[test]
fn trace_format_matches_golden_file() {
    let got = scripted_trace();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &got).unwrap();
    }
    let want = std::fs::read_to_string(GOLDEN)
        .expect("fixture missing; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(got, want, "JSONL trace drifted from the golden fixture");
}

#[test]
fn forensic_trace_format_matches_golden_file() {
    let got = scripted_forensic_trace();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_FORENSICS, &got).unwrap();
    }
    let want = std::fs::read_to_string(GOLDEN_FORENSICS)
        .expect("fixture missing; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(got, want, "forensic JSONL trace drifted from the golden fixture");
}

#[test]
fn forensic_golden_parses_and_attributes_the_pinned_site() {
    let text = scripted_forensic_trace();
    for line in text.lines() {
        let ev = Event::from_json(line).expect("well-formed event line");
        assert_eq!(ev.to_json(), line, "event round-trip");
    }
    assert!(text.lines().any(|l| l.contains("\"pin_edge\"")), "{text}");
    assert!(text.lines().any(|l| l.contains("\"failed_free_aged\"")), "{text}");
    assert!(text.lines().any(|l| l.contains("\"ledger_entries\"")), "{text}");

    let report = RunReport::from_jsonl(&text).unwrap();
    // Same decisions as the forensics-off script...
    assert_eq!(report.sweeps.len(), 2);
    assert_eq!(report.total_failed_frees(), 1);
    assert_eq!(report.total_released(), 4);
    // ...plus attribution: the dangling root's target (site 40) is the
    // only pinned entry, and the first sweep's ledger carries its bytes.
    assert!(report.has_forensics());
    assert!(report.total_pin_hits() >= 1);
    assert!(report.pins.iter().all(|p| p.site == 40), "{:?}", report.pins);
    assert_eq!(report.aged.len(), 1, "{:?}", report.aged);
    assert_eq!(report.aged[0].site, 40);
    let first = report.sweeps.iter().find(|r| r.ledger.is_some()).unwrap();
    let ledger = first.ledger.unwrap();
    assert_eq!(ledger.entries, 1);
    assert!(ledger.bytes >= 256);
    // After the drain sweep the ledger is empty again.
    let last = report.sweeps.last().unwrap();
    assert_eq!(last.ledger.unwrap().entries, 0);
    // The forensics-off golden stays byte-identical: recording is opt-in.
    assert_ne!(text, scripted_trace());
}

#[test]
fn golden_trace_parses_and_aggregates() {
    let text = scripted_trace();
    // Every line must round-trip through the typed event parser.
    for line in text.lines() {
        let ev = Event::from_json(line).expect("well-formed event line");
        assert_eq!(ev.to_json(), line, "event round-trip");
    }
    let report = RunReport::from_jsonl(&text).unwrap();
    assert_eq!(report.sweeps.len(), 2);
    assert_eq!(report.total_failed_frees(), 1, "the rooted dangler fails once");
    assert_eq!(report.total_released(), 4, "all four allocations release");
    assert_eq!(report.flushes, 2, "4 frees spill a 2-entry buffer twice");
    // Deterministic mode zeroes wall-clock durations.
    assert!(report.sweeps.iter().all(|s| s.wall_ns == 0 && s.mark_wall_ns == 0));
    assert_eq!(report.sweeps[0].start_vnow, 10_000);
    assert_eq!(report.sweeps[1].start_vnow, 20_000);
}
