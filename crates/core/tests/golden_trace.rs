//! Golden-file test for the JSONL trace format.
//!
//! A fixed scenario in deterministic mode must keep producing
//! byte-identical JSONL — the format is a wire contract for `ms-report`
//! and any external tooling. Regenerate the fixture after an intentional
//! format change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p minesweeper --test golden_trace
//! ```

use minesweeper::telemetry::{Event, JsonlSink, RunReport, SharedBuf};
use minesweeper::{MineSweeper, MsConfig};
use vmem::{AddrSpace, Segment};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_trace.jsonl");

/// A scripted run: allocate, wire one dangling pointer, free everything
/// (spilling the thread-local quarantine buffer), sweep twice — first
/// retaining the dangling target, then releasing it.
fn scripted_trace() -> String {
    let mut cfg = MsConfig::fully_concurrent();
    cfg.tl_buffer_capacity = 2;
    let mut space = AddrSpace::new();
    let mut ms = MineSweeper::new(cfg);
    let buf = SharedBuf::new();
    ms.tracer_mut().set_sink(Box::new(JsonlSink::new(buf.clone())));
    ms.tracer_mut().set_deterministic(true);

    let stack = space.layout().segment_base(Segment::Stack);
    let ptrs: Vec<_> = (0..4).map(|_| ms.malloc(&mut space, 256)).collect();
    // Root a dangling pointer to the first allocation.
    space.write_word(stack, ptrs[0].raw()).unwrap();
    for (i, &p) in ptrs.iter().enumerate() {
        ms.tracer_mut().set_virtual_now(1_000 * (i as u64 + 1));
        ms.free(&mut space, p);
    }
    ms.tracer_mut().set_virtual_now(10_000);
    ms.sweep_now(&mut space); // ptrs[0] fails, the rest release
    space.write_word(stack, 0).unwrap();
    ms.tracer_mut().set_virtual_now(20_000);
    ms.sweep_now(&mut space); // ptrs[0] drains
    ms.tracer_mut().flush();
    buf.contents()
}

#[test]
fn trace_format_matches_golden_file() {
    let got = scripted_trace();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &got).unwrap();
    }
    let want = std::fs::read_to_string(GOLDEN)
        .expect("fixture missing; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(got, want, "JSONL trace drifted from the golden fixture");
}

#[test]
fn golden_trace_parses_and_aggregates() {
    let text = scripted_trace();
    // Every line must round-trip through the typed event parser.
    for line in text.lines() {
        let ev = Event::from_json(line).expect("well-formed event line");
        assert_eq!(ev.to_json(), line, "event round-trip");
    }
    let report = RunReport::from_jsonl(&text).unwrap();
    assert_eq!(report.sweeps.len(), 2);
    assert_eq!(report.total_failed_frees(), 1, "the rooted dangler fails once");
    assert_eq!(report.total_released(), 4, "all four allocations release");
    assert_eq!(report.flushes, 2, "4 frees spill a 2-entry buffer twice");
    // Deterministic mode zeroes wall-clock durations.
    assert!(report.sweeps.iter().all(|s| s.wall_ns == 0 && s.mark_wall_ns == 0));
    assert_eq!(report.sweeps[0].start_vnow, 10_000);
    assert_eq!(report.sweeps[1].start_vnow, 20_000);
}
