//! Differential property test for the sharded multi-arena path.
//!
//! For **any** interleaving of per-arena mutator ops and sweep rounds,
//! the pooled path — per-arena quarantine/shadow shards, the global
//! scheduler's coalesced batches, one cross-arena work-stealing mark —
//! must make release decisions **bit-identical** to running each arena
//! through today's single-arena `MineSweeper` path: shadow maps (marked
//! granule sets), failed-free ledgers and release sets all equal, sweep
//! for sweep.
//!
//! The workloads here are heap-only (no root-segment writes): tenant
//! heaps are disjoint, so pooled heap marking is arena-local by design
//! and the single-arena path is the exact spec. Shared-root semantics
//! (deliberately *not* identical — that is the point of them) are
//! covered by the cross-arena pin tests in `arena.rs` and
//! `sim/exploit.rs`.

use proptest::prelude::*;
use std::collections::BTreeSet;

use minesweeper::{
    Arena, ArenaId, ArenaPool, ForensicsMode, HeapBackend, MineSweeper, MsConfig,
};
use vmem::{Addr, AddrSpace};

const ARENAS: usize = 3;

#[derive(Clone, Debug)]
enum Op {
    /// Allocate `size` bytes in arena `k`.
    Malloc { k: usize, size: u64 },
    /// Free live object `n` (mod live count) in arena `k`.
    Free { k: usize, n: usize },
    /// Re-free a currently quarantined entry in arena `k` (a double
    /// free the quarantine must dedupe identically in both runs).
    DoubleFree { k: usize, n: usize },
    /// Write a pointer to arena `k`'s object `to` into object `holder`'s
    /// first word (a heap-internal edge; may dangle after a free).
    Point { k: usize, holder: usize, to: usize },
    /// Zero object `holder`'s first word in arena `k`.
    Unpoint { k: usize, holder: usize },
    /// One scheduler round over the pool (sweeps only due/coalesced
    /// arenas; often a no-op on tiny heaps).
    Round,
    /// Force-sweep every arena in one pooled round.
    ForceRound,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0..ARENAS, 16u64..6000).prop_map(|(k, size)| Op::Malloc { k, size }),
        4 => (0..ARENAS, any::<usize>()).prop_map(|(k, n)| Op::Free { k, n }),
        1 => (0..ARENAS, any::<usize>()).prop_map(|(k, n)| Op::DoubleFree { k, n }),
        3 => (0..ARENAS, any::<usize>(), any::<usize>())
            .prop_map(|(k, holder, to)| Op::Point { k, holder, to }),
        1 => (0..ARENAS, any::<usize>()).prop_map(|(k, holder)| Op::Unpoint { k, holder }),
        1 => Just(Op::Round),
        2 => Just(Op::ForceRound),
    ]
}

/// One standalone (single-arena, pre-sharding semantics) replica.
struct Solo {
    ms: MineSweeper,
    space: AddrSpace,
}

/// Asserts that arena `k` of the pool and its standalone replica agree on
/// every observable release decision.
fn assert_arena_eq(
    pool_arena: &Arena,
    solo: &Solo,
    round: u64,
) -> Result<(), TestCaseError> {
    let (pq, sq) = (pool_arena.ms().quarantine(), solo.ms.quarantine());
    let p_pending: BTreeSet<u64> = pq.pending().map(|e| e.base.raw()).collect();
    let s_pending: BTreeSet<u64> = sq.pending().map(|e| e.base.raw()).collect();
    prop_assert_eq!(p_pending, s_pending, "round {}: quarantine sets differ", round);
    prop_assert_eq!(pq.tracked_bytes(), sq.tracked_bytes());
    prop_assert_eq!(pq.failed_bytes(), sq.failed_bytes());
    prop_assert_eq!(pq.len(), sq.len());
    prop_assert_eq!(
        pool_arena.ms().shadow().marked_count(),
        solo.ms.shadow().marked_count(),
        "round {}: shadow maps differ",
        round
    );
    prop_assert_eq!(
        pool_arena.ms().ledger().totals(),
        solo.ms.ledger().totals(),
        "round {}: failed-free ledgers differ",
        round
    );
    let (ps, ss) = (pool_arena.ms().stats(), solo.ms.stats());
    prop_assert_eq!(ps.released, ss.released);
    prop_assert_eq!(ps.released_bytes, ss.released_bytes);
    prop_assert_eq!(ps.failed_frees, ss.failed_frees);
    prop_assert_eq!(ps.quarantined_bytes, ss.quarantined_bytes);
    prop_assert_eq!(ps.double_frees, ss.double_frees);
    prop_assert_eq!(
        pool_arena.ms().heap().allocated_bytes(),
        solo.ms.heap().allocated_bytes()
    );
    Ok(())
}

fn run_differential(cfg: MsConfig, ops: Vec<Op>) -> Result<(), TestCaseError> {
    let mut pool = ArenaPool::new(ARENAS as u32, cfg);
    pool.set_helpers(2);
    let mut solos: Vec<Solo> = (0..ARENAS)
        .map(|_| Solo { ms: MineSweeper::new(cfg), space: AddrSpace::new() })
        .collect();
    // All bases ever allocated per arena (pointer-write targets) and the
    // currently live subset (the only legal `free` arguments — the layer
    // trusts callers not to free memory it has already released back to
    // the heap). Identical in both runs (asserted as we go).
    let mut objects: Vec<Vec<Addr>> = vec![Vec::new(); ARENAS];
    let mut live: Vec<Vec<Addr>> = vec![Vec::new(); ARENAS];
    let mut rounds = 0u64;

    for op in ops {
        match op {
            Op::Malloc { k, size } => {
                let pa = pool.arena_mut(k).malloc(size);
                let solo = &mut solos[k];
                let sa = solo.ms.malloc(&mut solo.space, size);
                prop_assert_eq!(pa, sa, "allocator sequences diverged");
                objects[k].push(pa);
                live[k].push(pa);
            }
            Op::Free { k, n } => {
                if live[k].is_empty() {
                    continue;
                }
                let idx = n % live[k].len();
                let base = live[k].swap_remove(idx);
                let po = pool.arena_mut(k).free(base);
                let solo = &mut solos[k];
                let so = solo.ms.free(&mut solo.space, base);
                prop_assert_eq!(po, so, "free outcomes diverged");
            }
            Op::DoubleFree { k, n } => {
                let pending: Vec<Addr> = pool
                    .arena(k)
                    .ms()
                    .quarantine()
                    .pending()
                    .map(|e| e.base)
                    .collect();
                if pending.is_empty() {
                    continue;
                }
                let base = pending[n % pending.len()];
                let po = pool.arena_mut(k).free(base);
                let solo = &mut solos[k];
                let so = solo.ms.free(&mut solo.space, base);
                prop_assert_eq!(po, so, "double-free outcomes diverged");
            }
            Op::Point { k, holder, to } => {
                if objects[k].is_empty() {
                    continue;
                }
                let h = objects[k][holder % objects[k].len()];
                let t = objects[k][to % objects[k].len()];
                // Writes into quarantined-but-unmapped pages fault in
                // both runs; ignore identically.
                let _ = pool.arena_mut(k).space_mut().write_word(h, t.raw());
                let _ = solos[k].space.write_word(h, t.raw());
            }
            Op::Unpoint { k, holder } => {
                if objects[k].is_empty() {
                    continue;
                }
                let h = objects[k][holder % objects[k].len()];
                let _ = pool.arena_mut(k).space_mut().write_word(h, 0);
                let _ = solos[k].space.write_word(h, 0);
            }
            Op::Round | Op::ForceRound => {
                rounds += 1;
                let report = if matches!(op, Op::ForceRound) {
                    pool.sweep_all()
                } else {
                    // The scheduler picks from pressure the standalone
                    // replicas share (their state is identical by
                    // induction), so replaying its batch is fair.
                    pool.sweep_round()
                };
                for (id, pool_report) in &report.swept {
                    let k = id.raw() as usize;
                    let solo = &mut solos[k];
                    let solo_report = solo.ms.sweep_now(&mut solo.space);
                    prop_assert_eq!(
                        (pool_report.released, pool_report.failed),
                        (solo_report.released, solo_report.failed),
                        "arena {}: release decisions diverged",
                        k
                    );
                    prop_assert_eq!(
                        pool_report.released_bytes,
                        solo_report.released_bytes
                    );
                    prop_assert_eq!(
                        pool_report.marked_granules,
                        solo_report.marked_granules,
                        "arena {}: marked granule counts diverged",
                        k
                    );
                }
                for (k, solo) in solos.iter().enumerate() {
                    assert_arena_eq(pool.arena(k), solo, rounds)?;
                }
            }
        }
    }
    // Terminal force-round so every scenario ends with fresh decisions.
    let report = pool.sweep_all();
    for (id, pool_report) in &report.swept {
        let k = id.raw() as usize;
        let solo = &mut solos[k];
        let solo_report = solo.ms.sweep_now(&mut solo.space);
        prop_assert_eq!(
            (pool_report.released, pool_report.failed),
            (solo_report.released, solo_report.failed)
        );
    }
    for (k, solo) in solos.iter().enumerate() {
        assert_arena_eq(pool.arena(k), solo, rounds + 1)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fully-concurrent mode with forensics on: pooled scheduled sweeps
    /// must be bit-identical to the single-arena path, ledgers included.
    #[test]
    fn pooled_sweeps_match_single_arena_path(
        ops in proptest::collection::vec(op_strategy(), 1..120)
    ) {
        let mut cfg = MsConfig::fully_concurrent();
        cfg.forensics = ForensicsMode::Full;
        run_differential(cfg, ops)?;
    }

    /// Mostly-concurrent mode (with the stop-the-world re-check in the
    /// shared sweep tail) must also be identical.
    #[test]
    fn pooled_sweeps_match_single_arena_path_mostly_concurrent(
        ops in proptest::collection::vec(op_strategy(), 1..80)
    ) {
        run_differential(MsConfig::mostly_concurrent(), ops)?;
    }
}

#[test]
fn arena_ids_route_to_distinct_shards() {
    // The sharding sanity anchor: N arenas are N fully isolated shards
    // with their own ids end to end.
    let pool = ArenaPool::new(4, MsConfig::fully_concurrent());
    for k in 0..4 {
        assert_eq!(pool.arena(k).id(), ArenaId::new(k as u32));
        assert_eq!(pool.arena(k).ms().quarantine().arena(), ArenaId::new(k as u32));
        assert_eq!(pool.arena(k).ms().shadow().arena(), ArenaId::new(k as u32));
    }
}
