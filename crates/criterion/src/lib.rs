#![warn(missing_docs)]

//! A small, dependency-free micro-benchmark harness exposing the subset
//! of the [criterion](https://crates.io/crates/criterion) API this
//! workspace uses, so `cargo bench` works fully **offline**.
//!
//! Semantics: each `bench_function` warms up, auto-calibrates an
//! iteration count to a target sample time, takes `sample_size` samples
//! and reports the median ns/iteration (plus throughput when declared via
//! [`Throughput`]). When invoked by `cargo test` (which passes `--test`
//! to `harness = false` targets), every benchmark runs exactly once as a
//! smoke test, keeping the tier-1 suite fast.

use std::time::{Duration, Instant};

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Declared work per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifies one parameterised benchmark (`group/function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{parameter}", function.into()) }
    }
}

/// Passed to the measured closure; [`Bencher::iter`] runs the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` (drops each return value after timing).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness handle.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench targets with `--test`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.test_mode {
            println!("\n{name}");
        }
        BenchmarkGroup { criterion: self, name, throughput: None, sample_size: 20 }
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for derived throughput lines.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benches a closure.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Benches a closure against one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.name, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (printing is incremental; nothing buffered).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if self.criterion.test_mode {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            return;
        }
        // Warm-up + calibration: grow iters until one sample takes ≥ 5 ms.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
                break;
            }
            iters = (iters * 4).min(1 << 24);
        }
        let mut per_iter_ns: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher { iters, elapsed: Duration::ZERO };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let spread = per_iter_ns[per_iter_ns.len() - 1] - per_iter_ns[0];
        let mut line = format!(
            "  {}/{id}: {} /iter (±{}, {} samples × {iters} iters)",
            self.name,
            fmt_ns(median),
            fmt_ns(spread),
            per_iter_ns.len(),
        );
        match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let gib = n as f64 / median * 1e9 / (1u64 << 30) as f64;
                line.push_str(&format!(", {gib:.2} GiB/s"));
            }
            Some(Throughput::Elements(n)) => {
                let me = n as f64 / median * 1e9 / 1e6;
                line.push_str(&format!(", {me:.2} Melem/s"));
            }
            None => {}
        }
        println!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(1024));
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_in_test_mode() {
        // Force quick mode regardless of how the test binary was invoked.
        let mut c = Criterion { test_mode: true };
        sample_bench(&mut c);
    }

    #[test]
    fn benchmark_id_renders_function_slash_param() {
        assert_eq!(BenchmarkId::new("f", 3).name, "f/3");
    }
}
