#![warn(missing_docs)]

//! Command parsing and execution for `minesweeper-sim`.
//!
//! A dependency-free CLI over the simulation stack:
//!
//! ```text
//! minesweeper-sim list
//! minesweeper-sim run xalancbmk --system minesweeper --seed 7
//! minesweeper-sim compare omnetpp
//! minesweeper-sim exploit --system baseline
//! ```

use sim::report::{bytes, fx, table, telemetry_tables};
use sim::{run, run_arenas, run_exploit, run_trace, Engine, System, ARENA_SUBSYSTEM, ENGINE_SUBSYSTEM};
use telemetry::{pause_table, JsonlSink, RunReport, Snapshot};
use workloads::exploit::figure2_attack;
use workloads::{mimalloc_bench, recorded, spec2006, spec2017, Profile, TraceGen};

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// List every benchmark, grouped by suite.
    List,
    /// Run one benchmark under one system.
    Run {
        /// Benchmark name.
        benchmark: String,
        /// System label.
        system: String,
        /// Trace seed.
        seed: u64,
        /// Write sweep-lifecycle events as JSONL here.
        trace_out: Option<String>,
        /// Write the end-of-run metrics snapshot as JSON here.
        metrics_out: Option<String>,
        /// Sweep-forensics mode label (`off`, `full`, `sampled:N`); only
        /// meaningful for minesweeper-layered systems.
        forensics: Option<String>,
        /// Run the benchmark as N identically-shaped tenants over one
        /// sharded [`minesweeper::ArenaPool`]; needs a minesweeper-layered
        /// system.
        arenas: Option<u32>,
        /// Deliberately drop one cost kind's per-kind counter — the leak
        /// self-test for the `ms-report --costs --check` gate. Needs a
        /// minesweeper-layered system.
        cost_drop: Option<String>,
    },
    /// Run one benchmark under every system and print the overhead table.
    Compare {
        /// Benchmark name.
        benchmark: String,
        /// Trace seed.
        seed: u64,
    },
    /// Replay the Figure 2 exploit under one system, or run the whole
    /// adversarial scenario corpus differentially across every backend.
    Exploit {
        /// System label (single-scenario mode).
        system: String,
        /// Run the full scenario × backend security matrix.
        corpus: bool,
        /// Write the matrix as `SECURITY_matrix.json` here.
        out: Option<String>,
        /// Number of fuzzed scenarios appended to the named corpus.
        fuzz: u32,
        /// Protection-weakening knob (`quarantine-off`,
        /// `ignore-failed-frees`) for the CI gate self-test.
        weaken: Option<String>,
        /// Seed for the scenario fuzzer.
        seed: u64,
    },
    /// Write a benchmark's generated allocation trace to a file.
    Record {
        /// Benchmark name.
        benchmark: String,
        /// Output path.
        out: String,
        /// Trace seed.
        seed: u64,
    },
    /// Replay a recorded trace file under one system.
    Replay {
        /// Trace file path.
        file: String,
        /// System label.
        system: String,
        /// Profile supplying the pointer-graph knobs.
        knobs: String,
        /// Pointer-graph seed.
        seed: u64,
    },
    /// Print usage.
    Help,
}

/// A CLI error: bad flag, unknown name.
#[derive(Clone, Debug, PartialEq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Parses argv (without the program name).
///
/// # Errors
///
/// [`CliError`] on unknown subcommands, unknown flags, or malformed
/// values.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else { return Ok(Command::Help) };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => Ok(Command::List),
        "run" | "compare" | "exploit" | "record" | "replay" => {
            let mut benchmark = None;
            let mut system = "minesweeper".to_string();
            let mut seed = 42u64;
            let mut out = None;
            let mut knobs = "demo".to_string();
            let mut trace_out = None;
            let mut metrics_out = None;
            let mut forensics = None;
            let mut arenas = None;
            let mut cost_drop = None;
            let mut corpus = false;
            let mut fuzz = 3u32;
            let mut weaken = None;
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--corpus" => corpus = true,
                    "--fuzz" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--fuzz needs a value".into()))?;
                        fuzz = v
                            .parse()
                            .map_err(|_| CliError(format!("bad fuzz count: {v}")))?;
                    }
                    "--weaken" => {
                        weaken = Some(
                            it.next()
                                .ok_or_else(|| CliError("--weaken needs a value".into()))?
                                .clone(),
                        );
                    }
                    "--system" => {
                        system = it
                            .next()
                            .ok_or_else(|| CliError("--system needs a value".into()))?
                            .clone();
                    }
                    "--seed" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--seed needs a value".into()))?;
                        seed = v
                            .parse()
                            .map_err(|_| CliError(format!("bad seed: {v}")))?;
                    }
                    "--out" => {
                        out = Some(
                            it.next()
                                .ok_or_else(|| CliError("--out needs a value".into()))?
                                .clone(),
                        );
                    }
                    "--knobs" => {
                        knobs = it
                            .next()
                            .ok_or_else(|| CliError("--knobs needs a value".into()))?
                            .clone();
                    }
                    "--trace-out" => {
                        trace_out = Some(
                            it.next()
                                .ok_or_else(|| {
                                    CliError("--trace-out needs a value".into())
                                })?
                                .clone(),
                        );
                    }
                    "--metrics-out" => {
                        metrics_out = Some(
                            it.next()
                                .ok_or_else(|| {
                                    CliError("--metrics-out needs a value".into())
                                })?
                                .clone(),
                        );
                    }
                    "--forensics" => {
                        forensics = Some(
                            it.next()
                                .ok_or_else(|| {
                                    CliError("--forensics needs a value".into())
                                })?
                                .clone(),
                        );
                    }
                    "--arenas" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--arenas needs a value".into()))?;
                        let n: u32 = v
                            .parse()
                            .map_err(|_| CliError(format!("bad arena count: {v}")))?;
                        if n == 0 {
                            return Err(CliError("--arenas needs at least one".into()));
                        }
                        arenas = Some(n);
                    }
                    "--cost-drop" => {
                        cost_drop = Some(
                            it.next()
                                .ok_or_else(|| {
                                    CliError("--cost-drop needs a cost kind".into())
                                })?
                                .clone(),
                        );
                    }
                    flag if flag.starts_with('-') => {
                        return Err(CliError(format!("unknown flag: {flag}")));
                    }
                    name => {
                        if benchmark.replace(name.to_string()).is_some() {
                            return Err(CliError(format!("unexpected argument: {name}")));
                        }
                    }
                }
            }
            let positional = |what: &str| {
                benchmark.clone().ok_or_else(|| CliError(format!("{what} needed")))
            };
            if cmd != "run"
                && (trace_out.is_some()
                    || metrics_out.is_some()
                    || forensics.is_some()
                    || arenas.is_some()
                    || cost_drop.is_some())
            {
                return Err(CliError(
                    "--trace-out/--metrics-out/--forensics/--arenas/--cost-drop are \
                     only valid with `run`"
                        .into(),
                ));
            }
            if cmd != "exploit" && (corpus || fuzz != 3 || weaken.is_some()) {
                return Err(CliError(
                    "--corpus/--fuzz/--weaken are only valid with `exploit`".into(),
                ));
            }
            match cmd.as_str() {
                "run" => Ok(Command::Run {
                    benchmark: positional("run needs a benchmark name")?,
                    system,
                    seed,
                    trace_out,
                    metrics_out,
                    forensics,
                    arenas,
                    cost_drop,
                }),
                "compare" => Ok(Command::Compare {
                    benchmark: positional("compare needs a benchmark name")?,
                    seed,
                }),
                "record" => Ok(Command::Record {
                    benchmark: positional("record needs a benchmark name")?,
                    out: out.ok_or_else(|| CliError("record needs --out <file>".into()))?,
                    seed,
                }),
                "replay" => Ok(Command::Replay {
                    file: positional("replay needs a trace file")?,
                    system,
                    knobs,
                    seed,
                }),
                _ => Ok(Command::Exploit { system, corpus, out, fuzz, weaken, seed }),
            }
        }
        other => Err(CliError(format!("unknown command: {other}"))),
    }
}

/// Resolves a system label to a [`System`].
///
/// # Errors
///
/// [`CliError`] on unknown labels.
pub fn system_by_label(label: &str) -> Result<System, CliError> {
    match label {
        "baseline" | "jemalloc" => Ok(System::Baseline),
        "minesweeper" | "ms" => Ok(System::minesweeper_default()),
        "minesweeper-mostly" | "mostly" => Ok(System::minesweeper_mostly()),
        "markus" => Ok(System::markus_default()),
        "ffmalloc" | "ff" => Ok(System::FfMalloc),
        "scudo" => Ok(System::ScudoBaseline),
        "minesweeper-scudo" | "ms-scudo" => Ok(System::minesweeper_scudo()),
        "crcount" | "cr" => Ok(System::CrCount),
        "oscar" => Ok(System::Oscar),
        "psweeper" | "ps" => Ok(System::PSweeper),
        "dangsan" => Ok(System::DangSan),
        other => Err(CliError(format!(
            "unknown system: {other} (try baseline, minesweeper, mostly, markus, \
             ffmalloc, scudo, ms-scudo, crcount, oscar, psweeper, dangsan)"
        ))),
    }
}

/// Parses a forensics-mode label: `off`, `full`, or `sampled:N`.
///
/// # Errors
///
/// [`CliError`] on unknown labels or a zero/malformed sample period.
pub fn forensics_by_label(label: &str) -> Result<minesweeper::ForensicsMode, CliError> {
    use minesweeper::ForensicsMode;
    match label {
        "off" => Ok(ForensicsMode::Off),
        "full" => Ok(ForensicsMode::Full),
        other => match other.strip_prefix("sampled:") {
            Some(n) => match n.parse::<u32>() {
                Ok(period) if period > 0 => Ok(ForensicsMode::Sampled(period)),
                _ => Err(CliError(format!("bad sample period: {n}"))),
            },
            None => Err(CliError(format!(
                "unknown forensics mode: {other} (try off, full, sampled:<n>)"
            ))),
        },
    }
}

/// Applies a forensics mode to a system, when it is minesweeper-layered.
///
/// # Errors
///
/// [`CliError`] when the system has no sweep (and hence no forensics).
fn apply_forensics(sys: System, label: &str) -> Result<System, CliError> {
    let mode = forensics_by_label(label)?;
    match sys {
        System::MineSweeper(cfg) => {
            Ok(System::MineSweeper(minesweeper::MsConfig { forensics: mode, ..cfg }))
        }
        System::MineSweeperScudo(cfg) => {
            Ok(System::MineSweeperScudo(minesweeper::MsConfig { forensics: mode, ..cfg }))
        }
        other => Err(CliError(format!(
            "--forensics needs a minesweeper-layered system, not {}",
            other.label()
        ))),
    }
}

/// Finds a benchmark profile across all suites.
///
/// # Errors
///
/// [`CliError`] when no suite knows the name.
pub fn profile_by_name(name: &str) -> Result<Profile, CliError> {
    if name == "demo" {
        return Ok(Profile::demo());
    }
    spec2006::by_name(name)
        .or_else(|| spec2017::by_name(name))
        .or_else(|| mimalloc_bench::by_name(name))
        .ok_or_else(|| CliError(format!("unknown benchmark: {name} (see `list`)")))
}

/// Executes a command, returning the text to print.
///
/// # Errors
///
/// [`CliError`] for unknown benchmark/system names.
pub fn execute(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::List => {
            let mut out = String::new();
            for (suite, profiles) in [
                ("SPEC CPU2006", spec2006::all()),
                ("SPECspeed2017", spec2017::all()),
                ("mimalloc-bench", mimalloc_bench::all()),
            ] {
                out.push_str(&format!("{suite}:\n"));
                for p in profiles {
                    out.push_str(&format!(
                        "  {:<14} {:>8} allocs, ~{} cycles/alloc\n",
                        p.name, p.total_allocs, p.cycles_per_alloc
                    ));
                }
            }
            out.push_str("  demo           (synthetic quick-run profile)\n");
            Ok(out)
        }
        Command::Run {
            benchmark,
            system,
            seed,
            trace_out,
            metrics_out,
            forensics,
            arenas,
            cost_drop,
        } => {
            let profile = profile_by_name(benchmark)?;
            let mut sys = system_by_label(system)?;
            if let Some(label) = forensics {
                sys = apply_forensics(sys, label)?;
            }
            let drop_kind = match cost_drop {
                None => None,
                Some(label) => {
                    let kind = sim::CostKind::from_label(label).ok_or_else(|| {
                        CliError(format!(
                            "unknown cost kind: {label} (try one of {})",
                            sim::CostKind::ALL.map(|k| k.label()).join(", ")
                        ))
                    })?;
                    if sys.ms_config().is_none() {
                        return Err(CliError(format!(
                            "--cost-drop needs a minesweeper-layered system, not {system}"
                        )));
                    }
                    Some(kind)
                }
            };
            if let Some(n) = arenas {
                if drop_kind.is_some() {
                    return Err(CliError(
                        "--cost-drop is not supported with --arenas (the pooled \
                         runner's shared recorder has no leak-injection hook)"
                            .into(),
                    ));
                }
                if trace_out.is_some() {
                    return Err(CliError(
                        "--trace-out is not supported with --arenas (the pooled \
                         runner has no per-arena trace sink yet)"
                            .into(),
                    ));
                }
                let cfg = sys.ms_config().ok_or_else(|| {
                    CliError(format!(
                        "--arenas needs a minesweeper-layered system, not {system}"
                    ))
                })?;
                let m = run_arenas(&profile, *n, *seed, cfg);
                if let Some(path) = metrics_out {
                    let snap =
                        m.telemetry.as_ref().expect("pooled runs always export telemetry");
                    std::fs::write(path, snap.to_json())
                        .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
                }
                let rows = vec![
                    vec!["metric".to_string(), "value".into()],
                    vec!["benchmark".into(), m.benchmark.clone()],
                    vec!["system".into(), m.system.clone()],
                    vec!["arenas".into(), n.to_string()],
                    vec!["virtual cycles".into(), m.mutator_cycles.to_string()],
                    vec!["background cycles".into(), m.background_cycles.to_string()],
                    vec!["avg RSS".into(), bytes(m.avg_rss() as u64)],
                    vec!["peak RSS".into(), bytes(m.peak_rss)],
                    vec!["sweeps".into(), m.sweeps.to_string()],
                    vec!["failed frees".into(), m.failed_frees.to_string()],
                    vec!["cpu utilisation".into(), fx(m.cpu_utilisation())],
                ];
                let mut out = table(&rows);
                let snap = m.telemetry.as_ref().expect("pooled runs always export telemetry");
                out.push('\n');
                out.push_str(&arena_table(snap)?);
                return Ok(out);
            }
            let m = if trace_out.is_some() || metrics_out.is_some() || drop_kind.is_some()
            {
                let mut eng = Engine::new(&profile, sys, *seed);
                if let Some(kind) = drop_kind {
                    eng.set_cost_drop(kind);
                }
                if let Some(path) = trace_out {
                    let file = std::fs::File::create(path)
                        .map_err(|e| CliError(format!("cannot create {path}: {e}")))?;
                    let sink = JsonlSink::new(std::io::BufWriter::new(file));
                    if !eng.set_trace_sink(Box::new(sink), false) {
                        return Err(CliError(format!(
                            "--trace-out needs a minesweeper-layered system, not {system}"
                        )));
                    }
                }
                let m = eng.run();
                if let Some(path) = metrics_out {
                    let snap = m.telemetry.as_ref().ok_or_else(|| {
                        CliError(format!(
                            "--metrics-out needs a minesweeper-layered system, not {system}"
                        ))
                    })?;
                    std::fs::write(path, snap.to_json())
                        .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
                }
                m
            } else {
                run(&profile, sys, *seed)
            };
            let rows = vec![
                vec!["metric".to_string(), "value".into()],
                vec!["benchmark".into(), m.benchmark.clone()],
                vec!["system".into(), m.system.clone()],
                vec!["virtual cycles".into(), m.mutator_cycles.to_string()],
                vec!["background cycles".into(), m.background_cycles.to_string()],
                vec!["avg RSS".into(), bytes(m.avg_rss() as u64)],
                vec!["peak RSS".into(), bytes(m.peak_rss)],
                vec!["sweeps".into(), m.sweeps.to_string()],
                vec!["failed frees".into(), m.failed_frees.to_string()],
                vec!["cpu utilisation".into(), fx(m.cpu_utilisation())],
            ];
            let mut out = table(&rows);
            if let Some(snap) = &m.telemetry {
                out.push_str("\ntelemetry:\n");
                out.push_str(&telemetry_tables(snap));
            }
            Ok(out)
        }
        Command::Compare { benchmark, seed } => {
            let profile = profile_by_name(benchmark)?;
            let base = run(&profile, System::Baseline, *seed);
            let mut rows = vec![vec![
                "system".to_string(),
                "slowdown".into(),
                "avg memory".into(),
                "peak memory".into(),
                "cpu util".into(),
                "sweeps".into(),
            ]];
            for sys in [
                System::minesweeper_default(),
                System::minesweeper_mostly(),
                System::markus_default(),
                System::FfMalloc,
                System::minesweeper_scudo(),
                System::CrCount,
            ] {
                let m = run(&profile, sys, *seed);
                rows.push(vec![
                    sys.label().to_string(),
                    fx(m.slowdown_vs(&base)),
                    fx(m.memory_overhead_vs(&base)),
                    fx(m.peak_overhead_vs(&base)),
                    fx(m.cpu_utilisation()),
                    m.sweeps.to_string(),
                ]);
            }
            Ok(table(&rows))
        }
        Command::Exploit { system, corpus, out, fuzz, weaken, seed } => {
            if *corpus {
                let weaken = match weaken.as_deref() {
                    None => sim::Weaken::None,
                    Some(label) => sim::Weaken::parse(label)
                        .ok_or_else(|| CliError(format!("unknown weaken knob: {label}")))?,
                };
                let matrix = sim::run_corpus(*seed, *fuzz, weaken);
                let json = matrix.to_json();
                let mut text = render_security(&json, false)?;
                if let Some(path) = out {
                    std::fs::write(path, &json)
                        .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
                    text.push_str(&format!("wrote security matrix to {path}\n"));
                }
                Ok(text)
            } else {
                if weaken.is_some() {
                    return Err(CliError("--weaken needs --corpus".into()));
                }
                let sys = system_by_label(system)?;
                let r = run_exploit(&figure2_attack(), sys);
                Ok(format!(
                    "system: {}\nvictim reallocated: {}\noutcome: {:?}\n",
                    sys.label(),
                    r.victim_reallocated,
                    r.outcome
                ))
            }
        }
        Command::Record { benchmark, out, seed } => {
            let profile = profile_by_name(benchmark)?;
            let text = recorded::write_trace(TraceGen::new(&profile, *seed));
            std::fs::write(out, &text)
                .map_err(|e| CliError(format!("cannot write {out}: {e}")))?;
            Ok(format!("wrote {} lines to {out}\n", text.lines().count()))
        }
        Command::Replay { file, system, knobs, seed } => {
            let text = std::fs::read_to_string(file)
                .map_err(|e| CliError(format!("cannot read {file}: {e}")))?;
            let ops = recorded::read_trace(&text).map_err(|e| CliError(e.to_string()))?;
            let ops = recorded::close_trace(ops);
            let profile = profile_by_name(knobs)?;
            let sys = system_by_label(system)?;
            let m = run_trace(&profile, sys, *seed, ops);
            Ok(format!(
                "replayed {file} under {}: {} allocs, {} cycles, avg RSS {}, sweeps {}\n",
                sys.label(),
                m.allocs,
                m.mutator_cycles,
                bytes(m.avg_rss() as u64),
                m.sweeps
            ))
        }
    }
}

/// The counter keys every arena shard exports and the run re-accumulates
/// globally — the reconciliation surface between the two paths.
const ARENA_KEYS: [&str; 4] =
    ["quarantined_bytes", "released_bytes", "failed_frees", "sweeps"];

/// Renders the per-arena shard table (one row per tenant, a totals row
/// from the independently accumulated `arena/total_*` counters) plus a
/// scheduler summary line, from a multi-arena metrics snapshot. When the
/// snapshot carries a cost ledger, each shard also shows its share of
/// `cost/total_cycles` next to the SLO-facing counters, so a tenant whose
/// quarantine ratio looks healthy but who is eating the sweep budget is
/// visible in the same table.
///
/// # Errors
///
/// [`CliError`] when the snapshot has no `arena/arenas` counter (i.e. it
/// did not come from a `run --arenas` / `run_arenas` invocation).
fn arena_table(snap: &Snapshot) -> Result<String, CliError> {
    let n = snap.counter(ARENA_SUBSYSTEM, "arenas").ok_or_else(|| {
        CliError(
            "metrics carry no arena shard counters (produced without --arenas?)".into(),
        )
    })?;
    let cost_total = snap.counter(sim::COST_SUBSYSTEM, "total_cycles").unwrap_or(0);
    let cost_share = |cycles: u64| {
        if cost_total == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", cycles as f64 * 100.0 / cost_total as f64)
        }
    };
    let mut rows = vec![vec![
        "arena".to_string(),
        "quar bytes".into(),
        "released".into(),
        "failed".into(),
        "sweeps".into(),
        "cost share".into(),
    ]];
    let fmt = |key: &str, v: u64| {
        if key.ends_with("bytes") {
            bytes(v)
        } else {
            v.to_string()
        }
    };
    let mut attributed = 0u64;
    for k in 0..n {
        let label = format!("a{k}");
        let mut row = vec![label.clone()];
        for key in ARENA_KEYS {
            let v = snap.counter(ARENA_SUBSYSTEM, &format!("{label}_{key}")).unwrap_or(0);
            row.push(fmt(key, v));
        }
        let cycles =
            snap.counter(sim::COST_SUBSYSTEM, &format!("arena_{label}_cycles")).unwrap_or(0);
        attributed += cycles;
        row.push(cost_share(cycles));
        rows.push(row);
    }
    let mut total_row = vec!["total".to_string()];
    for key in ARENA_KEYS {
        let v = snap.counter(ARENA_SUBSYSTEM, &format!("total_{key}")).unwrap_or(0);
        total_row.push(fmt(key, v));
    }
    total_row.push(cost_share(attributed));
    rows.push(total_row);
    let mut out = table(&rows);
    out.push_str(&format!(
        "scheduler: {} rounds, {} arenas swept, {} coalesced\n",
        snap.counter(ARENA_SUBSYSTEM, "sched_rounds").unwrap_or(0),
        snap.counter(ARENA_SUBSYSTEM, "sched_scheduled").unwrap_or(0),
        snap.counter(ARENA_SUBSYSTEM, "sched_coalesced").unwrap_or(0),
    ));
    Ok(out)
}

/// Renders an `ms-report` summary from a multi-arena metrics snapshot
/// alone (no sweep trace): the per-arena shard table, the scheduler
/// summary, and each arena's pause/STW/sweep histograms. With `check`,
/// the sum of every shard's counters must equal the independently
/// accumulated `arena/total_*` globals — a lost update in either
/// accounting path is an error.
///
/// # Errors
///
/// [`CliError`] on malformed metrics, a snapshot without arena counters,
/// or a reconciliation mismatch.
pub fn render_metrics_report(metrics_text: &str, check: bool) -> Result<String, CliError> {
    let snap = Snapshot::from_json(metrics_text)
        .map_err(|e| CliError(format!("bad metrics: {e}")))?;
    let mut out = arena_table(&snap)?;
    let n = snap.counter(ARENA_SUBSYSTEM, "arenas").unwrap_or(0);
    for k in 0..n {
        for name in ["pause_cycles", "stw_cycles", "sweep_cycles"] {
            if let Some(h) = snap.histogram(ARENA_SUBSYSTEM, &format!("a{k}_{name}")) {
                if h.count() > 0 {
                    out.push('\n');
                    out.push_str(&format!("a{k} {name}:\n"));
                    out.push_str(&pause_table(h, "cycles"));
                }
            }
        }
    }
    if check {
        for key in ARENA_KEYS {
            let sum: u64 = (0..n)
                .map(|k| {
                    snap.counter(ARENA_SUBSYSTEM, &format!("a{k}_{key}")).unwrap_or(0)
                })
                .sum();
            let total =
                snap.counter(ARENA_SUBSYSTEM, &format!("total_{key}")).unwrap_or(0);
            if sum != total {
                return Err(CliError(format!(
                    "arena reconcile failed: shard {key} sums to {sum}, global total \
                     counted {total}"
                )));
            }
        }
        out.push_str("\nreconcile: arena shard counters match global totals\n");
    }
    Ok(out)
}

/// What an `ms-report` rendering should include beyond the base timeline.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ReportOpts {
    /// Reconcile trace totals against the metrics snapshot's counters.
    pub check: bool,
    /// Append the forensics pinner table (sites ranked by pinned bytes).
    pub pinners: bool,
    /// Append the per-entry failed-free ledger detail table.
    pub failed_frees: bool,
}

/// Renders an `ms-report` summary: a per-sweep timeline plus failed-free
/// and quarantine tables (the paper's Fig. 13/14 shapes) from a JSONL
/// sweep trace, and — when a metrics snapshot is supplied — the engine's
/// pause/STW/sweep duration histograms. `opts.pinners` /
/// `opts.failed_frees` append the forensics views (which need a trace
/// recorded with the `forensics` knob on). With `opts.check`, the trace's
/// aggregated totals are reconciled against the snapshot's layer counters
/// and any mismatch is an error.
///
/// # Errors
///
/// [`CliError`] on malformed/truncated inputs, `check` without metrics,
/// or a reconciliation mismatch.
pub fn render_report_with(
    trace_text: &str,
    metrics_text: Option<&str>,
    opts: &ReportOpts,
) -> Result<String, CliError> {
    let check = opts.check;
    let report = RunReport::from_jsonl(trace_text)
        .map_err(|e| CliError(format!("bad trace: {e}")))?;
    let mut rows = vec![vec![
        "sweep".to_string(),
        "trigger".into(),
        "quar bytes".into(),
        "marked".into(),
        "released".into(),
        "failed".into(),
        "ff rate".into(),
        "skip".into(),
        "cycles".into(),
        "wall ns".into(),
    ]];
    for r in &report.sweeps {
        rows.push(vec![
            r.sweep.to_string(),
            r.trigger.map_or("-", |t| t.as_str()).to_string(),
            bytes(r.quarantine_bytes),
            r.marked_granules.to_string(),
            r.released.to_string(),
            r.failed_frees.to_string(),
            format!("{:.1}%", r.failed_free_rate() * 100.0),
            format!("{:.1}%", r.skip_rate() * 100.0),
            r.virtual_duration().to_string(),
            r.wall_ns.to_string(),
        ]);
    }
    let mut out = table(&rows);
    out.push('\n');
    out.push_str(&report.failed_free_table());
    out.push('\n');
    out.push_str(&report.quarantine_table());
    if opts.pinners {
        out.push('\n');
        out.push_str(&report.pinner_table());
    }
    if opts.failed_frees {
        out.push('\n');
        out.push_str(&report.failed_free_detail_table());
    }
    if let Some(text) = metrics_text {
        let snap = Snapshot::from_json(text)
            .map_err(|e| CliError(format!("bad metrics: {e}")))?;
        for name in ["pause_cycles", "stw_cycles", "sweep_cycles"] {
            if let Some(h) = snap.histogram(ENGINE_SUBSYSTEM, name) {
                if h.count() > 0 {
                    out.push('\n');
                    out.push_str(&pause_table(h, "cycles"));
                }
            }
        }
        if check {
            report.reconcile(&snap).map_err(CliError)?;
            // Per-sweep mark accounting: every byte the plan advanced
            // through was either read word-by-word or skipped wholesale.
            for r in &report.sweeps {
                if r.mark_words * 8 + r.mark_skipped_bytes != r.mark_bytes {
                    return Err(CliError(format!(
                        "sweep {}: scanned {} words + skipped {} bytes != {} plan bytes",
                        r.sweep, r.mark_words, r.mark_skipped_bytes, r.mark_bytes
                    )));
                }
            }
            out.push_str("\nreconcile: trace totals match metrics counters\n");
        }
    } else if check {
        return Err(CliError("--check needs --metrics <file>".into()));
    }
    Ok(out)
}

/// [`render_report_with`] without the forensics views — the pre-forensics
/// signature, kept for callers that only need the timeline and `--check`.
///
/// # Errors
///
/// As [`render_report_with`].
pub fn render_report(
    trace_text: &str,
    metrics_text: Option<&str>,
    check: bool,
) -> Result<String, CliError> {
    render_report_with(trace_text, metrics_text, &ReportOpts { check, ..ReportOpts::default() })
}

/// Evaluates an `ms-report --slo` policy spec against a metrics snapshot.
/// Returns the pass/fail table and whether any objective was violated
/// (the CLI exits nonzero on a breach).
///
/// # Errors
///
/// [`CliError`] on malformed metrics, a malformed spec, or an empty spec
/// (a policy with nothing to check would vacuously pass).
pub fn render_slo(metrics_text: &str, spec: &str) -> Result<(String, bool), CliError> {
    let snap = Snapshot::from_json(metrics_text)
        .map_err(|e| CliError(format!("bad metrics: {e}")))?;
    let policy = telemetry::SloPolicy::parse(spec).map_err(CliError)?;
    if policy.is_empty() {
        return Err(CliError(
            "--slo needs at least one objective (stw=N,sweep=N,qratio=N,util=N)".into(),
        ));
    }
    let checks = telemetry::Watchdog::new(policy).evaluate(&snap);
    let breached = checks.iter().any(|c| !c.pass);
    Ok((telemetry::slo_table(&checks), breached))
}

/// Compares two bench metrics snapshots (`ms-report --compare`). Returns
/// the rendered delta table and whether the regression gate should fail:
/// at least one non-degraded config slowed beyond both the threshold and
/// the runs' measured noise, on a like-for-like pair. Cross-host pairs
/// (different CPU count or scan tier) downgrade regressions to warnings —
/// those deltas are not actionable.
///
/// # Errors
///
/// [`CliError`] when either snapshot fails to parse.
pub fn render_compare(
    old_text: &str,
    new_text: &str,
    threshold_pct: f64,
) -> Result<(String, bool), CliError> {
    let old = Snapshot::from_json(old_text)
        .map_err(|e| CliError(format!("bad old metrics: {e}")))?;
    let new = Snapshot::from_json(new_text)
        .map_err(|e| CliError(format!("bad new metrics: {e}")))?;
    let report = telemetry::compare(&old, &new, threshold_pct);
    let mut out = report.render();
    let regressed = !report.regressions().is_empty();
    if regressed && report.cross_host() {
        out.push_str("warning: regressions found across different hosts — not gating\n");
    }
    Ok((out, regressed && !report.cross_host()))
}

/// One parsed `SECURITY_matrix.json` cell: a scenario × backend verdict
/// with its baseline attack-window latency and — schema 2 — the defence
/// cycles that backend spent earning the verdict, broken down by
/// [`sim::CostKind`]. Schema-1 documents predate the cost ledger; their
/// cells parse with zero defence cost.
struct SecCellView {
    scenario: String,
    backend: String,
    verdict: String,
    window: Option<u64>,
    defence_cycles: u64,
    defence_kinds: Vec<(String, u64)>,
}

/// A `(scenario, backend) -> verdict label` view of a parsed
/// `SECURITY_matrix.json`, plus the run's provenance fields.
struct SecDoc {
    schema: u64,
    weaken: String,
    seed: u64,
    fuzz: u64,
    backends: Vec<String>,
    scenarios: Vec<String>,
    cells: Vec<SecCellView>,
    counters: Vec<(String, u64)>,
}

fn parse_security(text: &str) -> Result<SecDoc, CliError> {
    let doc = telemetry::json::Json::parse(text)
        .map_err(|e| CliError(format!("bad security matrix: {e}")))?;
    let schema = doc.get("schema").and_then(telemetry::json::Json::as_u64);
    let min = u64::from(sim::SECURITY_MIN_SCHEMA);
    let max = u64::from(sim::SECURITY_SCHEMA);
    let schema = match schema {
        Some(s) if (min..=max).contains(&s) => s,
        _ => {
            return Err(CliError(format!(
                "unsupported security matrix schema {schema:?} (want {min}..={max})"
            )))
        }
    };
    let str_list = |key: &str, field: &str| -> Result<Vec<String>, CliError> {
        doc.get(key)
            .and_then(telemetry::json::Json::as_array)
            .ok_or_else(|| CliError(format!("security matrix missing {key}")))?
            .iter()
            .map(|v| {
                let s = if field.is_empty() {
                    v.as_str()
                } else {
                    v.get(field).and_then(telemetry::json::Json::as_str)
                };
                s.map(String::from)
                    .ok_or_else(|| CliError(format!("malformed {key} entry")))
            })
            .collect()
    };
    let backends = str_list("backends", "")?;
    let scenarios = str_list("scenarios", "name")?;
    let mut cells = Vec::new();
    for cell in doc
        .get("cells")
        .and_then(telemetry::json::Json::as_array)
        .ok_or_else(|| CliError("security matrix missing cells".into()))?
    {
        let field = |k: &str| {
            cell.get(k)
                .and_then(telemetry::json::Json::as_str)
                .map(String::from)
                .ok_or_else(|| CliError(format!("cell missing {k}")))
        };
        let window = cell.get("attack_window").and_then(telemetry::json::Json::as_u64);
        let verdict = field("verdict")?;
        if workloads::exploit::ExploitOutcome::from_label(&verdict).is_none() {
            return Err(CliError(format!("unknown verdict label: {verdict}")));
        }
        // Schema 1 predates the cost ledger: no defence fields, cost 0.
        let defence_cycles =
            cell.get("defence_cycles").and_then(telemetry::json::Json::as_u64).unwrap_or(0);
        let mut defence_kinds = Vec::new();
        if let Some(telemetry::json::Json::Obj(pairs)) = cell.get("defence_kinds") {
            for (k, v) in pairs {
                if sim::CostKind::from_label(k).is_none() {
                    return Err(CliError(format!("unknown defence cost kind: {k}")));
                }
                defence_kinds.push((
                    k.clone(),
                    v.as_u64()
                        .ok_or_else(|| CliError(format!("bad defence kind {k}")))?,
                ));
            }
        }
        cells.push(SecCellView {
            scenario: field("scenario")?,
            backend: field("backend")?,
            verdict,
            window,
            defence_cycles,
            defence_kinds,
        });
    }
    let mut counters = Vec::new();
    if let Some(telemetry::json::Json::Obj(pairs)) = doc.get("counters") {
        for (k, v) in pairs {
            counters.push((
                k.clone(),
                v.as_u64().ok_or_else(|| CliError(format!("bad counter {k}")))?,
            ));
        }
    }
    Ok(SecDoc {
        schema,
        weaken: doc
            .get("weaken")
            .and_then(telemetry::json::Json::as_str)
            .unwrap_or("none")
            .to_string(),
        seed: doc.get("seed").and_then(telemetry::json::Json::as_u64).unwrap_or(0),
        fuzz: doc.get("fuzz").and_then(telemetry::json::Json::as_u64).unwrap_or(0),
        backends,
        scenarios,
        cells,
        counters,
    })
}

fn verdict_rank(label: &str) -> u8 {
    workloads::exploit::ExploitOutcome::from_label(label).map_or(0, |o| o.rank())
}

/// Renders the human-readable scenario × backend security matrix from a
/// `SECURITY_matrix.json` document (`ms-report --security`). With
/// `check`, every `security/*` counter embedded in the document is
/// recomputed from the cells and must match — a drifted counter means the
/// exporter and the matrix disagree about what actually ran.
///
/// # Errors
///
/// [`CliError`] on a malformed document or (with `check`) a counter
/// reconciliation mismatch.
pub fn render_security(text: &str, check: bool) -> Result<String, CliError> {
    let doc = parse_security(text)?;
    let mut out = format!(
        "security matrix: {} scenarios x {} backends (seed {}, fuzz {})\n",
        doc.scenarios.len(),
        doc.backends.len(),
        doc.seed,
        doc.fuzz
    );
    if doc.weaken != "none" {
        out.push_str(&format!(
            "WARNING: protection weakened ({}) — self-test run, NOT a baseline\n",
            doc.weaken
        ));
    }
    let code_of = |scenario: &str, backend: &str| {
        doc.cells
            .iter()
            .find(|c| c.scenario == scenario && c.backend == backend)
            .map(|c| {
                workloads::exploit::ExploitOutcome::from_label(&c.verdict)
                    .map(|o| o.code().to_string())
                    .unwrap_or_else(|| "?".into())
            })
            .unwrap_or_else(|| "-".into())
    };
    let mut rows = Vec::with_capacity(doc.scenarios.len() + 1);
    let mut header = vec!["scenario".to_string()];
    header.extend(doc.backends.iter().cloned());
    header.push("window".into());
    header.push("ms defence".into());
    rows.push(header);
    for sc in &doc.scenarios {
        let mut row = vec![sc.clone()];
        for b in &doc.backends {
            row.push(code_of(sc, b));
        }
        // Attack-window latency on the unprotected baseline column: how
        // many frees an attacker needs before the victim slot recycles.
        let window = doc
            .cells
            .iter()
            .find(|c| c.scenario == *sc && c.backend == "baseline")
            .and_then(|c| c.window)
            .map_or_else(|| "-".into(), |w| w.to_string());
        row.push(window);
        // What the verdict cost: minesweeper's defence cycles for this
        // scenario, the price of the protection next to its outcome.
        let defence = doc
            .cells
            .iter()
            .find(|c| c.scenario == *sc && c.backend == "minesweeper")
            .map_or_else(|| "-".into(), |c| c.defence_cycles.to_string());
        row.push(defence);
        rows.push(row);
    }
    out.push_str(&table(&rows));
    out.push_str("verdicts: C=compromised T=clean-termination B=benign D=detected\n");

    let mut verdictcount = [0u64; 4];
    let mut ms_compromised = 0u64;
    let mut defence_total = 0u64;
    for c in &doc.cells {
        let o = workloads::exploit::ExploitOutcome::from_label(&c.verdict)
            .expect("parse_security validated labels");
        verdictcount[o.rank() as usize] += 1;
        if c.backend == "minesweeper"
            && o == workloads::exploit::ExploitOutcome::Compromised
        {
            ms_compromised += 1;
        }
        defence_total += c.defence_cycles;
    }
    out.push_str(&format!(
        "totals: {} compromised, {} clean-termination, {} benign, {} detected\n",
        verdictcount[0], verdictcount[1], verdictcount[2], verdictcount[3]
    ));
    out.push_str(&format!("minesweeper compromised cells: {ms_compromised}\n"));
    if doc.schema >= 2 {
        out.push_str(&format!(
            "defence cycles: {defence_total} across all cells\n"
        ));
    }

    if check {
        let counter = |key: &str| {
            doc.counters.iter().find(|(k, _)| k == key).map_or(0, |(_, v)| *v)
        };
        let mut mismatches = Vec::new();
        let mut expect = |key: &str, want: u64| {
            let got = counter(key);
            if got != want {
                mismatches.push(format!("{key}: counter {got} != cells {want}"));
            }
        };
        expect("security/cells", doc.cells.len() as u64);
        expect("security/verdict_compromised", verdictcount[0]);
        expect("security/verdict_clean_termination", verdictcount[1]);
        expect("security/verdict_benign", verdictcount[2]);
        expect("security/verdict_detected", verdictcount[3]);
        for sc in &doc.scenarios {
            let want = doc
                .cells
                .iter()
                .filter(|c| c.scenario == *sc && c.verdict == "compromised")
                .count() as u64;
            expect(&format!("security/s_{}_compromised", sc.replace('-', "_")), want);
        }
        // Schema 2: the exporter's defence_cycles counter is the sum of
        // every cell's total, and each cell's per-kind breakdown must
        // itself sum to that cell's total.
        expect("security/defence_cycles", defence_total);
        for c in &doc.cells {
            let kind_sum: u64 = c.defence_kinds.iter().map(|(_, v)| v).sum();
            if kind_sum != c.defence_cycles {
                mismatches.push(format!(
                    "{}/{}: defence kinds sum to {kind_sum}, defence_cycles is {}",
                    c.scenario, c.backend, c.defence_cycles
                ));
            }
        }
        if !mismatches.is_empty() {
            return Err(CliError(format!(
                "security counter reconciliation failed:\n  {}",
                mismatches.join("\n  ")
            )));
        }
        out.push_str("check: counters reconcile with cells\n");
    }
    Ok(out)
}

/// Diffs a fresh security matrix against the committed baseline
/// (`ms-report --security NEW --baseline OLD --check`). Returns the
/// report and whether the gate should fail.
///
/// The gate fails when (a) a baseline cell is missing from the new
/// matrix, (b) any cell's verdict regresses to a strictly worse rank
/// (named by scenario and backend), or (c) — the hard floor — any
/// minesweeper cell in the new matrix is Compromised, even for cells the
/// baseline never covered. New-only cells are otherwise informational,
/// so growing the corpus never needs a baseline refresh to merge.
///
/// # Errors
///
/// [`CliError`] when either document is malformed.
pub fn gate_security(baseline_text: &str, new_text: &str) -> Result<(String, bool), CliError> {
    let old = parse_security(baseline_text)?;
    let new = parse_security(new_text)?;
    let mut out = String::new();
    let mut failures = Vec::new();
    if old.weaken != "none" {
        failures.push("baseline was produced with a weaken knob — regenerate it".into());
    }
    if new.weaken != "none" {
        out.push_str(&format!(
            "WARNING: new matrix is protection-weakened ({})\n",
            new.weaken
        ));
    }
    let find = |doc: &SecDoc, s: &str, b: &str| -> Option<String> {
        doc.cells
            .iter()
            .find(|c| c.scenario == s && c.backend == b)
            .map(|c| c.verdict.clone())
    };
    let mut compared = 0u64;
    for c in &old.cells {
        let (s, b, old_verdict) = (&c.scenario, &c.backend, &c.verdict);
        match find(&new, s, b) {
            None => failures.push(format!("{s}/{b}: cell missing from new matrix")),
            Some(new_verdict) => {
                compared += 1;
                if verdict_rank(&new_verdict) < verdict_rank(old_verdict) {
                    failures.push(format!(
                        "{s}/{b}: verdict regressed {old_verdict} -> {new_verdict}"
                    ));
                }
            }
        }
    }
    let mut new_only = 0u64;
    for c in &new.cells {
        let (s, b, verdict) = (&c.scenario, &c.backend, &c.verdict);
        if find(&old, s, b).is_none() {
            new_only += 1;
            out.push_str(&format!("new cell (not in baseline): {s}/{b} = {verdict}\n"));
        }
        if b == "minesweeper" && verdict == "compromised" {
            failures.push(format!("{s}/minesweeper: COMPROMISED (hard floor)"));
        }
    }
    out.push_str(&format!(
        "security gate: {compared} cells compared, {new_only} new-only\n"
    ));
    if failures.is_empty() {
        out.push_str("security gate: PASS — no verdict regressions\n");
        Ok((out, false))
    } else {
        failures.sort();
        failures.dedup();
        out.push_str("security gate: FAIL\n");
        for f in &failures {
            out.push_str(&format!("  {f}\n"));
        }
        Ok((out, true))
    }
}

/// Renders the `ms-report --costs` defence-cost attribution report from a
/// metrics snapshot: per-kind, per-site (top 10) and per-arena cycle
/// tables with each entry's share of `cost/total_cycles`, plus the
/// per-sweep cost distribution. When a forensics trace is supplied, the
/// site table is joined against the bytes each site's failed frees pin in
/// quarantine — sites that are both expensive to defend and pin memory
/// are the tuning targets. With `check`, the ledger's conservation
/// invariants must hold: each kind's counter equals its histogram sum and
/// the kind/site/arena dimensions each sum to the total. A violation
/// names the leaking kind or dimension and gates (the second tuple field
/// is `false`, so `ms-report` exits 2).
///
/// # Errors
///
/// [`CliError`] on malformed metrics, a snapshot without a cost ledger,
/// or a malformed trace.
pub fn render_costs(
    metrics_text: &str,
    trace_text: Option<&str>,
    check: bool,
) -> Result<(String, bool), CliError> {
    let snap = Snapshot::from_json(metrics_text)
        .map_err(|e| CliError(format!("bad metrics: {e}")))?;
    let ledger = sim::CostLedger::from_snapshot(&snap).ok_or_else(|| {
        CliError(
            "metrics carry no cost ledger (cost/total_cycles missing — produced by \
             a baseline, or with the ledger off?)"
                .into(),
        )
    })?;
    let share = |v: u64| {
        if ledger.total == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", v as f64 * 100.0 / ledger.total as f64)
        }
    };
    let mut out = format!("defence cost ledger: {} total cycles\n\n", ledger.total);

    let mut kinds: Vec<_> = ledger.kinds.iter().filter(|(_, c, _)| *c > 0).collect();
    kinds.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let mut rows =
        vec![vec!["kind".to_string(), "cycles".into(), "share".into(), "charges".into()]];
    for (label, counted, _) in kinds {
        let charges = snap
            .histogram(sim::COST_SUBSYSTEM, &format!("kind_{label}_cycles_hist"))
            .map_or(0, |h| h.count());
        rows.push(vec![
            label.clone(),
            counted.to_string(),
            share(*counted),
            charges.to_string(),
        ]);
    }
    out.push_str(&table(&rows));

    // Optional forensics join: pinned bytes per site from the trace.
    let pinned_by_site: Vec<(String, u64)> = match trace_text {
        None => Vec::new(),
        Some(text) => {
            let report = RunReport::from_jsonl(text)
                .map_err(|e| CliError(format!("bad trace: {e}")))?;
            let mut agg: Vec<(String, u64)> = Vec::new();
            for a in report.pinned_now() {
                let key = a.site.to_string();
                match agg.iter_mut().find(|(k, _)| *k == key) {
                    Some(e) => e.1 += a.bytes,
                    None => agg.push((key, a.bytes)),
                }
            }
            agg
        }
    };
    let joined = trace_text.is_some();
    const TOP_SITES: usize = 10;
    out.push('\n');
    let mut header = vec!["site".to_string(), "cycles".into(), "share".into()];
    if joined {
        header.push("pinned bytes".into());
    }
    let mut rows = vec![header];
    for (key, cycles) in ledger.sites.iter().take(TOP_SITES) {
        let mut row = vec![key.clone(), cycles.to_string(), share(*cycles)];
        if joined {
            let pinned = pinned_by_site
                .iter()
                .find(|(k, _)| k == key)
                .map_or_else(|| "-".into(), |(_, b)| bytes(*b));
            row.push(pinned);
        }
        rows.push(row);
    }
    if ledger.sites.len() > TOP_SITES {
        let rest: u64 = ledger.sites[TOP_SITES..].iter().map(|(_, v)| v).sum();
        let mut row = vec![
            format!("({} more)", ledger.sites.len() - TOP_SITES),
            rest.to_string(),
            share(rest),
        ];
        if joined {
            row.push("-".into());
        }
        rows.push(row);
    }
    out.push_str(&table(&rows));

    if !ledger.arenas.is_empty() {
        out.push('\n');
        let mut rows = vec![vec!["arena".to_string(), "cycles".into(), "share".into()]];
        for (label, cycles) in &ledger.arenas {
            rows.push(vec![label.clone(), cycles.to_string(), share(*cycles)]);
        }
        out.push_str(&table(&rows));
    }

    if let Some(h) = snap.histogram(sim::COST_SUBSYSTEM, "per_sweep_cycles") {
        if h.count() > 0 {
            out.push_str("\nper-sweep defence cost:\n");
            out.push_str(&pause_table(h, "cycles"));
        }
    }

    if check {
        let leaks = ledger.reconcile();
        if !leaks.is_empty() {
            out.push_str("\ncost reconciliation FAILED:\n");
            for l in &leaks {
                out.push_str(&format!("  {l}\n"));
            }
            return Ok((out, false));
        }
        out.push_str(
            "\nreconcile: kind/site/arena dimensions each sum to total_cycles\n",
        );
    }
    Ok((out, true))
}

/// Schema of `BENCH_trajectory.jsonl` lines this renderer understands
/// (written by `sweep_bandwidth --trajectory`).
const TRAJECTORY_SCHEMA: u64 = 1;

/// Renders the `ms-report --trajectory` per-config trend table from an
/// append-only `BENCH_trajectory.jsonl` history: one row per bench
/// config with its best time at the oldest and newest recorded revision,
/// the drift between them, and how many of its samples ran degraded
/// (fewer effective helpers than requested — those samples are real but
/// not comparable, so CI filters them out before appending gating rows).
///
/// # Errors
///
/// [`CliError`] on an empty history, a malformed line (named by number),
/// or an unsupported line schema.
pub fn render_trajectory(text: &str) -> Result<String, CliError> {
    use telemetry::json::Json;
    /// One config sample in file order: (git_rev, best_us, degraded).
    type Sample = (String, f64, bool);
    let mut configs: Vec<(String, Vec<Sample>)> = Vec::new();
    let mut lines = 0u64;
    let mut first_rev = String::new();
    let mut last_rev = String::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let bad = |what: &str| CliError(format!("bad trajectory line {}: {what}", i + 1));
        let doc = Json::parse(line)
            .map_err(|e| CliError(format!("bad trajectory line {}: {e}", i + 1)))?;
        let schema = doc.get("schema").and_then(Json::as_u64);
        if schema != Some(TRAJECTORY_SCHEMA) {
            return Err(bad(&format!(
                "unsupported schema {schema:?} (want {TRAJECTORY_SCHEMA})"
            )));
        }
        let rev = doc
            .get("git_rev")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing git_rev"))?
            .to_string();
        if lines == 0 {
            first_rev.clone_from(&rev);
        }
        last_rev.clone_from(&rev);
        lines += 1;
        for row in doc
            .get("rows")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("missing rows"))?
        {
            let name = row
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("row missing name"))?;
            let best_us = row
                .get("best_us")
                .and_then(Json::as_f64)
                .ok_or_else(|| bad("row missing best_us"))?;
            let degraded = matches!(row.get("degraded"), Some(Json::Bool(true)));
            let sample = (rev.clone(), best_us, degraded);
            match configs.iter_mut().find(|(n, _)| n == name) {
                Some((_, samples)) => samples.push(sample),
                None => configs.push((name.to_string(), vec![sample])),
            }
        }
    }
    if lines == 0 {
        return Err(CliError("trajectory is empty".into()));
    }
    let mut out = format!(
        "bench trajectory: {lines} runs, {} configs, revs {first_rev}..{last_rev}\n",
        configs.len()
    );
    let mut rows = vec![vec![
        "config".to_string(),
        "runs".into(),
        "first us".into(),
        "last us".into(),
        "drift".into(),
        "degraded".into(),
    ]];
    for (name, samples) in &configs {
        let (first, last) = (&samples[0], &samples[samples.len() - 1]);
        let drift = if first.1 > 0.0 {
            format!("{:+.1}%", (last.1 / first.1 - 1.0) * 100.0)
        } else {
            "-".into()
        };
        let degraded = samples.iter().filter(|(_, _, d)| *d).count();
        let mark = if last.2 {
            format!("{degraded} [latest]")
        } else {
            degraded.to_string()
        };
        rows.push(vec![
            name.clone(),
            samples.len().to_string(),
            format!("{:.1}", first.1),
            format!("{:.1}", last.1),
            drift,
            mark,
        ]);
    }
    out.push_str(&table(&rows));
    out.push_str(
        "drift: latest best_us vs oldest; degraded samples ran with fewer helpers \
         than requested\n",
    );
    Ok(out)
}

/// Usage text.
pub const USAGE: &str = "\
minesweeper-sim — MineSweeper (ASPLOS'22) reproduction driver

USAGE:
    minesweeper-sim list
    minesweeper-sim run <benchmark> [--system <label>] [--seed <n>]
                        [--trace-out <run.jsonl>] [--metrics-out <metrics.json>]
                        [--forensics <off|full|sampled:n>] [--arenas <n>]
                        [--cost-drop <kind>]
    minesweeper-sim compare <benchmark> [--seed <n>]
    minesweeper-sim exploit [--system <label>]
    minesweeper-sim exploit --corpus [--out <matrix.json>] [--fuzz <n>]
                        [--weaken <quarantine-off|ignore-failed-frees>] [--seed <n>]
    minesweeper-sim record <benchmark> --out <file> [--seed <n>]
    minesweeper-sim replay <file> [--system <label>] [--knobs <benchmark>] [--seed <n>]
    minesweeper-sim help

SYSTEMS:
    baseline, minesweeper (ms), minesweeper-mostly (mostly), markus,
    ffmalloc (ff), scudo, minesweeper-scudo (ms-scudo), crcount (cr),
    oscar, psweeper (ps), dangsan

COST KINDS (--cost-drop; see ms-report --costs):
    zeroing, quarantine, mark_scan, skip_replay, forensics, stw,
    sched_setup, release, commit
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_run_with_flags() {
        let cmd = parse(&argv("run xalancbmk --system markus --seed 9")).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                benchmark: "xalancbmk".into(),
                system: "markus".into(),
                seed: 9,
                trace_out: None,
                metrics_out: None,
                forensics: None,
                arenas: None,
                cost_drop: None
            }
        );
    }

    #[test]
    fn parse_telemetry_flags() {
        let cmd =
            parse(&argv("run demo --trace-out /tmp/t.jsonl --metrics-out /tmp/m.json"))
                .unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                benchmark: "demo".into(),
                system: "minesweeper".into(),
                seed: 42,
                trace_out: Some("/tmp/t.jsonl".into()),
                metrics_out: Some("/tmp/m.json".into()),
                forensics: None,
                arenas: None,
                cost_drop: None
            }
        );
        assert!(parse(&argv("compare demo --trace-out /tmp/t.jsonl")).is_err());
        assert!(parse(&argv("run demo --trace-out")).is_err());
    }

    #[test]
    fn parse_defaults() {
        let cmd = parse(&argv("run demo")).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                benchmark: "demo".into(),
                system: "minesweeper".into(),
                seed: 42,
                trace_out: None,
                metrics_out: None,
                forensics: None,
                arenas: None,
                cost_drop: None
            }
        );
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("list")).unwrap(), Command::List);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run demo --seed nope")).is_err());
        assert!(parse(&argv("run demo --bogus 1")).is_err());
        assert!(parse(&argv("run a b")).is_err());
        assert!(parse(&argv("run")).is_err());
    }

    #[test]
    fn system_labels_resolve() {
        for label in
            ["baseline", "ms", "mostly", "markus", "ff", "scudo", "ms-scudo", "cr", "oscar", "ps", "dangsan"]
        {
            assert!(system_by_label(label).is_ok(), "{label}");
        }
        assert!(system_by_label("gc").is_err());
    }

    #[test]
    fn profiles_resolve_across_suites() {
        assert!(profile_by_name("xalancbmk").is_ok()); // 2006
        assert!(profile_by_name("leela").is_ok()); // 2017
        assert!(profile_by_name("cfrac").is_ok()); // mimalloc
        assert!(profile_by_name("demo").is_ok());
        assert!(profile_by_name("quake").is_err());
    }

    #[test]
    fn list_and_exploit_execute() {
        let list = execute(&Command::List).unwrap();
        assert!(list.contains("xalancbmk"));
        assert!(list.contains("mimalloc-bench"));
        let single = |system: &str| Command::Exploit {
            system: system.into(),
            corpus: false,
            out: None,
            fuzz: 3,
            weaken: None,
            seed: 42,
        };
        let out = execute(&single("baseline")).unwrap();
        assert!(out.contains("Compromised"));
        let out = execute(&single("ms")).unwrap();
        assert!(out.contains("Benign"));
    }

    #[test]
    fn parse_corpus_flags() {
        let cmd = parse(&argv(
            "exploit --corpus --fuzz 2 --seed 7 --weaken quarantine-off --out /tmp/m.json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Exploit {
                system: "minesweeper".into(),
                corpus: true,
                out: Some("/tmp/m.json".into()),
                fuzz: 2,
                weaken: Some("quarantine-off".into()),
                seed: 7,
            }
        );
        assert!(parse(&argv("run demo --corpus")).is_err());
        assert!(parse(&argv("compare demo --weaken quarantine-off")).is_err());
        assert!(parse(&argv("exploit --fuzz nope")).is_err());
    }

    #[test]
    fn corpus_execute_renders_matrix_and_writes_json() {
        let path = std::env::temp_dir().join("ms_cli_sec_matrix_test.json");
        let path = path.to_string_lossy().to_string();
        let out = execute(&Command::Exploit {
            system: "minesweeper".into(),
            corpus: true,
            out: Some(path.clone()),
            fuzz: 1,
            weaken: None,
            seed: 42,
        })
        .unwrap();
        assert!(out.contains("security matrix:"));
        assert!(out.contains("minesweeper compromised cells: 0"));
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // The written document round-trips through the reporting path.
        let rendered = render_security(&json, true).unwrap();
        assert!(rendered.contains("check: counters reconcile with cells"));
        // Unknown weaken knobs are a CLI error, not a panic.
        let bad = execute(&Command::Exploit {
            system: "minesweeper".into(),
            corpus: true,
            out: None,
            fuzz: 0,
            weaken: Some("bogus".into()),
            seed: 42,
        });
        assert!(bad.is_err());
    }

    #[test]
    fn security_gate_passes_and_fails() {
        let base = sim::run_corpus(42, 1, sim::Weaken::None).to_json();
        // Identical run: pass.
        let (report, fail) = gate_security(&base, &base).unwrap();
        assert!(!fail, "{report}");
        assert!(report.contains("PASS"));
        // Weakened run flips minesweeper cells: fail, named by scenario.
        let weakened = sim::run_corpus(42, 1, sim::Weaken::QuarantineOff).to_json();
        let (report, fail) = gate_security(&base, &weakened).unwrap();
        assert!(fail, "{report}");
        assert!(report.contains("FAIL"));
        assert!(report.contains("minesweeper"));
        assert!(report.contains("hard floor"));
        assert!(report.contains("regressed"));
        // A weakened document can never serve as the baseline.
        let (_, fail) = gate_security(&weakened, &weakened).unwrap();
        assert!(fail);
        // Shrinking the corpus (missing baseline cells) also fails.
        let small = sim::run_corpus(42, 0, sim::Weaken::None).to_json();
        let (report, fail) = gate_security(&base, &small).unwrap();
        assert!(fail);
        assert!(report.contains("missing"));
        // Growing it does not: new-only cells are informational.
        let grown = sim::run_corpus(42, 2, sim::Weaken::None).to_json();
        let (report, fail) = gate_security(&base, &grown).unwrap();
        assert!(!fail, "{report}");
        assert!(report.contains("new cell"));
        // Garbage input is an error, not a pass.
        assert!(gate_security("junk", &base).is_err());
        assert!(gate_security(&base, "junk").is_err());
    }

    #[test]
    fn render_security_check_catches_counter_drift() {
        let good = sim::run_corpus(1, 0, sim::Weaken::None).to_json();
        assert!(render_security(&good, true).is_ok());
        // Corrupt one verdict counter; --check must notice.
        let bad = good.replacen("\"security/verdict_benign\": ", "\"security/verdict_benign\": 9", 1);
        assert!(bad != good, "fixture must actually change");
        let err = render_security(&bad, true).unwrap_err();
        assert!(err.0.contains("reconciliation"), "{err}");
        // Without --check the drift is not fatal.
        assert!(render_security(&bad, false).is_ok());
    }

    #[test]
    fn record_and_replay_roundtrip() {
        let dir = std::env::temp_dir().join("ms_cli_trace_test.trace");
        let path = dir.to_string_lossy().to_string();
        let out = execute(&Command::Record {
            benchmark: "demo".into(),
            out: path.clone(),
            seed: 3,
        })
        .unwrap();
        assert!(out.contains("wrote"));
        let out = execute(&Command::Replay {
            file: path.clone(),
            system: "ms".into(),
            knobs: "demo".into(),
            seed: 3,
        })
        .unwrap();
        assert!(out.contains("20000 allocs"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn parse_record_requires_out() {
        assert!(parse(&argv("record demo")).is_err());
        let cmd = parse(&argv("record demo --out /tmp/x --seed 2")).unwrap();
        assert_eq!(
            cmd,
            Command::Record { benchmark: "demo".into(), out: "/tmp/x".into(), seed: 2 }
        );
        let cmd = parse(&argv("replay /tmp/x --knobs xalancbmk")).unwrap();
        assert_eq!(
            cmd,
            Command::Replay {
                file: "/tmp/x".into(),
                system: "minesweeper".into(),
                knobs: "xalancbmk".into(),
                seed: 42
            }
        );
    }

    #[test]
    fn run_demo_executes() {
        let out = execute(&Command::Run {
            benchmark: "demo".into(),
            system: "ms".into(),
            seed: 1,
            trace_out: None,
            metrics_out: None,
            forensics: None,
            arenas: None,
            cost_drop: None,
        })
        .unwrap();
        assert!(out.contains("sweeps"));
        assert!(out.contains("avg RSS"));
        assert!(out.contains("layer/released_bytes"), "telemetry table:\n{out}");
    }

    #[test]
    fn trace_flags_need_a_layered_system() {
        let dir = std::env::temp_dir().join("ms_cli_trace_reject.jsonl");
        let err = execute(&Command::Run {
            benchmark: "demo".into(),
            system: "baseline".into(),
            seed: 1,
            trace_out: Some(dir.to_string_lossy().into_owned()),
            metrics_out: None,
            forensics: None,
            arenas: None,
            cost_drop: None,
        })
        .unwrap_err();
        assert!(err.0.contains("layered"), "{err}");
        std::fs::remove_file(dir).ok();
    }

    #[test]
    fn run_trace_and_report_roundtrip() {
        let trace = std::env::temp_dir().join("ms_cli_report_test.jsonl");
        let metrics = std::env::temp_dir().join("ms_cli_report_test.json");
        execute(&Command::Run {
            benchmark: "demo".into(),
            system: "ms".into(),
            seed: 5,
            trace_out: Some(trace.to_string_lossy().into_owned()),
            metrics_out: Some(metrics.to_string_lossy().into_owned()),
            forensics: None,
            arenas: None,
            cost_drop: None,
        })
        .unwrap();
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        let metrics_text = std::fs::read_to_string(&metrics).unwrap();
        assert!(trace_text.lines().any(|l| l.contains("\"sweep_start\"")));
        // The reconciliation check is the acceptance gate: JSONL totals
        // must match the exported counters exactly.
        let report = render_report(&trace_text, Some(&metrics_text), true).unwrap();
        assert!(report.contains("reconcile: trace totals match"), "{report}");
        assert!(report.contains("proportional"), "{report}");
        assert!(render_report(&trace_text, None, true).is_err());

        // A torn final line (truncated mid-write) is a clear error, not a
        // panic, and names the offending line.
        let torn = &trace_text[..trace_text.len() - trace_text.len() / 10];
        assert!(!torn.ends_with('\n'), "truncation must tear the last line");
        let err = render_report(torn, None, false).unwrap_err();
        assert!(err.0.contains("bad trace"), "{err}");
        assert!(err.0.contains("torn final line"), "{err}");
        std::fs::remove_file(trace).ok();
        std::fs::remove_file(metrics).ok();
    }

    #[test]
    fn parse_forensics_flag() {
        let cmd = parse(&argv("run demo --forensics sampled:8")).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                benchmark: "demo".into(),
                system: "minesweeper".into(),
                seed: 42,
                trace_out: None,
                metrics_out: None,
                forensics: Some("sampled:8".into()),
                arenas: None,
                cost_drop: None
            }
        );
        assert!(parse(&argv("compare demo --forensics full")).is_err());
        assert!(parse(&argv("run demo --forensics")).is_err());
    }

    #[test]
    fn forensics_labels_resolve() {
        use minesweeper::ForensicsMode;
        assert_eq!(forensics_by_label("off").unwrap(), ForensicsMode::Off);
        assert_eq!(forensics_by_label("full").unwrap(), ForensicsMode::Full);
        assert_eq!(
            forensics_by_label("sampled:16").unwrap(),
            ForensicsMode::Sampled(16)
        );
        assert!(forensics_by_label("sampled:0").is_err());
        assert!(forensics_by_label("sampled:x").is_err());
        assert!(forensics_by_label("everything").is_err());
    }

    #[test]
    fn forensics_needs_a_layered_system() {
        let err = execute(&Command::Run {
            benchmark: "demo".into(),
            system: "baseline".into(),
            seed: 1,
            trace_out: None,
            metrics_out: None,
            forensics: Some("full".into()),
            arenas: None,
            cost_drop: None,
        })
        .unwrap_err();
        assert!(err.0.contains("layered"), "{err}");
    }

    #[test]
    fn forensic_run_report_shows_pinners_and_reconciles() {
        let trace = std::env::temp_dir().join("ms_cli_forensic_test.jsonl");
        let metrics = std::env::temp_dir().join("ms_cli_forensic_test.json");
        execute(&Command::Run {
            benchmark: "demo".into(),
            system: "ms".into(),
            seed: 5,
            trace_out: Some(trace.to_string_lossy().into_owned()),
            metrics_out: Some(metrics.to_string_lossy().into_owned()),
            forensics: Some("full".into()),
            arenas: None,
            cost_drop: None,
        })
        .unwrap();
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        let metrics_text = std::fs::read_to_string(&metrics).unwrap();
        assert!(trace_text.lines().any(|l| l.contains("\"ledger_entries\"")));
        let opts = ReportOpts { check: true, pinners: true, failed_frees: true };
        let out = render_report_with(&trace_text, Some(&metrics_text), &opts).unwrap();
        assert!(out.contains("pinned sites"), "{out}");
        assert!(out.contains("reconcile: trace totals match"), "{out}");

        // Without forensics in the trace, the views degrade gracefully.
        let plain = execute(&Command::Run {
            benchmark: "demo".into(),
            system: "ms".into(),
            seed: 5,
            trace_out: Some(trace.to_string_lossy().into_owned()),
            metrics_out: None,
            forensics: None,
            arenas: None,
            cost_drop: None,
        });
        plain.unwrap();
        let plain_text = std::fs::read_to_string(&trace).unwrap();
        let out = render_report_with(&plain_text, None, &opts_no_check()).unwrap();
        assert!(out.contains("no forensics data"), "{out}");
        std::fs::remove_file(trace).ok();
        std::fs::remove_file(metrics).ok();
    }

    fn opts_no_check() -> ReportOpts {
        ReportOpts { check: false, pinners: true, failed_frees: true }
    }

    #[test]
    fn slo_renderer_flags_breaches_and_rejects_empty_specs() {
        let reg = telemetry::Registry::new();
        reg.histogram("engine", "stw_cycles").record(5000);
        let metrics = reg.snapshot().to_json();

        let (table, breached) = render_slo(&metrics, "stw=100").unwrap();
        assert!(breached);
        assert!(table.contains("FAIL"), "{table}");

        let (table, breached) = render_slo(&metrics, "stw=1000000,util=10").unwrap();
        assert!(!breached, "{table}");
        assert!(table.contains("PASS (unmeasured)"), "util never measured: {table}");

        assert!(render_slo(&metrics, "").is_err(), "empty spec would vacuously pass");
        assert!(render_slo(&metrics, "bogus=1").is_err());
        assert!(render_slo("not json", "stw=1").is_err());
    }

    /// Bench-shaped metrics JSON: one config with the given rep times.
    fn bench_metrics(reps: &[u64], cpus: u64) -> String {
        let reg = telemetry::Registry::new();
        reg.counter("bench", "host_cpus").add(cpus);
        reg.counter("bench", "scan_tier_avx2").inc();
        let h = reg.histogram("bench", "simd_serial_us");
        for &r in reps {
            h.record(r);
        }
        reg.counter("bench", "simd_serial_best_us")
            .add(reps.iter().copied().min().unwrap_or(0));
        reg.snapshot().to_json()
    }

    #[test]
    fn compare_renderer_gates_same_host_regressions_only() {
        let old = bench_metrics(&[1000, 1004], 4);

        // A clean 20% slowdown on the same host: the gate fires.
        let new = bench_metrics(&[1200, 1205], 4);
        let (table, regressed) = render_compare(&old, &new, 5.0).unwrap();
        assert!(regressed, "{table}");
        assert!(table.contains("REGRESSED"), "{table}");

        // The same slowdown across hosts: warning, no gate.
        let new = bench_metrics(&[1200, 1205], 16);
        let (table, regressed) = render_compare(&old, &new, 5.0).unwrap();
        assert!(!regressed, "{table}");
        assert!(table.contains("host mismatch"), "{table}");
        assert!(table.contains("not gating"), "{table}");

        // No movement: no gate, row rendered ok.
        let (table, regressed) = render_compare(&old, &old, 5.0).unwrap();
        assert!(!regressed);
        assert!(table.contains("ok"), "{table}");

        assert!(render_compare("junk", &old, 5.0).is_err());
    }

    #[test]
    fn parse_arenas_flag() {
        let cmd = parse(&argv("run demo --arenas 4")).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                benchmark: "demo".into(),
                system: "minesweeper".into(),
                seed: 42,
                trace_out: None,
                metrics_out: None,
                forensics: None,
                arenas: Some(4),
                cost_drop: None
            }
        );
        assert!(parse(&argv("run demo --arenas 0")).is_err());
        assert!(parse(&argv("run demo --arenas many")).is_err());
        assert!(parse(&argv("run demo --arenas")).is_err());
        assert!(parse(&argv("compare demo --arenas 2")).is_err());
    }

    #[test]
    fn arenas_need_a_layered_system_and_no_trace_sink() {
        let err = execute(&Command::Run {
            benchmark: "demo".into(),
            system: "baseline".into(),
            seed: 1,
            trace_out: None,
            metrics_out: None,
            forensics: None,
            arenas: Some(2),
            cost_drop: None,
        })
        .unwrap_err();
        assert!(err.0.contains("layered"), "{err}");
        let err = execute(&Command::Run {
            benchmark: "demo".into(),
            system: "ms".into(),
            seed: 1,
            trace_out: Some("/tmp/ms_cli_arena_trace.jsonl".into()),
            metrics_out: None,
            forensics: None,
            arenas: Some(2),
            cost_drop: None,
        })
        .unwrap_err();
        assert!(err.0.contains("--trace-out"), "{err}");
    }

    #[test]
    fn multi_arena_run_reports_shards_and_reconciles() {
        let metrics = std::env::temp_dir().join("ms_cli_arena_test.json");
        let out = execute(&Command::Run {
            benchmark: "demo".into(),
            system: "ms".into(),
            seed: 7,
            trace_out: None,
            metrics_out: Some(metrics.to_string_lossy().into_owned()),
            forensics: None,
            arenas: Some(3),
            cost_drop: None,
        })
        .unwrap();
        assert!(out.contains("minesweeper-arenas3"), "{out}");
        assert!(out.contains("a2"), "per-shard rows:\n{out}");
        assert!(out.contains("scheduler:"), "{out}");
        assert!(out.contains("cost share"), "per-arena cost shares:\n{out}");
        assert!(out.contains('%'), "shares are percentages:\n{out}");

        // The snapshot round-trips through the metrics-only ms-report path
        // and its two accounting paths reconcile.
        let metrics_text = std::fs::read_to_string(&metrics).unwrap();
        let report = render_metrics_report(&metrics_text, true).unwrap();
        assert!(
            report.contains("reconcile: arena shard counters match global totals"),
            "{report}"
        );
        std::fs::remove_file(metrics).ok();
    }

    #[test]
    fn metrics_report_rejects_unsharded_or_tampered_snapshots() {
        // A single-arena engine snapshot has no arena counters.
        let reg = telemetry::Registry::new();
        reg.counter("layer", "sweeps").inc();
        let err = render_metrics_report(&reg.snapshot().to_json(), false).unwrap_err();
        assert!(err.0.contains("no arena shard counters"), "{err}");

        // A shard counter that lost an update fails --check by name.
        let reg = telemetry::Registry::new();
        reg.counter("arena", "arenas").add(2);
        reg.counter("arena", "a0_sweeps").add(3);
        reg.counter("arena", "a1_sweeps").add(1);
        reg.counter("arena", "total_sweeps").add(5);
        let text = reg.snapshot().to_json();
        assert!(render_metrics_report(&text, false).is_ok(), "table renders anyway");
        let err = render_metrics_report(&text, true).unwrap_err();
        assert!(err.0.contains("sweeps sums to 4"), "{err}");
        assert!(err.0.contains("counted 5"), "{err}");

        assert!(render_metrics_report("not json", false).is_err());
    }

    #[test]
    fn parse_cost_drop_flag() {
        let cmd = parse(&argv("run demo --cost-drop zeroing")).unwrap();
        match cmd {
            Command::Run { cost_drop, .. } => {
                assert_eq!(cost_drop.as_deref(), Some("zeroing"));
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&argv("run demo --cost-drop")).is_err());
        assert!(parse(&argv("compare demo --cost-drop zeroing")).is_err());
    }

    #[test]
    fn cost_drop_needs_layered_system_and_known_kind() {
        let run = |system: &str, kind: &str| {
            execute(&Command::Run {
                benchmark: "demo".into(),
                system: system.into(),
                seed: 1,
                trace_out: None,
                metrics_out: None,
                forensics: None,
                arenas: None,
                cost_drop: Some(kind.into()),
            })
        };
        let err = run("baseline", "zeroing").unwrap_err();
        assert!(err.0.contains("layered"), "{err}");
        let err = run("ms", "bogus").unwrap_err();
        assert!(err.0.contains("unknown cost kind"), "{err}");
    }

    #[test]
    fn costs_report_reconciles_and_catches_injected_leak() {
        let metrics = std::env::temp_dir().join("ms_cli_costs_test.json");
        let path = metrics.to_string_lossy().into_owned();
        let run = |drop: Option<&str>| {
            execute(&Command::Run {
                benchmark: "demo".into(),
                system: "ms".into(),
                seed: 5,
                trace_out: None,
                metrics_out: Some(path.clone()),
                forensics: None,
                arenas: None,
                cost_drop: drop.map(String::from),
            })
            .unwrap();
            std::fs::read_to_string(&path).unwrap()
        };
        // Clean run: tables render and every dimension reconciles.
        let clean = run(None);
        let (out, ok) = render_costs(&clean, None, true).unwrap();
        assert!(ok, "{out}");
        assert!(out.contains("defence cost ledger:"), "{out}");
        assert!(out.contains("zeroing"), "{out}");
        assert!(out.contains("reconcile: kind/site/arena"), "{out}");
        // Injected leak: the gate fails (ms-report exit 2) naming the kind.
        let leaky = run(Some("zeroing"));
        let (out, ok) = render_costs(&leaky, None, true).unwrap();
        assert!(!ok, "{out}");
        assert!(out.contains("FAILED"), "{out}");
        assert!(out.contains("zeroing"), "{out}");
        // Without --check the leaky report still renders and passes.
        assert!(render_costs(&leaky, None, false).unwrap().1);
        // A snapshot without the ledger is a clear input error.
        let reg = telemetry::Registry::new();
        reg.counter("layer", "sweeps").inc();
        let err = render_costs(&reg.snapshot().to_json(), None, false).unwrap_err();
        assert!(err.0.contains("no cost ledger"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn costs_report_joins_pinned_bytes_from_a_forensic_trace() {
        let trace = std::env::temp_dir().join("ms_cli_costs_join.jsonl");
        let metrics = std::env::temp_dir().join("ms_cli_costs_join.json");
        execute(&Command::Run {
            benchmark: "demo".into(),
            system: "ms".into(),
            seed: 5,
            trace_out: Some(trace.to_string_lossy().into_owned()),
            metrics_out: Some(metrics.to_string_lossy().into_owned()),
            forensics: Some("full".into()),
            arenas: None,
            cost_drop: None,
        })
        .unwrap();
        let (out, ok) = render_costs(
            &std::fs::read_to_string(&metrics).unwrap(),
            Some(&std::fs::read_to_string(&trace).unwrap()),
            true,
        )
        .unwrap();
        assert!(ok, "{out}");
        assert!(out.contains("pinned bytes"), "{out}");
        std::fs::remove_file(trace).ok();
        std::fs::remove_file(metrics).ok();
    }

    #[test]
    fn schema1_security_matrix_still_parses() {
        let doc = r#"{
  "schema": 1,
  "weaken": "none",
  "seed": 42,
  "fuzz": 0,
  "backends": ["baseline", "minesweeper"],
  "scenarios": [ {"name": "uaf-basic"} ],
  "cells": [
    {"scenario": "uaf-basic", "backend": "baseline", "verdict": "compromised", "attack_window": 3},
    {"scenario": "uaf-basic", "backend": "minesweeper", "verdict": "benign"}
  ],
  "counters": {"security/cells": 2, "security/verdict_compromised": 1, "security/verdict_clean_termination": 0, "security/verdict_benign": 1, "security/verdict_detected": 0, "security/s_uaf_basic_compromised": 1}
}"#;
        // Pre-ledger documents still render and reconcile; their cells
        // parse with zero defence cost and no totals line is shown.
        let out = render_security(doc, true).unwrap();
        assert!(out.contains("check: counters reconcile"), "{out}");
        assert!(!out.contains("defence cycles:"), "{out}");
        // Above the supported range stays rejected.
        let future = doc.replacen("\"schema\": 1", "\"schema\": 99", 1);
        let err = render_security(&future, false).unwrap_err();
        assert!(err.0.contains("unsupported security matrix schema"), "{err}");
    }

    #[test]
    fn security_defence_costs_render_and_reconcile() {
        let good = sim::run_corpus(1, 0, sim::Weaken::None).to_json();
        let out = render_security(&good, true).unwrap();
        assert!(out.contains("ms defence"), "{out}");
        assert!(out.contains("defence cycles:"), "{out}");
        // Corrupting one cell's total breaks both the exporter counter
        // and that cell's per-kind sum; --check catches it.
        let bad = good.replacen("\"defence_cycles\": ", "\"defence_cycles\": 9", 1);
        assert!(bad != good, "fixture must actually change");
        let err = render_security(&bad, true).unwrap_err();
        assert!(err.0.contains("defence"), "{err}");
        assert!(render_security(&bad, false).is_ok());
    }

    #[test]
    fn trajectory_renders_per_config_trends() {
        let lines = concat!(
            "{ \"schema\": 1, \"utc\": \"t0\", \"git_rev\": \"aaaa111\", \"host_cpus\": 8, ",
            "\"scan_tier\": \"avx2\", \"pages\": 2048, \"reps\": 5, \"profiler\": false, ",
            "\"rows\": [{ \"name\": \"simd_serial\", \"best_us\": 100.0, \"words_per_sec\": 10, \"degraded\": false }, ",
            "{ \"name\": \"ws_h6\", \"best_us\": 50.0, \"words_per_sec\": 20, \"degraded\": true }] }\n",
            "{ \"schema\": 1, \"utc\": \"t1\", \"git_rev\": \"bbbb222\", \"host_cpus\": 8, ",
            "\"scan_tier\": \"avx2\", \"pages\": 2048, \"reps\": 5, \"profiler\": false, ",
            "\"rows\": [{ \"name\": \"simd_serial\", \"best_us\": 110.0, \"words_per_sec\": 9, \"degraded\": false }] }\n",
        );
        let out = render_trajectory(lines).unwrap();
        assert!(out.contains("2 runs"), "{out}");
        assert!(out.contains("aaaa111..bbbb222"), "{out}");
        assert!(out.contains("simd_serial"), "{out}");
        assert!(out.contains("+10.0%"), "{out}");
        assert!(out.contains("[latest]"), "degraded latest sample marked: {out}");

        assert!(render_trajectory("").is_err());
        let err = render_trajectory("{ \"schema\": 7, \"git_rev\": \"x\", \"rows\": [] }")
            .unwrap_err();
        assert!(err.0.contains("unsupported"), "{err}");
        assert!(render_trajectory("not json").is_err());
    }
}
