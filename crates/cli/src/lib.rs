#![warn(missing_docs)]

//! Command parsing and execution for `minesweeper-sim`.
//!
//! A dependency-free CLI over the simulation stack:
//!
//! ```text
//! minesweeper-sim list
//! minesweeper-sim run xalancbmk --system minesweeper --seed 7
//! minesweeper-sim compare omnetpp
//! minesweeper-sim exploit --system baseline
//! ```

use sim::report::{bytes, fx, table};
use sim::{run, run_exploit, run_trace, System};
use workloads::exploit::figure2_attack;
use workloads::{mimalloc_bench, recorded, spec2006, spec2017, Profile, TraceGen};

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// List every benchmark, grouped by suite.
    List,
    /// Run one benchmark under one system.
    Run {
        /// Benchmark name.
        benchmark: String,
        /// System label.
        system: String,
        /// Trace seed.
        seed: u64,
    },
    /// Run one benchmark under every system and print the overhead table.
    Compare {
        /// Benchmark name.
        benchmark: String,
        /// Trace seed.
        seed: u64,
    },
    /// Replay the Figure 2 exploit under one system.
    Exploit {
        /// System label.
        system: String,
    },
    /// Write a benchmark's generated allocation trace to a file.
    Record {
        /// Benchmark name.
        benchmark: String,
        /// Output path.
        out: String,
        /// Trace seed.
        seed: u64,
    },
    /// Replay a recorded trace file under one system.
    Replay {
        /// Trace file path.
        file: String,
        /// System label.
        system: String,
        /// Profile supplying the pointer-graph knobs.
        knobs: String,
        /// Pointer-graph seed.
        seed: u64,
    },
    /// Print usage.
    Help,
}

/// A CLI error: bad flag, unknown name.
#[derive(Clone, Debug, PartialEq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Parses argv (without the program name).
///
/// # Errors
///
/// [`CliError`] on unknown subcommands, unknown flags, or malformed
/// values.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else { return Ok(Command::Help) };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => Ok(Command::List),
        "run" | "compare" | "exploit" | "record" | "replay" => {
            let mut benchmark = None;
            let mut system = "minesweeper".to_string();
            let mut seed = 42u64;
            let mut out = None;
            let mut knobs = "demo".to_string();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--system" => {
                        system = it
                            .next()
                            .ok_or_else(|| CliError("--system needs a value".into()))?
                            .clone();
                    }
                    "--seed" => {
                        let v = it
                            .next()
                            .ok_or_else(|| CliError("--seed needs a value".into()))?;
                        seed = v
                            .parse()
                            .map_err(|_| CliError(format!("bad seed: {v}")))?;
                    }
                    "--out" => {
                        out = Some(
                            it.next()
                                .ok_or_else(|| CliError("--out needs a value".into()))?
                                .clone(),
                        );
                    }
                    "--knobs" => {
                        knobs = it
                            .next()
                            .ok_or_else(|| CliError("--knobs needs a value".into()))?
                            .clone();
                    }
                    flag if flag.starts_with('-') => {
                        return Err(CliError(format!("unknown flag: {flag}")));
                    }
                    name => {
                        if benchmark.replace(name.to_string()).is_some() {
                            return Err(CliError(format!("unexpected argument: {name}")));
                        }
                    }
                }
            }
            let positional = |what: &str| {
                benchmark.clone().ok_or_else(|| CliError(format!("{what} needed")))
            };
            match cmd.as_str() {
                "run" => Ok(Command::Run {
                    benchmark: positional("run needs a benchmark name")?,
                    system,
                    seed,
                }),
                "compare" => Ok(Command::Compare {
                    benchmark: positional("compare needs a benchmark name")?,
                    seed,
                }),
                "record" => Ok(Command::Record {
                    benchmark: positional("record needs a benchmark name")?,
                    out: out.ok_or_else(|| CliError("record needs --out <file>".into()))?,
                    seed,
                }),
                "replay" => Ok(Command::Replay {
                    file: positional("replay needs a trace file")?,
                    system,
                    knobs,
                    seed,
                }),
                _ => Ok(Command::Exploit { system }),
            }
        }
        other => Err(CliError(format!("unknown command: {other}"))),
    }
}

/// Resolves a system label to a [`System`].
///
/// # Errors
///
/// [`CliError`] on unknown labels.
pub fn system_by_label(label: &str) -> Result<System, CliError> {
    match label {
        "baseline" | "jemalloc" => Ok(System::Baseline),
        "minesweeper" | "ms" => Ok(System::minesweeper_default()),
        "minesweeper-mostly" | "mostly" => Ok(System::minesweeper_mostly()),
        "markus" => Ok(System::markus_default()),
        "ffmalloc" | "ff" => Ok(System::FfMalloc),
        "scudo" => Ok(System::ScudoBaseline),
        "minesweeper-scudo" | "ms-scudo" => Ok(System::minesweeper_scudo()),
        "crcount" | "cr" => Ok(System::CrCount),
        "oscar" => Ok(System::Oscar),
        "psweeper" | "ps" => Ok(System::PSweeper),
        "dangsan" => Ok(System::DangSan),
        other => Err(CliError(format!(
            "unknown system: {other} (try baseline, minesweeper, mostly, markus, \
             ffmalloc, scudo, ms-scudo, crcount, oscar, psweeper, dangsan)"
        ))),
    }
}

/// Finds a benchmark profile across all suites.
///
/// # Errors
///
/// [`CliError`] when no suite knows the name.
pub fn profile_by_name(name: &str) -> Result<Profile, CliError> {
    if name == "demo" {
        return Ok(Profile::demo());
    }
    spec2006::by_name(name)
        .or_else(|| spec2017::by_name(name))
        .or_else(|| mimalloc_bench::by_name(name))
        .ok_or_else(|| CliError(format!("unknown benchmark: {name} (see `list`)")))
}

/// Executes a command, returning the text to print.
///
/// # Errors
///
/// [`CliError`] for unknown benchmark/system names.
pub fn execute(cmd: &Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::List => {
            let mut out = String::new();
            for (suite, profiles) in [
                ("SPEC CPU2006", spec2006::all()),
                ("SPECspeed2017", spec2017::all()),
                ("mimalloc-bench", mimalloc_bench::all()),
            ] {
                out.push_str(&format!("{suite}:\n"));
                for p in profiles {
                    out.push_str(&format!(
                        "  {:<14} {:>8} allocs, ~{} cycles/alloc\n",
                        p.name, p.total_allocs, p.cycles_per_alloc
                    ));
                }
            }
            out.push_str("  demo           (synthetic quick-run profile)\n");
            Ok(out)
        }
        Command::Run { benchmark, system, seed } => {
            let profile = profile_by_name(benchmark)?;
            let sys = system_by_label(system)?;
            let m = run(&profile, sys, *seed);
            let rows = vec![
                vec!["metric".to_string(), "value".into()],
                vec!["benchmark".into(), m.benchmark.clone()],
                vec!["system".into(), m.system.clone()],
                vec!["virtual cycles".into(), m.mutator_cycles.to_string()],
                vec!["background cycles".into(), m.background_cycles.to_string()],
                vec!["avg RSS".into(), bytes(m.avg_rss() as u64)],
                vec!["peak RSS".into(), bytes(m.peak_rss)],
                vec!["sweeps".into(), m.sweeps.to_string()],
                vec!["failed frees".into(), m.failed_frees.to_string()],
                vec!["cpu utilisation".into(), fx(m.cpu_utilisation())],
            ];
            Ok(table(&rows))
        }
        Command::Compare { benchmark, seed } => {
            let profile = profile_by_name(benchmark)?;
            let base = run(&profile, System::Baseline, *seed);
            let mut rows = vec![vec![
                "system".to_string(),
                "slowdown".into(),
                "avg memory".into(),
                "peak memory".into(),
                "cpu util".into(),
                "sweeps".into(),
            ]];
            for sys in [
                System::minesweeper_default(),
                System::minesweeper_mostly(),
                System::markus_default(),
                System::FfMalloc,
                System::minesweeper_scudo(),
                System::CrCount,
            ] {
                let m = run(&profile, sys, *seed);
                rows.push(vec![
                    sys.label().to_string(),
                    fx(m.slowdown_vs(&base)),
                    fx(m.memory_overhead_vs(&base)),
                    fx(m.peak_overhead_vs(&base)),
                    fx(m.cpu_utilisation()),
                    m.sweeps.to_string(),
                ]);
            }
            Ok(table(&rows))
        }
        Command::Exploit { system } => {
            let sys = system_by_label(system)?;
            let r = run_exploit(&figure2_attack(), sys);
            Ok(format!(
                "system: {}\nvictim reallocated: {}\noutcome: {:?}\n",
                sys.label(),
                r.victim_reallocated,
                r.outcome
            ))
        }
        Command::Record { benchmark, out, seed } => {
            let profile = profile_by_name(benchmark)?;
            let text = recorded::write_trace(TraceGen::new(&profile, *seed));
            std::fs::write(out, &text)
                .map_err(|e| CliError(format!("cannot write {out}: {e}")))?;
            Ok(format!("wrote {} lines to {out}\n", text.lines().count()))
        }
        Command::Replay { file, system, knobs, seed } => {
            let text = std::fs::read_to_string(file)
                .map_err(|e| CliError(format!("cannot read {file}: {e}")))?;
            let ops = recorded::read_trace(&text).map_err(|e| CliError(e.to_string()))?;
            let ops = recorded::close_trace(ops);
            let profile = profile_by_name(knobs)?;
            let sys = system_by_label(system)?;
            let m = run_trace(&profile, sys, *seed, ops);
            Ok(format!(
                "replayed {file} under {}: {} allocs, {} cycles, avg RSS {}, sweeps {}\n",
                sys.label(),
                m.allocs,
                m.mutator_cycles,
                bytes(m.avg_rss() as u64),
                m.sweeps
            ))
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
minesweeper-sim — MineSweeper (ASPLOS'22) reproduction driver

USAGE:
    minesweeper-sim list
    minesweeper-sim run <benchmark> [--system <label>] [--seed <n>]
    minesweeper-sim compare <benchmark> [--seed <n>]
    minesweeper-sim exploit [--system <label>]
    minesweeper-sim record <benchmark> --out <file> [--seed <n>]
    minesweeper-sim replay <file> [--system <label>] [--knobs <benchmark>] [--seed <n>]
    minesweeper-sim help

SYSTEMS:
    baseline, minesweeper (ms), minesweeper-mostly (mostly), markus,
    ffmalloc (ff), scudo, minesweeper-scudo (ms-scudo), crcount (cr),
    oscar, psweeper (ps), dangsan
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_run_with_flags() {
        let cmd = parse(&argv("run xalancbmk --system markus --seed 9")).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                benchmark: "xalancbmk".into(),
                system: "markus".into(),
                seed: 9
            }
        );
    }

    #[test]
    fn parse_defaults() {
        let cmd = parse(&argv("run demo")).unwrap();
        assert_eq!(
            cmd,
            Command::Run { benchmark: "demo".into(), system: "minesweeper".into(), seed: 42 }
        );
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("list")).unwrap(), Command::List);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run demo --seed nope")).is_err());
        assert!(parse(&argv("run demo --bogus 1")).is_err());
        assert!(parse(&argv("run a b")).is_err());
        assert!(parse(&argv("run")).is_err());
    }

    #[test]
    fn system_labels_resolve() {
        for label in
            ["baseline", "ms", "mostly", "markus", "ff", "scudo", "ms-scudo", "cr", "oscar", "ps", "dangsan"]
        {
            assert!(system_by_label(label).is_ok(), "{label}");
        }
        assert!(system_by_label("gc").is_err());
    }

    #[test]
    fn profiles_resolve_across_suites() {
        assert!(profile_by_name("xalancbmk").is_ok()); // 2006
        assert!(profile_by_name("leela").is_ok()); // 2017
        assert!(profile_by_name("cfrac").is_ok()); // mimalloc
        assert!(profile_by_name("demo").is_ok());
        assert!(profile_by_name("quake").is_err());
    }

    #[test]
    fn list_and_exploit_execute() {
        let list = execute(&Command::List).unwrap();
        assert!(list.contains("xalancbmk"));
        assert!(list.contains("mimalloc-bench"));
        let out =
            execute(&Command::Exploit { system: "baseline".into() }).unwrap();
        assert!(out.contains("Compromised"));
        let out =
            execute(&Command::Exploit { system: "ms".into() }).unwrap();
        assert!(out.contains("Benign"));
    }

    #[test]
    fn record_and_replay_roundtrip() {
        let dir = std::env::temp_dir().join("ms_cli_trace_test.trace");
        let path = dir.to_string_lossy().to_string();
        let out = execute(&Command::Record {
            benchmark: "demo".into(),
            out: path.clone(),
            seed: 3,
        })
        .unwrap();
        assert!(out.contains("wrote"));
        let out = execute(&Command::Replay {
            file: path.clone(),
            system: "ms".into(),
            knobs: "demo".into(),
            seed: 3,
        })
        .unwrap();
        assert!(out.contains("20000 allocs"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn parse_record_requires_out() {
        assert!(parse(&argv("record demo")).is_err());
        let cmd = parse(&argv("record demo --out /tmp/x --seed 2")).unwrap();
        assert_eq!(
            cmd,
            Command::Record { benchmark: "demo".into(), out: "/tmp/x".into(), seed: 2 }
        );
        let cmd = parse(&argv("replay /tmp/x --knobs xalancbmk")).unwrap();
        assert_eq!(
            cmd,
            Command::Replay {
                file: "/tmp/x".into(),
                system: "minesweeper".into(),
                knobs: "xalancbmk".into(),
                seed: 42
            }
        );
    }

    #[test]
    fn run_demo_executes() {
        let out = execute(&Command::Run {
            benchmark: "demo".into(),
            system: "ms".into(),
            seed: 1,
        })
        .unwrap();
        assert!(out.contains("sweeps"));
        assert!(out.contains("avg RSS"));
    }
}
