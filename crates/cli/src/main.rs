//! `minesweeper-sim`: the command-line driver. See [`ms_cli`] for the
//! command grammar.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ms_cli::parse(&args).and_then(|cmd| ms_cli::execute(&cmd)) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{}", ms_cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
