//! `ms-report`: summarise a sweep-lifecycle trace (and optional metrics
//! snapshot) produced by `minesweeper-sim run --trace-out/--metrics-out`,
//! check a metrics snapshot against an SLO policy, or compare two bench
//! metrics snapshots for regressions.

use std::process::ExitCode;

use ms_cli::{CliError, ReportOpts};

const USAGE: &str = "\
ms-report — summarise MineSweeper sweep-lifecycle traces

USAGE:
    ms-report <run.jsonl> [--metrics <metrics.json>] [--check]
              [--pinners] [--failed-frees]
    ms-report --metrics <metrics.json> [--check]
    ms-report --slo <spec> --metrics <metrics.json>
    ms-report --compare <old.json> <new.json> [--threshold <pct>]
    ms-report --security <matrix.json> [--baseline <matrix.json>] [--check]
    ms-report --costs <metrics.json> [<run.jsonl>] [--check]
    ms-report --trajectory <trajectory.jsonl>

Prints a per-sweep timeline plus failed-free and quarantine tables from
the JSONL event stream; with --metrics also the engine's pause/STW/sweep
histograms. --pinners ranks allocation sites by the bytes their dangling
pointers pin in quarantine, and --failed-frees lists every entry still in
the failed-free ledger (both need a trace recorded with the `forensics`
config knob on). --check reconciles the trace's aggregated totals —
including the forensic ledger, when present — against the snapshot's
counters and fails on any mismatch.

Without a trace file, --metrics alone renders a multi-arena snapshot
(minesweeper-sim run --arenas N --metrics-out): the per-arena shard
table, the sweep-scheduler summary and each arena's pause histograms;
--check then requires the sum of every shard's counters to equal the
independently accumulated arena/total_* globals.

--slo evaluates the snapshot against a comma-separated objective spec
(stw=CYCLES,sweep=CYCLES,qratio=PERMILLE,util=PCT), prints a pass/fail
table and exits 2 on any violation.

--compare diffs two bench metrics snapshots (sweep_bandwidth
--metrics-out) config by config, prints per-config best/mean deltas with
the runs' measured noise, and exits 2 when a non-degraded config slowed
beyond both --threshold (default 5%) and the noise on a same-host pair.

--security renders the scenario x backend verdict matrix from a
SECURITY_matrix.json (minesweeper-sim exploit --corpus --out); --check
reconciles its embedded security/* counters against the cells — including
each cell's schema-2 defence-cycle attribution. With --baseline it diffs
the matrix against a committed baseline and exits 2 when a cell's verdict
regressed, a baseline cell went missing, or any minesweeper cell is
compromised (the hard floor).

--costs renders the defence-cost attribution ledger from a metrics
snapshot (minesweeper-sim run --metrics-out): per-kind, per-site and
per-arena cycle tables with their share of cost/total_cycles, plus the
per-sweep cost distribution. An optional trace file joins the top sites
against the bytes they pin in quarantine (needs forensics). --check
verifies the ledger's conservation invariants — every dimension must sum
to the total and each kind's counter must match its histogram — and
exits 2 naming the leaking kind otherwise.

--trajectory renders the per-config trend table from an append-only
BENCH_trajectory.jsonl history (sweep_bandwidth --trajectory): best_us
at the oldest and newest revision per config, with degraded samples
marked.

EXIT CODES:
    0  success — report printed, every requested gate passed
    1  bad input — unreadable file, malformed document, unknown flag
    2  gate failure — SLO breach, bench regression, security verdict
       regression, or a cost-ledger conservation leak
";

/// Exit code for a failed gate (SLO breach or bench regression) —
/// distinct from 1, which means bad input.
const GATE_FAILED: u8 = 2;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok((out, gate_ok)) => {
            print!("{out}");
            if gate_ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(GATE_FAILED)
            }
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(String, bool), CliError> {
    let mut trace = None;
    let mut metrics = None;
    let mut slo = None;
    let mut security = None;
    let mut baseline = None;
    let mut costs = None;
    let mut trajectory = None;
    let mut compare: Option<(String, String)> = None;
    let mut threshold = telemetry::DEFAULT_THRESHOLD_PCT;
    let mut opts = ReportOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok((USAGE.to_string(), true)),
            "--metrics" => {
                metrics = Some(
                    it.next()
                        .ok_or_else(|| CliError("--metrics needs a value".into()))?
                        .clone(),
                );
            }
            "--slo" => {
                slo = Some(
                    it.next().ok_or_else(|| CliError("--slo needs a spec".into()))?.clone(),
                );
            }
            "--security" => {
                security = Some(
                    it.next()
                        .ok_or_else(|| CliError("--security needs a value".into()))?
                        .clone(),
                );
            }
            "--baseline" => {
                baseline = Some(
                    it.next()
                        .ok_or_else(|| CliError("--baseline needs a value".into()))?
                        .clone(),
                );
            }
            "--costs" => {
                costs = Some(
                    it.next()
                        .ok_or_else(|| CliError("--costs needs a metrics file".into()))?
                        .clone(),
                );
            }
            "--trajectory" => {
                trajectory = Some(
                    it.next()
                        .ok_or_else(|| {
                            CliError("--trajectory needs a history file".into())
                        })?
                        .clone(),
                );
            }
            "--compare" => {
                let old = it
                    .next()
                    .ok_or_else(|| CliError("--compare needs <old.json> <new.json>".into()))?;
                let new = it
                    .next()
                    .ok_or_else(|| CliError("--compare needs <old.json> <new.json>".into()))?;
                compare = Some((old.clone(), new.clone()));
            }
            "--threshold" => {
                threshold = it
                    .next()
                    .ok_or_else(|| CliError("--threshold needs a percentage".into()))?
                    .parse()
                    .map_err(|_| CliError("--threshold must be a number".into()))?;
            }
            "--check" => opts.check = true,
            "--pinners" => opts.pinners = true,
            "--failed-frees" => opts.failed_frees = true,
            flag if flag.starts_with('-') => {
                return Err(CliError(format!("unknown flag: {flag}")));
            }
            name => {
                if trace.replace(name.to_string()).is_some() {
                    return Err(CliError(format!("unexpected argument: {name}")));
                }
            }
        }
    }

    if baseline.is_some() && security.is_none() {
        return Err(CliError("--baseline needs --security <matrix.json>".into()));
    }
    if let Some(path) = trajectory {
        return Ok((ms_cli::render_trajectory(&read(&path)?)?, true));
    }
    if let Some(path) = costs {
        // The positional trace file, when given, joins pinned bytes into
        // the per-site cost table.
        let trace_text = match &trace {
            Some(p) => Some(read(p)?),
            None => None,
        };
        return ms_cli::render_costs(&read(&path)?, trace_text.as_deref(), opts.check);
    }
    if let Some(path) = security {
        let new_text = read(&path)?;
        let mut out = ms_cli::render_security(&new_text, opts.check)?;
        return match baseline {
            None => Ok((out, true)),
            Some(base) => {
                let (gate, failed) = ms_cli::gate_security(&read(&base)?, &new_text)?;
                out.push_str(&gate);
                Ok((out, !failed))
            }
        };
    }
    if let Some((old, new)) = compare {
        let old_text = read(&old)?;
        let new_text = read(&new)?;
        let (out, regressed) = ms_cli::render_compare(&old_text, &new_text, threshold)?;
        return Ok((out, !regressed));
    }
    if let Some(spec) = slo {
        let metrics =
            metrics.ok_or_else(|| CliError("--slo needs --metrics <file>".into()))?;
        let (out, breached) = ms_cli::render_slo(&read(&metrics)?, &spec)?;
        return Ok((out, !breached));
    }

    let Some(trace) = trace else {
        // Metrics-only mode: a multi-arena snapshot report.
        let metrics = metrics.ok_or_else(|| {
            CliError("ms-report needs a trace file or --metrics <file>".into())
        })?;
        if opts.pinners || opts.failed_frees {
            return Err(CliError(
                "--pinners/--failed-frees need a trace file".into(),
            ));
        }
        let out = ms_cli::render_metrics_report(&read(&metrics)?, opts.check)?;
        return Ok((out, true));
    };
    let trace_text = read(&trace)?;
    let metrics_text = match &metrics {
        Some(path) => Some(read(path)?),
        None => None,
    };
    let out = ms_cli::render_report_with(&trace_text, metrics_text.as_deref(), &opts)?;
    Ok((out, true))
}

fn read(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read {path}: {e}")))
}
