//! `ms-report`: summarise a sweep-lifecycle trace (and optional metrics
//! snapshot) produced by `minesweeper-sim run --trace-out/--metrics-out`.

use std::process::ExitCode;

use ms_cli::{CliError, ReportOpts};

const USAGE: &str = "\
ms-report — summarise MineSweeper sweep-lifecycle traces

USAGE:
    ms-report <run.jsonl> [--metrics <metrics.json>] [--check]
              [--pinners] [--failed-frees]

Prints a per-sweep timeline plus failed-free and quarantine tables from
the JSONL event stream; with --metrics also the engine's pause/STW/sweep
histograms. --pinners ranks allocation sites by the bytes their dangling
pointers pin in quarantine, and --failed-frees lists every entry still in
the failed-free ledger (both need a trace recorded with the `forensics`
config knob on). --check reconciles the trace's aggregated totals —
including the forensic ledger, when present — against the snapshot's
counters and fails on any mismatch.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match report(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn report(args: &[String]) -> Result<String, CliError> {
    let mut trace = None;
    let mut metrics = None;
    let mut opts = ReportOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(USAGE.to_string()),
            "--metrics" => {
                metrics = Some(
                    it.next()
                        .ok_or_else(|| CliError("--metrics needs a value".into()))?
                        .clone(),
                );
            }
            "--check" => opts.check = true,
            "--pinners" => opts.pinners = true,
            "--failed-frees" => opts.failed_frees = true,
            flag if flag.starts_with('-') => {
                return Err(CliError(format!("unknown flag: {flag}")));
            }
            name => {
                if trace.replace(name.to_string()).is_some() {
                    return Err(CliError(format!("unexpected argument: {name}")));
                }
            }
        }
    }
    let trace = trace.ok_or_else(|| CliError("ms-report needs a trace file".into()))?;
    let trace_text = std::fs::read_to_string(&trace)
        .map_err(|e| CliError(format!("cannot read {trace}: {e}")))?;
    let metrics_text = match &metrics {
        Some(path) => Some(
            std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("cannot read {path}: {e}")))?,
        ),
        None => None,
    };
    ms_cli::render_report_with(&trace_text, metrics_text.as_deref(), &opts)
}
