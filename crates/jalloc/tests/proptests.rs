//! Property-based tests for the allocator.
//!
//! Invariants:
//! * Live allocations never overlap, and each lies inside an active extent.
//! * `allocation_range` agrees with the allocator's own bookkeeping for
//!   every live base and for interior pointers.
//! * Free + purge never lose mapped memory: RSS ≤ mapped, and purge_all
//!   drops RSS of the free cache to zero without disturbing live data.
//! * Double frees and wild frees are always rejected, whatever the history.

use proptest::prelude::*;
use std::collections::BTreeMap;

use jalloc::{FreeError, JAlloc, JallocConfig, PurgePolicy};
use vmem::{Addr, AddrSpace};

#[derive(Clone, Debug)]
enum Op {
    Malloc { size: u64 },
    FreeNth { n: usize },
    DoubleFreeNth { n: usize },
    PurgeAll,
    Tick { cycles: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1u64..40_000).prop_map(|size| Op::Malloc { size }),
        4 => any::<usize>().prop_map(|n| Op::FreeNth { n }),
        1 => any::<usize>().prop_map(|n| Op::DoubleFreeNth { n }),
        1 => Just(Op::PurgeAll),
        1 => (1u64..10_000).prop_map(|cycles| Op::Tick { cycles }),
    ]
}

fn run_ops(cfg: JallocConfig, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut space = AddrSpace::new();
    let mut heap = JAlloc::with_config(cfg);
    let mut live: BTreeMap<u64, u64> = BTreeMap::new(); // base -> usable
    let mut freed: Vec<Addr> = Vec::new();
    let mut clock = 0u64;

    for op in ops {
        match *op {
            Op::Malloc { size } => {
                let a = heap.malloc(&mut space, size);
                let usable = heap.usable_size(a).expect("fresh allocation has a size");
                prop_assert!(usable >= size, "usable {usable} < requested {size}");
                // No overlap with any live allocation.
                if let Some((&b, &l)) = live.range(..=a.raw()).next_back() {
                    prop_assert!(b + l <= a.raw(), "overlaps predecessor");
                }
                if let Some((&b, _)) = live.range(a.raw() + 1..).next() {
                    prop_assert!(a.raw() + usable <= b, "overlaps successor");
                }
                live.insert(a.raw(), usable);
                // Previously freed bases that got reused are no longer freed.
                freed.retain(|&f| !(f.raw() >= a.raw() && f.raw() < a.raw() + usable));
            }
            Op::FreeNth { n } => {
                if live.is_empty() {
                    continue;
                }
                let &base = live.keys().nth(n % live.len()).unwrap();
                heap.free(&mut space, Addr::new(base))
                    .expect("freeing a live base must succeed");
                live.remove(&base);
                freed.push(Addr::new(base));
            }
            Op::DoubleFreeNth { n } => {
                if freed.is_empty() {
                    continue;
                }
                let addr = freed[n % freed.len()];
                // The address may have been reused (then it's live again and
                // not in `freed`), so any address still in `freed` must fail.
                let res = heap.free(&mut space, addr);
                prop_assert!(
                    matches!(
                        res,
                        Err(FreeError::DoubleFree(_)) | Err(FreeError::InvalidPointer(_))
                    ),
                    "double free must be rejected, got {res:?}"
                );
            }
            Op::PurgeAll => {
                heap.purge_all(&mut space);
                prop_assert_eq!(heap.free_committed_bytes(&space), 0);
            }
            Op::Tick { cycles } => {
                clock += cycles;
                heap.advance_clock(clock);
                heap.purge_aged(&mut space);
            }
        }

        // Global invariants.
        prop_assert!(space.rss_bytes() <= space.mapped_bytes());
        let ranges = heap.active_ranges();
        for (&base, &usable) in &live {
            let a = Addr::new(base);
            prop_assert_eq!(heap.usable_size(a), Some(usable));
            let (b2, l2) = heap.allocation_range(a + (usable - 8).min(64)).unwrap();
            prop_assert_eq!(b2, a, "interior pointer resolves to base");
            prop_assert_eq!(l2, usable);
            prop_assert!(
                ranges.iter().any(|&(rb, rl)| a >= rb && a.raw() + usable <= rb.raw() + rl),
                "live allocation outside active ranges"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stock_allocator_obeys_invariants(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        run_ops(JallocConfig::stock(), &ops)?;
    }

    #[test]
    fn minesweeper_allocator_obeys_invariants(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        run_ops(JallocConfig::minesweeper(), &ops)?;
    }

    #[test]
    fn no_tcache_allocator_obeys_invariants(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        run_ops(JallocConfig { tcache: false, ..JallocConfig::stock() }, &ops)?;
    }

    #[test]
    fn purge_policies_preserve_live_data(
        sizes in proptest::collection::vec(1u64..100_000, 1..20),
        policy in prop_oneof![Just(PurgePolicy::Madvise), Just(PurgePolicy::CommitDecommit)],
    ) {
        let mut space = AddrSpace::new();
        let mut heap = JAlloc::with_config(JallocConfig {
            purge_policy: policy,
            ..JallocConfig::stock()
        });
        // Allocate, write a signature, free every other one, purge.
        let addrs: Vec<Addr> = sizes.iter().map(|&s| {
            let a = heap.malloc(&mut space, s.max(8));
            space.write_word(a, a.raw() ^ 0xabcd).unwrap();
            a
        }).collect();
        for (i, &a) in addrs.iter().enumerate() {
            if i % 2 == 1 {
                heap.free(&mut space, a).unwrap();
            }
        }
        heap.purge_all(&mut space);
        for (i, &a) in addrs.iter().enumerate() {
            if i % 2 == 0 {
                prop_assert_eq!(space.read_word(a).unwrap(), a.raw() ^ 0xabcd,
                    "purge must not corrupt live allocation {}", i);
            }
        }
    }
}
