//! Extents: page-granular regions backing slabs and large allocations,
//! plus the address-ordered free-extent cache with coalescing.

use std::collections::BTreeMap;

use vmem::{Addr, PAGE_SIZE};

/// What an active extent is used for.
#[derive(Clone, Debug)]
pub(crate) enum ExtentKind {
    /// A slab subdivided into equal regions of one size class.
    Slab { class: usize, bitmap: Vec<u64>, used: u64, regions: u64 },
    /// A single large allocation.
    Large,
}

/// An active (live-allocation-bearing) extent.
#[derive(Clone, Debug)]
pub(crate) struct Extent {
    pub(crate) base: Addr,
    pub(crate) pages: u64,
    pub(crate) kind: ExtentKind,
}

impl Extent {
    pub(crate) fn new_slab(base: Addr, pages: u64, class: usize, regions: u64) -> Self {
        let words = regions.div_ceil(64) as usize;
        Extent {
            base,
            pages,
            kind: ExtentKind::Slab { class, bitmap: vec![0; words], used: 0, regions },
        }
    }

    pub(crate) fn new_large(base: Addr, pages: u64) -> Self {
        Extent { base, pages, kind: ExtentKind::Large }
    }

    pub(crate) fn byte_len(&self) -> u64 {
        self.pages * PAGE_SIZE as u64
    }

    pub(crate) fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.base.add_bytes(self.byte_len())
    }

    /// Allocates the lowest free region of a slab. Returns its index, or
    /// `None` if the slab is full.
    pub(crate) fn slab_alloc(&mut self) -> Option<u64> {
        let ExtentKind::Slab { bitmap, used, regions, .. } = &mut self.kind else {
            unreachable!("slab_alloc on a large extent");
        };
        if *used == *regions {
            return None;
        }
        for (w, word) in bitmap.iter_mut().enumerate() {
            if *word != u64::MAX {
                let bit = word.trailing_ones() as u64;
                let idx = w as u64 * 64 + bit;
                if idx >= *regions {
                    return None;
                }
                *word |= 1 << bit;
                *used += 1;
                return Some(idx);
            }
        }
        None
    }

    /// Frees region `idx` of a slab. Returns `Err(())` if it was not
    /// allocated (double free).
    pub(crate) fn slab_free(&mut self, idx: u64) -> Result<(), ()> {
        let ExtentKind::Slab { bitmap, used, .. } = &mut self.kind else {
            unreachable!("slab_free on a large extent");
        };
        let (w, bit) = ((idx / 64) as usize, idx % 64);
        if bitmap[w] & (1 << bit) == 0 {
            return Err(());
        }
        bitmap[w] &= !(1 << bit);
        *used -= 1;
        Ok(())
    }

    /// Whether slab region `idx` is currently allocated.
    pub(crate) fn slab_region_live(&self, idx: u64) -> bool {
        let ExtentKind::Slab { bitmap, regions, .. } = &self.kind else {
            return false;
        };
        idx < *regions && bitmap[(idx / 64) as usize] & (1 << (idx % 64)) != 0
    }

    pub(crate) fn slab_used(&self) -> u64 {
        match &self.kind {
            ExtentKind::Slab { used, .. } => *used,
            ExtentKind::Large => unreachable!("slab_used on a large extent"),
        }
    }

    pub(crate) fn slab_is_full(&self) -> bool {
        match &self.kind {
            ExtentKind::Slab { used, regions, .. } => used == regions,
            ExtentKind::Large => unreachable!("slab_is_full on a large extent"),
        }
    }
}

/// Metadata for a free (recyclable) extent.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FreeInfo {
    pub(crate) pages: u64,
    /// Virtual time at which the extent (or its newest merged fragment)
    /// became free; drives decay purging.
    pub(crate) freed_at: u64,
}

/// Address-ordered cache of free extents with neighbour coalescing —
/// jemalloc's retained/dirty extent structure, simplified to a single tier
/// (commit state is tracked by the pages themselves in [`vmem`]).
#[derive(Clone, Debug, Default)]
pub(crate) struct FreeExtents {
    by_addr: BTreeMap<u64, FreeInfo>,
}

impl FreeExtents {
    pub(crate) fn new() -> Self {
        FreeExtents { by_addr: BTreeMap::new() }
    }

    /// Inserts a free extent, merging with adjacent free neighbours.
    pub(crate) fn insert(&mut self, base: Addr, pages: u64, now: u64) {
        debug_assert!(pages > 0);
        let mut base = base.raw();
        let mut pages = pages;
        let mut freed_at = now;
        // Merge with predecessor if adjacent.
        if let Some((&pbase, &pinfo)) = self.by_addr.range(..base).next_back() {
            if pbase + pinfo.pages * PAGE_SIZE as u64 == base {
                self.by_addr.remove(&pbase);
                base = pbase;
                pages += pinfo.pages;
                freed_at = freed_at.max(pinfo.freed_at);
            }
        }
        // Merge with successor if adjacent.
        let end = base + pages * PAGE_SIZE as u64;
        if let Some(&sinfo) = self.by_addr.get(&end) {
            self.by_addr.remove(&end);
            pages += sinfo.pages;
            freed_at = freed_at.max(sinfo.freed_at);
        }
        self.by_addr.insert(base, FreeInfo { pages, freed_at });
    }

    /// Removes and returns the best-fit extent for `need` pages: the
    /// smallest free extent with at least `need` pages, lowest address on
    /// ties (jemalloc's first-fit-within-size policy keeps the heap
    /// compact).
    pub(crate) fn take_fit(&mut self, need: u64) -> Option<(Addr, FreeInfo)> {
        let best = self
            .by_addr
            .iter()
            .filter(|(_, info)| info.pages >= need)
            .min_by_key(|(&base, info)| (info.pages, base))
            .map(|(&base, &info)| (base, info))?;
        self.by_addr.remove(&best.0);
        Some((Addr::new(best.0), best.1))
    }

    /// Free extents whose age exceeds `decay` at time `now`.
    pub(crate) fn aged(&self, now: u64, decay: u64) -> Vec<(Addr, u64)> {
        self.by_addr
            .iter()
            .filter(|(_, info)| now.saturating_sub(info.freed_at) >= decay)
            .map(|(&base, info)| (Addr::new(base), info.pages))
            .collect()
    }

    /// All free extents, address order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (Addr, u64)> + '_ {
        self.by_addr.iter().map(|(&base, info)| (Addr::new(base), info.pages))
    }

    /// Total free pages in the cache.
    pub(crate) fn total_pages(&self) -> u64 {
        self.by_addr.values().map(|i| i.pages).sum()
    }

    #[allow(dead_code)] // used by unit tests
    pub(crate) fn len(&self) -> usize {
        self.by_addr.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: u64 = PAGE_SIZE as u64;

    #[test]
    fn slab_alloc_free_roundtrip() {
        let mut e = Extent::new_slab(Addr::new(0x1000), 1, 0, 70);
        let a = e.slab_alloc().unwrap();
        let b = e.slab_alloc().unwrap();
        assert_eq!((a, b), (0, 1), "lowest region first");
        assert!(e.slab_region_live(0));
        e.slab_free(0).unwrap();
        assert!(!e.slab_region_live(0));
        assert_eq!(e.slab_alloc().unwrap(), 0, "freed region is reused first");
    }

    #[test]
    fn slab_double_free_detected() {
        let mut e = Extent::new_slab(Addr::new(0x1000), 1, 0, 10);
        e.slab_alloc().unwrap();
        e.slab_free(0).unwrap();
        assert!(e.slab_free(0).is_err());
    }

    #[test]
    fn slab_fills_exactly_to_region_count() {
        // 70 regions spans two bitmap words with a partial tail.
        let mut e = Extent::new_slab(Addr::new(0x1000), 1, 0, 70);
        for i in 0..70 {
            assert_eq!(e.slab_alloc(), Some(i));
        }
        assert!(e.slab_is_full());
        assert_eq!(e.slab_alloc(), None);
    }

    #[test]
    fn free_extents_coalesce_both_sides() {
        let mut f = FreeExtents::new();
        f.insert(Addr::new(0), 1, 10);
        f.insert(Addr::new(2 * P), 1, 20);
        assert_eq!(f.len(), 2);
        f.insert(Addr::new(P), 1, 30); // bridges the gap
        assert_eq!(f.len(), 1);
        let (base, info) = f.take_fit(3).unwrap();
        assert_eq!(base, Addr::new(0));
        assert_eq!(info.pages, 3);
        assert_eq!(info.freed_at, 30, "merged extent keeps newest timestamp");
    }

    #[test]
    fn non_adjacent_extents_stay_separate() {
        let mut f = FreeExtents::new();
        f.insert(Addr::new(0), 1, 0);
        f.insert(Addr::new(4 * P), 1, 0);
        assert_eq!(f.len(), 2);
        assert_eq!(f.total_pages(), 2);
    }

    #[test]
    fn take_fit_prefers_smallest_then_lowest() {
        let mut f = FreeExtents::new();
        f.insert(Addr::new(0), 8, 0);
        f.insert(Addr::new(100 * P), 2, 0);
        f.insert(Addr::new(200 * P), 2, 0);
        let (base, info) = f.take_fit(2).unwrap();
        assert_eq!(base, Addr::new(100 * P), "smallest fit, lowest address");
        assert_eq!(info.pages, 2);
        assert!(f.take_fit(100).is_none());
    }

    #[test]
    fn aged_respects_decay() {
        let mut f = FreeExtents::new();
        f.insert(Addr::new(0), 1, 1000);
        f.insert(Addr::new(4 * P), 1, 5000);
        let old = f.aged(6000, 2000);
        assert_eq!(old, vec![(Addr::new(0), 1)]);
        assert_eq!(f.aged(100_000, 2000).len(), 2);
    }

    #[test]
    fn extent_contains() {
        let e = Extent::new_large(Addr::new(P), 2);
        assert!(e.contains(Addr::new(P)));
        assert!(e.contains(Addr::new(3 * P - 1)));
        assert!(!e.contains(Addr::new(3 * P)));
        assert!(!e.contains(Addr::new(P - 1)));
    }
}
