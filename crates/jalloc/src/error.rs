//! Allocator errors.

use std::error::Error;
use std::fmt;
use vmem::Addr;

/// An invalid `free()` call.
///
/// In a baseline run these are the undefined-behaviour events (double free,
/// free of a wild pointer) that an attacker exploits; the engine records
/// them as potential compromises. With MineSweeper layered on top they can
/// no longer reach the allocator: the quarantine de-duplicates double frees
/// (§3) and only ever forwards allocations it owns.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FreeError {
    /// The address does not point at the base of a live allocation.
    InvalidPointer(Addr),
    /// The address is the base of a region that is already free
    /// (double free).
    DoubleFree(Addr),
}

impl FreeError {
    /// The offending address.
    pub fn addr(&self) -> Addr {
        match *self {
            FreeError::InvalidPointer(a) | FreeError::DoubleFree(a) => a,
        }
    }
}

impl fmt::Display for FreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FreeError::InvalidPointer(a) => write!(f, "free of invalid pointer {a}"),
            FreeError::DoubleFree(a) => write!(f, "double free of {a}"),
        }
    }
}

impl Error for FreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_addr() {
        let e = FreeError::DoubleFree(Addr::new(0x20));
        assert_eq!(e.to_string(), "double free of 0x20");
        assert_eq!(e.addr(), Addr::new(0x20));
    }
}
