//! The allocator facade: arenas, bins, extent recycling, purging.

use std::collections::{BTreeMap, BTreeSet};

use vmem::{Addr, AddrSpace, PageRange, Protection, PAGE_SIZE};

use crate::classes::SizeClasses;
use crate::config::{JallocConfig, PurgePolicy};
use crate::error::FreeError;
use crate::extent::{Extent, ExtentKind, FreeExtents};
use crate::stats::AllocStats;
use crate::tcache::Tcache;

/// A jemalloc-style heap allocator over a simulated address space.
///
/// All methods that can touch page mappings take the [`AddrSpace`]
/// explicitly; the allocator holds no reference to it, so the quarantine
/// layer above can interleave its own mapping operations freely.
///
/// See the [crate docs](crate) for design notes and an example.
#[derive(Debug)]
pub struct JAlloc {
    cfg: JallocConfig,
    classes: SizeClasses,
    /// Active extents by base address.
    active: BTreeMap<u64, Extent>,
    /// Per class: bases of slabs with at least one free region.
    bins: Vec<BTreeSet<u64>>,
    free_extents: FreeExtents,
    tcache: Tcache,
    clock: u64,
    stats: AllocStats,
}

impl JAlloc {
    /// Creates an allocator with stock-JeMalloc configuration.
    pub fn new() -> Self {
        Self::with_config(JallocConfig::stock())
    }

    /// Creates an allocator with the given configuration.
    pub fn with_config(cfg: JallocConfig) -> Self {
        let classes = SizeClasses::new();
        let sizes: Vec<u64> = (0..classes.count()).map(|i| classes.size_of(i)).collect();
        JAlloc {
            cfg,
            bins: vec![BTreeSet::new(); sizes.len()],
            tcache: Tcache::new(&sizes),
            classes,
            active: BTreeMap::new(),
            free_extents: FreeExtents::new(),
            clock: 0,
            stats: AllocStats::default(),
        }
    }

    /// The configuration this allocator was built with.
    pub fn config(&self) -> &JallocConfig {
        &self.cfg
    }

    /// The size-class table.
    pub fn classes(&self) -> &SizeClasses {
        &self.classes
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &AllocStats {
        &self.stats
    }

    /// Advances the allocator's virtual clock (monotonic), which timestamps
    /// freed extents for decay purging.
    pub fn advance_clock(&mut self, now: u64) {
        self.clock = self.clock.max(now);
    }

    /// Current virtual time.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Allocates `size` bytes and returns the base address.
    ///
    /// With `end_padding` configured (the paper's modified JeMalloc) the
    /// effective request is `size + 1`, so one-past-the-end pointers remain
    /// inside the allocation (§3.2). Requests of zero bytes are served as
    /// one byte, like `malloc(0)` returning a unique pointer.
    pub fn malloc(&mut self, space: &mut AddrSpace, size: u64) -> Addr {
        self.stats.mallocs += 1;
        self.stats.requested_bytes += size;
        let req = size.max(1) + u64::from(self.cfg.end_padding);
        match self.classes.class_for(req) {
            Some(class) => self.malloc_small(space, class),
            None => self.malloc_large(space, req),
        }
    }

    fn malloc_small(&mut self, space: &mut AddrSpace, class: usize) -> Addr {
        let class_size = self.classes.size_of(class);
        self.stats.allocated_bytes += class_size;
        if self.cfg.tcache {
            if let Some(addr) = self.tcache.pop(class) {
                self.stats.tcache_hits += 1;
                return addr;
            }
        }
        self.malloc_small_arena(space, class)
    }

    fn malloc_small_arena(&mut self, space: &mut AddrSpace, class: usize) -> Addr {
        let class_size = self.classes.size_of(class);
        if let Some(&slab_base) = self.bins[class].first() {
            let ext = self.active.get_mut(&slab_base).expect("binned slab is active");
            let idx = ext.slab_alloc().expect("binned slab has a free region");
            if ext.slab_is_full() {
                self.bins[class].remove(&slab_base);
            }
            return Addr::new(slab_base) + idx * class_size;
        }
        // No partially-free slab: create one.
        let pages = self.classes.slab_pages(class);
        let regions = self.classes.regions_per_slab(class);
        let base = self.acquire_extent(space, pages);
        let mut ext = Extent::new_slab(base, pages, class, regions);
        let idx = ext.slab_alloc().expect("fresh slab has free regions");
        self.stats.slabs_created += 1;
        self.stats.active_extent_bytes += ext.byte_len();
        self.active.insert(base.raw(), ext);
        self.bins[class].insert(base.raw());
        base + idx * class_size
    }

    fn malloc_large(&mut self, space: &mut AddrSpace, req: u64) -> Addr {
        let pages = req.div_ceil(PAGE_SIZE as u64);
        let base = self.acquire_extent(space, pages);
        let ext = Extent::new_large(base, pages);
        self.stats.allocated_bytes += ext.byte_len();
        self.stats.active_extent_bytes += ext.byte_len();
        self.active.insert(base.raw(), ext);
        base
    }

    /// Obtains `pages` contiguous pages: best-fit recycle from the free
    /// cache (splitting any remainder back) or a fresh OS mapping. Recycled
    /// ranges get their protection restored; physical backing is whatever
    /// survives (dirty reuse — jemalloc does not zero).
    fn acquire_extent(&mut self, space: &mut AddrSpace, pages: u64) -> Addr {
        if let Some((base, info)) = self.free_extents.take_fit(pages) {
            if info.pages > pages {
                self.free_extents.insert(
                    base.add_bytes(pages * PAGE_SIZE as u64),
                    info.pages - pages,
                    info.freed_at,
                );
            }
            let range = PageRange::new(base.page(), pages);
            if self.cfg.purge_policy == PurgePolicy::CommitDecommit {
                space
                    .protect(range, Protection::ReadWrite)
                    .expect("recycled extent is mapped");
            }
            self.stats.extent_recycles += 1;
            return base;
        }
        let base = space.reserve_heap(pages);
        space.map(base, pages).expect("fresh heap VA is unmapped");
        self.stats.fresh_maps += 1;
        base
    }

    /// Frees the allocation whose base address is `addr`.
    ///
    /// # Errors
    ///
    /// [`FreeError::InvalidPointer`] if `addr` is not the base of a live
    /// allocation; [`FreeError::DoubleFree`] if the region is already free
    /// (including regions parked in the tcache). These are the
    /// undefined-behaviour events a quarantine layer must never forward.
    pub fn free(&mut self, space: &mut AddrSpace, addr: Addr) -> Result<(), FreeError> {
        let (base, ext) = self
            .active
            .range(..=addr.raw())
            .next_back()
            .filter(|(_, e)| e.contains(addr))
            .map(|(&b, e)| (b, e))
            .ok_or(FreeError::InvalidPointer(addr))?;

        match ext.kind {
            ExtentKind::Large => {
                if addr.raw() != base {
                    return Err(FreeError::InvalidPointer(addr));
                }
                let ext = self.active.remove(&base).expect("present");
                self.stats.allocated_bytes -= ext.byte_len();
                self.stats.active_extent_bytes -= ext.byte_len();
                self.stats.frees += 1;
                self.release_extent(ext.base, ext.pages);
                let _ = space; // large frees touch no pages here
                Ok(())
            }
            ExtentKind::Slab { class, .. } => {
                let class_size = self.classes.size_of(class);
                let offset = addr.raw() - base;
                if !offset.is_multiple_of(class_size) {
                    return Err(FreeError::InvalidPointer(addr));
                }
                let idx = offset / class_size;
                let ext = self.active.get(&base).expect("present");
                if !ext.slab_region_live(idx) {
                    return Err(FreeError::DoubleFree(addr));
                }
                if self.cfg.tcache {
                    if self.tcache_contains(class, addr) {
                        return Err(FreeError::DoubleFree(addr));
                    }
                    self.stats.allocated_bytes -= class_size;
                    self.stats.frees += 1;
                    if !self.tcache.push(class, addr) {
                        for old in self.tcache.flush_half(class) {
                            self.release_region(old, base_of(&self.active, old), class);
                        }
                        assert!(self.tcache.push(class, addr), "bin just flushed");
                    }
                    Ok(())
                } else {
                    self.stats.allocated_bytes -= class_size;
                    self.stats.frees += 1;
                    self.release_region(addr, base, class);
                    Ok(())
                }
            }
        }
    }

    fn tcache_contains(&self, class: usize, addr: Addr) -> bool {
        self.tcache.contains(class, addr)
    }

    /// Returns a region to its slab; retires the slab when it empties.
    fn release_region(&mut self, addr: Addr, slab_base: u64, class: usize) {
        let ext = self.active.get_mut(&slab_base).expect("slab is active");
        let class_size = self.classes.size_of(class);
        let idx = (addr.raw() - slab_base) / class_size;
        let was_full = ext.slab_is_full();
        ext.slab_free(idx).expect("region was live");
        if was_full {
            self.bins[class].insert(slab_base);
        }
        if ext.slab_used() == 0 {
            let ext = self.active.remove(&slab_base).expect("present");
            self.bins[class].remove(&slab_base);
            self.stats.active_extent_bytes -= ext.byte_len();
            self.release_extent(ext.base, ext.pages);
        }
    }

    fn release_extent(&mut self, base: Addr, pages: u64) {
        self.free_extents.insert(base, pages, self.clock);
    }

    /// Usable size of the live allocation based at `addr` (class size for
    /// small, page span for large), or `None` if `addr` is not a live
    /// allocation base.
    pub fn usable_size(&self, addr: Addr) -> Option<u64> {
        let (base, len) = self.allocation_range(addr)?;
        (base == addr).then_some(len)
    }

    /// The live allocation containing `addr`, as `(base, usable_size)`.
    /// Regions parked in the tcache still count as arena-live here (their
    /// slab bits are set), matching what a sweep of allocator state sees.
    pub fn allocation_range(&self, addr: Addr) -> Option<(Addr, u64)> {
        let (&base, ext) = self
            .active
            .range(..=addr.raw())
            .next_back()
            .filter(|(_, e)| e.contains(addr))?;
        match ext.kind {
            ExtentKind::Large => Some((Addr::new(base), ext.byte_len())),
            ExtentKind::Slab { class, .. } => {
                let class_size = self.classes.size_of(class);
                let idx = (addr.raw() - base) / class_size;
                ext.slab_region_live(idx)
                    .then(|| (Addr::new(base) + idx * class_size, class_size))
            }
        }
    }

    /// Address-ordered list of active extents as `(base, byte_len)`. These
    /// are the heap ranges a memory sweep must examine (§3.2 — slightly
    /// extending the allocator API "to efficiently identify active memory
    /// ranges" and "exclude allocator metadata structures"; metadata here
    /// is out-of-line Rust state, so exclusion is inherent).
    pub fn active_ranges(&self) -> Vec<(Addr, u64)> {
        self.active.values().map(|e| (e.base, e.byte_len())).collect()
    }

    /// Address-ordered list of free (recyclable) extents as
    /// `(base, byte_len)`.
    pub fn free_ranges(&self) -> Vec<(Addr, u64)> {
        self.free_extents
            .iter()
            .map(|(base, pages)| (base, pages * PAGE_SIZE as u64))
            .collect()
    }

    /// Total bytes held in the free-extent cache.
    pub fn free_extent_bytes(&self) -> u64 {
        self.free_extents.total_pages() * PAGE_SIZE as u64
    }

    /// Bytes in free extents that still hold committed (dirty) pages.
    pub fn free_committed_bytes(&self, space: &AddrSpace) -> u64 {
        self.free_extents
            .iter()
            .map(|(base, pages)| {
                space.committed_pages_in(PageRange::new(base.page(), pages))
                    * PAGE_SIZE as u64
            })
            .sum()
    }

    /// Purges free extents older than the decay window: their pages are
    /// decommitted (and protected under
    /// [`PurgePolicy::CommitDecommit`]). Models jemalloc's background decay
    /// purging.
    pub fn purge_aged(&mut self, space: &mut AddrSpace) {
        let aged = self.free_extents.aged(self.clock, self.cfg.decay_cycles);
        self.purge_ranges(space, &aged);
    }

    /// Purges **all** free extents immediately. MineSweeper triggers this
    /// after every sweep (§4.5): "allocators with large, variable-sized
    /// quarantines must clean their free structures more aggressively".
    pub fn purge_all(&mut self, space: &mut AddrSpace) {
        self.stats.purge_all_calls += 1;
        let all: Vec<(Addr, u64)> = self.free_extents.iter().collect();
        self.purge_ranges(space, &all);
    }

    fn purge_ranges(&mut self, space: &mut AddrSpace, ranges: &[(Addr, u64)]) {
        for &(base, pages) in ranges {
            let range = PageRange::new(base.page(), pages);
            self.stats.purged_pages += space.committed_pages_in(range);
            space.decommit(range).expect("free extent is mapped");
            if self.cfg.purge_policy == PurgePolicy::CommitDecommit {
                space.protect(range, Protection::None).expect("free extent is mapped");
            }
        }
    }

    /// Flushes the thread cache back to the arena (thread teardown, or the
    /// enhanced cleanup MineSweeper performs with sweeps).
    pub fn flush_tcache(&mut self) {
        for (class, addr) in self.tcache.flush_all() {
            let slab_base = base_of(&self.active, addr);
            self.release_region(addr, slab_base, class);
        }
    }
}

/// Base address of the active extent containing `addr`.
fn base_of(active: &BTreeMap<u64, Extent>, addr: Addr) -> u64 {
    active
        .range(..=addr.raw())
        .next_back()
        .filter(|(_, e)| e.contains(addr))
        .map(|(&b, _)| b)
        .expect("tcache region belongs to an active slab")
}

impl Default for JAlloc {
    fn default() -> Self {
        JAlloc::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AddrSpace, JAlloc) {
        (AddrSpace::new(), JAlloc::new())
    }

    #[test]
    fn small_allocations_come_from_one_slab() {
        let (mut space, mut heap) = setup();
        let a = heap.malloc(&mut space, 32);
        let b = heap.malloc(&mut space, 32);
        assert_eq!(b - a, 32, "adjacent regions of the same slab");
        assert_eq!(heap.stats().slabs_created, 1);
    }

    #[test]
    fn distinct_classes_use_distinct_slabs() {
        let (mut space, mut heap) = setup();
        let a = heap.malloc(&mut space, 32);
        let b = heap.malloc(&mut space, 100);
        assert_ne!(a.page(), b.page());
        assert_eq!(heap.stats().slabs_created, 2);
    }

    #[test]
    fn end_padding_bumps_class() {
        let mut space = AddrSpace::new();
        let mut padded = JAlloc::with_config(JallocConfig::minesweeper());
        let a = padded.malloc(&mut space, 32); // 33 B -> class 48
        assert_eq!(padded.usable_size(a), Some(48));
        let mut stock = JAlloc::new();
        let b = stock.malloc(&mut space, 32);
        assert_eq!(stock.usable_size(b), Some(32));
    }

    #[test]
    fn large_allocation_is_page_granular() {
        let (mut space, mut heap) = setup();
        let a = heap.malloc(&mut space, 100_000);
        assert!(a.is_aligned(PAGE_SIZE as u64));
        assert_eq!(heap.usable_size(a), Some(25 * PAGE_SIZE as u64));
    }

    #[test]
    fn free_and_reuse_through_tcache() {
        let (mut space, mut heap) = setup();
        let a = heap.malloc(&mut space, 64);
        heap.free(&mut space, a).unwrap();
        let b = heap.malloc(&mut space, 64);
        assert_eq!(a, b, "tcache returns the hot region");
        assert_eq!(heap.stats().tcache_hits, 1);
    }

    #[test]
    fn double_free_detected_even_in_tcache() {
        let (mut space, mut heap) = setup();
        let a = heap.malloc(&mut space, 64);
        heap.free(&mut space, a).unwrap();
        assert_eq!(heap.free(&mut space, a), Err(FreeError::DoubleFree(a)));
    }

    #[test]
    fn double_free_detected_in_arena() {
        let mut space = AddrSpace::new();
        let mut heap =
            JAlloc::with_config(JallocConfig { tcache: false, ..JallocConfig::stock() });
        let a = heap.malloc(&mut space, 64);
        let _keep = heap.malloc(&mut space, 64); // keep slab alive
        heap.free(&mut space, a).unwrap();
        assert_eq!(heap.free(&mut space, a), Err(FreeError::DoubleFree(a)));
    }

    #[test]
    fn wild_pointer_free_rejected() {
        let (mut space, mut heap) = setup();
        let a = heap.malloc(&mut space, 64);
        assert_eq!(
            heap.free(&mut space, a + 8),
            Err(FreeError::InvalidPointer(a + 8)),
            "interior pointer"
        );
        let wild = Addr::new(0x9999_0000_0000);
        assert_eq!(heap.free(&mut space, wild), Err(FreeError::InvalidPointer(wild)));
    }

    #[test]
    fn empty_slab_retires_to_free_cache() {
        let mut space = AddrSpace::new();
        let mut heap =
            JAlloc::with_config(JallocConfig { tcache: false, ..JallocConfig::stock() });
        let a = heap.malloc(&mut space, 4096);
        heap.free(&mut space, a).unwrap();
        // 4096-byte class slab: 4 regions over 4 pages; one alloc+free
        // leaves it empty, so it must retire.
        assert_eq!(heap.active_ranges().len(), 0);
        assert!(heap.free_extent_bytes() > 0);
    }

    #[test]
    fn large_free_recycles_extent() {
        let (mut space, mut heap) = setup();
        let a = heap.malloc(&mut space, 10 * PAGE_SIZE as u64);
        space.write_word(a, 7).unwrap();
        heap.free(&mut space, a).unwrap();
        let b = heap.malloc(&mut space, 10 * PAGE_SIZE as u64);
        assert_eq!(a, b, "best-fit recycles the same extent");
        assert_eq!(heap.stats().extent_recycles, 1);
        assert_eq!(space.read_word(b).unwrap(), 7, "dirty reuse: no zeroing");
    }

    #[test]
    fn purge_all_decommits_free_extents() {
        let (mut space, mut heap) = setup();
        let a = heap.malloc(&mut space, 10 * PAGE_SIZE as u64);
        space.write_word(a, 7).unwrap();
        heap.free(&mut space, a).unwrap();
        assert!(space.rss_bytes() > 0);
        heap.purge_all(&mut space);
        assert_eq!(space.rss_bytes(), 0);
        // Madvise policy: the range demand-zeroes on next touch.
        assert_eq!(space.read_word(a).unwrap(), 0);
    }

    #[test]
    fn commit_decommit_policy_protects_purged_ranges() {
        let mut space = AddrSpace::new();
        let mut heap = JAlloc::with_config(JallocConfig::minesweeper());
        let a = heap.malloc(&mut space, 10 * PAGE_SIZE as u64);
        space.write_word(a, 7).unwrap();
        heap.free(&mut space, a).unwrap();
        heap.purge_all(&mut space);
        assert!(space.read_word(a).is_err(), "purged range must fault, not fault-in");
        // Reuse restores access.
        let b = heap.malloc(&mut space, 10 * PAGE_SIZE as u64);
        assert_eq!(a, b);
        assert_eq!(space.read_word(b).unwrap(), 0, "decommit discarded contents");
    }

    #[test]
    fn decay_purging_respects_age() {
        let mut space = AddrSpace::new();
        let mut heap = JAlloc::with_config(JallocConfig {
            decay_cycles: 1000,
            ..JallocConfig::stock()
        });
        let a = heap.malloc(&mut space, 10 * PAGE_SIZE as u64);
        space.write_word(a, 7).unwrap();
        heap.advance_clock(100);
        heap.free(&mut space, a).unwrap();
        heap.purge_aged(&mut space);
        assert!(space.rss_bytes() > 0, "too young to purge");
        heap.advance_clock(2000);
        heap.purge_aged(&mut space);
        assert_eq!(space.rss_bytes(), 0, "aged extent purged");
    }

    #[test]
    fn allocation_range_finds_interior_pointers() {
        let (mut space, mut heap) = setup();
        let a = heap.malloc(&mut space, 200); // class 224
        let (base, len) = heap.allocation_range(a + 100).unwrap();
        assert_eq!(base, a);
        assert_eq!(len, 224);
        assert!(heap.allocation_range(Addr::new(0x5000_0000_0000)).is_none());
    }

    #[test]
    fn allocated_bytes_track_class_rounding() {
        let (mut space, mut heap) = setup();
        let a = heap.malloc(&mut space, 100); // class 112
        assert_eq!(heap.stats().allocated_bytes, 112);
        assert_eq!(heap.stats().requested_bytes, 100);
        heap.free(&mut space, a).unwrap();
        assert_eq!(heap.stats().allocated_bytes, 0);
        assert_eq!(heap.stats().live_allocations(), 0);
    }

    #[test]
    fn malloc_zero_returns_usable_allocation() {
        let (mut space, mut heap) = setup();
        let a = heap.malloc(&mut space, 0);
        assert!(heap.usable_size(a).unwrap() >= 1);
        heap.free(&mut space, a).unwrap();
    }

    #[test]
    fn flush_tcache_retires_empty_slabs() {
        let (mut space, mut heap) = setup();
        let a = heap.malloc(&mut space, 64);
        heap.free(&mut space, a).unwrap();
        assert_eq!(heap.active_ranges().len(), 1, "slab pinned by tcache");
        heap.flush_tcache();
        assert_eq!(heap.active_ranges().len(), 0, "flushed slab retires");
    }

    #[test]
    fn active_ranges_cover_live_allocations() {
        let (mut space, mut heap) = setup();
        let small = heap.malloc(&mut space, 64);
        let large = heap.malloc(&mut space, 5 * PAGE_SIZE as u64);
        let ranges = heap.active_ranges();
        let covered = |p: Addr| ranges.iter().any(|&(b, l)| p >= b && p < b.add_bytes(l));
        assert!(covered(small));
        assert!(covered(large));
        assert!(covered(large.add_bytes(5 * PAGE_SIZE as u64 - 8)));
    }

    #[test]
    fn fragmentation_split_and_coalesce() {
        let (mut space, mut heap) = setup();
        let a = heap.malloc(&mut space, 16 * PAGE_SIZE as u64);
        heap.free(&mut space, a).unwrap();
        // Best-fit splits the 16-page extent (both sizes are > SMALL_MAX).
        let b = heap.malloc(&mut space, 4 * PAGE_SIZE as u64);
        assert_eq!(b, a);
        assert_eq!(heap.free_extent_bytes(), 12 * PAGE_SIZE as u64);
        // Freeing coalesces back to one extent.
        heap.free(&mut space, b).unwrap();
        assert_eq!(heap.free_ranges().len(), 1);
        assert_eq!(heap.free_extent_bytes(), 16 * PAGE_SIZE as u64);
    }
}
