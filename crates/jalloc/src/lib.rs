#![warn(missing_docs)]

//! A JeMalloc-style size-class allocator over simulated virtual memory.
//!
//! MineSweeper (ASPLOS '22) is implemented "as a layer over the top of
//! JeMalloc" and leans on several allocator internals: size-class slabs,
//! extent recycling, decay-based purging of dirty pages, and the extent-hook
//! API the paper modifies so purging uses a commit/decommit pair instead of
//! `madvise` + demand paging (§4.5). This crate rebuilds those mechanisms
//! over [`vmem::AddrSpace`] so the quarantine layer and the baselines can be
//! evaluated on a realistic allocator rather than a toy free list.
//!
//! Faithfulness notes:
//!
//! * **Size classes** follow jemalloc's spacing: a linear region up to 128 B
//!   then four classes per size doubling, small up to 14 KiB, larger
//!   requests served from page-granular extents.
//! * **Metadata is out of line** (Rust structures, not heap headers), like
//!   JeMalloc and unlike GNU malloc — the property footnote 2 of the paper
//!   relies on, and §6.6 highlights versus MarkUs.
//! * **`end()` padding**: each request is grown by 1 byte so C++
//!   one-past-the-end pointers still land inside the allocation (§3.2).
//! * **Purging** is driven by a virtual-time decay clock plus an explicit
//!   [`JAlloc::purge_all`], which MineSweeper triggers after every sweep.
//! * **Purge policy** selects between jemalloc's default
//!   (`madvise`-like: decommit, demand-zero on next touch) and the paper's
//!   commit/decommit hooks (decommit **and protect**, so sweeps skip the
//!   range instead of faulting it back in).
//!
//! # Example
//!
//! ```
//! use vmem::AddrSpace;
//! use jalloc::JAlloc;
//!
//! let mut space = AddrSpace::new();
//! let mut heap = JAlloc::new();
//! let a = heap.malloc(&mut space, 100);
//! assert!(heap.usable_size(a).unwrap() >= 101); // +1 end() byte
//! space.write_word(a, 42).unwrap();
//! heap.free(&mut space, a).unwrap();
//! ```

mod alloc;
mod classes;
mod config;
mod error;
mod extent;
mod stats;
mod tcache;

pub use alloc::JAlloc;
pub use classes::{SizeClasses, SMALL_MAX};
pub use config::{JallocConfig, PurgePolicy};
pub use error::FreeError;
pub use stats::AllocStats;
