//! Allocator configuration.

/// How freed extents release their physical pages.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PurgePolicy {
    /// JeMalloc's default: `madvise(MADV_DONTNEED)`-style. The extent is
    /// decommitted but stays readable; the next touch (including a naive
    /// memory sweep!) demand-commits it back to zeroes, re-inflating RSS.
    #[default]
    Madvise,
    /// The paper's extent-hook pair (§4.5): decommit **and** protect. The
    /// range faults on access, so sweeps observe `Protected` and skip it;
    /// reuse commits and restores protection.
    CommitDecommit,
}

/// Tunables for [`crate::JAlloc`].
///
/// # Example
///
/// ```
/// use jalloc::{JallocConfig, PurgePolicy};
/// let cfg = JallocConfig::minesweeper();
/// assert_eq!(cfg.purge_policy, PurgePolicy::CommitDecommit);
/// assert!(cfg.end_padding);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JallocConfig {
    /// Purge behaviour for freed extents.
    pub purge_policy: PurgePolicy,
    /// Grow every request by 1 byte so C/C++ `end()` pointers stay inside
    /// the allocation (§3.2). The paper's modified JeMalloc enables this.
    pub end_padding: bool,
    /// Enable the thread-local cache of small regions.
    pub tcache: bool,
    /// Virtual-time age (in cycles) after which a free dirty extent is
    /// purged by [`crate::JAlloc::purge_aged`]. Models jemalloc's 10 s decay
    /// curve, scaled to simulated time.
    pub decay_cycles: u64,
}

impl JallocConfig {
    /// Stock JeMalloc behaviour (the paper's baseline).
    pub fn stock() -> Self {
        JallocConfig {
            purge_policy: PurgePolicy::Madvise,
            end_padding: false,
            tcache: true,
            decay_cycles: 10_000_000_000, // ~10 s at 1 GHz virtual clock
        }
    }

    /// The minimally modified JeMalloc the paper ships: end-pointer padding
    /// plus commit/decommit extent hooks.
    pub fn minesweeper() -> Self {
        JallocConfig {
            purge_policy: PurgePolicy::CommitDecommit,
            end_padding: true,
            ..Self::stock()
        }
    }
}

impl Default for JallocConfig {
    fn default() -> Self {
        JallocConfig::stock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_matches_jemalloc_defaults() {
        let c = JallocConfig::stock();
        assert_eq!(c.purge_policy, PurgePolicy::Madvise);
        assert!(!c.end_padding);
        assert!(c.tcache);
    }

    #[test]
    fn default_is_stock() {
        assert_eq!(JallocConfig::default(), JallocConfig::stock());
    }
}
